// Quickstart: open a CacheKV store on a simulated eADR platform, write,
// read, overwrite, delete, and inspect the hardware-level counters.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "pmem/pmem_env.h"

using cachekv::CacheKVOptions;
using cachekv::DB;
using cachekv::EnvOptions;
using cachekv::PmemEnv;
using cachekv::Status;

int main() {
  // 1) Describe the platform: PMem DIMMs with persistent CPU caches
  //    (eADR) and a CAT pseudo-locked range for the sub-MemTable pool.
  EnvOptions env_opts;
  env_opts.pmem_capacity = 1ull << 30;  // 1 GB simulated PMem
  env_opts.llc_capacity = 36ull << 20;  // 36 MB LLC, as in the paper
  env_opts.cat_locked_bytes = 12ull << 20;
  PmemEnv env(env_opts);

  // 2) Open the store. The pool size must match the CAT range.
  CacheKVOptions options;
  options.pool_bytes = 12ull << 20;
  options.sub_memtable_bytes = 2ull << 20;
  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, options, /*recover=*/false, &db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3) Basic operations.
  s = db->Put("language", "C++");
  if (!s.ok()) {
    fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db->Put("paper", "CacheKV (ICDE 2023)");
  db->Put("language", "C++20");  // overwrite

  std::string value;
  s = db->Get("language", &value);
  printf("language  -> %s\n", s.ok() ? value.c_str() : s.ToString().c_str());
  s = db->Get("paper", &value);
  printf("paper     -> %s\n", s.ok() ? value.c_str() : s.ToString().c_str());

  db->Delete("paper");
  s = db->Get("paper", &value);
  printf("paper     -> %s (after delete)\n", s.ToString().c_str());

  // 4) Write enough data to drive the full pipeline: seals, copy-based
  //    flushes, zone compaction, and an L0 flush.
  for (int i = 0; i < 200000; i++) {
    std::string key = "user" + std::to_string(i % 20000);
    std::string v(64, static_cast<char>('a' + i % 26));
    s = db->Put(key, v);
    if (!s.ok()) {
      fprintf(stderr, "bulk put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db->WaitIdle();

  printf("\n--- pipeline counters ---\n");
  printf("puts:          %llu\n",
         static_cast<unsigned long long>(db->CounterValue("db.puts")));
  printf("seals:         %llu\n",
         static_cast<unsigned long long>(db->CounterValue("db.seals")));
  printf("copy flushes:  %llu\n",
         static_cast<unsigned long long>(
             db->CounterValue("db.copy_flushes")));
  printf("zone flushes:  %llu\n",
         static_cast<unsigned long long>(
             db->CounterValue("db.zone_flushes")));
  printf("L0 files:      %d\n", db->engine()->NumFiles(0));
  printf("L1 files:      %d\n", db->engine()->NumFiles(1));

  printf("\n--- simulated hardware ---\n");
  printf("flush instructions issued: %llu (CacheKV needs none)\n",
         static_cast<unsigned long long>(
             env.cache()->stats().clwb_lines.load()));
  printf("XPBuffer write hit ratio:  %.3f\n",
         env.device()->counters().WriteHitRatio());
  printf("PMem write amplification:  %.3f\n",
         env.device()->counters().WriteAmplification());
  return 0;
}
