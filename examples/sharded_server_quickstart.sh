#!/bin/sh
# A 4-shard CacheKV server end to end (docs/SERVER.md, "Sharding").
# Run from the repo root after building. The server hosts four fully
# independent stores behind one port; keys are partitioned by the
# consistent-hash ring, which the CLI fetches over the SHARDMAP op.
./build/tools/cachekv_server --port 7071 --shards 4 & server=$!
sleep 1
printf 'shardmap
shard user42
put user42 alice
get user42
multiput a 1 b 2 c 3 d 4
scan a 4
stats
quit
' | ./build/tools/cachekv_cli --connect 127.0.0.1:7071
# Client-routed load against the same server: netbench fetches the
# ring and pipelines each op straight to its owning shard.
./build/bench/netbench --connect 127.0.0.1:7071 --shards 4 \
    --ops 20000 --read-pct 50
kill -INT "$server" && wait "$server"
