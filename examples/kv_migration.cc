// Side-by-side demo: the same social-graph-style workload (small values,
// skewed access, write-heavy -- the Facebook-style workload the paper's
// introduction motivates) against CacheKV and the NoveLSM baseline on
// identical simulated hardware, printing throughput and the hardware
// counters that explain the difference.
//
//   $ ./build/examples/kv_migration

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/novelsm.h"
#include "core/db.h"
#include "pmem/pmem_env.h"
#include "util/zipfian.h"

using namespace cachekv;

namespace {

struct RunStats {
  double put_kops = 0;
  double get_kops = 0;
  double write_hit_ratio = 0;
  uint64_t flush_instructions = 0;
};

RunStats RunWorkload(PmemEnv* env, KVStore* store) {
  constexpr int kOps = 120000;
  constexpr int kKeySpace = 20000;
  ScrambledZipfianGenerator hot(kKeySpace, 0.99, 42);

  auto t0 = std::chrono::steady_clock::now();
  // Write-heavy phase: 90% updates of hot keys (edge updates), 10% new
  // vertices.
  for (int i = 0; i < kOps; i++) {
    uint64_t id = (i % 10 == 0) ? kKeySpace + i : hot.Next();
    std::string key = "vertex:" + std::to_string(id);
    std::string value = "adj=" + std::to_string(id * 31 % 1000) +
                        ";ts=" + std::to_string(i);
    if (!store->Put(key, value).ok()) {
      fprintf(stderr, "put failed\n");
      return {};
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  // Read phase: neighbourhood lookups on the hot set.
  std::string value;
  int found = 0;
  for (int i = 0; i < kOps; i++) {
    std::string key = "vertex:" + std::to_string(hot.Next());
    if (store->Get(key, &value).ok()) {
      found++;
    }
  }
  auto t2 = std::chrono::steady_clock::now();

  env->cache()->WritebackAll();
  RunStats stats;
  stats.put_kops =
      kOps / std::chrono::duration<double>(t1 - t0).count() / 1000.0;
  stats.get_kops =
      kOps / std::chrono::duration<double>(t2 - t1).count() / 1000.0;
  stats.write_hit_ratio = env->device()->counters().WriteHitRatio();
  stats.flush_instructions = env->cache()->stats().clwb_lines.load();
  printf("  (read phase found %d/%d hot keys)\n", found, kOps);
  return stats;
}

void Report(const std::string& name, const RunStats& s) {
  printf("%-12s puts %8.1f Kops/s | gets %8.1f Kops/s | XPBuffer hit "
         "%.3f | clwb count %llu\n",
         name.c_str(), s.put_kops, s.get_kops, s.write_hit_ratio,
         static_cast<unsigned long long>(s.flush_instructions));
}

}  // namespace

int main() {
  printf("social-graph workload: 16 B-ish keys, ~20-40 B values, zipfian "
         "updates\n\n");

  RunStats cachekv_stats, novelsm_stats;
  {
    EnvOptions env_opts;
    env_opts.pmem_capacity = 1ull << 30;
    env_opts.cat_locked_bytes = 12ull << 20;
    PmemEnv env(env_opts);
    CacheKVOptions options;
    options.pool_bytes = 12ull << 20;
    std::unique_ptr<DB> db;
    if (!DB::Open(&env, options, false, &db).ok()) {
      return 1;
    }
    printf("CacheKV:\n");
    cachekv_stats = RunWorkload(&env, db.get());
  }
  {
    EnvOptions env_opts;
    env_opts.pmem_capacity = 1ull << 30;
    PmemEnv env(env_opts);
    NoveLsmOptions options;  // vanilla: flush instructions on every write
    std::unique_ptr<NoveLsmStore> store;
    if (!NoveLsmStore::Open(&env, options, &store).ok()) {
      return 1;
    }
    printf("NoveLSM:\n");
    novelsm_stats = RunWorkload(&env, store.get());
  }

  printf("\n");
  Report("CacheKV", cachekv_stats);
  Report("NoveLSM", novelsm_stats);
  if (novelsm_stats.put_kops > 0) {
    printf("\nCacheKV write speedup: %.1fx\n",
           cachekv_stats.put_kops / novelsm_stats.put_kops);
  }
  return 0;
}
