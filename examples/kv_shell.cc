// Interactive shell over the CacheKV public API. Reads commands from
// stdin (one per line) and prints results; exits cleanly on EOF.
//
//   $ ./build/examples/kv_shell
//   > put language C++20
//   OK
//   > get language
//   C++20
//   > scan key0 5
//   ...
//   > crash        (simulated power failure + recovery)
//   > stats
//
// Commands: put <k> <v> | get <k> | del <k> | scan [start] [limit]
//           multiput <k1> <v1> <k2> <v2> ... | crash | stats | help

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/db.h"
#include "pmem/pmem_env.h"

using namespace cachekv;

namespace {

void PrintHelp() {
  printf(
      "commands:\n"
      "  put <key> <value>          insert or update\n"
      "  get <key>                  point lookup\n"
      "  del <key>                  delete\n"
      "  multiput <k> <v> [...]     atomic multi-key transaction\n"
      "  scan [start] [limit]       ordered scan (default limit 10)\n"
      "  crash                      simulate power failure + recovery\n"
      "  stats                      pipeline & hardware counters\n"
      "  help                       this text\n");
}

void PrintStats(PmemEnv* env, DB* db) {
  printf("puts=%llu gets=%llu seals=%llu copy_flushes=%llu "
         "zone_flushes=%llu\n",
         static_cast<unsigned long long>(db->CounterValue("db.puts")),
         static_cast<unsigned long long>(db->CounterValue("db.gets")),
         static_cast<unsigned long long>(db->CounterValue("db.seals")),
         static_cast<unsigned long long>(
             db->CounterValue("db.copy_flushes")),
         static_cast<unsigned long long>(
             db->CounterValue("db.zone_flushes")));
  printf("pool: %d slots (%d free), target class %llu KB\n",
         db->pool()->NumSlots(), db->pool()->NumFreeSlots(),
         static_cast<unsigned long long>(
             db->pool()->target_slot_bytes() >> 10));
  printf("zone: %d staged tables, %llu bytes; LSM L0=%d L1=%d\n",
         db->zone()->NumTables(),
         static_cast<unsigned long long>(db->zone()->TotalBytes()),
         db->engine()->NumFiles(0), db->engine()->NumFiles(1));
  printf("hw: XPBuffer hit ratio %.3f, write amp %.3f, clwb count %llu\n",
         env->device()->counters().WriteHitRatio(),
         env->device()->counters().WriteAmplification(),
         static_cast<unsigned long long>(
             env->cache()->stats().clwb_lines.load()));
}

}  // namespace

int main() {
  EnvOptions env_opts;
  env_opts.pmem_capacity = 1ull << 30;
  env_opts.cat_locked_bytes = 12ull << 20;
  PmemEnv env(env_opts);
  CacheKVOptions options;
  options.pool_bytes = 12ull << 20;

  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, options, false, &db);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("CacheKV shell — 'help' for commands, EOF/quit to exit\n");

  std::string line;
  while (printf("> "), fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "put") {
      std::string k, v;
      if (!(in >> k >> v)) {
        printf("usage: put <key> <value>\n");
        continue;
      }
      Status st = db->Put(k, v);
      printf("%s\n", st.ToString().c_str());
    } else if (cmd == "get") {
      std::string k;
      if (!(in >> k)) {
        printf("usage: get <key>\n");
        continue;
      }
      std::string value;
      Status st = db->Get(k, &value);
      printf("%s\n", st.ok() ? value.c_str() : st.ToString().c_str());
    } else if (cmd == "del") {
      std::string k;
      if (!(in >> k)) {
        printf("usage: del <key>\n");
        continue;
      }
      printf("%s\n", db->Delete(k).ToString().c_str());
    } else if (cmd == "multiput") {
      std::vector<DB::BatchOp> batch;
      std::string k, v;
      while (in >> k >> v) {
        batch.push_back({false, k, v});
      }
      if (batch.empty()) {
        printf("usage: multiput <k1> <v1> [<k2> <v2> ...]\n");
        continue;
      }
      Status st = db->MultiPut(batch);
      printf("%s (%zu keys, one atomic commit)\n",
             st.ToString().c_str(), batch.size());
    } else if (cmd == "scan") {
      std::string start;
      int limit = 10;
      in >> start >> limit;
      std::unique_ptr<Iterator> iter(db->NewScanIterator());
      if (start.empty()) {
        iter->SeekToFirst();
      } else {
        iter->Seek(Slice(start));
      }
      int shown = 0;
      for (; iter->Valid() && shown < limit; iter->Next(), shown++) {
        printf("  %s = %s\n", iter->key().ToString().c_str(),
               iter->value().ToString().c_str());
      }
      printf("(%d entr%s)\n", shown, shown == 1 ? "y" : "ies");
    } else if (cmd == "crash") {
      db.reset();
      env.SimulateCrash();
      Status st = DB::Open(&env, options, /*recover=*/true, &db);
      if (!st.ok()) {
        fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
        return 1;
      }
      printf("power failure simulated; recovered (last seq %llu)\n",
             static_cast<unsigned long long>(db->LastSequence()));
    } else if (cmd == "stats") {
      PrintStats(&env, db.get());
    } else {
      printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  printf("\nbye\n");
  return 0;
}
