// Crash recovery demo (§III-E): write a batch of keys with NO flush
// instructions anywhere, pull the (simulated) power plug, and recover.
// Under eADR the sub-MemTables survive inside the CPU caches; the
// recovery pass rebuilds the DRAM sub-skiplists from them and evacuates
// their contents to the PMem staging zone.
//
//   $ ./build/examples/crash_recovery

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "pmem/pmem_env.h"

using namespace cachekv;

int main() {
  EnvOptions env_opts;
  env_opts.pmem_capacity = 1ull << 30;
  env_opts.cat_locked_bytes = 12ull << 20;
  env_opts.domain = PersistDomain::kEadr;
  PmemEnv env(env_opts);

  CacheKVOptions options;
  options.pool_bytes = 12ull << 20;

  constexpr int kKeys = 50000;
  {
    std::unique_ptr<DB> db;
    Status s = DB::Open(&env, options, false, &db);
    if (!s.ok()) {
      fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }
    for (int i = 0; i < kKeys; i++) {
      s = db->Put("account-" + std::to_string(i),
                  "balance=" + std::to_string(i * 7));
      if (!s.ok()) {
        fprintf(stderr, "put: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    db->Delete("account-13");
    printf("wrote %d keys (+1 delete); flush instructions issued: %llu\n",
           kKeys,
           static_cast<unsigned long long>(
               env.cache()->stats().clwb_lines.load()));
    // The DB object goes away WITHOUT WaitIdle: recent writes still live
    // only in the sub-MemTable pool inside the CPU caches.
  }

  printf("... simulating power failure ...\n");
  env.SimulateCrash();

  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, options, /*recover=*/true, &db);
  if (!s.ok()) {
    fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("recovered store: zone holds %d staged tables, last seq %llu\n",
         db->zone()->NumTables(),
         static_cast<unsigned long long>(db->LastSequence()));

  int verified = 0, missing = 0;
  std::string value;
  for (int i = 0; i < kKeys; i++) {
    Status gs = db->Get("account-" + std::to_string(i), &value);
    if (i == 13) {
      if (!gs.IsNotFound()) {
        fprintf(stderr, "deleted key resurrected!\n");
        return 1;
      }
      continue;
    }
    if (gs.ok() && value == "balance=" + std::to_string(i * 7)) {
      verified++;
    } else {
      missing++;
    }
  }
  printf("verified %d/%d keys after crash (%d lost)\n", verified,
         kKeys - 1, missing);

  // The store remains fully usable.
  db->Put("post-crash", "writes continue");
  db->Get("post-crash", &value);
  printf("post-crash write readable: %s\n", value.c_str());
  return missing == 0 ? 0 : 1;
}
