#!/bin/sh
# Start a CacheKV server and talk to it — the 5-line network quickstart
# (docs/SERVER.md). Run from the repo root after building.
./build/tools/cachekv_server --port 7070 --workers 2 & server=$!
sleep 1
printf 'put language C++20\nget language\nstats\nquit\n' | \
    ./build/tools/cachekv_cli --connect 127.0.0.1:7070
kill -INT "$server" && wait "$server"
