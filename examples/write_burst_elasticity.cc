// Elasticity demo (§III-A): a write burst from many threads exhausts the
// sub-MemTable pool; the miss counter crosses its threshold and the pool
// halves its size class so more (smaller) tables become available. When
// the burst subsides the pool merges tables back to the large class.
//
//   $ ./build/examples/write_burst_elasticity

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "pmem/pmem_env.h"

using namespace cachekv;

int main() {
  EnvOptions env_opts;
  env_opts.pmem_capacity = 1ull << 30;
  env_opts.cat_locked_bytes = 4ull << 20;
  PmemEnv env(env_opts);

  CacheKVOptions options;
  options.pool_bytes = 4ull << 20;
  options.sub_memtable_bytes = 1ull << 20;  // 4 tables initially
  options.min_sub_memtable_bytes = 128ull << 10;
  options.num_cores = 16;
  options.elasticity_miss_threshold = 8;
  options.num_flush_threads = 1;  // deliberately underprovisioned

  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, options, false, &db);
  if (!s.ok()) {
    fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  printf("pool before burst: %d slots x %llu KB (target class)\n",
         db->pool()->NumSlots(),
         static_cast<unsigned long long>(
             db->pool()->target_slot_bytes() >> 10));

  // Burst: 12 writers hammer the 4-table pool.
  std::vector<std::thread> writers;
  std::atomic<int> errors{0};
  for (int w = 0; w < 12; w++) {
    writers.emplace_back([&, w] {
      std::string value(512, 'b');
      for (int i = 0; i < 4000; i++) {
        if (!db->Put("burst-w" + std::to_string(w) + "-" +
                         std::to_string(i),
                     value)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  printf("burst done (%d errors); pool now: %d slots, target class %llu "
         "KB, misses %llu, acquire waits %llu\n",
         errors.load(), db->pool()->NumSlots(),
         static_cast<unsigned long long>(
             db->pool()->target_slot_bytes() >> 10),
         static_cast<unsigned long long>(db->pool()->miss_count()),
         static_cast<unsigned long long>(
             db->CounterValue("db.acquire_waits")));

  // Calm phase: a single writer; the pool grows its class back.
  for (int i = 0; i < 100000; i++) {
    db->Put("calm-" + std::to_string(i % 1000), "v");
  }
  db->WaitIdle();
  printf("after calm phase: %d slots, target class %llu KB\n",
         db->pool()->NumSlots(),
         static_cast<unsigned long long>(
             db->pool()->target_slot_bytes() >> 10));

  // Verify a few burst keys survived the shuffle.
  std::string value;
  for (int w = 0; w < 12; w += 3) {
    std::string k = "burst-w" + std::to_string(w) + "-3999";
    if (!db->Get(k, &value).ok()) {
      fprintf(stderr, "lost %s\n", k.c_str());
      return 1;
    }
  }
  printf("spot-checked burst keys: all present\n");
  return 0;
}
