#ifndef CACHEKV_UTIL_HASH_H_
#define CACHEKV_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace cachekv {

/// 32-bit hash of data[0, n-1] (LevelDB's murmur-like hash). Used by the
/// bloom filter and by workload sharding helpers.
uint32_t Hash(const char* data, size_t n, uint32_t seed);

/// 64-bit avalanche hash of data[0, n-1] (FNV-1a core + splitmix finisher).
/// Used by the YCSB key scrambler.
uint64_t Hash64(const char* data, size_t n, uint64_t seed);

/// Finalizer that maps a 64-bit integer to a well-mixed 64-bit integer
/// (splitmix64 finisher).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace cachekv

#endif  // CACHEKV_UTIL_HASH_H_
