#ifndef CACHEKV_UTIL_STATUS_H_
#define CACHEKV_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace cachekv {

/// Status represents the result of an operation. It either indicates
/// success ("OK"), or carries an error code and message. This project
/// does not throw exceptions on normal error paths; fallible operations
/// return Status (the LevelDB/RocksDB idiom).
class Status {
 public:
  /// Creates an OK status.
  Status() : code_(kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg,
                                const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }
  static Status OutOfSpace(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kOutOfSpace, msg, msg2);
  }

  bool ok() const { return code_ == kOk; }
  bool IsNotFound() const { return code_ == kNotFound; }
  bool IsCorruption() const { return code_ == kCorruption; }
  bool IsNotSupported() const { return code_ == kNotSupported; }
  bool IsInvalidArgument() const { return code_ == kInvalidArgument; }
  bool IsIOError() const { return code_ == kIOError; }
  bool IsBusy() const { return code_ == kBusy; }
  bool IsOutOfSpace() const { return code_ == kOutOfSpace; }

  /// Returns a string representation suitable for printing.
  std::string ToString() const;

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kOutOfSpace = 7,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_STATUS_H_
