#ifndef CACHEKV_UTIL_RANDOM_H_
#define CACHEKV_UTIL_RANDOM_H_

#include <cstdint>

#include "util/hash.h"

namespace cachekv {

/// A simple xorshift128+ pseudo-random generator. Not cryptographic; fast
/// and good enough for workload generation and randomized tests.
class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = Mix64(seed);
    s_[1] = Mix64(s_[0] + 0x9e3779b97f4a7c15ULL);
    if (s_[0] == 0 && s_[1] == 0) {
      s_[0] = 1;
    }
  }

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Returns a uniformly distributed 32-bit value.
  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Returns a uniform value in [0, n-1]. Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Returns true with probability 1/n.
  bool OneIn(uint32_t n) { return Uniform(n) == 0; }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / (1ULL << 53));
  }

  /// Skewed: picks a base in [0, max_log] uniformly, then returns a
  /// uniform value in [0, 2^base - 1]. Favors small numbers.
  uint64_t Skewed(int max_log) {
    return Uniform(1ULL << Uniform(static_cast<uint64_t>(max_log) + 1));
  }

 private:
  uint64_t s_[2];
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_RANDOM_H_
