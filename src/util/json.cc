#include "util/json.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cachekv {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(const std::string& s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = s;
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  for (const auto& m : members_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

JsonValue* JsonValue::GetMutable(const std::string& key) {
  for (auto& m : members_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return m.second;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

JsonValue& JsonValue::Append(JsonValue value) {
  items_.push_back(std::move(value));
  return items_.back();
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    out->append("0");  // JSON has no inf/nan
    return;
  }
  // Integers (the common case for counters) print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.0f", d);
    out->append(buf);
    return;
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6g", d);
  out->append(buf);
}

void Newline(std::string* out, int indent, int depth) {
  if (indent < 0) {
    return;
  }
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::WriteIndented(std::string* out, int indent,
                              int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      AppendNumber(out, number_);
      break;
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); i++) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        items_[i].WriteIndented(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); i++) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        out->append(indent < 0 ? ":" : ": ");
        members_[i].second.WriteIndented(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

void JsonValue::Write(std::string* out, int indent) const {
  WriteIndented(out, indent, 0);
  if (indent >= 0) {
    out->push_back('\n');
  }
}

std::string JsonValue::ToString(int indent) const {
  std::string out;
  Write(&out, indent);
  return out;
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void SkipSpace() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                       *p == '\r')) {
      p++;
    }
  }

  bool Consume(char c) {
    if (p < end && *p == c) {
      p++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const char* q = p;
    while (*w != '\0') {
      if (q >= end || *q != *w) {
        return false;
      }
      q++;
      w++;
    }
    p = q;
    return true;
  }

  Status Fail(const char* what) {
    return Status::Corruption(std::string("json parse error: ") + what);
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) {
        return Fail("truncated escape");
      }
      char e = *p++;
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end - p < 4) {
            return Fail("truncated \\u escape");
          }
          char hex[5] = {p[0], p[1], p[2], p[3], '\0'};
          unsigned code = static_cast<unsigned>(strtoul(hex, nullptr, 16));
          p += 4;
          // Metric names and figure ids are ASCII; anything else is
          // replaced rather than UTF-8 encoded.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    if (!Consume('"')) {
      return Fail("unterminated string");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 64) {
      return Fail("nesting too deep");
    }
    SkipSpace();
    if (p >= end) {
      return Fail("unexpected end of input");
    }
    if (*p == '{') {
      p++;
      *out = JsonValue::Object();
      SkipSpace();
      if (Consume('}')) {
        return Status::OK();
      }
      for (;;) {
        SkipSpace();
        std::string key;
        Status s = ParseString(&key);
        if (!s.ok()) {
          return s;
        }
        SkipSpace();
        if (!Consume(':')) {
          return Fail("expected ':'");
        }
        JsonValue member;
        s = ParseValue(&member, depth + 1);
        if (!s.ok()) {
          return s;
        }
        out->Set(key, std::move(member));
        SkipSpace();
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          return Status::OK();
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (*p == '[') {
      p++;
      *out = JsonValue::Array();
      SkipSpace();
      if (Consume(']')) {
        return Status::OK();
      }
      for (;;) {
        JsonValue item;
        Status s = ParseValue(&item, depth + 1);
        if (!s.ok()) {
          return s;
        }
        out->Append(std::move(item));
        SkipSpace();
        if (Consume(',')) {
          continue;
        }
        if (Consume(']')) {
          return Status::OK();
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (*p == '"') {
      std::string s;
      Status st = ParseString(&s);
      if (!st.ok()) {
        return st;
      }
      *out = JsonValue::Str(s);
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::OK();
    }
    // Number.
    char* num_end = nullptr;
    std::string num_buf(p, static_cast<size_t>(
                               std::min<ptrdiff_t>(end - p, 48)));
    double d = strtod(num_buf.c_str(), &num_end);
    if (num_end == num_buf.c_str()) {
      return Fail("unexpected character");
    }
    p += (num_end - num_buf.c_str());
    *out = JsonValue::Number(d);
    return Status::OK();
  }
};

}  // namespace

Status JsonValue::Parse(const Slice& in, JsonValue* out) {
  Parser parser{in.data(), in.data() + in.size()};
  Status s = parser.ParseValue(out, 0);
  if (!s.ok()) {
    return s;
  }
  parser.SkipSpace();
  if (parser.p != parser.end) {
    return Status::Corruption("json parse error: trailing bytes");
  }
  return Status::OK();
}

}  // namespace cachekv
