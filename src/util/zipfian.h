#ifndef CACHEKV_UTIL_ZIPFIAN_H_
#define CACHEKV_UTIL_ZIPFIAN_H_

#include <cstdint>

#include "util/random.h"

namespace cachekv {

/// Zipfian-distributed integer generator over [0, item_count), following
/// the YCSB implementation (Gray et al.'s "quickly generating
/// billion-record synthetic databases" algorithm). theta defaults to the
/// YCSB value 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t item_count, double theta, uint64_t seed);

  /// Returns the next Zipfian-distributed value in [0, item_count).
  /// Rank 0 is the most popular item.
  uint64_t Next();

  uint64_t item_count() const { return item_count_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t item_count_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

/// ScrambledZipfian spreads the Zipfian head uniformly over the keyspace
/// by hashing the rank, as YCSB does, so hot keys are not clustered.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t item_count, double theta, uint64_t seed)
      : gen_(item_count, theta, seed), item_count_(item_count) {}

  uint64_t Next() { return Mix64(gen_.Next()) % item_count_; }

 private:
  ZipfianGenerator gen_;
  uint64_t item_count_;
};

/// YCSB "latest" distribution: like Zipfian but anchored at the most
/// recently inserted item, so recent inserts are the hottest reads.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t initial_count, double theta, uint64_t seed)
      : gen_(initial_count == 0 ? 1 : initial_count, theta, seed),
        max_(initial_count == 0 ? 1 : initial_count) {}

  /// Records that the keyspace has grown to new_count items.
  void UpdateCount(uint64_t new_count) {
    if (new_count > max_) {
      max_ = new_count;
    }
  }

  /// Returns a key index in [0, current_count) biased towards the latest.
  uint64_t Next() {
    uint64_t off = gen_.Next() % max_;
    return max_ - 1 - off;
  }

 private:
  ZipfianGenerator gen_;
  uint64_t max_;
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_ZIPFIAN_H_
