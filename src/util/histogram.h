#ifndef CACHEKV_UTIL_HISTOGRAM_H_
#define CACHEKV_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cachekv {

/// Histogram accumulates latency samples (in nanoseconds or any unit) into
/// exponentially sized buckets and reports count, mean, percentiles, min
/// and max. Add() is not thread-safe; use one histogram per thread and
/// Merge() afterwards.
class Histogram {
 public:
  Histogram();

  /// Removes all accumulated samples.
  void Clear();

  /// Records one sample.
  void Add(double value);

  /// Merges the samples of `other` into this histogram.
  void Merge(const Histogram& other);

  uint64_t count() const { return num_; }
  double min() const { return num_ == 0 ? 0 : min_; }
  double max() const { return max_; }
  double Average() const;
  double StandardDeviation() const;

  /// Returns the value at percentile p (0 < p <= 100), interpolated
  /// within the containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Multi-line summary with average / percentiles, db_bench style.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 155;
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_HISTOGRAM_H_
