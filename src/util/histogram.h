#ifndef CACHEKV_UTIL_HISTOGRAM_H_
#define CACHEKV_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cachekv {

/// Histogram accumulates latency samples (in nanoseconds or any unit) into
/// exponentially sized buckets and reports count, mean, percentiles, min
/// and max.
///
/// Thread-safety contract: Add() is not thread-safe — each histogram has
/// at most ONE writer thread; use one histogram per thread and Merge()
/// afterwards (or obs::ShardedHistogram, which owns one shard per
/// thread). Debug builds enforce this: the first Add() claims the
/// histogram for the calling thread, and an Add() from any other thread
/// aborts with an assertion until Clear() releases the claim.
class Histogram {
 public:
  static constexpr int kNumBuckets = 155;

  /// Upper bound of bucket b (inclusive).
  static double BucketLimit(int b);

  /// Index of the bucket holding `value`.
  static int BucketFor(double value);

  Histogram();

  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  /// Removes all accumulated samples (and, in debug builds, the writer
  /// claim).
  void Clear();

  /// Records one sample. Single writer thread only; see the class
  /// comment.
  void Add(double value);

  /// Merges the samples of `other` into this histogram. Safe only when
  /// neither histogram has a concurrent writer (benchmarks merge after
  /// joining their worker threads).
  void Merge(const Histogram& other);

  /// Merges raw shard state: per-bucket counts plus the moment sums.
  /// `bucket_counts` must have kNumBuckets entries. Used by the metrics
  /// registry to fold its per-thread atomic shards into a plain
  /// histogram without going through Add().
  void MergeRaw(const uint64_t* bucket_counts, double min, double max,
                uint64_t num, double sum, double sum_squares);

  uint64_t count() const { return num_; }
  double min() const { return num_ == 0 ? 0 : min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double Average() const;
  double StandardDeviation() const;

  /// Returns the value at percentile p, interpolated within the
  /// containing bucket and clamped to [min(), max()]. Edge cases are
  /// exact rather than interpolated: an empty histogram returns 0 (the
  /// documented sentinel), p <= 0 returns min(), p >= 100 returns
  /// max(), and a single-point distribution (min() == max()) returns
  /// that sample for every p.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Multi-line summary with average / percentiles, db_bench style.
  std::string ToString() const;

 private:
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
#ifndef NDEBUG
  /// Hash of the thread that first Add()ed since the last Clear(); 0
  /// while unclaimed. Plain (non-atomic) on purpose: it only exists to
  /// trip the assertion in already-racy programs.
  uint64_t writer_tid_ = 0;
#endif
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_HISTOGRAM_H_
