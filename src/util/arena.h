#ifndef CACHEKV_UTIL_ARENA_H_
#define CACHEKV_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cachekv {

/// Arena is a bump allocator for short-lived, same-lifetime objects
/// (skiplist nodes, memtable records). Memory is only reclaimed when the
/// arena is destroyed. Allocate() is not thread-safe; AllocateAligned()
/// supports one writer with concurrent readers of previously returned
/// memory (the LevelDB contract).
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated memory block of "bytes" bytes.
  char* Allocate(size_t bytes);

  /// Allocates memory with the normal alignment guarantees of malloc.
  char* AllocateAligned(size_t bytes);

  /// Returns an estimate of the total memory usage of the arena.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace cachekv

#endif  // CACHEKV_UTIL_ARENA_H_
