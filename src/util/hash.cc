#include "util/hash.h"

#include <cstring>

#include "util/coding.h"

namespace cachekv {

uint32_t Hash(const char* data, size_t n, uint32_t seed) {
  // Similar to murmur hash (LevelDB's util/hash.cc).
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  const uint64_t kPrime = 0x100000001b3ULL;
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= kPrime;
  }
  return Mix64(h);
}

}  // namespace cachekv
