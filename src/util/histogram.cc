#include "util/histogram.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

namespace cachekv {

const double Histogram::kBucketLimit[kNumBuckets] = {
    1,       2,       3,       4,       5,       6,       7,
    8,       9,       10,      12,      14,      16,      18,
    20,      25,      30,      35,      40,      45,      50,
    60,      70,      80,      90,      100,     120,     140,
    160,     180,     200,     250,     300,     350,     400,
    450,     500,     600,     700,     800,     900,     1000,
    1200,    1400,    1600,    1800,    2000,    2500,    3000,
    3500,    4000,    4500,    5000,    6000,    7000,    8000,
    9000,    10000,   12000,   14000,   16000,   18000,   20000,
    25000,   30000,   35000,   40000,   45000,   50000,   60000,
    70000,   80000,   90000,   100000,  120000,  140000,  160000,
    180000,  200000,  250000,  300000,  350000,  400000,  450000,
    500000,  600000,  700000,  800000,  900000,  1000000, 1200000,
    1400000, 1600000, 1800000, 2000000, 2500000, 3000000, 3500000,
    4000000, 4500000, 5000000, 6000000, 7000000, 8000000, 9000000,
    1e7,     1.2e7,   1.4e7,   1.6e7,   1.8e7,   2e7,     2.5e7,
    3e7,     3.5e7,   4e7,     4.5e7,   5e7,     6e7,     7e7,
    8e7,     9e7,     1e8,     1.2e8,   1.4e8,   1.6e8,   1.8e8,
    2e8,     2.5e8,   3e8,     3.5e8,   4e8,     4.5e8,   5e8,
    6e8,     7e8,     8e8,     9e8,     1e9,     1.2e9,   1.4e9,
    1.6e9,   1.8e9,   2e9,     2.5e9,   3e9,     3.5e9,   4e9,
    4.5e9,   5e9,     6e9,     7e9,     8e9,     9e9,     1e10,
    1e200,
};

double Histogram::BucketLimit(int b) { return kBucketLimit[b]; }

int Histogram::BucketFor(double value) {
  // Linear scan is fast for small values which dominate latency samples;
  // use binary search above 1000.
  if (value > kBucketLimit[40]) {
    int lo = 41, hi = kNumBuckets - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (value > kBucketLimit[mid]) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  int b = 0;
  while (b < kNumBuckets - 1 && kBucketLimit[b] < value) {
    b++;
  }
  return b;
}

namespace {

#ifndef NDEBUG
uint64_t SelfTid() {
  uint64_t h = std::hash<std::thread::id>()(std::this_thread::get_id());
  return h == 0 ? 1 : h;
}
#endif

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

Histogram::Histogram(const Histogram& other)
    : min_(other.min_),
      max_(other.max_),
      num_(other.num_),
      sum_(other.sum_),
      sum_squares_(other.sum_squares_),
      buckets_(other.buckets_) {}

Histogram& Histogram::operator=(const Histogram& other) {
  min_ = other.min_;
  max_ = other.max_;
  num_ = other.num_;
  sum_ = other.sum_;
  sum_squares_ = other.sum_squares_;
  buckets_ = other.buckets_;
#ifndef NDEBUG
  writer_tid_ = 0;  // the copy starts unclaimed
#endif
  return *this;
}

void Histogram::Clear() {
  min_ = kBucketLimit[kNumBuckets - 1];
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  for (auto& b : buckets_) {
    b = 0;
  }
#ifndef NDEBUG
  writer_tid_ = 0;
#endif
}

void Histogram::Add(double value) {
#ifndef NDEBUG
  // One writer thread per histogram (see the class comment). Percentile
  // corruption from racing Add()s is silent in release builds, so claim
  // the histogram for the first writer and abort on any other.
  const uint64_t self = SelfTid();
  if (writer_tid_ == 0) {
    writer_tid_ = self;
  }
  assert(writer_tid_ == self &&
         "Histogram::Add called from two threads; use one histogram per "
         "thread (or obs::ShardedHistogram) and Merge()");
#endif
  buckets_[BucketFor(value)] += 1;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int b = 0; b < kNumBuckets; b++) {
    buckets_[b] += other.buckets_[b];
  }
}

void Histogram::MergeRaw(const uint64_t* bucket_counts, double min,
                         double max, uint64_t num, double sum,
                         double sum_squares) {
  if (num == 0) {
    return;
  }
  if (min < min_) min_ = min;
  if (max > max_) max_ = max;
  num_ += num;
  sum_ += sum;
  sum_squares_ += sum_squares;
  for (int b = 0; b < kNumBuckets; b++) {
    buckets_[b] += static_cast<double>(bucket_counts[b]);
  }
}

double Histogram::Average() const {
  if (num_ == 0) return 0;
  return sum_ / static_cast<double>(num_);
}

double Histogram::StandardDeviation() const {
  if (num_ == 0) return 0;
  double n = static_cast<double>(num_);
  double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance <= 0 ? 0 : std::sqrt(variance);
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;  // sentinel: an empty histogram has no samples
  if (p <= 0) return min();
  if (p >= 100) return max_;
  // Single-point distributions (every sample equal, so one bucket with
  // min_ == max_): bucket interpolation would report a point inside the
  // bucket's range rather than the exact sample; short-circuit to it.
  if (min_ == max_) return max_;
  double threshold = static_cast<double>(num_) * (p / 100.0);
  double cumulative = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      double left_point = (b == 0) ? 0 : kBucketLimit[b - 1];
      double right_point = kBucketLimit[b];
      double left_sum = cumulative - buckets_[b];
      double right_sum = cumulative;
      double pos = 0;
      if (right_sum > left_sum) {
        pos = (threshold - left_sum) / (right_sum - left_sum);
      }
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::string r;
  snprintf(buf, sizeof(buf),
           "Count: %llu  Average: %.1f  StdDev: %.1f\n",
           static_cast<unsigned long long>(num_), Average(),
           StandardDeviation());
  r.append(buf);
  snprintf(buf, sizeof(buf),
           "Min: %.1f  Median: %.1f  P95: %.1f  P99: %.1f  Max: %.1f\n",
           min(), Median(), Percentile(95), Percentile(99), max());
  r.append(buf);
  return r;
}

}  // namespace cachekv
