#include "util/status.h"

namespace cachekv {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

std::string Status::ToString() const {
  const char* type = nullptr;
  switch (code_) {
    case kOk:
      return "OK";
    case kNotFound:
      type = "NotFound: ";
      break;
    case kCorruption:
      type = "Corruption: ";
      break;
    case kNotSupported:
      type = "Not supported: ";
      break;
    case kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case kIOError:
      type = "IO error: ";
      break;
    case kBusy:
      type = "Busy: ";
      break;
    case kOutOfSpace:
      type = "Out of space: ";
      break;
  }
  std::string result(type);
  result.append(msg_);
  return result;
}

}  // namespace cachekv
