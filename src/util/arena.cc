#include "util/arena.h"

namespace cachekv {

static const size_t kBlockSize = 4096;

Arena::Arena()
    : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), memory_usage_(0) {}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Object is more than a quarter of our block size. Allocate it
    // separately to avoid wasting too much space in leftover bytes.
    return AllocateNewBlock(bytes);
  }

  // We waste the remaining space in the current block.
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes) {
  const int align = (sizeof(void*) > 8) ? sizeof(void*) : 8;
  static_assert((sizeof(void*) & (sizeof(void*) - 1)) == 0,
                "pointer size should be a power of 2");
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    // AllocateFallback always returns aligned memory.
    result = AllocateFallback(bytes);
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  auto block = std::make_unique<char[]>(block_bytes);
  char* result = block.get();
  blocks_.push_back(std::move(block));
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return result;
}

}  // namespace cachekv
