#ifndef CACHEKV_UTIL_SLICE_H_
#define CACHEKV_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace cachekv {

/// Slice is a non-owning view over a contiguous byte sequence, in the
/// LevelDB/RocksDB idiom. The referenced storage must outlive the Slice.
class Slice {
 public:
  /// Creates an empty slice.
  Slice() : data_(""), size_(0) {}

  /// Creates a slice that refers to d[0, n-1].
  Slice(const char* d, size_t n) : data_(d), size_(n) {}

  /// Creates a slice that refers to the contents of s.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}

  /// Creates a slice that refers to the NUL-terminated string s.
  Slice(const char* s) : data_(s), size_(strlen(s)) {}

  // Intentionally copyable.
  Slice(const Slice&) = default;
  Slice& operator=(const Slice&) = default;

  /// Returns a pointer to the beginning of the referenced data.
  const char* data() const { return data_; }

  /// Returns the length (in bytes) of the referenced data.
  size_t size() const { return size_; }

  /// Returns true iff the length of the referenced data is zero.
  bool empty() const { return size_ == 0; }

  /// Returns the i-th byte of the referenced data. Requires i < size().
  char operator[](size_t i) const {
    assert(i < size());
    return data_[i];
  }

  /// Changes this slice to refer to an empty array.
  void clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drops the first n bytes from this slice. Requires n <= size().
  void remove_prefix(size_t n) {
    assert(n <= size());
    data_ += n;
    size_ -= n;
  }

  /// Returns a string containing a copy of the referenced data.
  std::string ToString() const { return std::string(data_, size_); }

  /// Returns a std::string_view over the referenced data.
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way comparison: <0, ==0, >0 if this is <, ==, > b.
  int compare(const Slice& b) const;

  /// Returns true iff x is a prefix of this slice.
  bool starts_with(const Slice& x) const {
    return (size_ >= x.size_) && (memcmp(data_, x.data_, x.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& x, const Slice& y) {
  return (x.size() == y.size()) &&
         (memcmp(x.data(), y.data(), x.size()) == 0);
}

inline bool operator!=(const Slice& x, const Slice& y) { return !(x == y); }

inline int Slice::compare(const Slice& b) const {
  const size_t min_len = (size_ < b.size_) ? size_ : b.size_;
  int r = memcmp(data_, b.data_, min_len);
  if (r == 0) {
    if (size_ < b.size_) {
      r = -1;
    } else if (size_ > b.size_) {
      r = +1;
    }
  }
  return r;
}

}  // namespace cachekv

#endif  // CACHEKV_UTIL_SLICE_H_
