#include "util/coding.h"

namespace cachekv {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

char* EncodeVarint32(char* dst, uint32_t v) {
  unsigned char* ptr = reinterpret_cast<unsigned char*>(dst);
  static const int kB = 128;
  if (v < (1u << 7)) {
    *(ptr++) = v;
  } else if (v < (1u << 14)) {
    *(ptr++) = v | kB;
    *(ptr++) = v >> 7;
  } else if (v < (1u << 21)) {
    *(ptr++) = v | kB;
    *(ptr++) = (v >> 7) | kB;
    *(ptr++) = v >> 14;
  } else if (v < (1u << 28)) {
    *(ptr++) = v | kB;
    *(ptr++) = (v >> 7) | kB;
    *(ptr++) = (v >> 14) | kB;
    *(ptr++) = v >> 21;
  } else {
    *(ptr++) = v | kB;
    *(ptr++) = (v >> 7) | kB;
    *(ptr++) = (v >> 14) | kB;
    *(ptr++) = (v >> 21) | kB;
    *(ptr++) = v >> 28;
  }
  return reinterpret_cast<char*>(ptr);
}

char* EncodeVarint64(char* dst, uint64_t v) {
  static const unsigned int kB = 128;
  unsigned char* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= kB) {
    *(ptr++) = v | kB;
    v >>= 7;
  }
  *(ptr++) = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

void PutVarint32(std::string* dst, uint32_t v) {
  char buf[5];
  char* ptr = EncodeVarint32(buf, v);
  dst->append(buf, ptr - buf);
}

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  char* ptr = EncodeVarint64(buf, v);
  dst->append(buf, ptr - buf);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 128) {
    v >>= 7;
    len++;
  }
  return len;
}

const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 128) {
      result |= ((byte & 127) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  return GetVarint32PtrInline(p, limit, value);
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) {
    return false;
  }
  *input = Slice(q, limit - q);
  return true;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 128) {
      result |= ((byte & 127) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) {
    return false;
  }
  *input = Slice(q, limit - q);
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (GetVarint32(input, &len) && input->size() >= len) {
    *result = Slice(input->data(), len);
    input->remove_prefix(len);
    return true;
  }
  return false;
}

}  // namespace cachekv
