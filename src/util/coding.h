#ifndef CACHEKV_UTIL_CODING_H_
#define CACHEKV_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace cachekv {

// Little-endian fixed-width encodings and LevelDB-style varints, used by
// the record formats of the MemTables, SSTables and the WAL.

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Encodes value as a varint32 into dst (at most 5 bytes); returns a
/// pointer just past the last written byte.
char* EncodeVarint32(char* dst, uint32_t value);

/// Encodes value as a varint64 into dst (at most 10 bytes); returns a
/// pointer just past the last written byte.
char* EncodeVarint64(char* dst, uint64_t value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint32 length prefix followed by the slice contents.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from *input, advancing it. Returns false on underflow
/// or malformed input.
bool GetVarint32(Slice* input, uint32_t* value);

/// Parses a varint64 from *input, advancing it.
bool GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed slice from *input, advancing it.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Lower-level varint32 parse used by hot paths: parses from [p, limit)
/// and returns the byte after the varint, or nullptr on error.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);

/// Lower-level varint64 parse; see GetVarint32Ptr.
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Returns the number of bytes EncodeVarint32/64 would produce.
int VarintLength(uint64_t v);

// Internal helper for GetVarint32Ptr's slow path.
const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value);

inline const char* GetVarint32PtrInline(const char* p, const char* limit,
                                        uint32_t* value) {
  if (p < limit) {
    uint32_t result = static_cast<unsigned char>(*p);
    if ((result & 128) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}

}  // namespace cachekv

#endif  // CACHEKV_UTIL_CODING_H_
