#include "util/zipfian.h"

#include <cmath>

namespace cachekv {

ZipfianGenerator::ZipfianGenerator(uint64_t item_count, double theta,
                                   uint64_t seed)
    : item_count_(item_count == 0 ? 1 : item_count),
      theta_(theta),
      rng_(seed) {
  zetan_ = Zeta(item_count_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(item_count_),
                         1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // For the item counts used in our benchmarks (<= ~100M) a direct sum is
  // fine; it runs once at generator construction.
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(item_count_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= item_count_) {
    v = item_count_ - 1;
  }
  return v;
}

}  // namespace cachekv
