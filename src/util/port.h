#ifndef CACHEKV_UTIL_PORT_H_
#define CACHEKV_UTIL_PORT_H_

#include <cstddef>
#include <cstdint>

namespace cachekv {

/// Size of a CPU cacheline, the granularity in which dirty data leaves the
/// CPU caches toward the integrated memory controller.
inline constexpr size_t kCacheLineSize = 64;

/// Size of an XPLine, the access granularity of the Optane PMem media.
/// Writes smaller than this trigger read-modify-write inside the DIMM.
inline constexpr size_t kXPLineSize = 256;

inline constexpr uint64_t AlignDown(uint64_t x, uint64_t a) {
  return x & ~(a - 1);
}

inline constexpr uint64_t AlignUp(uint64_t x, uint64_t a) {
  return (x + a - 1) & ~(a - 1);
}

inline constexpr bool IsAligned(uint64_t x, uint64_t a) {
  return (x & (a - 1)) == 0;
}

}  // namespace cachekv

#endif  // CACHEKV_UTIL_PORT_H_
