#ifndef CACHEKV_UTIL_JSON_H_
#define CACHEKV_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Minimal JSON document model used by the observability layer and the
/// benchmark exporters: enough of RFC 8259 to write and re-read the
/// BENCH_<figure>.json reports and metric dumps. Numbers are doubles
/// (the metric values all fit); object member order is preserved so
/// emitted files diff cleanly across runs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(const std::string& s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object access. Get returns nullptr when the member is absent.
  const JsonValue* Get(const std::string& key) const;
  JsonValue* GetMutable(const std::string& key);
  /// Inserts or replaces a member, keeping first-insertion order.
  JsonValue& Set(const std::string& key, JsonValue value);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array append; returns the stored element.
  JsonValue& Append(JsonValue value);

  /// Serializes the value. `indent` >= 0 pretty-prints with that many
  /// spaces per level; -1 emits the compact form.
  void Write(std::string* out, int indent = 2) const;
  std::string ToString(int indent = 2) const;

  /// Parses `in` into *out. The whole input must be one JSON value
  /// (trailing whitespace allowed).
  static Status Parse(const Slice& in, JsonValue* out);

 private:
  void WriteIndented(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace cachekv

#endif  // CACHEKV_UTIL_JSON_H_
