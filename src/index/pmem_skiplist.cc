#include "index/pmem_skiplist.h"

#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace cachekv {

PmemSkipList::PmemSkipList(PmemEnv* env, uint64_t region_offset,
                           uint64_t region_size, FlushMode flush_mode)
    : env_(env),
      region_offset_(region_offset),
      region_size_(region_size),
      flush_mode_(flush_mode),
      head_(region_offset),
      cursor_(region_offset),
      rnd_(0x5eed) {
  Reset();
}

void PmemSkipList::Reset() {
  // Head node: height kMaxHeight, empty key/value, all links null (0).
  // Offset 0 is never a valid node (the head occupies it within the
  // region), so 0 encodes "null".
  cursor_ = region_offset_;
  char header[16 + 8 * kMaxHeight];
  EncodeFixed32(header, kMaxHeight);
  EncodeFixed32(header + 4, 0);
  EncodeFixed32(header + 8, 0);
  EncodeFixed32(header + 12, 0);  // padding keeps the link array 8-aligned
  memset(header + 16, 0, 8 * kMaxHeight);
  env_->Store(cursor_, header, sizeof(header));
  MaybeFlush(cursor_, sizeof(header));
  head_ = cursor_;
  cursor_ += sizeof(header);
  num_entries_ = 0;
}

void PmemSkipList::MaybeFlush(uint64_t offset, uint64_t len) {
  if (flush_mode_ == FlushMode::kFlushEveryWrite) {
    env_->Clwb(offset, len);
    env_->Sfence();
  }
}

PmemSkipList::NodeView PmemSkipList::LoadNode(uint64_t offset) const {
  NodeView node;
  node.offset = offset;
  char header[12];
  env_->Load(offset, header, sizeof(header));
  node.height = DecodeFixed32(header);
  node.key_len = DecodeFixed32(header + 4);
  node.value_len = DecodeFixed32(header + 8);
  assert(node.height >= 1 && node.height <= kMaxHeight);
  return node;
}

uint64_t PmemSkipList::LoadNext(const NodeView& node, int level) const {
  return env_->Load64(node.offset + 16 + 8ull * level);
}

void PmemSkipList::StoreNext(const NodeView& node, int level,
                             uint64_t next) {
  env_->Store64(node.offset + 16 + 8ull * level, next);
}

std::string PmemSkipList::LoadKey(const NodeView& node) const {
  std::string key(node.key_len, '\0');
  env_->Load(node.offset + HeaderSize(node.height), key.data(),
             node.key_len);
  return key;
}

void PmemSkipList::LoadValue(const NodeView& node,
                             std::string* value) const {
  value->resize(node.value_len);
  env_->Load(node.offset + HeaderSize(node.height) + node.key_len,
             value->data(), node.value_len);
}

int PmemSkipList::RandomHeight() {
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  return height;
}

uint64_t PmemSkipList::FindGreaterOrEqual(const Slice& target,
                                          uint64_t* prev) const {
  NodeView x = LoadNode(head_);
  int level = kMaxHeight - 1;
  while (true) {
    uint64_t next_off = LoadNext(x, level);
    bool descend;
    if (next_off == 0) {
      descend = true;
    } else {
      NodeView next = LoadNode(next_off);
      std::string next_key = LoadKey(next);
      descend = (icmp_.Compare(Slice(next_key), target) >= 0);
      if (!descend) {
        x = next;
        continue;
      }
    }
    if (descend) {
      if (prev != nullptr) {
        prev[level] = x.offset;
      }
      if (level == 0) {
        return next_off;
      }
      level--;
    }
  }
}

Status PmemSkipList::Insert(SequenceNumber seq, ValueType type,
                            const Slice& user_key, const Slice& value) {
  std::string internal_key;
  AppendInternalKey(&internal_key, user_key, seq, type);

  const int height = RandomHeight();
  const uint64_t node_size =
      HeaderSize(height) + internal_key.size() + value.size();
  if (cursor_ + node_size > region_offset_ + region_size_) {
    return Status::OutOfSpace("pmem skiplist region full");
  }

  uint64_t prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; i++) prev[i] = head_;
  {
    ScopedNs index_timer(profiler_ != nullptr
                             ? &profiler_->index_update_ns
                             : nullptr);
    FindGreaterOrEqual(Slice(internal_key), prev);
  }

  // Write the node body first, then link bottom-up (the LevelDB order:
  // a reader either sees the node fully linked at a level or not at
  // all).
  const uint64_t node_off = cursor_;
  cursor_ = AlignUp(cursor_ + node_size, 8);
  std::string buf;
  buf.reserve(node_size);
  PutFixed32(&buf, static_cast<uint32_t>(height));
  PutFixed32(&buf, static_cast<uint32_t>(internal_key.size()));
  PutFixed32(&buf, static_cast<uint32_t>(value.size()));
  PutFixed32(&buf, 0);  // padding
  NodeView prev_views[kMaxHeight];
  for (int i = 0; i < height; i++) {
    prev_views[i] = LoadNode(prev[i]);
    uint64_t succ = LoadNext(prev_views[i], i);
    PutFixed64(&buf, succ);
  }
  buf.append(internal_key);
  buf.append(value.data(), value.size());
  {
    ScopedNs append_timer(profiler_ != nullptr ? &profiler_->append_ns
                                               : nullptr);
    env_->Store(node_off, buf.data(), buf.size());
    MaybeFlush(node_off, buf.size());
  }

  NodeView node;
  node.offset = node_off;
  node.height = height;
  {
    ScopedNs index_timer(profiler_ != nullptr
                             ? &profiler_->index_update_ns
                             : nullptr);
    for (int i = 0; i < height; i++) {
      StoreNext(prev_views[i], i, node_off);
      MaybeFlush(prev[i] + 16 + 8ull * i, 8);
    }
  }
  num_entries_++;
  return Status::OK();
}

PmemSkipList::GetResult PmemSkipList::Get(const Slice& user_key,
                                          SequenceNumber snapshot,
                                          std::string* value) const {
  std::string target;
  AppendInternalKey(&target, user_key, snapshot, kValueTypeForSeek);
  uint64_t found = FindGreaterOrEqual(Slice(target), nullptr);
  if (found == 0) {
    return GetResult::kNotFound;
  }
  NodeView node = LoadNode(found);
  std::string key = LoadKey(node);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(Slice(key), &parsed) ||
      parsed.user_key != user_key) {
    return GetResult::kNotFound;
  }
  if (parsed.type == kTypeDeletion) {
    return GetResult::kDeleted;
  }
  LoadValue(node, value);
  return GetResult::kFound;
}

class PmemSkipList::Iter : public Iterator {
 public:
  explicit Iter(const PmemSkipList* list) : list_(list) {}

  bool Valid() const override { return current_ != 0; }

  void SeekToFirst() override {
    NodeView head = list_->LoadNode(list_->head_);
    current_ = list_->LoadNext(head, 0);
    LoadCurrent();
  }

  void Seek(const Slice& target) override {
    current_ = list_->FindGreaterOrEqual(target, nullptr);
    LoadCurrent();
  }

  void Next() override {
    assert(Valid());
    current_ = list_->LoadNext(node_, 0);
    LoadCurrent();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return Status::OK(); }

 private:
  void LoadCurrent() {
    if (current_ == 0) {
      return;
    }
    node_ = list_->LoadNode(current_);
    key_ = list_->LoadKey(node_);
    list_->LoadValue(node_, &value_);
  }

  const PmemSkipList* list_;
  uint64_t current_ = 0;
  NodeView node_;
  std::string key_;
  std::string value_;
};

Iterator* PmemSkipList::NewIterator() const { return new Iter(this); }

}  // namespace cachekv
