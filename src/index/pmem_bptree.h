#ifndef CACHEKV_INDEX_PMEM_BPTREE_H_
#define CACHEKV_INDEX_PMEM_BPTREE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "index/pmem_skiplist.h"  // for FlushMode
#include "pmem/pmem_env.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// PmemBPlusTree is a B+-tree resident in the simulated PMem, modeling
/// SLM-DB's global persistent index that maps user keys to the exact
/// position of their KV pair in the single-level storage. Values are
/// opaque 64-bit locators.
///
/// Keys are stored inline in fixed slots and limited to kMaxKeyLen bytes
/// (the paper's workloads use 16 B keys); longer keys are rejected with
/// NotSupported.
///
/// Thread-safety: external synchronization required.
class PmemBPlusTree {
 public:
  static constexpr size_t kMaxKeyLen = 40;
  static constexpr size_t kNodeSize = 1024;

  /// Builds an empty tree whose nodes are carved from
  /// [region_offset, region_offset + region_size).
  PmemBPlusTree(PmemEnv* env, uint64_t region_offset, uint64_t region_size,
                FlushMode flush_mode);

  PmemBPlusTree(const PmemBPlusTree&) = delete;
  PmemBPlusTree& operator=(const PmemBPlusTree&) = delete;

  /// Inserts or updates the locator for key. When the key already
  /// existed, *replaced is set and *previous receives the old locator.
  Status Insert(const Slice& key, uint64_t locator,
                uint64_t* previous = nullptr, bool* replaced = nullptr);

  /// Looks up the locator for key.
  Status Get(const Slice& key, uint64_t* locator) const;

  /// Removes key, reporting the removed locator via *previous when
  /// given. Underflow is tolerated (no rebalancing on delete; SLM-DB's
  /// GC rebuilds regions wholesale).
  Status Delete(const Slice& key, uint64_t* previous = nullptr);

  /// In-order traversal over all (key, locator) pairs.
  void Scan(const std::function<void(const Slice&, uint64_t)>& fn) const;

  uint64_t NumEntries() const { return num_entries_; }
  uint64_t BytesUsed() const { return cursor_ - region_offset_; }
  int Height() const { return height_; }

 private:
  // Node layout (kNodeSize bytes):
  //   fixed32 is_leaf
  //   fixed32 count
  //   fixed64 next        (leaf: right sibling; internal: leftmost child)
  //   entries: count x { u8 key_len, key[kMaxKeyLen-1], fixed64 value }
  // Leaf entry value = locator. Internal entry value = child covering
  // keys >= entry key (entry keys are the child's smallest key).
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = kMaxKeyLen + 8;
  static constexpr int kMaxEntries =
      static_cast<int>((kNodeSize - kHeaderSize) / kSlotSize);

  struct NodeRef {
    uint64_t offset = 0;
    bool is_leaf = true;
    uint32_t count = 0;
    uint64_t next = 0;
  };

  NodeRef LoadHeader(uint64_t offset) const;
  void StoreHeader(const NodeRef& node);
  std::string LoadSlotKey(uint64_t node_offset, int slot) const;
  uint64_t LoadSlotValue(uint64_t node_offset, int slot) const;
  void StoreSlot(uint64_t node_offset, int slot, const Slice& key,
                 uint64_t value);
  // First slot with key >= target (count if none).
  int LowerBound(const NodeRef& node, const Slice& target) const;

  Status AllocateNode(bool is_leaf, uint64_t* offset);
  // Inserts into the subtree at `node`; on split, returns the new right
  // sibling and its smallest key via *split_off / *split_key.
  Status InsertRecursive(uint64_t node_offset, const Slice& key,
                         uint64_t locator, uint64_t* split_off,
                         std::string* split_key, uint64_t* previous,
                         bool* replaced);
  void MaybeFlush(uint64_t offset, uint64_t len);

  PmemEnv* env_;
  uint64_t region_offset_;
  uint64_t region_size_;
  FlushMode flush_mode_;
  uint64_t cursor_;
  uint64_t root_ = 0;
  int height_ = 1;
  uint64_t num_entries_ = 0;
};

}  // namespace cachekv

#endif  // CACHEKV_INDEX_PMEM_BPTREE_H_
