#ifndef CACHEKV_INDEX_PMEM_SKIPLIST_H_
#define CACHEKV_INDEX_PMEM_SKIPLIST_H_

#include <cstdint>
#include <string>

#include "baselines/write_profiler.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "pmem/pmem_env.h"
#include "util/random.h"
#include "util/status.h"

namespace cachekv {

/// How a structure persists its stores.
enum class FlushMode {
  /// store + clwb + sfence per update (the ADR discipline NoveLSM and
  /// SLM-DB ship with).
  kFlushEveryWrite,
  /// plain stores; rely on the eADR persistent caches (the "-w/o-flush"
  /// baseline variants).
  kNone,
};

/// PmemSkipList is a skiplist whose nodes (keys, values and links) live
/// entirely in the simulated PMem, as in NoveLSM's and SLM-DB's
/// persistent MemTables. Every node visit costs simulated-PMem loads and
/// every insert costs simulated-PMem stores, which is precisely the
/// overhead the paper attributes to the baselines (§II-C, Exp#3).
///
/// Node layout at its 8-aligned region offset:
///   fixed32 height
///   fixed32 key_len      (internal key)
///   fixed32 value_len
///   fixed32 padding
///   fixed64 next[height]
///   key bytes, value bytes
///
/// Thread-safety: external synchronization required (the baselines guard
/// their shared MemTable with a lock, which is observation Ob2/R2).
class PmemSkipList {
 public:
  static constexpr int kMaxHeight = 12;

  /// Uses [region_offset, region_offset + region_size) for nodes.
  PmemSkipList(PmemEnv* env, uint64_t region_offset, uint64_t region_size,
               FlushMode flush_mode);

  PmemSkipList(const PmemSkipList&) = delete;
  PmemSkipList& operator=(const PmemSkipList&) = delete;

  /// Inserts an entry. Fails with OutOfSpace when the region is full.
  Status Insert(SequenceNumber seq, ValueType type, const Slice& user_key,
                const Slice& value);

  /// Looks up the freshest visible entry (see MemTable::GetResult
  /// semantics). kFound fills *value.
  enum class GetResult { kFound, kDeleted, kNotFound };
  GetResult Get(const Slice& user_key, SequenceNumber snapshot,
                std::string* value) const;

  /// Iterator over (internal key, value) pairs; the list must outlive it
  /// and not be mutated while iterating.
  Iterator* NewIterator() const;

  uint64_t BytesUsed() const { return cursor_ - region_offset_; }
  uint64_t BytesFree() const {
    return region_offset_ + region_size_ - cursor_;
  }
  uint64_t NumEntries() const { return num_entries_; }

  /// Logically empties the list (reinitializes the head node).
  void Reset();

  /// Attaches a profiler: Insert() then attributes its time to the
  /// index-update (traversal + link writes) and append (record body
  /// store) buckets of the Fig. 5(b) breakdown.
  void SetProfiler(WriteProfiler* profiler) { profiler_ = profiler; }

 private:
  class Iter;

  struct NodeView {
    uint64_t offset = 0;
    uint32_t height = 0;
    uint32_t key_len = 0;
    uint32_t value_len = 0;
  };

  // 16-byte fixed header (height, key_len, value_len, padding) keeps the
  // link array 8-aligned for atomic 64-bit link updates.
  uint64_t HeaderSize(uint32_t height) const {
    return 16 + 8ull * height;
  }
  NodeView LoadNode(uint64_t offset) const;
  uint64_t LoadNext(const NodeView& node, int level) const;
  void StoreNext(const NodeView& node, int level, uint64_t next);
  std::string LoadKey(const NodeView& node) const;
  void LoadValue(const NodeView& node, std::string* value) const;
  int RandomHeight();

  // Finds the first node >= internal key target; fills prev[] when given.
  uint64_t FindGreaterOrEqual(const Slice& target, uint64_t* prev) const;

  void MaybeFlush(uint64_t offset, uint64_t len);

  PmemEnv* env_;
  uint64_t region_offset_;
  uint64_t region_size_;
  FlushMode flush_mode_;
  uint64_t head_;    // offset of the head node
  uint64_t cursor_;  // bump allocator cursor
  uint64_t num_entries_ = 0;
  Random rnd_;
  InternalKeyComparator icmp_;
  WriteProfiler* profiler_ = nullptr;
};

}  // namespace cachekv

#endif  // CACHEKV_INDEX_PMEM_SKIPLIST_H_
