#ifndef CACHEKV_INDEX_SKIPLIST_H_
#define CACHEKV_INDEX_SKIPLIST_H_

// DRAM skiplist in the LevelDB style. Thread-safety contract:
//
//   Writes require external synchronization (one writer at a time per
//   list). Reads require only a guarantee that the SkipList outlives the
//   reader; they never lock and never block writers.
//
// Invariant (1): allocated nodes are never deleted until the SkipList is
// destroyed. Invariant (2): node contents other than next pointers are
// immutable after linking. Only Insert() modifies the list, and
// release/acquire ordering on the next pointers publishes nodes safely.

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace cachekv {

template <typename Key, class Comparator>
class SkipList {
 public:
  /// Creates a new empty list that uses cmp for ordering keys, and
  /// allocates nodes from arena (which must outlive the list).
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key into the list. Requires: nothing equal to key is
  /// currently in the list, and no concurrent Insert.
  void Insert(const Key& key);

  /// Returns true iff an entry that compares equal to key is in the list.
  bool Contains(const Key& key) const;

  /// Iteration over the contents of a skip list.
  class Iterator {
   public:
    /// Initializes an iterator over the specified list. The returned
    /// iterator is not valid.
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    /// Requires: Valid().
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    /// Advances to the next position. Requires: Valid().
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    /// Retreats to the previous position. Requires: Valid().
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

    /// Advances to the first entry with a key >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrier_Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrier_SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_relaxed);
    }

   private:
    // Array of length equal to the node height; next_[0] is the lowest
    // level link.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const {
    return (compare_(a, b) == 0);
  }

  /// Returns true if key is greater than the data stored in n.
  bool KeyIsAfterNode(const Key& key, const Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  /// Returns the earliest node that comes at or after key; nullptr if
  /// there is none. If prev is non-null, fills prev[level] with a pointer
  /// to the previous node at "level" for every level in [0, kMaxHeight-1].
  const Node* FindGreaterOrEqual(const Key& key, Node** prev) const;

  /// Returns the latest node with a key < key, or head_ if there is none.
  const Node* FindLessThan(const Key& key) const;

  /// Returns the last node in the list, or head_ if the list is empty.
  const Node* FindLast() const;

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;

  // Modified only by Insert(); read racily by readers.
  std::atomic<int> max_height_;

  Random rnd_;
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* const node_memory = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
const typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
const typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    assert(x == head_ || compare_(x->key, key) < 0);
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
const typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key(), kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  const Node* x_const = FindGreaterOrEqual(key, prev);

  // Our data structure does not allow duplicate insertion.
  assert(x_const == nullptr || !Equal(key, x_const->key));
  (void)x_const;

  int height = RandomHeight();
  if (height > max_height_.load(std::memory_order_relaxed)) {
    for (int i = max_height_.load(std::memory_order_relaxed); i < height;
         i++) {
      prev[i] = head_;
    }
    // It is ok to mutate max_height_ without the new node being visible:
    // concurrent readers observing the new level see nullptr from head_,
    // which is handled correctly.
    max_height_.store(height, std::memory_order_relaxed);
  }

  Node* x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
    prev[i]->SetNext(i, x);
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  const Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace cachekv

#endif  // CACHEKV_INDEX_SKIPLIST_H_
