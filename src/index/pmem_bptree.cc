#include "index/pmem_bptree.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace cachekv {

PmemBPlusTree::PmemBPlusTree(PmemEnv* env, uint64_t region_offset,
                             uint64_t region_size, FlushMode flush_mode)
    : env_(env),
      region_offset_(region_offset),
      region_size_(region_size),
      flush_mode_(flush_mode),
      cursor_(region_offset) {
  uint64_t root;
  Status s = AllocateNode(/*is_leaf=*/true, &root);
  assert(s.ok());
  (void)s;
  root_ = root;
}

void PmemBPlusTree::MaybeFlush(uint64_t offset, uint64_t len) {
  if (flush_mode_ == FlushMode::kFlushEveryWrite) {
    env_->Clwb(offset, len);
    env_->Sfence();
  }
}

Status PmemBPlusTree::AllocateNode(bool is_leaf, uint64_t* offset) {
  if (cursor_ + kNodeSize > region_offset_ + region_size_) {
    return Status::OutOfSpace("bptree region full");
  }
  *offset = cursor_;
  cursor_ += kNodeSize;
  NodeRef node;
  node.offset = *offset;
  node.is_leaf = is_leaf;
  node.count = 0;
  node.next = 0;
  StoreHeader(node);
  return Status::OK();
}

PmemBPlusTree::NodeRef PmemBPlusTree::LoadHeader(uint64_t offset) const {
  char buf[kHeaderSize];
  env_->Load(offset, buf, kHeaderSize);
  NodeRef node;
  node.offset = offset;
  node.is_leaf = DecodeFixed32(buf) != 0;
  node.count = DecodeFixed32(buf + 4);
  node.next = DecodeFixed64(buf + 8);
  return node;
}

void PmemBPlusTree::StoreHeader(const NodeRef& node) {
  char buf[kHeaderSize];
  EncodeFixed32(buf, node.is_leaf ? 1 : 0);
  EncodeFixed32(buf + 4, node.count);
  EncodeFixed64(buf + 8, node.next);
  env_->Store(node.offset, buf, kHeaderSize);
  MaybeFlush(node.offset, kHeaderSize);
}

std::string PmemBPlusTree::LoadSlotKey(uint64_t node_offset,
                                       int slot) const {
  char buf[kMaxKeyLen];
  env_->Load(node_offset + kHeaderSize + slot * kSlotSize, buf,
             kMaxKeyLen);
  uint8_t len = static_cast<uint8_t>(buf[0]);
  assert(len < kMaxKeyLen);
  return std::string(buf + 1, len);
}

uint64_t PmemBPlusTree::LoadSlotValue(uint64_t node_offset,
                                      int slot) const {
  return env_->Load64(node_offset + kHeaderSize + slot * kSlotSize +
                      kMaxKeyLen);
}

void PmemBPlusTree::StoreSlot(uint64_t node_offset, int slot,
                              const Slice& key, uint64_t value) {
  char buf[kSlotSize];
  buf[0] = static_cast<char>(key.size());
  memcpy(buf + 1, key.data(), key.size());
  memset(buf + 1 + key.size(), 0, kMaxKeyLen - 1 - key.size());
  EncodeFixed64(buf + kMaxKeyLen, value);
  env_->Store(node_offset + kHeaderSize + slot * kSlotSize, buf,
              kSlotSize);
  MaybeFlush(node_offset + kHeaderSize + slot * kSlotSize, kSlotSize);
}

int PmemBPlusTree::LowerBound(const NodeRef& node,
                              const Slice& target) const {
  int lo = 0, hi = static_cast<int>(node.count);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    std::string k = LoadSlotKey(node.offset, mid);
    if (Slice(k).compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status PmemBPlusTree::Insert(const Slice& key, uint64_t locator,
                             uint64_t* previous, bool* replaced) {
  if (key.size() >= kMaxKeyLen) {
    return Status::NotSupported("bptree keys limited to 39 bytes");
  }
  if (replaced != nullptr) {
    *replaced = false;
  }
  uint64_t split_off = 0;
  std::string split_key;
  Status s = InsertRecursive(root_, key, locator, &split_off, &split_key,
                             previous, replaced);
  if (!s.ok()) {
    return s;
  }
  if (split_off != 0) {
    // Root split: grow the tree.
    uint64_t new_root;
    s = AllocateNode(/*is_leaf=*/false, &new_root);
    if (!s.ok()) {
      return s;
    }
    NodeRef root = LoadHeader(new_root);
    root.is_leaf = false;
    root.count = 1;
    root.next = root_;  // leftmost child
    StoreHeader(root);
    StoreSlot(new_root, 0, Slice(split_key), split_off);
    root_ = new_root;
    height_++;
  }
  return Status::OK();
}

Status PmemBPlusTree::InsertRecursive(uint64_t node_offset,
                                      const Slice& key, uint64_t locator,
                                      uint64_t* split_off,
                                      std::string* split_key,
                                      uint64_t* previous, bool* replaced) {
  *split_off = 0;
  NodeRef node = LoadHeader(node_offset);

  if (!node.is_leaf) {
    int idx = LowerBound(node, key);
    // Child to descend into: entries hold the smallest key of their
    // child; keys < entry[0].key go to the leftmost child (header.next).
    uint64_t child;
    if (idx < static_cast<int>(node.count) &&
        LoadSlotKey(node.offset, idx) == key.ToString()) {
      child = LoadSlotValue(node.offset, idx);
    } else if (idx == 0) {
      child = node.next;
    } else {
      child = LoadSlotValue(node.offset, idx - 1);
    }
    uint64_t child_split = 0;
    std::string child_split_key;
    Status s = InsertRecursive(child, key, locator, &child_split,
                               &child_split_key, previous, replaced);
    if (!s.ok() || child_split == 0) {
      return s;
    }
    // Insert the new child pointer at position `pos`.
    int pos = LowerBound(node, Slice(child_split_key));
    if (static_cast<int>(node.count) < kMaxEntries) {
      for (int i = static_cast<int>(node.count) - 1; i >= pos; i--) {
        StoreSlot(node.offset, i + 1, Slice(LoadSlotKey(node.offset, i)),
                  LoadSlotValue(node.offset, i));
      }
      StoreSlot(node.offset, pos, Slice(child_split_key), child_split);
      node.count++;
      StoreHeader(node);
      return Status::OK();
    }
    // Split this internal node. Gather entries (including the new one).
    std::vector<std::pair<std::string, uint64_t>> entries;
    entries.reserve(node.count + 1);
    for (int i = 0; i < static_cast<int>(node.count); i++) {
      entries.emplace_back(LoadSlotKey(node.offset, i),
                           LoadSlotValue(node.offset, i));
    }
    entries.emplace(entries.begin() + pos, child_split_key, child_split);
    const int mid = static_cast<int>(entries.size()) / 2;
    // entries[mid] is promoted: its key becomes the split key, its child
    // becomes the new right node's leftmost child.
    uint64_t right_off;
    s = AllocateNode(/*is_leaf=*/false, &right_off);
    if (!s.ok()) {
      return s;
    }
    NodeRef right = LoadHeader(right_off);
    right.is_leaf = false;
    right.next = entries[mid].second;
    right.count = static_cast<uint32_t>(entries.size() - mid - 1);
    for (size_t i = mid + 1; i < entries.size(); i++) {
      StoreSlot(right_off, static_cast<int>(i - mid - 1),
                Slice(entries[i].first), entries[i].second);
    }
    StoreHeader(right);
    node.count = static_cast<uint32_t>(mid);
    for (int i = 0; i < mid; i++) {
      StoreSlot(node.offset, i, Slice(entries[i].first),
                entries[i].second);
    }
    StoreHeader(node);
    *split_off = right_off;
    *split_key = entries[mid].first;
    return Status::OK();
  }

  // Leaf.
  int idx = LowerBound(node, key);
  if (idx < static_cast<int>(node.count) &&
      LoadSlotKey(node.offset, idx) == key.ToString()) {
    if (previous != nullptr) {
      *previous = LoadSlotValue(node.offset, idx);
    }
    if (replaced != nullptr) {
      *replaced = true;
    }
    StoreSlot(node.offset, idx, key, locator);  // update in place
    return Status::OK();
  }
  if (static_cast<int>(node.count) < kMaxEntries) {
    for (int i = static_cast<int>(node.count) - 1; i >= idx; i--) {
      StoreSlot(node.offset, i + 1, Slice(LoadSlotKey(node.offset, i)),
                LoadSlotValue(node.offset, i));
    }
    StoreSlot(node.offset, idx, key, locator);
    node.count++;
    StoreHeader(node);
    num_entries_++;
    return Status::OK();
  }
  // Split the leaf.
  std::vector<std::pair<std::string, uint64_t>> entries;
  entries.reserve(node.count + 1);
  for (int i = 0; i < static_cast<int>(node.count); i++) {
    entries.emplace_back(LoadSlotKey(node.offset, i),
                         LoadSlotValue(node.offset, i));
  }
  entries.emplace(entries.begin() + idx, key.ToString(), locator);
  const int mid = static_cast<int>(entries.size()) / 2;
  uint64_t right_off;
  Status s = AllocateNode(/*is_leaf=*/true, &right_off);
  if (!s.ok()) {
    return s;
  }
  NodeRef right = LoadHeader(right_off);
  right.is_leaf = true;
  right.next = node.next;
  right.count = static_cast<uint32_t>(entries.size() - mid);
  for (size_t i = mid; i < entries.size(); i++) {
    StoreSlot(right_off, static_cast<int>(i - mid),
              Slice(entries[i].first), entries[i].second);
  }
  StoreHeader(right);
  node.count = static_cast<uint32_t>(mid);
  node.next = right_off;
  for (int i = 0; i < mid; i++) {
    StoreSlot(node.offset, i, Slice(entries[i].first), entries[i].second);
  }
  StoreHeader(node);
  num_entries_++;
  *split_off = right_off;
  *split_key = entries[mid].first;
  return Status::OK();
}

Status PmemBPlusTree::Get(const Slice& key, uint64_t* locator) const {
  if (key.size() >= kMaxKeyLen) {
    return Status::NotSupported("bptree keys limited to 39 bytes");
  }
  uint64_t offset = root_;
  while (true) {
    NodeRef node = LoadHeader(offset);
    int idx = LowerBound(node, key);
    if (node.is_leaf) {
      if (idx < static_cast<int>(node.count) &&
          LoadSlotKey(node.offset, idx) == key.ToString()) {
        *locator = LoadSlotValue(node.offset, idx);
        return Status::OK();
      }
      return Status::NotFound("key not in bptree");
    }
    if (idx < static_cast<int>(node.count) &&
        LoadSlotKey(node.offset, idx) == key.ToString()) {
      offset = LoadSlotValue(node.offset, idx);
    } else if (idx == 0) {
      offset = node.next;
    } else {
      offset = LoadSlotValue(node.offset, idx - 1);
    }
  }
}

Status PmemBPlusTree::Delete(const Slice& key, uint64_t* previous) {
  if (key.size() >= kMaxKeyLen) {
    return Status::NotSupported("bptree keys limited to 39 bytes");
  }
  // Descend to the leaf holding the key.
  uint64_t offset = root_;
  while (true) {
    NodeRef node = LoadHeader(offset);
    int idx = LowerBound(node, key);
    if (node.is_leaf) {
      if (idx >= static_cast<int>(node.count) ||
          LoadSlotKey(node.offset, idx) != key.ToString()) {
        return Status::NotFound("key not in bptree");
      }
      if (previous != nullptr) {
        *previous = LoadSlotValue(node.offset, idx);
      }
      for (int i = idx; i + 1 < static_cast<int>(node.count); i++) {
        StoreSlot(node.offset, i, Slice(LoadSlotKey(node.offset, i + 1)),
                  LoadSlotValue(node.offset, i + 1));
      }
      node.count--;
      StoreHeader(node);
      num_entries_--;
      return Status::OK();
    }
    if (idx < static_cast<int>(node.count) &&
        LoadSlotKey(node.offset, idx) == key.ToString()) {
      offset = LoadSlotValue(node.offset, idx);
    } else if (idx == 0) {
      offset = node.next;
    } else {
      offset = LoadSlotValue(node.offset, idx - 1);
    }
  }
}

void PmemBPlusTree::Scan(
    const std::function<void(const Slice&, uint64_t)>& fn) const {
  // Walk down to the leftmost leaf, then follow the leaf chain.
  uint64_t offset = root_;
  while (true) {
    NodeRef node = LoadHeader(offset);
    if (node.is_leaf) {
      break;
    }
    offset = node.next;  // leftmost child
  }
  while (offset != 0) {
    NodeRef leaf = LoadHeader(offset);
    for (int i = 0; i < static_cast<int>(leaf.count); i++) {
      std::string k = LoadSlotKey(offset, i);
      fn(Slice(k), LoadSlotValue(offset, i));
    }
    offset = leaf.next;
  }
}

}  // namespace cachekv
