#ifndef CACHEKV_OBS_METRICS_H_
#define CACHEKV_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace cachekv {

class JsonValue;

namespace obs {

/// Monotonic named counter. The memory-order parameters mirror
/// std::atomic so call sites migrated from raw atomics (CacheKVStats)
/// keep compiling unchanged.
class Counter {
 public:
  void fetch_add(uint64_t delta,
                 std::memory_order order = std::memory_order_relaxed) {
    value_.fetch_add(delta, order);
  }
  void Increment(uint64_t delta = 1) { fetch_add(delta); }
  uint64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  uint64_t value() const { return load(); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge (double, so ratios fit too).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // Single logical updater per gauge; a read-modify-write store is
    // enough and stays lock-free on every target.
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Histogram with one shard per writer thread, merged on scrape.
///
/// This is the registry's answer to Histogram's single-writer contract:
/// Record() routes each thread to a shard it alone writes (claimed via a
/// thread-local cache), so bench and DB background threads can never
/// corrupt each other's percentiles, and a scrape can run while writers
/// are live. Shard cells are relaxed atomics — single-writer, so plain
/// increments suffice and concurrent Merged() readers see a consistent-
/// enough view without locks or data races.
class ShardedHistogram {
 public:
  ShardedHistogram();
  ~ShardedHistogram();

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  /// Records one sample into the calling thread's shard.
  void Record(double value);

  /// Sum of all shards. Safe to call while writers are recording.
  Histogram Merged() const;

  uint64_t TotalCount() const;
  double TotalSum() const;

  /// Number of shards ever claimed (== number of distinct writer
  /// threads seen). Test hook for the ownership design.
  int NumShards() const;

  /// Single-writer shard; defined in metrics.cc.
  struct Shard;

 private:
  Shard* LocalShard();

  const uint64_t id_;  // disambiguates reused addresses in TLS caches
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time value of one metric.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  double gauge = 0;
  Histogram histogram;  // merged shards; empty for counters/gauges
};

/// Scrape of a whole registry, in registration order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricValue>> metrics;

  const MetricValue* Find(std::string_view name) const;
  /// Counter value, or 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  /// Merged histogram count, or 0 when absent.
  uint64_t HistogramCount(std::string_view name) const;
  /// Merged histogram sum (for span histograms: total nanoseconds).
  double HistogramSum(std::string_view name) const;

  /// Serializes the snapshot as a JSON object keyed by metric name.
  void ToJson(JsonValue* out) const;
};

/// MetricsRegistry names and owns every counter, gauge and span
/// histogram of one store instance.
///
/// Hot-path reads (GetCounter / GetHistogram on an existing name) are
/// lock-free: the name table is a fixed-capacity open-addressed hash map
/// whose slots are atomically published; lookups are acquire-loads plus
/// a string compare. First-registration of a name takes a mutex.
/// Entries are never removed, so returned pointers stay valid for the
/// registry's lifetime — call sites may cache them.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  ShardedHistogram* GetHistogram(std::string_view name);

  /// Consistent-enough scrape while writers run: counters and histogram
  /// shards are read with relaxed atomics; the set of metrics is the set
  /// registered at the time of the call.
  MetricsSnapshot Snapshot() const;

  /// Appends the snapshot to *out as pretty-printed JSON.
  void DumpJson(std::string* out) const;

 private:
  struct Entry;

  Entry* FindOrCreate(std::string_view name, MetricKind kind);

  static constexpr size_t kTableSize = 1024;  // power of two; fixed

  std::array<std::atomic<Entry*>, kTableSize> table_;
  mutable std::mutex insert_mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// Stage-scoped wall-clock timer: records the elapsed nanoseconds into
/// the span histogram `name` on destruction. Null registry => no-op, so
/// components keep working when observability is not wired up.
class SpanTimer {
 public:
  SpanTimer(MetricsRegistry* registry, std::string_view name)
      : histogram_(registry == nullptr ? nullptr
                                       : registry->GetHistogram(name)) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Ends the span early (idempotent).
  void Stop() {
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
      histogram_ = nullptr;
    }
  }

 private:
  ShardedHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

#define OBS_SPAN_CONCAT_(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_(a, b)

/// Times the rest of the enclosing scope into span histogram `name` of
/// `registry` (which may be null). Example: OBS_SPAN(reg, "flush.copy");
#define OBS_SPAN(registry, name)                        \
  ::cachekv::obs::SpanTimer OBS_SPAN_CONCAT(obs_span_, \
                                            __LINE__)((registry), (name))

}  // namespace obs
}  // namespace cachekv

#endif  // CACHEKV_OBS_METRICS_H_
