#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/json.h"

namespace cachekv {
namespace obs {

namespace {

/// Instance ids disambiguate thread-local shard caches when a destroyed
/// tracer's address is reused by a later instance (same scheme as
/// ShardedHistogram).
std::atomic<uint64_t> g_next_tracer_id{1};

/// Process-wide small integer thread ids for the "tid" field.
std::atomic<uint32_t> g_next_trace_tid{1};

uint32_t CurrentTraceTid() {
  thread_local uint32_t tid = 0;
  if (tid == 0) {
    tid = g_next_trace_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tid;
}

}  // namespace

/// One ring slot. All fields are relaxed atomics guarded by a per-slot
/// sequence stamp (odd while a write is in progress), so a concurrent
/// exporter can detect and skip a slot that is being overwritten
/// without data races. The single writer never contends with itself.
struct Slot {
  std::atomic<uint64_t> stamp{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<char> phase{'X'};
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> dur_ns{0};
  std::atomic<const char*> arg1_name{nullptr};
  std::atomic<uint64_t> arg1{0};
  std::atomic<const char*> arg2_name{nullptr};
  std::atomic<uint64_t> arg2{0};
};

/// Single-writer ring of one emitting thread.
struct Tracer::Shard {
  Shard(size_t capacity, uint32_t tid)
      : tid(tid), capacity(capacity), slots(new Slot[capacity]) {}

  const uint32_t tid;
  const size_t capacity;
  std::unique_ptr<Slot[]> slots;
  /// Total events ever appended; the ring holds the newest
  /// min(head, capacity) of them.
  std::atomic<uint64_t> head{0};

  void Append(const char* name, char phase, uint64_t ts_ns,
              uint64_t dur_ns, const char* arg1_name, uint64_t arg1,
              const char* arg2_name, uint64_t arg2) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h % capacity];
    const uint64_t stamp = s.stamp.load(std::memory_order_relaxed);
    // Odd stamp: write in progress; exporters skip the slot.
    s.stamp.store(stamp + 1, std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.phase.store(phase, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.arg1_name.store(arg1_name, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    s.arg2_name.store(arg2_name, std::memory_order_relaxed);
    s.arg2.store(arg2, std::memory_order_relaxed);
    s.stamp.store(stamp + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }
};

namespace {

struct TlsShardRef {
  const void* tracer = nullptr;
  uint64_t id = 0;
  Tracer::Shard* shard = nullptr;
};

thread_local std::vector<TlsShardRef> tls_trace_shards;

}  // namespace

Tracer::Tracer(size_t events_per_thread)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      events_per_thread_(events_per_thread == 0 ? 1 : events_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Shard* Tracer::LocalShard() {
  for (TlsShardRef& ref : tls_trace_shards) {
    if (ref.tracer == this && ref.id == id_) {
      return ref.shard;
    }
  }
  auto shard =
      std::make_unique<Shard>(events_per_thread_, CurrentTraceTid());
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.push_back(std::move(shard));
  }
  for (TlsShardRef& ref : tls_trace_shards) {
    if (ref.tracer == this) {
      ref.id = id_;
      ref.shard = raw;
      return raw;
    }
  }
  tls_trace_shards.push_back(TlsShardRef{this, id_, raw});
  return raw;
}

void Tracer::SetThreadName(const char* name) {
  if (!enabled()) {
    return;
  }
  const uint32_t tid = CurrentTraceTid();
  std::lock_guard<std::mutex> lock(names_mu_);
  for (auto& entry : thread_names_) {
    if (entry.first == tid) {
      entry.second = name;
      return;
    }
  }
  thread_names_.emplace_back(tid, name);
}

void Tracer::Instant(const char* name, const char* arg_name,
                     uint64_t arg) {
  if (!enabled()) {
    return;
  }
  LocalShard()->Append(name, 'i', NowNs(), 0, arg_name, arg, nullptr, 0);
}

void Tracer::Complete(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                      const char* arg1_name, uint64_t arg1,
                      const char* arg2_name, uint64_t arg2) {
  if (!enabled()) {
    return;
  }
  LocalShard()->Append(name, 'X', ts_ns, dur_ns, arg1_name, arg1,
                       arg2_name, arg2);
}

uint64_t Tracer::RetainedEvents() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += std::min<uint64_t>(
        shard->head.load(std::memory_order_acquire), shard->capacity);
  }
  return total;
}

uint64_t Tracer::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const uint64_t head = shard->head.load(std::memory_order_acquire);
    if (head > shard->capacity) {
      total += head - shard->capacity;
    }
  }
  return total;
}

void Tracer::ExportJson(JsonValue* events, int pid,
                        const std::string& process_name) const {
  const double kPid = static_cast<double>(pid);
  if (!process_name.empty()) {
    JsonValue meta = JsonValue::Object();
    meta.Set("name", JsonValue::Str("process_name"));
    meta.Set("ph", JsonValue::Str("M"));
    meta.Set("pid", JsonValue::Number(kPid));
    meta.Set("tid", JsonValue::Number(0));
    JsonValue args = JsonValue::Object();
    args.Set("name", JsonValue::Str(process_name));
    meta.Set("args", std::move(args));
    events->Append(std::move(meta));
  }
  {
    std::lock_guard<std::mutex> lock(names_mu_);
    for (const auto& [tid, name] : thread_names_) {
      JsonValue meta = JsonValue::Object();
      meta.Set("name", JsonValue::Str("thread_name"));
      meta.Set("ph", JsonValue::Str("M"));
      meta.Set("pid", JsonValue::Number(kPid));
      meta.Set("tid", JsonValue::Number(static_cast<double>(tid)));
      JsonValue args = JsonValue::Object();
      args.Set("name", JsonValue::Str(name));
      meta.Set("args", std::move(args));
      events->Append(std::move(meta));
    }
  }

  std::lock_guard<std::mutex> lock(shards_mu_);
  for (const auto& shard : shards_) {
    const uint64_t head = shard->head.load(std::memory_order_acquire);
    const uint64_t window = std::min<uint64_t>(head, shard->capacity);
    const uint64_t dropped = head - window;
    for (uint64_t i = head - window; i < head; i++) {
      const Slot& slot = shard->slots[i % shard->capacity];
      const uint64_t stamp_before =
          slot.stamp.load(std::memory_order_acquire);
      if (stamp_before % 2 != 0) {
        continue;  // mid-overwrite by a live writer
      }
      const char* name = slot.name.load(std::memory_order_relaxed);
      const char phase = slot.phase.load(std::memory_order_relaxed);
      const uint64_t ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      const uint64_t dur_ns =
          slot.dur_ns.load(std::memory_order_relaxed);
      const char* a1n = slot.arg1_name.load(std::memory_order_relaxed);
      const uint64_t a1 = slot.arg1.load(std::memory_order_relaxed);
      const char* a2n = slot.arg2_name.load(std::memory_order_relaxed);
      const uint64_t a2 = slot.arg2.load(std::memory_order_relaxed);
      if (slot.stamp.load(std::memory_order_acquire) != stamp_before ||
          name == nullptr) {
        continue;  // overwritten while we read it
      }
      JsonValue event = JsonValue::Object();
      event.Set("name", JsonValue::Str(name));
      event.Set("ph", JsonValue::Str(std::string(1, phase)));
      event.Set("ts", JsonValue::Number(ts_ns / 1000.0));
      if (phase == 'X') {
        event.Set("dur", JsonValue::Number(dur_ns / 1000.0));
      }
      event.Set("pid", JsonValue::Number(kPid));
      event.Set("tid",
                JsonValue::Number(static_cast<double>(shard->tid)));
      if (a1n != nullptr || a2n != nullptr) {
        JsonValue args = JsonValue::Object();
        if (a1n != nullptr) {
          args.Set(a1n, JsonValue::Number(static_cast<double>(a1)));
        }
        if (a2n != nullptr) {
          args.Set(a2n, JsonValue::Number(static_cast<double>(a2)));
        }
        event.Set("args", std::move(args));
      }
      events->Append(std::move(event));
    }
    if (dropped > 0) {
      JsonValue event = JsonValue::Object();
      event.Set("name", JsonValue::Str("trace.dropped"));
      event.Set("ph", JsonValue::Str("i"));
      event.Set("ts", JsonValue::Number(NowNs() / 1000.0));
      event.Set("pid", JsonValue::Number(kPid));
      event.Set("tid",
                JsonValue::Number(static_cast<double>(shard->tid)));
      JsonValue args = JsonValue::Object();
      args.Set("dropped",
               JsonValue::Number(static_cast<double>(dropped)));
      event.Set("args", std::move(args));
      events->Append(std::move(event));
    }
  }
}

void Tracer::Export(std::string* out) const {
  JsonValue events = JsonValue::Array();
  ExportJson(&events);
  events.Write(out);
}

bool TraceEnabledFromEnv() {
  const char* env = std::getenv("CACHEKV_TRACE");
  if (env == nullptr || env[0] == '\0') {
    return false;
  }
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
         std::strcmp(env, "off") != 0;
}

}  // namespace obs
}  // namespace cachekv
