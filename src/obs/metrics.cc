#include "obs/metrics.h"

#include <cassert>
#include <functional>

#include "util/json.h"

namespace cachekv {
namespace obs {

namespace {

/// Instance ids disambiguate thread-local shard caches when a destroyed
/// histogram's address is reused by a later instance.
std::atomic<uint64_t> g_next_histogram_id{1};

}  // namespace

struct ShardedHistogram::Shard {
  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
  std::atomic<uint64_t> num{0};
  std::atomic<double> min{0};
  std::atomic<double> max{0};
  std::atomic<double> sum{0};
  std::atomic<double> sum_squares{0};
};

namespace {

struct TlsShardRef {
  const void* histogram = nullptr;
  uint64_t id = 0;
  ShardedHistogram::Shard* shard = nullptr;
};

/// Per-thread cache mapping histogram instance -> this thread's shard.
/// A handful of entries per thread in practice; linear scan wins.
thread_local std::vector<TlsShardRef> tls_shards;

}  // namespace

ShardedHistogram::ShardedHistogram()
    : id_(g_next_histogram_id.fetch_add(1, std::memory_order_relaxed)) {}
ShardedHistogram::~ShardedHistogram() = default;

ShardedHistogram::Shard* ShardedHistogram::LocalShard() {
  for (TlsShardRef& ref : tls_shards) {
    if (ref.histogram == this && ref.id == id_) {
      return ref.shard;
    }
  }
  std::unique_ptr<Shard> shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.push_back(std::move(shard));
  }
  // Replace a stale entry for a dead histogram at the same address, if
  // any, else append.
  for (TlsShardRef& ref : tls_shards) {
    if (ref.histogram == this) {
      ref.id = id_;
      ref.shard = raw;
      return raw;
    }
  }
  tls_shards.push_back(TlsShardRef{this, id_, raw});
  return raw;
}

void ShardedHistogram::Record(double value) {
  Shard* s = LocalShard();
  // Single-writer shard: plain load/store pairs on relaxed atomics are
  // race-free and keep concurrent scrapes (Merged) well-defined.
  const int b = Histogram::BucketFor(value);
  s->buckets[b].store(s->buckets[b].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  const uint64_t n = s->num.load(std::memory_order_relaxed);
  if (n == 0 || value < s->min.load(std::memory_order_relaxed)) {
    s->min.store(value, std::memory_order_relaxed);
  }
  if (n == 0 || value > s->max.load(std::memory_order_relaxed)) {
    s->max.store(value, std::memory_order_relaxed);
  }
  s->sum.store(s->sum.load(std::memory_order_relaxed) + value,
               std::memory_order_relaxed);
  s->sum_squares.store(
      s->sum_squares.load(std::memory_order_relaxed) + value * value,
      std::memory_order_relaxed);
  // Publish the sample count last: a concurrent scrape never reports
  // more samples than it can see moments for.
  s->num.store(n + 1, std::memory_order_release);
}

Histogram ShardedHistogram::Merged() const {
  Histogram merged;
  std::lock_guard<std::mutex> lock(shards_mu_);
  uint64_t counts[Histogram::kNumBuckets];
  for (const auto& shard : shards_) {
    const uint64_t n = shard->num.load(std::memory_order_acquire);
    if (n == 0) {
      continue;
    }
    for (int b = 0; b < Histogram::kNumBuckets; b++) {
      counts[b] = shard->buckets[b].load(std::memory_order_relaxed);
    }
    merged.MergeRaw(counts, shard->min.load(std::memory_order_relaxed),
                    shard->max.load(std::memory_order_relaxed), n,
                    shard->sum.load(std::memory_order_relaxed),
                    shard->sum_squares.load(std::memory_order_relaxed));
  }
  return merged;
}

uint64_t ShardedHistogram::TotalCount() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->num.load(std::memory_order_acquire);
  }
  return total;
}

double ShardedHistogram::TotalSum() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  double total = 0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

int ShardedHistogram::NumShards() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return static_cast<int>(shards_.size());
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.first == name) {
      return &m.second;
    }
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const MetricValue* v = Find(name);
  return (v != nullptr && v->kind == MetricKind::kCounter) ? v->counter
                                                           : 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  const MetricValue* v = Find(name);
  return (v != nullptr && v->kind == MetricKind::kGauge) ? v->gauge : 0;
}

uint64_t MetricsSnapshot::HistogramCount(std::string_view name) const {
  const MetricValue* v = Find(name);
  return (v != nullptr && v->kind == MetricKind::kHistogram)
             ? v->histogram.count()
             : 0;
}

double MetricsSnapshot::HistogramSum(std::string_view name) const {
  const MetricValue* v = Find(name);
  return (v != nullptr && v->kind == MetricKind::kHistogram)
             ? v->histogram.sum()
             : 0;
}

void MetricsSnapshot::ToJson(JsonValue* out) const {
  *out = JsonValue::Object();
  for (const auto& [name, value] : metrics) {
    switch (value.kind) {
      case MetricKind::kCounter:
        out->Set(name,
                 JsonValue::Number(static_cast<double>(value.counter)));
        break;
      case MetricKind::kGauge:
        out->Set(name, JsonValue::Number(value.gauge));
        break;
      case MetricKind::kHistogram: {
        JsonValue h = JsonValue::Object();
        const Histogram& hist = value.histogram;
        h.Set("count",
              JsonValue::Number(static_cast<double>(hist.count())));
        h.Set("sum", JsonValue::Number(hist.sum()));
        h.Set("min", JsonValue::Number(hist.min()));
        h.Set("mean", JsonValue::Number(hist.Average()));
        h.Set("p50", JsonValue::Number(hist.Percentile(50)));
        h.Set("p95", JsonValue::Number(hist.Percentile(95)));
        h.Set("p99", JsonValue::Number(hist.Percentile(99)));
        h.Set("max", JsonValue::Number(hist.max()));
        out->Set(name, std::move(h));
        break;
      }
    }
  }
}

struct MetricsRegistry::Entry {
  std::string name;
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<ShardedHistogram> histogram;
};

MetricsRegistry::MetricsRegistry() {
  for (auto& slot : table_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricKind kind) {
  const size_t mask = kTableSize - 1;
  const size_t hash = std::hash<std::string_view>()(name);
  // Lock-free fast path: probe the published slots.
  for (size_t i = 0; i < kTableSize; i++) {
    const size_t slot = (hash + i) & mask;
    Entry* e = table_[slot].load(std::memory_order_acquire);
    if (e == nullptr) {
      break;  // name not registered yet
    }
    if (e->name == name) {
      assert(e->kind == kind && "metric re-registered with another kind");
      return e;
    }
  }
  // Slow path: register under the mutex, re-probing (another thread may
  // have inserted the name between our probe and the lock).
  std::lock_guard<std::mutex> lock(insert_mu_);
  size_t free_slot = kTableSize;
  for (size_t i = 0; i < kTableSize; i++) {
    const size_t slot = (hash + i) & mask;
    Entry* e = table_[slot].load(std::memory_order_relaxed);
    if (e == nullptr) {
      free_slot = slot;
      break;
    }
    if (e->name == name) {
      assert(e->kind == kind && "metric re-registered with another kind");
      return e;
    }
  }
  assert(free_slot != kTableSize && "metrics registry table full");
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name.data(), name.size());
  entry->kind = kind;
  if (kind == MetricKind::kHistogram) {
    entry->histogram = std::make_unique<ShardedHistogram>();
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  table_[free_slot].store(raw, std::memory_order_release);
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return &FindOrCreate(name, MetricKind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return &FindOrCreate(name, MetricKind::kGauge)->gauge;
}

ShardedHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return FindOrCreate(name, MetricKind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // The entry list only grows; the mutex pins its backing storage while
  // we walk it. Values themselves are read with relaxed atomics.
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(insert_mu_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue value;
    value.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        value.counter = entry->counter.load();
        break;
      case MetricKind::kGauge:
        value.gauge = entry->gauge.Value();
        break;
      case MetricKind::kHistogram:
        value.histogram = entry->histogram->Merged();
        break;
    }
    snapshot.metrics.emplace_back(entry->name, std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::DumpJson(std::string* out) const {
  JsonValue json;
  Snapshot().ToJson(&json);
  json.Write(out);
}

}  // namespace obs
}  // namespace cachekv
