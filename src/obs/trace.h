#ifndef CACHEKV_OBS_TRACE_H_
#define CACHEKV_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cachekv {

class JsonValue;

namespace obs {

/// Tracer is a lock-free event recorder for end-to-end timeline
/// debugging (docs/OBSERVABILITY.md): every thread that emits an event
/// claims a private fixed-capacity ring buffer (a shard), appends are
/// single-writer with no allocation or locking, and the whole trace
/// serializes to Chrome trace-event JSON loadable in Perfetto or
/// chrome://tracing.
///
/// Two event kinds exist, matching the trace-event "ph" field:
///   * complete ("X"): a named duration [ts, ts+dur) with up to two
///     integer args (byte counts, key counts, levels, ...);
///   * instant ("i"): a point marker (seals, acquire waits).
///
/// Rings wrap: when a shard overflows, the newest events overwrite the
/// oldest and the overwritten ones are counted as dropped, so a trace
/// always holds the freshest window of activity. Event names and arg
/// names must be string literals (or otherwise outlive the tracer) —
/// only the pointer is stored.
///
/// Disabled tracers (the default) cost one relaxed atomic load per
/// probe. Exporting while writers are live is safe (per-slot sequence
/// stamps detect and skip events that are mid-overwrite), but a trace
/// meant for analysis should be dumped after the store has quiesced.
class Tracer {
 public:
  /// `events_per_thread` is each shard's fixed ring capacity.
  explicit Tracer(size_t events_per_thread = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer's construction (the trace epoch).
  uint64_t NowNs() const;

  /// Registers a display name for the calling thread, emitted as
  /// trace-event metadata. Safe to call whether or not tracing is
  /// enabled (background threads register unconditionally at startup).
  void SetThreadName(const char* name);

  /// Emits an instant event. No-ops when disabled.
  void Instant(const char* name, const char* arg_name = nullptr,
               uint64_t arg = 0);

  /// Emits a complete event covering [ts_ns, ts_ns + dur_ns). Arg slots
  /// with a null name are omitted. No-ops when disabled (but prefer
  /// TraceScope, which skips the clock reads entirely).
  void Complete(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                const char* arg1_name = nullptr, uint64_t arg1 = 0,
                const char* arg2_name = nullptr, uint64_t arg2 = 0);

  /// Events currently held across all shards / lost to ring overflow.
  uint64_t RetainedEvents() const;
  uint64_t DroppedEvents() const;

  /// Appends the retained events to `events` (a JSON array) as Chrome
  /// trace-event objects: {"name","ph","ts","dur","pid","tid","args"},
  /// with "ts"/"dur" in microseconds. Registered thread names and (when
  /// `process_name` is non-empty) the process name are emitted as "M"
  /// metadata events; ring overflow is reported as one
  /// "trace.dropped" instant per overflowed shard.
  void ExportJson(JsonValue* events, int pid = 0,
                  const std::string& process_name = std::string()) const;

  /// Serializes the whole trace as one JSON array (the format Perfetto
  /// and chrome://tracing load directly).
  void Export(std::string* out) const;

  struct Shard;

 private:
  Shard* LocalShard();

  const uint64_t id_;  // disambiguates reused addresses in TLS caches
  const size_t events_per_thread_;
  std::atomic<bool> enabled_{false};
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex names_mu_;
  std::vector<std::pair<uint32_t, const char*>> thread_names_;
};

/// RAII scope emitting one complete event for the enclosing region.
/// Null or disabled tracer => fully inert (no clock reads).
class TraceScope {
 public:
  TraceScope(Tracer* tracer, const char* name) {
    if (tracer != nullptr && tracer->enabled()) {
      tracer_ = tracer;
      name_ = name;
      start_ = tracer->NowNs();
    }
  }

  ~TraceScope() {
    if (tracer_ != nullptr) {
      tracer_->Complete(name_, start_, tracer_->NowNs() - start_,
                        arg1_name_, arg1_, arg2_name_, arg2_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches up to two integer args (first-come, first-stored) to the
  /// event this scope will emit. `name` must be a string literal.
  void AddArg(const char* name, uint64_t value) {
    if (tracer_ == nullptr) {
      return;
    }
    if (arg1_name_ == nullptr) {
      arg1_name_ = name;
      arg1_ = value;
    } else if (arg2_name_ == nullptr) {
      arg2_name_ = name;
      arg2_ = value;
    }
  }

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ = 0;
  const char* arg1_name_ = nullptr;
  uint64_t arg1_ = 0;
  const char* arg2_name_ = nullptr;
  uint64_t arg2_ = 0;
};

/// True when the CACHEKV_TRACE environment variable requests tracing
/// (any value except "", "0", "false", "off").
bool TraceEnabledFromEnv();

}  // namespace obs
}  // namespace cachekv

#endif  // CACHEKV_OBS_TRACE_H_
