#ifndef CACHEKV_OBS_SLOW_LOG_H_
#define CACHEKV_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cachekv {

class JsonValue;

namespace obs {

/// SlowLog is a fixed-size lock-free ring of the most recent requests
/// whose service time exceeded a threshold (docs/OBSERVABILITY.md,
/// "Slow-request log"). The server records one entry per slow request —
/// op, key prefix, owning shard, per-stage latency breakdown, and the
/// queue depth the request saw on arrival — and serves the ring over
/// the wire via the SLOWLOG op, so a tail-latency spike can be
/// attributed to its stage (queueing, cache, DB descent, ...) without a
/// tracer attached.
///
/// Concurrency: writers claim distinct ring indices with one fetch_add
/// and publish through a per-slot sequence stamp (odd while a write is
/// in progress, index-tagged so a reader detects a slot lapped mid
/// read). All fields are relaxed atomics, so recording never locks and
/// a concurrent Snapshot() is race-free; a snapshot taken while writers
/// are live simply skips slots that are mid-overwrite. When the ring
/// wraps, the oldest entries are overwritten (counted as dropped).
///
/// Stage names must be string literals (only the pointer is stored),
/// mirroring the Tracer contract.

/// Upper bound on per-entry stage breakdown slots.
constexpr int kSlowLogMaxStages = 8;
/// Bytes of the key retained per entry (prefix; enough to identify the
/// key pattern without holding arbitrary payloads in the ring).
constexpr int kSlowLogKeyPrefix = 16;

struct SlowLogEntry {
  /// Capture time in nanoseconds on the steady clock of the recording
  /// process (comparable across entries of one SLOWLOG dump, not across
  /// processes).
  uint64_t ts_ns = 0;
  /// Trace id of the request when it was sampled, else 0.
  uint64_t trace_id = 0;
  /// Wire opcode (net::Op) of the request.
  uint8_t op = 0;
  uint32_t shard = 0;
  /// End-to-end service time in microseconds.
  uint64_t total_us = 0;
  /// Requests already decoded and waiting in front of / alongside this
  /// one on its connection when it arrived.
  uint32_t queue_depth = 0;
  uint8_t key_prefix_len = 0;  // bytes valid in key_prefix
  char key_prefix[kSlowLogKeyPrefix] = {0};
  int num_stages = 0;
  struct Stage {
    const char* name = nullptr;  // string literal
    uint64_t us = 0;
  };
  Stage stages[kSlowLogMaxStages];

  void AddStage(const char* name, uint64_t us) {
    if (num_stages < kSlowLogMaxStages) {
      stages[num_stages++] = Stage{name, us};
    }
  }
  void SetKey(const char* data, size_t len);
};

class SlowLog {
 public:
  /// `capacity` is the fixed number of retained entries (>= 1).
  explicit SlowLog(size_t capacity = 128);
  ~SlowLog();

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// Appends one entry; lock-free, safe from any thread.
  void Record(const SlowLogEntry& entry);

  /// Entries ever recorded / lost to ring overwrite.
  uint64_t Captured() const;
  uint64_t Dropped() const;
  size_t capacity() const { return capacity_; }

  /// Copies out the retained entries, newest first, at most `limit`
  /// (0 = all). Safe while writers are recording.
  std::vector<SlowLogEntry> Snapshot(size_t limit = 0) const;

  /// Serializes Snapshot(limit) as a JSON array (the SLOWLOG wire
  /// payload): [{"ts_us","op","shard","total_us","queue_depth","key",
  /// "trace_id","stages":{name:us,...}}, ...], newest first.
  void ToJson(JsonValue* out, size_t limit = 0) const;

  struct Slot;

 private:
  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // total entries ever claimed
};

/// Human-readable op name for a SlowLogEntry::op byte ("get", "put",
/// ...); defined here so the CLI needs no net/ dependency to print a
/// parsed dump.
const char* SlowLogOpName(uint8_t op);

}  // namespace obs
}  // namespace cachekv

#endif  // CACHEKV_OBS_SLOW_LOG_H_
