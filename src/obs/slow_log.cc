#include "obs/slow_log.h"

#include <algorithm>
#include <cstring>

#include "util/json.h"

namespace cachekv {
namespace obs {

void SlowLogEntry::SetKey(const char* data, size_t len) {
  size_t n = std::min(len, static_cast<size_t>(kSlowLogKeyPrefix));
  std::memcpy(key_prefix, data, n);
  key_prefix_len = static_cast<uint8_t>(n);
}

/// One ring slot. Every field is a relaxed atomic so concurrent
/// Record/Snapshot stay race-free under TSan; the stamp is the seqlock:
/// 2*claim+1 while the writer is copying in, 2*claim+2 once published.
/// A reader that sees an odd stamp, or a stamp that changed across its
/// field reads, discards the slot.
struct SlowLog::Slot {
  std::atomic<uint64_t> stamp{0};
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> total_us{0};
  std::atomic<uint32_t> shard{0};
  std::atomic<uint32_t> queue_depth{0};
  std::atomic<uint8_t> op{0};
  std::atomic<uint8_t> key_prefix_len{0};
  // Key prefix packed into two words so the whole slot stays atomic.
  std::atomic<uint64_t> key_lo{0};
  std::atomic<uint64_t> key_hi{0};
  std::atomic<int> num_stages{0};
  std::atomic<const char*> stage_name[kSlowLogMaxStages];
  std::atomic<uint64_t> stage_us[kSlowLogMaxStages];
};

SlowLog::SlowLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

SlowLog::~SlowLog() = default;

namespace {

void PackKey(const char* prefix, uint64_t* lo, uint64_t* hi) {
  uint64_t words[2] = {0, 0};
  std::memcpy(words, prefix, kSlowLogKeyPrefix);
  *lo = words[0];
  *hi = words[1];
}

void UnpackKey(uint64_t lo, uint64_t hi, char* prefix) {
  uint64_t words[2] = {lo, hi};
  std::memcpy(prefix, words, kSlowLogKeyPrefix);
}

}  // namespace

void SlowLog::Record(const SlowLogEntry& entry) {
  uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim % capacity_];
  // Odd stamp: write in progress. acq_rel orders the field stores for
  // readers that observe the final (even) stamp.
  slot.stamp.store(2 * claim + 1, std::memory_order_release);
  slot.ts_ns.store(entry.ts_ns, std::memory_order_relaxed);
  slot.trace_id.store(entry.trace_id, std::memory_order_relaxed);
  slot.total_us.store(entry.total_us, std::memory_order_relaxed);
  slot.shard.store(entry.shard, std::memory_order_relaxed);
  slot.queue_depth.store(entry.queue_depth, std::memory_order_relaxed);
  slot.op.store(entry.op, std::memory_order_relaxed);
  slot.key_prefix_len.store(entry.key_prefix_len, std::memory_order_relaxed);
  uint64_t lo = 0;
  uint64_t hi = 0;
  PackKey(entry.key_prefix, &lo, &hi);
  slot.key_lo.store(lo, std::memory_order_relaxed);
  slot.key_hi.store(hi, std::memory_order_relaxed);
  int stages = std::min(entry.num_stages, kSlowLogMaxStages);
  slot.num_stages.store(stages, std::memory_order_relaxed);
  for (int i = 0; i < stages; i++) {
    slot.stage_name[i].store(entry.stages[i].name, std::memory_order_relaxed);
    slot.stage_us[i].store(entry.stages[i].us, std::memory_order_relaxed);
  }
  slot.stamp.store(2 * claim + 2, std::memory_order_release);
}

uint64_t SlowLog::Captured() const {
  return head_.load(std::memory_order_relaxed);
}

uint64_t SlowLog::Dropped() const {
  uint64_t captured = Captured();
  return captured > capacity_ ? captured - capacity_ : 0;
}

std::vector<SlowLogEntry> SlowLog::Snapshot(size_t limit) const {
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t retained = std::min<uint64_t>(head, capacity_);
  if (limit != 0 && limit < retained) {
    retained = limit;
  }
  std::vector<SlowLogEntry> out;
  out.reserve(retained);
  // Newest first: walk back from head-1.
  for (uint64_t i = 0; i < retained; i++) {
    uint64_t claim = head - 1 - i;
    const Slot& slot = slots_[claim % capacity_];
    uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before != 2 * claim + 2) {
      continue;  // mid-write or already lapped by a newer claim
    }
    SlowLogEntry e;
    e.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    e.total_us = slot.total_us.load(std::memory_order_relaxed);
    e.shard = slot.shard.load(std::memory_order_relaxed);
    e.queue_depth = slot.queue_depth.load(std::memory_order_relaxed);
    e.op = slot.op.load(std::memory_order_relaxed);
    e.key_prefix_len = slot.key_prefix_len.load(std::memory_order_relaxed);
    if (e.key_prefix_len > kSlowLogKeyPrefix) {
      e.key_prefix_len = kSlowLogKeyPrefix;
    }
    UnpackKey(slot.key_lo.load(std::memory_order_relaxed),
              slot.key_hi.load(std::memory_order_relaxed), e.key_prefix);
    int stages = slot.num_stages.load(std::memory_order_relaxed);
    stages = std::min(std::max(stages, 0), kSlowLogMaxStages);
    for (int s = 0; s < stages; s++) {
      const char* name = slot.stage_name[s].load(std::memory_order_relaxed);
      if (name == nullptr) {
        continue;
      }
      e.AddStage(name, slot.stage_us[s].load(std::memory_order_relaxed));
    }
    // Re-check the stamp: if a writer lapped us mid-copy the fields
    // above may mix two entries — drop the torn read.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != before) {
      continue;
    }
    out.push_back(e);
  }
  return out;
}

void SlowLog::ToJson(JsonValue* out, size_t limit) const {
  *out = JsonValue::Array();
  for (const SlowLogEntry& e : Snapshot(limit)) {
    JsonValue entry = JsonValue::Object();
    entry.Set("ts_us", JsonValue::Number(
                           static_cast<double>(e.ts_ns / 1000)));
    entry.Set("op", JsonValue::Str(SlowLogOpName(e.op)));
    entry.Set("shard", JsonValue::Number(e.shard));
    entry.Set("total_us", JsonValue::Number(
                              static_cast<double>(e.total_us)));
    entry.Set("queue_depth", JsonValue::Number(e.queue_depth));
    // Key prefixes may hold arbitrary bytes; escape non-printables so
    // the JSON stays valid.
    std::string key;
    key.reserve(e.key_prefix_len);
    for (int i = 0; i < e.key_prefix_len; i++) {
      char c = e.key_prefix[i];
      if (c >= 0x20 && c < 0x7f) {
        key.push_back(c);
      } else {
        static const char kHex[] = "0123456789abcdef";
        key.push_back('\\');
        key.push_back('x');
        key.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
        key.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
      }
    }
    entry.Set("key", JsonValue::Str(key));
    if (e.trace_id != 0) {
      entry.Set("trace_id", JsonValue::Number(
                                static_cast<double>(e.trace_id)));
    }
    JsonValue stages = JsonValue::Object();
    for (int s = 0; s < e.num_stages; s++) {
      stages.Set(e.stages[s].name,
                 JsonValue::Number(static_cast<double>(e.stages[s].us)));
    }
    entry.Set("stages", std::move(stages));
    out->Append(std::move(entry));
  }
}

const char* SlowLogOpName(uint8_t op) {
  switch (op) {
    case 1:
      return "get";
    case 2:
      return "put";
    case 3:
      return "del";
    case 4:
      return "multiput";
    case 5:
      return "scan";
    case 6:
      return "stats";
    case 7:
      return "ping";
    case 8:
      return "shardmap";
    case 9:
      return "slowlog";
    case 10:
      return "metricsprom";
    case 255:
      return "batch";
    default:
      return "unknown";
  }
}

}  // namespace obs
}  // namespace cachekv
