#ifndef CACHEKV_OBS_PROM_H_
#define CACHEKV_OBS_PROM_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cachekv {
namespace obs {

/// Prometheus text exposition (docs/OBSERVABILITY.md, "Prometheus
/// exposition") over one MetricsSnapshot per shard.
///
/// Mapping:
///   * metric names are sanitized ('.' and other non-[a-zA-Z0-9_] bytes
///     become '_') and prefixed "cachekv_";
///   * every series carries a shard="<index>" label, so a multi-shard
///     server exports per-shard balance directly (single-shard servers
///     label shard="0");
///   * counters export as-is (counter), gauges as gauge;
///   * histograms export as summaries: {quantile="0.5"|"0.95"|"0.99"}
///     series plus _sum (in the histogram's native unit — nanoseconds
///     for span histograms) and _count. Quantile series are omitted
///     while the histogram is empty (a summary with no observations has
///     no meaningful quantiles), _sum/_count always export.
///
/// `# TYPE` / `# HELP` lines appear exactly once per metric family even
/// when several shards export the same name; series order is stable
/// (families in first-seen registration order, shards ascending).
std::string RenderPrometheus(
    const std::vector<MetricsSnapshot>& shard_snapshots);

/// One-shard convenience wrapper.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// "cachekv_" + `name` with every byte outside [a-zA-Z0-9_] replaced by
/// '_'. Exposed for tests and for tools that need to predict series
/// names.
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace cachekv

#endif  // CACHEKV_OBS_PROM_H_
