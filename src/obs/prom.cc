#include "obs/prom.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace cachekv {
namespace obs {

namespace {

const char* KindString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

/// Formats a double the way Prometheus expects: integral values without
/// a fractional part, everything else with enough precision to round-
/// trip.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

struct Series {
  std::string labels;  // rendered {…} including shard label
  std::string value;
  std::string suffix;  // "", "_sum", "_count"
};

struct Family {
  MetricKind kind = MetricKind::kCounter;
  std::vector<Series> series;
};

void AppendShardSeries(Family* family, const MetricValue& value,
                       size_t shard) {
  std::string shard_label = "shard=\"" + std::to_string(shard) + "\"";
  switch (value.kind) {
    case MetricKind::kCounter:
      family->series.push_back(
          {"{" + shard_label + "}",
           FormatValue(static_cast<double>(value.counter)), ""});
      break;
    case MetricKind::kGauge:
      family->series.push_back(
          {"{" + shard_label + "}", FormatValue(value.gauge), ""});
      break;
    case MetricKind::kHistogram: {
      const Histogram& h = value.histogram;
      if (h.count() > 0) {
        // Fixed label strings: FormatValue would render 0.99 with its
        // full binary-double expansion.
        static constexpr struct {
          const char* label;
          double p;
        } kQuantiles[] = {{"0.5", 50.0}, {"0.95", 95.0}, {"0.99", 99.0}};
        for (const auto& q : kQuantiles) {
          std::string labels = "{" + shard_label + ",quantile=\"" +
                               q.label + "\"}";
          family->series.push_back(
              {labels, FormatValue(h.Percentile(q.p)), ""});
        }
      }
      family->series.push_back(
          {"{" + shard_label + "}", FormatValue(h.sum()), "_sum"});
      family->series.push_back(
          {"{" + shard_label + "}",
           FormatValue(static_cast<double>(h.count())), "_count"});
      break;
    }
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "cachekv_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderPrometheus(
    const std::vector<MetricsSnapshot>& shard_snapshots) {
  // Families in first-seen order; distinct raw names may sanitize to
  // the same family name, in which case the first kind wins and later
  // series just join the family (TYPE lines stay unique either way).
  std::vector<std::string> order;
  std::map<std::string, Family> families;
  for (size_t shard = 0; shard < shard_snapshots.size(); shard++) {
    for (const auto& [raw_name, value] : shard_snapshots[shard].metrics) {
      std::string name = PrometheusName(raw_name);
      auto it = families.find(name);
      if (it == families.end()) {
        order.push_back(name);
        it = families.emplace(name, Family{}).first;
        it->second.kind = value.kind;
      }
      AppendShardSeries(&it->second, value, shard);
    }
  }

  std::string out;
  for (const std::string& name : order) {
    const Family& family = families[name];
    out += "# TYPE " + name + " " + KindString(family.kind) + "\n";
    for (const Series& s : family.series) {
      out += name + s.suffix + s.labels + " " + s.value + "\n";
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  return RenderPrometheus(std::vector<MetricsSnapshot>{snapshot});
}

}  // namespace obs
}  // namespace cachekv
