#ifndef CACHEKV_VLOG_VLOG_GC_H_
#define CACHEKV_VLOG_VLOG_GC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/slice.h"
#include "util/status.h"
#include "vlog/value_log.h"
#include "vlog/value_pointer.h"

namespace cachekv {

/// Liveness-driven garbage collector for the value log.
///
/// Flush and compaction report dead pointer bytes per segment as they
/// drop superseded versions (ValueLog::AddDeadBytes); once a sealed
/// segment's dead ratio crosses `dead_ratio`, a background pass replays
/// it and re-inserts every still-live value through the store's normal
/// write path (the relocate callback, which re-appends the value under a
/// fresh sequence number and commits a new pointer). Only after every
/// live record has been relocated is the segment unlinked — a pass that
/// fails anywhere simply keeps the segment and retries later, so crash
/// or error can never lose an acked value.
class VlogGc {
 public:
  /// Probes the index for `key`: when the freshest committed version is
  /// exactly `old_ptr`, re-appends `value` under a new sequence and
  /// commits the relocated pointer, setting *relocated = true. Any other
  /// freshest version means the record is dead (*relocated = false).
  /// `seq` is the record's original sequence number. *snapshot_pinned is
  /// set when a pinned snapshot (docs/SNAPSHOTS.md) still resolves the
  /// OLD pointer — whether the record was relocated or is dead at
  /// latest — in which case the segment must not be unlinked yet.
  using RelocateFn = std::function<Status(
      SequenceNumber seq, const Slice& key, const ValuePointer& old_ptr,
      const Slice& value, bool* relocated, bool* snapshot_pinned)>;

  VlogGc(ValueLog* vlog, obs::MetricsRegistry* metrics,
         RelocateFn relocate, double dead_ratio, uint64_t interval_ms);
  ~VlogGc();

  VlogGc(const VlogGc&) = delete;
  VlogGc& operator=(const VlogGc&) = delete;

  void Start();
  void Stop();

  /// One synchronous pass: pick a victim, relocate, unlink. Returns OK
  /// when there was no victim. Exposed for tests and drains.
  Status CollectOnce();

 private:
  void ThreadLoop();

  ValueLog* const vlog_;
  obs::MetricsRegistry* const metrics_;
  const RelocateFn relocate_;
  const double dead_ratio_;
  const uint64_t interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace cachekv

#endif  // CACHEKV_VLOG_VLOG_GC_H_
