#ifndef CACHEKV_VLOG_VALUE_LOG_H_
#define CACHEKV_VLOG_VALUE_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "lsm/dbformat.h"
#include "obs/metrics.h"
#include "pmem/pmem_env.h"
#include "util/slice.h"
#include "util/status.h"
#include "vlog/value_pointer.h"

namespace cachekv {

/// Append-only persistent value log (WiscKey-style key–value separation).
///
/// Large values are written here once, durably, and the LSM carries only a
/// 16-byte ValuePointer under type kTypeValuePointer. The log is a chain
/// of fixed-size PMem segments; each record is CRC-framed and self-
/// describing (sequence + user key + value), so a segment can be garbage-
/// collected by probing the index for each record's liveness and
/// re-inserting the survivors through the normal write path.
///
/// Record framing inside a segment:
///   fixed32 crc        -- WalCrc over the payload
///   fixed32 payload_len  (0 => end-of-segment terminator)
///   payload:
///     fixed64 packed   -- (sequence << 8) | kTypeValue
///     varint32 key_len
///     key bytes
///     value bytes
/// Every append non-temporally stores the frame plus a zeroed terminator
/// header behind it and fences before the caller may commit the pointer,
/// so recovery replay (scan frames until terminator or CRC mismatch)
/// never resurrects a value whose pointer could have been acked.
///
/// Segment metadata lives in an A/B epoch+CRC registry slot pair in the
/// PMem meta area (MetaLayout::VlogRegistryBase), persisted on segment
/// create/seal/unlink. The registry stores a committed scan hint per
/// segment; the true head is recovered by replaying frames past it.
///
/// Concurrency: appends serialize on an internal mutex. Reads are
/// lock-free against appends — they pin the segment via shared_ptr and
/// detect a concurrently recycled segment by its `unlinked` flag plus the
/// frame CRC, returning NotFound("vlog segment recycled") so the caller
/// re-probes the index (GC commits the relocated pointer before it
/// unlinks, so the retry always converges). Long-lived scans call
/// PinSegments() to block Unlink for the iterator's lifetime.
class ValueLog {
 public:
  ValueLog(PmemEnv* env, obs::MetricsRegistry* metrics,
           uint64_t registry_base, uint64_t registry_slot_size,
           uint64_t segment_bytes);
  ~ValueLog();

  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  /// Fresh store: writes an empty registry (epoch advances past whatever
  /// a previous incarnation left in the slots).
  Status Format();

  /// Crash recovery: adopts the newer valid registry slot, re-reserves
  /// every segment region from the allocator, and replays the tail of
  /// the active segment (torn frames are truncated by rewriting the
  /// terminator at the last valid head).
  Status Recover();

  /// Durably appends one record and fills *ptr. The record is persistent
  /// (NtStore + Sfence) before this returns OK; callers must only then
  /// commit the pointer, so an acked key can never dangle. Thread-safe.
  Status Append(SequenceNumber seq, const Slice& key, const Slice& value,
                ValuePointer* ptr);

  /// Resolves a pointer previously returned by Append. `user_key` is the
  /// key the pointer was committed under; the decoded record must carry
  /// the same key, which catches a recycled region that happens to hold
  /// a different valid frame. Returns NotFound("vlog segment recycled")
  /// when GC unlinked the segment (the caller re-probes the index for
  /// the relocated pointer) and Corruption on a CRC/framing/key mismatch
  /// of a still-linked segment.
  Status Read(const ValuePointer& ptr, const Slice& user_key,
              std::string* value) const;

  /// True when one record of this shape fits a segment.
  bool Fits(size_t key_len, size_t value_len) const;

  /// Bytes one record occupies in its segment (framing included).
  static uint64_t RecordFootprint(size_t key_len, size_t value_len);

  /// Liveness feedback from flush/compaction: the pointed-to record was
  /// superseded or deleted, so its footprint is reclaimable. Idempotent
  /// per dropped version (each internal-key version is dropped exactly
  /// once by the LSM); unknown segments are ignored.
  void AddDeadBytes(const ValuePointer& ptr, size_t key_len);

  /// Sealed segment with the highest dead ratio at or above `threshold`,
  /// or 0 when none qualifies.
  uint32_t PickGcVictim(double threshold) const;

  using RecordFn = std::function<Status(
      SequenceNumber seq, const Slice& key, const Slice& value,
      const ValuePointer& ptr)>;

  /// Replays every record of a (sealed) segment in append order.
  Status ForEachRecord(uint32_t file_id, const RecordFn& fn) const;

  /// Frees a fully-relocated segment and persists the registry. Blocks
  /// on PinSegments() holders.
  Status Unlink(uint32_t file_id);

  /// Blocks Unlink while held; used by scan iterators whose merged view
  /// may still reference pointers into any segment.
  std::shared_lock<std::shared_mutex> PinSegments() const {
    return std::shared_lock<std::shared_mutex>(unlink_mu_);
  }

  /// Highest sequence number ever appended (recovered from the registry
  /// plus tail replay). DB::Open folds this into its sequence floor so
  /// orphaned vlog records can never collide with future writes.
  SequenceNumber MaxSequence() const {
    return max_sequence_.load(std::memory_order_acquire);
  }

  size_t NumSegments() const;
  uint64_t PayloadBytes() const;  // appended record footprint still on log
  uint64_t DeadBytes() const;

  /// Refreshes vlog.segments / vlog.space_amp gauges.
  void UpdateGauges() const;

 private:
  struct Segment {
    uint32_t file_id = 0;
    uint64_t base = 0;   // PMem region offset
    uint64_t size = 0;   // region size
    std::atomic<uint64_t> head{0};           // next append offset
    std::atomic<uint64_t> payload_bytes{0};  // record footprint appended
    std::atomic<uint64_t> dead_bytes{0};
    std::atomic<uint64_t> max_sequence{0};
    std::atomic<bool> sealed{false};
    std::atomic<bool> unlinked{false};
  };

  using SegmentPtr = std::shared_ptr<Segment>;

  SegmentPtr FindSegment(uint32_t file_id) const;
  Status NewSegmentLocked();   // append_mu_ held
  Status PersistRegistry();    // snapshots segments, writes A/B slot
  Status DecodeFrame(const Segment& seg, uint64_t offset, uint64_t limit,
                     SequenceNumber* seq, std::string* key,
                     std::string* value, uint64_t* frame_len,
                     bool apply_bitrot) const;
  void WriteTerminator(const Segment& seg, uint64_t offset);

  PmemEnv* const env_;
  obs::MetricsRegistry* const metrics_;
  const uint64_t registry_base_;
  const uint64_t registry_slot_size_;
  const uint64_t segment_bytes_;

  mutable std::mutex map_mu_;  // segments_, next_file_id_, registry epoch
  std::map<uint32_t, SegmentPtr> segments_;
  uint32_t next_file_id_ = 1;
  uint64_t registry_epoch_ = 0;

  std::mutex append_mu_;       // serializes Append / rollover
  SegmentPtr active_;          // written only under append_mu_

  mutable std::shared_mutex unlink_mu_;  // scans shared, Unlink exclusive

  std::atomic<uint64_t> max_sequence_{0};
};

}  // namespace cachekv

#endif  // CACHEKV_VLOG_VALUE_LOG_H_
