#ifndef CACHEKV_VLOG_VALUE_POINTER_H_
#define CACHEKV_VLOG_VALUE_POINTER_H_

#include <cstdint>

#include "util/coding.h"
#include "util/slice.h"

namespace cachekv {

/// Fixed-size locator for a value stored out-of-line in the value log.
/// Entries of type kTypeValuePointer carry an encoded ValuePointer where
/// inline entries carry the user value; the LSM never inspects it, only
/// the final read path (DB::Get / scans) resolves it against the vlog.
struct ValuePointer {
  uint32_t file_id = 0;  // vlog segment id (monotonic, never reused)
  uint64_t offset = 0;   // record start, relative to the segment base
  uint32_t len = 0;      // user-value bytes (excludes framing + key)

  bool operator==(const ValuePointer& other) const {
    return file_id == other.file_id && offset == other.offset &&
           len == other.len;
  }
  bool operator!=(const ValuePointer& other) const {
    return !(*this == other);
  }
};

/// Encoded wire size of a ValuePointer (fixed32 + fixed64 + fixed32).
constexpr size_t kValuePointerSize = 16;

inline void EncodeValuePointer(std::string* dst, const ValuePointer& ptr) {
  PutFixed32(dst, ptr.file_id);
  PutFixed64(dst, ptr.offset);
  PutFixed32(dst, ptr.len);
}

inline bool DecodeValuePointer(const Slice& src, ValuePointer* ptr) {
  if (src.size() != kValuePointerSize) {
    return false;
  }
  ptr->file_id = DecodeFixed32(src.data());
  ptr->offset = DecodeFixed64(src.data() + 4);
  ptr->len = DecodeFixed32(src.data() + 12);
  return true;
}

}  // namespace cachekv

#endif  // CACHEKV_VLOG_VALUE_POINTER_H_
