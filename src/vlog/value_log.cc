#include "vlog/value_log.h"

#include <algorithm>
#include <vector>

#include "fault/fail_point.h"
#include "lsm/wal.h"
#include "util/coding.h"

namespace cachekv {

namespace {

// fixed32 crc + fixed32 payload_len.
constexpr uint64_t kFrameHeaderSize = 8;

}  // namespace

ValueLog::ValueLog(PmemEnv* env, obs::MetricsRegistry* metrics,
                   uint64_t registry_base, uint64_t registry_slot_size,
                   uint64_t segment_bytes)
    : env_(env),
      metrics_(metrics),
      registry_base_(registry_base),
      registry_slot_size_(registry_slot_size),
      segment_bytes_(AlignUp(segment_bytes, kXPLineSize)) {}

ValueLog::~ValueLog() = default;

uint64_t ValueLog::RecordFootprint(size_t key_len, size_t value_len) {
  return kFrameHeaderSize + 8 /* packed seq+type */ +
         VarintLength(key_len) + key_len + value_len;
}

bool ValueLog::Fits(size_t key_len, size_t value_len) const {
  // A record needs its frame plus the trailing zeroed terminator header.
  return RecordFootprint(key_len, value_len) + kFrameHeaderSize <=
         segment_bytes_;
}

ValueLog::SegmentPtr ValueLog::FindSegment(uint32_t file_id) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = segments_.find(file_id);
  return it == segments_.end() ? nullptr : it->second;
}

void ValueLog::WriteTerminator(const Segment& seg, uint64_t offset) {
  char zeros[kFrameHeaderSize] = {0};
  env_->NtStore(seg.base + offset, zeros, sizeof(zeros));
  env_->Sfence();
}

Status ValueLog::PersistRegistry() {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::string body;
  PutFixed64(&body, registry_epoch_ + 1);
  PutFixed32(&body, next_file_id_);
  PutFixed64(&body, max_sequence_.load(std::memory_order_acquire));
  PutFixed32(&body, static_cast<uint32_t>(segments_.size()));
  for (const auto& [id, seg] : segments_) {
    PutFixed32(&body, seg->file_id);
    PutFixed64(&body, seg->base);
    PutFixed64(&body, seg->size);
    PutFixed64(&body, seg->head.load(std::memory_order_acquire));
    PutFixed64(&body, seg->payload_bytes.load(std::memory_order_relaxed));
    PutFixed64(&body, seg->dead_bytes.load(std::memory_order_relaxed));
    PutFixed64(&body, seg->max_sequence.load(std::memory_order_relaxed));
    body.push_back(seg->sealed.load(std::memory_order_relaxed) ? 1 : 0);
  }
  std::string encoded;
  PutFixed32(&encoded, static_cast<uint32_t>(body.size()));
  PutFixed32(&encoded, WalCrc(body.data(), body.size()));
  encoded.append(body);
  if (encoded.size() > registry_slot_size_) {
    return Status::OutOfSpace("vlog registry exceeds its slot");
  }
  const uint64_t slot =
      registry_base_ + ((registry_epoch_ + 1) % 2) * registry_slot_size_;
  env_->NtStore(slot, encoded.data(), encoded.size());
  env_->Sfence();
  registry_epoch_++;
  return Status::OK();
}

Status ValueLog::Format() {
  std::unique_lock<std::mutex> append_lock(append_mu_);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    segments_.clear();
    active_ = nullptr;
    next_file_id_ = 1;
    // Adopt whichever epoch a previous incarnation of this PMem pool
    // left behind, so the empty registry written below outranks it.
    uint64_t stale_epoch = 0;
    for (int slot = 0; slot < 2; slot++) {
      char hdr[8];
      env_->Load(registry_base_ + slot * registry_slot_size_, hdr,
                 sizeof(hdr));
      uint32_t len = DecodeFixed32(hdr);
      uint32_t crc = DecodeFixed32(hdr + 4);
      if (len < 24 || len > registry_slot_size_ - kFrameHeaderSize) {
        continue;
      }
      std::string body(len, '\0');
      env_->Load(registry_base_ + slot * registry_slot_size_ + 8,
                 body.data(), len);
      if (WalCrc(body.data(), len) != crc) {
        continue;
      }
      stale_epoch = std::max(stale_epoch, DecodeFixed64(body.data()));
    }
    registry_epoch_ = stale_epoch;
  }
  return PersistRegistry();
}

Status ValueLog::NewSegmentLocked() {
  uint64_t base = 0;
  Status s = env_->allocator()->Allocate(segment_bytes_, &base);
  if (!s.ok()) {
    return s;
  }
  auto seg = std::make_shared<Segment>();
  seg->base = base;
  seg->size = segment_bytes_;
  // The region may be recycled PMem: plant the terminator before the
  // registry can name this segment, so recovery replay stops at once.
  WriteTerminator(*seg, 0);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    seg->file_id = next_file_id_++;
    segments_[seg->file_id] = seg;
  }
  s = PersistRegistry();
  if (!s.ok()) {
    // The segment must not become active until the registry durably
    // names it: appends into an unregistered segment would ack records
    // that Recover() can never re-adopt. Unpublish and free the region;
    // active_ stays as it was (nullptr or the sealed predecessor, which
    // the rollover check refuses to append into).
    {
      std::lock_guard<std::mutex> lock(map_mu_);
      segments_.erase(seg->file_id);
      next_file_id_--;  // safe: only mutated under append_mu_
    }
    env_->allocator()->Free(base, segment_bytes_);
    return s;
  }
  active_ = seg;
  return Status::OK();
}

Status ValueLog::Append(SequenceNumber seq, const Slice& key,
                        const Slice& value, ValuePointer* ptr) {
  std::lock_guard<std::mutex> lock(append_mu_);

  std::string payload;
  PutFixed64(&payload, PackSequenceAndType(seq, kTypeValue));
  PutVarint32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key.data(), key.size());
  payload.append(value.data(), value.size());

  std::string frame;
  PutFixed32(&frame, WalCrc(payload.data(), payload.size()));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  // Zeroed terminator header behind the record; the next append
  // overwrites it with its own frame.
  frame.append(kFrameHeaderSize, '\0');

  if (frame.size() > segment_bytes_) {
    return Status::InvalidArgument("value exceeds vlog segment size");
  }
  // A sealed segment never accepts another append, even when a smaller
  // record would still fit: sealing makes it GC-eligible, and a failed
  // rollover (allocator pressure) must not let later appends race GC
  // into a segment that may be relocated and freed underneath them.
  if (active_ == nullptr || active_->sealed.load(std::memory_order_acquire) ||
      active_->head.load(std::memory_order_relaxed) + frame.size() >
          active_->size) {
    if (active_ != nullptr) {
      active_->sealed.store(true, std::memory_order_release);
    }
    Status s = NewSegmentLocked();
    if (!s.ok()) {
      return s;
    }
  }
  Segment* seg = active_.get();
  const uint64_t offset = seg->head.load(std::memory_order_relaxed);

  if (fault::AnyActive()) {
    fault::InjectResult inj = fault::Evaluate("vlog.append.torn");
    if (inj.torn) {
      // Torn append: persist only an XPLine-aligned prefix and do not
      // advance the head, so the record is never acked and the next
      // append (or recovery replay, which fails the frame CRC here)
      // overwrites the damage.
      uint64_t keep =
          (frame.size() * (inj.rand % fault::kTearDenom)) / fault::kTearDenom;
      keep -= keep % kXPLineSize;
      if (keep > 0) {
        env_->NtStore(seg->base + offset, frame.data(), keep);
        env_->Sfence();
      }
      return inj.status;
    }
    if (!inj.status.ok()) {
      return inj.status;
    }
  }

  env_->NtStore(seg->base + offset, frame.data(), frame.size());
  env_->Sfence();

  const uint64_t footprint = frame.size() - kFrameHeaderSize;
  seg->payload_bytes.fetch_add(footprint, std::memory_order_relaxed);
  uint64_t prev = seg->max_sequence.load(std::memory_order_relaxed);
  while (seq > prev &&
         !seg->max_sequence.compare_exchange_weak(prev, seq)) {
  }
  prev = max_sequence_.load(std::memory_order_relaxed);
  while (seq > prev && !max_sequence_.compare_exchange_weak(prev, seq)) {
  }
  seg->head.store(offset + footprint, std::memory_order_release);

  ptr->file_id = seg->file_id;
  ptr->offset = offset;
  ptr->len = static_cast<uint32_t>(value.size());
  if (metrics_ != nullptr) {
    metrics_->GetCounter("vlog.appends")->Increment();
    metrics_->GetCounter("vlog.append_bytes")->fetch_add(footprint);
  }
  return Status::OK();
}

Status ValueLog::DecodeFrame(const Segment& seg, uint64_t offset,
                             uint64_t limit, SequenceNumber* seq,
                             std::string* key, std::string* value,
                             uint64_t* frame_len, bool apply_bitrot) const {
  if (offset + kFrameHeaderSize > limit) {
    return Status::Corruption("vlog frame header past segment end");
  }
  char hdr[kFrameHeaderSize];
  env_->Load(seg.base + offset, hdr, sizeof(hdr));
  const uint32_t crc = DecodeFixed32(hdr);
  const uint32_t payload_len = DecodeFixed32(hdr + 4);
  if (payload_len == 0) {
    return Status::NotFound("vlog terminator");
  }
  if (payload_len < 9 ||
      offset + kFrameHeaderSize + payload_len > limit) {
    return Status::Corruption("vlog frame length implausible");
  }
  std::string payload(payload_len, '\0');
  env_->Load(seg.base + offset + kFrameHeaderSize, payload.data(),
             payload_len);
  if (apply_bitrot && fault::AnyActive()) {
    fault::MaybeBitrot("vlog.read.bitrot", payload.data(), payload.size());
  }
  if (WalCrc(payload.data(), payload.size()) != crc) {
    return Status::Corruption("vlog frame crc mismatch");
  }
  Slice in(payload);
  const uint64_t packed = DecodeFixed64(in.data());
  in.remove_prefix(8);
  if ((packed & 0xff) != kTypeValue) {
    return Status::Corruption("vlog frame type invalid");
  }
  uint32_t key_len = 0;
  if (!GetVarint32(&in, &key_len) || in.size() < key_len) {
    return Status::Corruption("vlog frame key truncated");
  }
  *seq = packed >> 8;
  key->assign(in.data(), key_len);
  in.remove_prefix(key_len);
  value->assign(in.data(), in.size());
  *frame_len = kFrameHeaderSize + payload_len;
  return Status::OK();
}

Status ValueLog::Read(const ValuePointer& ptr, const Slice& user_key,
                      std::string* value) const {
  SegmentPtr seg = FindSegment(ptr.file_id);
  if (seg == nullptr) {
    return Status::NotFound("vlog segment recycled");
  }
  SequenceNumber seq = 0;
  std::string key;
  uint64_t frame_len = 0;
  Status s = DecodeFrame(*seg, ptr.offset, seg->size, &seq, &key, value,
                         &frame_len, /*apply_bitrot=*/true);
  if (s.IsNotFound()) {  // terminator where a record should be
    s = Status::Corruption("vlog pointer at terminator");
  }
  if (s.ok() && value->size() != ptr.len) {
    s = Status::Corruption("vlog pointer length mismatch");
  }
  if (s.ok() && Slice(key) != user_key) {
    // A recycled region can hold a different-but-valid frame (e.g. a new
    // segment reused it); CRC alone cannot tell. The record is self-
    // describing, so the key must match the pointer's owner.
    s = Status::Corruption("vlog pointer key mismatch");
  }
  // Re-check AFTER the loads: Unlink sets `unlinked` before the region
  // can be freed and reused, so any read that raced the recycling — even
  // one that decoded a plausible frame — observes the flag here.
  if (seg->unlinked.load(std::memory_order_acquire)) {
    // GC recycled the segment mid-read; the relocated pointer is already
    // committed, so the caller re-probes the index.
    if (metrics_ != nullptr) {
      metrics_->GetCounter("vlog.read_races")->Increment();
    }
    return Status::NotFound("vlog segment recycled");
  }
  return s;
}

void ValueLog::AddDeadBytes(const ValuePointer& ptr, size_t key_len) {
  SegmentPtr seg = FindSegment(ptr.file_id);
  if (seg == nullptr) {
    return;  // already unlinked; nothing left to reclaim
  }
  const uint64_t footprint = RecordFootprint(key_len, ptr.len);
  seg->dead_bytes.fetch_add(footprint, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("vlog.dead_bytes")->fetch_add(footprint);
  }
}

uint32_t ValueLog::PickGcVictim(double threshold) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  uint32_t best = 0;
  double best_ratio = threshold;
  for (const auto& [id, seg] : segments_) {
    if (!seg->sealed.load(std::memory_order_acquire) ||
        seg->unlinked.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t payload =
        seg->payload_bytes.load(std::memory_order_relaxed);
    if (payload == 0) {
      return id;  // empty sealed segment: free it outright
    }
    const double ratio =
        static_cast<double>(
            seg->dead_bytes.load(std::memory_order_relaxed)) /
        static_cast<double>(payload);
    if (ratio >= best_ratio) {
      best = id;
      best_ratio = ratio;
    }
  }
  return best;
}

Status ValueLog::ForEachRecord(uint32_t file_id, const RecordFn& fn) const {
  SegmentPtr seg = FindSegment(file_id);
  if (seg == nullptr) {
    return Status::NotFound("vlog segment not found");
  }
  const uint64_t head = seg->head.load(std::memory_order_acquire);
  uint64_t offset = 0;
  while (offset < head) {
    SequenceNumber seq = 0;
    std::string key, value;
    uint64_t frame_len = 0;
    Status s = DecodeFrame(*seg, offset, head, &seq, &key, &value,
                           &frame_len, /*apply_bitrot=*/false);
    if (s.IsNotFound()) {
      break;  // terminator before head: torn tail already truncated
    }
    if (!s.ok()) {
      return s;
    }
    ValuePointer ptr;
    ptr.file_id = file_id;
    ptr.offset = offset;
    ptr.len = static_cast<uint32_t>(value.size());
    s = fn(seq, Slice(key), Slice(value), ptr);
    if (!s.ok()) {
      return s;
    }
    offset += frame_len;
  }
  return Status::OK();
}

Status ValueLog::Unlink(uint32_t file_id) {
  std::unique_lock<std::shared_mutex> pin(unlink_mu_);
  SegmentPtr seg = FindSegment(file_id);
  if (seg == nullptr) {
    return Status::NotFound("vlog segment not found");
  }
  seg->unlinked.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    segments_.erase(file_id);
  }
  // Drop the segment from the persistent registry before returning its
  // region: once Free() lets the allocator hand the region to someone
  // else, a crash must not lead recovery to re-reserve (and replay) it.
  Status s = PersistRegistry();
  if (!s.ok()) {
    // The old registry — which still names this segment — remains
    // authoritative, so reinstate the in-memory state to match: the next
    // GC pass retries the unlink cleanly instead of leaking the region
    // (and a crash meanwhile recovers the segment as all-dead, not as
    // replayed garbage over a freed region).
    {
      std::lock_guard<std::mutex> lock(map_mu_);
      segments_[file_id] = seg;
    }
    seg->unlinked.store(false, std::memory_order_release);
    return s;
  }
  env_->allocator()->Free(seg->base, seg->size);
  if (metrics_ != nullptr) {
    metrics_->GetCounter("vlog.gc_unlinked")->Increment();
  }
  return Status::OK();
}

Status ValueLog::Recover() {
  std::unique_lock<std::mutex> append_lock(append_mu_);
  struct RecoveredSegment {
    uint32_t file_id;
    uint64_t base, size, committed_head, payload_bytes, dead_bytes,
        max_sequence;
    bool sealed;
  };
  std::vector<RecoveredSegment> chosen;
  bool have_slot = false;
  uint64_t chosen_epoch = 0;
  uint32_t chosen_next_id = 1;
  uint64_t chosen_max_seq = 0;
  for (int slot = 0; slot < 2; slot++) {
    char hdr[8];
    env_->Load(registry_base_ + slot * registry_slot_size_, hdr,
               sizeof(hdr));
    const uint32_t len = DecodeFixed32(hdr);
    const uint32_t crc = DecodeFixed32(hdr + 4);
    if (len < 24 || len > registry_slot_size_ - 8) {
      continue;
    }
    std::string body(len, '\0');
    env_->Load(registry_base_ + slot * registry_slot_size_ + 8, body.data(),
               len);
    if (WalCrc(body.data(), len) != crc) {
      continue;
    }
    const char* p = body.data();
    const uint64_t epoch = DecodeFixed64(p);
    p += 8;
    if (have_slot && epoch <= chosen_epoch) {
      continue;
    }
    const uint32_t next_id = DecodeFixed32(p);
    p += 4;
    const uint64_t max_seq = DecodeFixed64(p);
    p += 8;
    const uint32_t count = DecodeFixed32(p);
    p += 4;
    if (len < 24 + static_cast<uint64_t>(count) * 53) {
      continue;  // truncated body
    }
    std::vector<RecoveredSegment> segs;
    for (uint32_t i = 0; i < count; i++) {
      RecoveredSegment rs;
      rs.file_id = DecodeFixed32(p);
      p += 4;
      rs.base = DecodeFixed64(p);
      p += 8;
      rs.size = DecodeFixed64(p);
      p += 8;
      rs.committed_head = DecodeFixed64(p);
      p += 8;
      rs.payload_bytes = DecodeFixed64(p);
      p += 8;
      rs.dead_bytes = DecodeFixed64(p);
      p += 8;
      rs.max_sequence = DecodeFixed64(p);
      p += 8;
      rs.sealed = (*p++ != 0);
      segs.push_back(rs);
    }
    have_slot = true;
    chosen_epoch = epoch;
    chosen_next_id = next_id;
    chosen_max_seq = max_seq;
    chosen = std::move(segs);
  }

  {
    std::lock_guard<std::mutex> lock(map_mu_);
    segments_.clear();
    active_ = nullptr;
    registry_epoch_ = have_slot ? chosen_epoch : 0;
    next_file_id_ = chosen_next_id;
  }
  max_sequence_.store(chosen_max_seq, std::memory_order_release);
  if (!have_slot) {
    return Status::OK();  // fresh log
  }

  SegmentPtr tail;
  for (const RecoveredSegment& rs : chosen) {
    Status s = env_->allocator()->Reserve(rs.base, rs.size);
    if (!s.ok()) {
      return s;
    }
    auto seg = std::make_shared<Segment>();
    seg->file_id = rs.file_id;
    seg->base = rs.base;
    seg->size = rs.size;
    seg->head.store(rs.committed_head, std::memory_order_release);
    seg->payload_bytes.store(rs.payload_bytes, std::memory_order_relaxed);
    seg->dead_bytes.store(rs.dead_bytes, std::memory_order_relaxed);
    seg->max_sequence.store(rs.max_sequence, std::memory_order_relaxed);
    seg->sealed.store(rs.sealed, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(map_mu_);
      segments_[seg->file_id] = seg;
      if (next_file_id_ <= seg->file_id) {
        next_file_id_ = seg->file_id + 1;
      }
    }
    if (!rs.sealed) {
      tail = seg;
    }

    // Replay frames past the committed scan hint: appends after the last
    // registry persist are durable but unindexed here. Sealed segments
    // persisted their final head, so the loop exits immediately.
    uint64_t offset = seg->head.load(std::memory_order_relaxed);
    while (offset < seg->size) {
      SequenceNumber seq = 0;
      std::string key, value;
      uint64_t frame_len = 0;
      Status fs = DecodeFrame(*seg, offset, seg->size, &seq, &key, &value,
                              &frame_len, /*apply_bitrot=*/false);
      if (!fs.ok()) {
        break;  // terminator, or a torn frame truncated below
      }
      seg->payload_bytes.fetch_add(frame_len, std::memory_order_relaxed);
      uint64_t prev = seg->max_sequence.load(std::memory_order_relaxed);
      if (seq > prev) {
        seg->max_sequence.store(seq, std::memory_order_relaxed);
      }
      prev = max_sequence_.load(std::memory_order_relaxed);
      if (seq > prev) {
        max_sequence_.store(seq, std::memory_order_release);
      }
      offset += frame_len;
    }
    seg->head.store(offset, std::memory_order_release);
    if (offset + kFrameHeaderSize <= seg->size) {
      // Rewrite the terminator: a torn append may have left a garbage
      // frame header here, and replay must stop at this head forever.
      WriteTerminator(*seg, offset);
    }
  }
  active_ = tail;
  // Checkpoint the recovered truth so the next recovery replays nothing.
  return PersistRegistry();
}

size_t ValueLog::NumSegments() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return segments_.size();
}

uint64_t ValueLog::PayloadBytes() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  uint64_t total = 0;
  for (const auto& [id, seg] : segments_) {
    total += seg->payload_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ValueLog::DeadBytes() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  uint64_t total = 0;
  for (const auto& [id, seg] : segments_) {
    total += std::min(seg->dead_bytes.load(std::memory_order_relaxed),
                      seg->payload_bytes.load(std::memory_order_relaxed));
  }
  return total;
}

void ValueLog::UpdateGauges() const {
  if (metrics_ == nullptr) {
    return;
  }
  const uint64_t payload = PayloadBytes();
  const uint64_t dead = DeadBytes();
  const uint64_t live = payload - std::min(dead, payload);
  metrics_->GetGauge("vlog.segments")
      ->Set(static_cast<double>(NumSegments()));
  metrics_->GetGauge("vlog.space_amp")
      ->Set(live == 0 ? 1.0
                      : static_cast<double>(payload) /
                            static_cast<double>(live));
}

}  // namespace cachekv
