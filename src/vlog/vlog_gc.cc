#include "vlog/vlog_gc.h"

#include <chrono>

#include "fault/fail_point.h"

namespace cachekv {

VlogGc::VlogGc(ValueLog* vlog, obs::MetricsRegistry* metrics,
               RelocateFn relocate, double dead_ratio, uint64_t interval_ms)
    : vlog_(vlog),
      metrics_(metrics),
      relocate_(std::move(relocate)),
      dead_ratio_(dead_ratio),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms) {}

VlogGc::~VlogGc() { Stop(); }

void VlogGc::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return;
  }
  started_ = true;
  stop_ = false;
  thread_ = std::thread(&VlogGc::ThreadLoop, this);
}

void VlogGc::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void VlogGc::ThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) {
      break;
    }
    lock.unlock();
    CollectOnce();  // a failed pass keeps the segment; retried next tick
    vlog_->UpdateGauges();
    lock.lock();
  }
}

Status VlogGc::CollectOnce() {
  if (fault::AnyActive()) {
    Status injected = fault::Inject("vlog.gc.drop");
    if (!injected.ok()) {
      return injected;  // pass aborted, victim untouched
    }
  }
  const uint32_t victim = vlog_->PickGcVictim(dead_ratio_);
  if (victim == 0) {
    return Status::OK();
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("vlog.gc_passes")->Increment();
  }
  uint64_t rewrites = 0;
  uint64_t rewrite_bytes = 0;
  bool any_pinned = false;
  Status s = vlog_->ForEachRecord(
      victim, [&](SequenceNumber seq, const Slice& key, const Slice& value,
                  const ValuePointer& ptr) {
        bool relocated = false;
        bool snapshot_pinned = false;
        Status rs =
            relocate_(seq, key, ptr, value, &relocated, &snapshot_pinned);
        if (!rs.ok()) {
          return rs;
        }
        any_pinned = any_pinned || snapshot_pinned;
        if (relocated) {
          rewrites++;
          rewrite_bytes += ValueLog::RecordFootprint(key.size(), value.size());
        }
        return Status::OK();
      });
  if (!s.ok()) {
    return s;  // segment kept; every record will be re-examined next pass
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("vlog.gc_rewrites")->fetch_add(rewrites);
    metrics_->GetCounter("vlog.gc_rewrite_bytes")->fetch_add(rewrite_bytes);
  }
  if (any_pinned) {
    // A pinned snapshot still resolves at least one record in this
    // segment: unlinking would dangle that snapshot's ValuePointer.
    // Keep the segment (relocations already committed are not repeated:
    // the next pass sees the new pointers and finds those records dead)
    // and retry once the pin is released.
    if (metrics_ != nullptr) {
      metrics_->GetCounter("vlog.gc_deferrals")->Increment();
    }
    return Status::OK();
  }
  return vlog_->Unlink(victim);
}

}  // namespace cachekv
