#ifndef CACHEKV_PMEM_PMEM_DEVICE_H_
#define CACHEKV_PMEM_PMEM_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/latency_model.h"
#include "util/port.h"
#include "util/status.h"

namespace cachekv {

/// Hardware-style counters of the simulated Optane PMem DIMMs, mirroring
/// what intel-pmwatch exposes. The paper's Fig. 4 metric ("write hit
/// ratio": fraction of 64 B writes arriving from the CPU that land in an
/// XPLine already open in the on-DIMM write-combining buffer) is computed
/// from these.
struct PmemCounters {
  std::atomic<uint64_t> lines_received{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> xpbuffer_hits{0};
  std::atomic<uint64_t> xpbuffer_misses{0};
  std::atomic<uint64_t> media_bytes_written{0};
  std::atomic<uint64_t> media_bytes_read{0};
  /// Writebacks of partially dirty XPLines which required a
  /// read-modify-write of the 256 B media line.
  std::atomic<uint64_t> rmw_count{0};
  std::atomic<uint64_t> full_line_writebacks{0};
  /// Subset of the received lines that arrived via non-temporal stores
  /// (the copy-based flush path), as opposed to cache evictions / clwb.
  std::atomic<uint64_t> nt_lines_received{0};
  std::atomic<uint64_t> nt_bytes_received{0};
  /// Accesses outside the device range or misaligned writes. The device
  /// drops the write (or zero-fills the read) instead of touching memory
  /// out of bounds; a nonzero count means a software bug upstream.
  std::atomic<uint64_t> oob_accesses{0};

  /// Fraction of received 64 B lines that combined into an open XPLine.
  double WriteHitRatio() const {
    uint64_t total = lines_received.load(std::memory_order_relaxed);
    if (total == 0) return 0.0;
    return static_cast<double>(
               xpbuffer_hits.load(std::memory_order_relaxed)) /
           static_cast<double>(total);
  }

  /// Media bytes written per byte received from the CPU (>= 1.0 means
  /// amplification; 1.0 is the ideal for XPLine-aligned bulk writes).
  double WriteAmplification() const {
    uint64_t recv = bytes_received.load(std::memory_order_relaxed);
    if (recv == 0) return 0.0;
    return static_cast<double>(
               media_bytes_written.load(std::memory_order_relaxed)) /
           static_cast<double>(recv);
  }

  void Reset() {
    lines_received.store(0);
    bytes_received.store(0);
    xpbuffer_hits.store(0);
    xpbuffer_misses.store(0);
    media_bytes_written.store(0);
    media_bytes_read.store(0);
    rmw_count.store(0);
    full_line_writebacks.store(0);
    nt_lines_received.store(0);
    nt_bytes_received.store(0);
    oob_accesses.store(0);
  }
};

/// Configuration of the simulated PMem device.
struct PmemConfig {
  /// Total byte capacity of the flat PMem address space.
  uint64_t capacity = 512ull << 20;
  /// Number of interleaved DIMMs; consecutive 4 KB chunks round-robin
  /// across DIMMs, as in Optane interleaved App Direct mode.
  int num_dimms = 4;
  /// Interleaving granularity.
  uint64_t interleave_bytes = 4096;
  /// XPBuffer (write-combining buffer) slots per DIMM. Real Optane DIMMs
  /// have a ~16 KB buffer, i.e. ~64 XPLines; the default is conservative.
  int xpbuffer_slots = 16;
};

/// PmemDevice simulates the media side of Intel Optane PMem: a flat
/// byte-addressable space whose writes arrive from the CPU in 64 B
/// cachelines, are staged in a per-DIMM write-combining buffer (XPBuffer),
/// and are committed to the 3D-XPoint media in 256 B XPLines. Writes of a
/// partially dirty XPLine incur a read-modify-write, which is the
/// write-amplification mechanism the paper builds on (Feature 1, §II-B).
///
/// The XPBuffer contents are inside the ADR persistence domain, so a
/// simulated power failure never loses them: Crash handling calls
/// DrainAll().
///
/// Thread-safe; each DIMM has its own lock so interleaved traffic
/// parallelizes as on real hardware.
class PmemDevice {
 public:
  PmemDevice(const PmemConfig& config, LatencyModel* latency);
  ~PmemDevice();

  PmemDevice(const PmemDevice&) = delete;
  PmemDevice& operator=(const PmemDevice&) = delete;

  /// Receives one 64 B cacheline at `addr` (must be 64-aligned, in range)
  /// from the CPU side (cache eviction, clwb writeback, or an nt-store).
  /// `non_temporal` marks lines bypassing the cache hierarchy so the
  /// counters can attribute traffic to the streaming-store path.
  void ReceiveLine(uint64_t addr, const char* data,
                   bool non_temporal = false);

  /// Reads `len` bytes at `addr` observing both media and any fresher
  /// bytes still staged in the XPBuffer.
  void Read(uint64_t addr, void* dst, size_t len);

  /// Flushes every XPBuffer slot to media (power-failure semantics: the
  /// buffer sits inside the ADR domain).
  void DrainAll();

  uint64_t capacity() const { return config_.capacity; }
  const PmemConfig& config() const { return config_; }
  PmemCounters& counters() { return counters_; }
  const PmemCounters& counters() const { return counters_; }

  /// Direct pointer into the backing media array. Test/recovery helper:
  /// bypasses the XPBuffer, so call DrainAll() first for coherent reads.
  const char* raw_media() const { return media_; }

 private:
  static constexpr int kLinesPerXPLine =
      static_cast<int>(kXPLineSize / kCacheLineSize);

  struct Slot {
    uint64_t xpline_addr = 0;
    uint8_t dirty_mask = 0;  // bit i covers bytes [i*64, (i+1)*64)
    char data[kXPLineSize];
  };

  struct Dimm {
    std::mutex mu;
    // Open XPLine slots, most-recently-used at the front.
    std::list<Slot> slots;
    std::unordered_map<uint64_t, std::list<Slot>::iterator> index;
  };

  int DimmOf(uint64_t addr) const {
    return static_cast<int>((addr / config_.interleave_bytes) %
                            static_cast<uint64_t>(config_.num_dimms));
  }

  // Writes a slot back to media, performing an RMW if partially dirty.
  // Caller holds the DIMM lock.
  void WritebackSlot(const Slot& slot);

  PmemConfig config_;
  LatencyModel* latency_;
  char* media_;
  std::vector<std::unique_ptr<Dimm>> dimms_;
  PmemCounters counters_;
};

}  // namespace cachekv

#endif  // CACHEKV_PMEM_PMEM_DEVICE_H_
