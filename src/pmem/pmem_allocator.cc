#include "pmem/pmem_allocator.h"

#include "fault/fail_point.h"

namespace cachekv {

PmemAllocator::PmemAllocator(uint64_t base, uint64_t size)
    : base_(AlignUp(base, kXPLineSize)) {
  uint64_t end = AlignDown(base + size, kXPLineSize);
  size_ = (end > base_) ? end - base_ : 0;
  if (size_ > 0) {
    free_[base_] = size_;
  }
}

Status PmemAllocator::Allocate(uint64_t size, uint64_t* offset) {
  CACHEKV_FAIL_POINT("pmem.alloc");
  if (size == 0) {
    return Status::InvalidArgument("zero-sized allocation");
  }
  size = AlignUp(size, kXPLineSize);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= size) {
      *offset = it->first;
      uint64_t remaining = it->second - size;
      uint64_t new_start = it->first + size;
      free_.erase(it);
      if (remaining > 0) {
        free_[new_start] = remaining;
      }
      return Status::OK();
    }
  }
  return Status::OutOfSpace("pmem allocator exhausted");
}

Status PmemAllocator::Free(uint64_t offset, uint64_t size) {
  if (size == 0) {
    return Status::InvalidArgument("zero-sized free");
  }
  size = AlignUp(size, kXPLineSize);
  if (offset < base_ || offset + size > base_ + size_ ||
      !IsAligned(offset, kXPLineSize)) {
    return Status::InvalidArgument("free out of managed range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Find the first extent at or after offset to check overlap, and the
  // preceding extent for coalescing.
  auto next = free_.lower_bound(offset);
  if (next != free_.end() && offset + size > next->first) {
    return Status::InvalidArgument("double free (overlaps next extent)");
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > offset) {
      return Status::InvalidArgument("double free (overlaps prev extent)");
    }
    if (prev->first + prev->second == offset) {
      // Coalesce with the previous extent.
      prev->second += size;
      if (next != free_.end() && prev->first + prev->second == next->first) {
        prev->second += next->second;
        free_.erase(next);
      }
      return Status::OK();
    }
  }
  if (next != free_.end() && offset + size == next->first) {
    uint64_t merged = size + next->second;
    free_.erase(next);
    free_[offset] = merged;
    return Status::OK();
  }
  free_[offset] = size;
  return Status::OK();
}

Status PmemAllocator::Reserve(uint64_t offset, uint64_t size) {
  CACHEKV_FAIL_POINT("pmem.reserve");
  if (size == 0) {
    return Status::InvalidArgument("zero-sized reserve");
  }
  size = AlignUp(size, kXPLineSize);
  if (!IsAligned(offset, kXPLineSize)) {
    return Status::InvalidArgument("unaligned reserve");
  }
  if (offset < base_ || offset + size > base_ + size_) {
    return Status::InvalidArgument("reserve out of managed range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Locate the free extent containing [offset, offset+size).
  auto it = free_.upper_bound(offset);
  if (it == free_.begin()) {
    return Status::InvalidArgument("reserve target not free");
  }
  --it;
  uint64_t ext_start = it->first;
  uint64_t ext_len = it->second;
  if (offset < ext_start || offset + size > ext_start + ext_len) {
    return Status::InvalidArgument("reserve target not free");
  }
  free_.erase(it);
  if (offset > ext_start) {
    free_[ext_start] = offset - ext_start;
  }
  uint64_t tail_start = offset + size;
  uint64_t tail_len = (ext_start + ext_len) - tail_start;
  if (tail_len > 0) {
    free_[tail_start] = tail_len;
  }
  return Status::OK();
}

uint64_t PmemAllocator::FreeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [start, len] : free_) {
    (void)start;
    total += len;
  }
  return total;
}

uint64_t PmemAllocator::AllocatedBytes() const {
  return size_ - FreeBytes();
}

uint64_t PmemAllocator::LargestFreeExtent() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t largest = 0;
  for (const auto& [start, len] : free_) {
    (void)start;
    if (len > largest) largest = len;
  }
  return largest;
}

}  // namespace cachekv
