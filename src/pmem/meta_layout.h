#ifndef CACHEKV_PMEM_META_LAYOUT_H_
#define CACHEKV_PMEM_META_LAYOUT_H_

#include <cstdint>

#include "pmem/pmem_env.h"

namespace cachekv {

/// Fixed carving of the PmemEnv metadata area. Every engine finds its
/// persistent roots at these offsets relative to env->meta_base(), so
/// crash recovery needs no volatile state to bootstrap.
struct MetaLayout {
  /// Two manifest slots for the LSM storage component.
  static constexpr uint64_t kManifestSlotSize = 256ull << 10;
  static constexpr uint64_t kManifestOffset = 0;

  /// CacheKV's flushed-zone registry (two slots, A/B alternation).
  static constexpr uint64_t kZoneRegistrySlotSize = 128ull << 10;
  static constexpr uint64_t kZoneRegistryOffset =
      kManifestOffset + 2 * kManifestSlotSize;

  /// Root block for baseline engines (persistent memtable head pointers,
  /// B+-tree root, etc.).
  static constexpr uint64_t kBaselineRootSize = 64ull << 10;
  static constexpr uint64_t kBaselineRootOffset =
      kZoneRegistryOffset + 2 * kZoneRegistrySlotSize;

  /// Value-log segment registry (two slots, A/B alternation; src/vlog/).
  /// Sized for ~9800 segments (53 bytes each): ~38 GiB of value log at
  /// the default 4 MiB segment size. Filling the slot permanently fails
  /// separated writes, so it is deliberately generous.
  static constexpr uint64_t kVlogRegistrySlotSize = 512ull << 10;
  static constexpr uint64_t kVlogRegistryOffset =
      kBaselineRootOffset + kBaselineRootSize;

  static constexpr uint64_t kTotalBytes =
      kVlogRegistryOffset + 2 * kVlogRegistrySlotSize;

  static uint64_t ManifestBase(PmemEnv* env) {
    return env->meta_base() + kManifestOffset;
  }
  static uint64_t ZoneRegistryBase(PmemEnv* env) {
    return env->meta_base() + kZoneRegistryOffset;
  }
  static uint64_t BaselineRootBase(PmemEnv* env) {
    return env->meta_base() + kBaselineRootOffset;
  }
  static uint64_t VlogRegistryBase(PmemEnv* env) {
    return env->meta_base() + kVlogRegistryOffset;
  }
};

static_assert(MetaLayout::kTotalBytes <= (2ull << 20),
              "meta layout must fit the default meta area");

}  // namespace cachekv

#endif  // CACHEKV_PMEM_META_LAYOUT_H_
