#ifndef CACHEKV_PMEM_PMEM_ENV_H_
#define CACHEKV_PMEM_PMEM_ENV_H_

#include <cstdint>
#include <memory>

#include "cache/cache_sim.h"
#include "pmem/pmem_allocator.h"
#include "pmem/pmem_device.h"
#include "sim/latency_model.h"

namespace cachekv {

/// Platform description for one simulated machine: PMem DIMMs, the LLC in
/// front of them, the persistence domain, the optional CAT pseudo-locked
/// range, and the latency model.
struct EnvOptions {
  /// PMem capacity; testbed default is scaled down from 512 GB.
  uint64_t pmem_capacity = 512ull << 20;
  int num_dimms = 4;
  int xpbuffer_slots = 16;
  uint64_t interleave_bytes = 4096;

  /// LLC available to PMem traffic (paper's testbed: 36 MB per socket).
  uint64_t llc_capacity = 36ull << 20;
  int llc_ways = 12;

  /// Bytes pseudo-locked with Intel CAT at the bottom of the PMem address
  /// space; used by CacheKV's sub-MemTable pool and the `-cache` baseline
  /// variants. Zero disables CAT.
  uint64_t cat_locked_bytes = 0;

  /// Size of the fixed-offset metadata area right above the CAT range.
  /// Engines keep their persistent roots (LSM manifest slots, CacheKV's
  /// flushed-zone registry) here at well-known offsets so crash recovery
  /// can find them without any volatile state.
  uint64_t meta_area_bytes = 2ull << 20;

  PersistDomain domain = PersistDomain::kEadr;

  LatencyCosts latency;
};

/// PmemEnv owns one simulated platform: the PmemDevice, the CacheSim in
/// front of it, a PmemAllocator over the general (non-CAT) range, and the
/// LatencyModel. All engines in this repository (CacheKV and the
/// baselines) run against a PmemEnv; benchmarks construct one per system
/// under test so counters are not shared.
///
/// Address map: [0, cat_locked_bytes) is the CAT pseudo-locked range,
/// owned by whoever requested it; [cat_locked_bytes, pmem_capacity) is
/// managed by the allocator.
class PmemEnv {
 public:
  explicit PmemEnv(const EnvOptions& options);

  /// Checks platform-description invariants (CAT range within the LLC
  /// and the PMem capacity, room for the metadata area and heap).
  /// Callers that build an env from external configuration should check
  /// this first; the constructor itself clamps inconsistent values
  /// instead of asserting.
  static Status ValidateOptions(const EnvOptions& options);

  PmemEnv(const PmemEnv&) = delete;
  PmemEnv& operator=(const PmemEnv&) = delete;

  PmemDevice* device() { return device_.get(); }
  CacheSim* cache() { return cache_.get(); }
  PmemAllocator* allocator() { return allocator_.get(); }
  LatencyModel* latency() { return latency_.get(); }
  const EnvOptions& options() const { return options_; }

  uint64_t locked_base() const { return 0; }
  uint64_t locked_size() const { return options_.cat_locked_bytes; }

  /// Fixed-offset metadata area [meta_base, meta_base + meta_size).
  uint64_t meta_base() const {
    return AlignUp(options_.cat_locked_bytes, kXPLineSize);
  }
  uint64_t meta_size() const { return options_.meta_area_bytes; }

  // Convenience forwarding to the cache front-end; all engine traffic to
  // the simulated PMem goes through these.
  void Store(uint64_t addr, const void* src, size_t len) {
    cache_->Store(addr, src, len);
  }
  void Load(uint64_t addr, void* dst, size_t len) {
    cache_->Load(addr, dst, len);
  }
  void NtStore(uint64_t addr, const void* src, size_t len) {
    cache_->NtStore(addr, src, len);
  }
  void Clwb(uint64_t addr, size_t len) { cache_->Clwb(addr, len); }
  void Clflush(uint64_t addr, size_t len) { cache_->Clflush(addr, len); }
  void Sfence() { cache_->Sfence(); }
  uint64_t Load64(uint64_t addr) { return cache_->Load64(addr); }
  void Store64(uint64_t addr, uint64_t value) {
    cache_->Store64(addr, value);
  }
  bool CompareExchange64(uint64_t addr, uint64_t* expected,
                         uint64_t desired) {
    return cache_->CompareExchange64(addr, expected, desired);
  }

  /// Simulates power failure and process restart: applies the domain
  /// semantics (eADR flushes dirty cachelines, ADR drops them), drains
  /// the XPBuffer, and resets the volatile allocator to empty — engines
  /// must Reserve() their regions back from persistent manifests during
  /// recovery. DRAM-side structures of the engines must be discarded by
  /// their owners.
  void SimulateCrash();

 private:
  EnvOptions options_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<CacheSim> cache_;
  std::unique_ptr<PmemAllocator> allocator_;
};

}  // namespace cachekv

#endif  // CACHEKV_PMEM_PMEM_ENV_H_
