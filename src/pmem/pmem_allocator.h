#ifndef CACHEKV_PMEM_PMEM_ALLOCATOR_H_
#define CACHEKV_PMEM_PMEM_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "util/port.h"
#include "util/status.h"

namespace cachekv {

/// First-fit region allocator over a flat PMem address range, with
/// coalescing on free. All returned offsets are XPLine (256 B) aligned so
/// regions never share a media line.
///
/// The allocator itself is volatile: after a simulated crash its state is
/// reconstructed by the recovery paths, which call Reserve() for each
/// region named by the persistent manifests.
///
/// Thread-safe.
class PmemAllocator {
 public:
  /// Manages the range [base, base + size).
  PmemAllocator(uint64_t base, uint64_t size);

  PmemAllocator(const PmemAllocator&) = delete;
  PmemAllocator& operator=(const PmemAllocator&) = delete;

  /// Allocates `size` bytes (rounded up to the XPLine size); on success
  /// stores the region offset in *offset.
  Status Allocate(uint64_t size, uint64_t* offset);

  /// Returns a previously allocated region to the free pool.
  Status Free(uint64_t offset, uint64_t size);

  /// Marks [offset, offset+size) as allocated. Used by crash recovery to
  /// rebuild the allocator from persistent manifests. Fails if the range
  /// is not entirely free or out of bounds.
  Status Reserve(uint64_t offset, uint64_t size);

  /// Total bytes currently free.
  uint64_t FreeBytes() const;

  /// Total bytes currently allocated.
  uint64_t AllocatedBytes() const;

  /// Largest single free extent (an allocation larger than this fails).
  uint64_t LargestFreeExtent() const;

  uint64_t base() const { return base_; }
  uint64_t size() const { return size_; }

 private:
  uint64_t base_;
  uint64_t size_;
  mutable std::mutex mu_;
  // Free extents keyed by start offset; values are extent lengths.
  // Invariant: no two extents are adjacent or overlapping.
  std::map<uint64_t, uint64_t> free_;
};

}  // namespace cachekv

#endif  // CACHEKV_PMEM_PMEM_ALLOCATOR_H_
