#include "pmem/pmem_env.h"

namespace cachekv {

Status PmemEnv::ValidateOptions(const EnvOptions& options) {
  if (options.cat_locked_bytes > options.llc_capacity) {
    return Status::InvalidArgument(
        "cat_locked_bytes exceeds the LLC capacity");
  }
  if (options.cat_locked_bytes >= options.pmem_capacity) {
    return Status::InvalidArgument(
        "cat_locked_bytes must leave room in the PMem capacity");
  }
  const uint64_t heap_base = AlignUp(options.cat_locked_bytes, kXPLineSize) +
                             AlignUp(options.meta_area_bytes, kXPLineSize);
  if (heap_base >= options.pmem_capacity) {
    return Status::InvalidArgument(
        "metadata area leaves no PMem heap space");
  }
  return Status::OK();
}

PmemEnv::PmemEnv(const EnvOptions& options) : options_(options) {
  // Clamp inconsistent configurations instead of asserting: the CAT range
  // cannot exceed the LLC it is carved from, and must leave PMem space.
  if (options_.cat_locked_bytes > options_.llc_capacity) {
    options_.cat_locked_bytes = options_.llc_capacity;
  }
  if (options_.cat_locked_bytes >= options_.pmem_capacity) {
    options_.cat_locked_bytes = 0;
  }
  latency_ = std::make_unique<LatencyModel>(options_.latency);

  PmemConfig pmem_config;
  pmem_config.capacity = options_.pmem_capacity;
  pmem_config.num_dimms = options_.num_dimms;
  pmem_config.xpbuffer_slots = options_.xpbuffer_slots;
  pmem_config.interleave_bytes = options_.interleave_bytes;
  device_ = std::make_unique<PmemDevice>(pmem_config, latency_.get());

  CacheConfig cache_config;
  cache_config.capacity = options_.llc_capacity;
  cache_config.ways = options_.llc_ways;
  cache_config.locked_base = 0;
  cache_config.locked_size = AlignUp(options_.cat_locked_bytes,
                                     kCacheLineSize);
  cache_config.domain = options_.domain;
  cache_ = std::make_unique<CacheSim>(cache_config, device_.get(),
                                      latency_.get());

  const uint64_t heap_base =
      AlignUp(options_.cat_locked_bytes, kXPLineSize) +
      AlignUp(options_.meta_area_bytes, kXPLineSize);
  const uint64_t heap_size =
      heap_base < options_.pmem_capacity
          ? options_.pmem_capacity - heap_base
          : 0;  // empty heap: every Allocate fails with OutOfSpace
  allocator_ = std::make_unique<PmemAllocator>(heap_base, heap_size);
}

void PmemEnv::SimulateCrash() {
  cache_->Crash();
  const uint64_t heap_base =
      AlignUp(options_.cat_locked_bytes, kXPLineSize) +
      AlignUp(options_.meta_area_bytes, kXPLineSize);
  const uint64_t heap_size = heap_base < options_.pmem_capacity
                                 ? options_.pmem_capacity - heap_base
                                 : 0;
  allocator_ = std::make_unique<PmemAllocator>(heap_base, heap_size);
}

}  // namespace cachekv
