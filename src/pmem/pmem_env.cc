#include "pmem/pmem_env.h"

#include <cassert>

namespace cachekv {

PmemEnv::PmemEnv(const EnvOptions& options) : options_(options) {
  assert(options_.cat_locked_bytes <= options_.llc_capacity);
  assert(options_.cat_locked_bytes < options_.pmem_capacity);
  latency_ = std::make_unique<LatencyModel>(options_.latency);

  PmemConfig pmem_config;
  pmem_config.capacity = options_.pmem_capacity;
  pmem_config.num_dimms = options_.num_dimms;
  pmem_config.xpbuffer_slots = options_.xpbuffer_slots;
  pmem_config.interleave_bytes = options_.interleave_bytes;
  device_ = std::make_unique<PmemDevice>(pmem_config, latency_.get());

  CacheConfig cache_config;
  cache_config.capacity = options_.llc_capacity;
  cache_config.ways = options_.llc_ways;
  cache_config.locked_base = 0;
  cache_config.locked_size = AlignUp(options_.cat_locked_bytes,
                                     kCacheLineSize);
  cache_config.domain = options_.domain;
  cache_ = std::make_unique<CacheSim>(cache_config, device_.get(),
                                      latency_.get());

  const uint64_t heap_base =
      AlignUp(options_.cat_locked_bytes, kXPLineSize) +
      AlignUp(options_.meta_area_bytes, kXPLineSize);
  assert(heap_base < options_.pmem_capacity);
  allocator_ = std::make_unique<PmemAllocator>(
      heap_base, options_.pmem_capacity - heap_base);
}

void PmemEnv::SimulateCrash() {
  cache_->Crash();
  const uint64_t heap_base =
      AlignUp(options_.cat_locked_bytes, kXPLineSize) +
      AlignUp(options_.meta_area_bytes, kXPLineSize);
  allocator_ = std::make_unique<PmemAllocator>(
      heap_base, options_.pmem_capacity - heap_base);
}

}  // namespace cachekv
