#include "pmem/pmem_device.h"

#include <sys/mman.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fail_point.h"

namespace cachekv {

PmemDevice::PmemDevice(const PmemConfig& config, LatencyModel* latency)
    : config_(config), latency_(latency) {
  // Tolerate loosely specified configurations instead of asserting:
  // round the capacity down to whole XPLines, require one DIMM minimum.
  config_.capacity = AlignDown(config_.capacity, kXPLineSize);
  if (config_.capacity < kXPLineSize) config_.capacity = kXPLineSize;
  if (config_.num_dimms < 1) config_.num_dimms = 1;
  // Anonymous mapping: pages are committed lazily, so a large simulated
  // capacity does not consume physical memory until touched.
  void* p = mmap(nullptr, config_.capacity, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    // Unrecoverable from a constructor; fail loudly rather than via a
    // null-pointer write later.
    std::fprintf(stderr, "PmemDevice: mmap of %llu bytes failed\n",
                 static_cast<unsigned long long>(config_.capacity));
    std::abort();
  }
  media_ = static_cast<char*>(p);
  dimms_.reserve(config_.num_dimms);
  for (int i = 0; i < config_.num_dimms; i++) {
    dimms_.push_back(std::make_unique<Dimm>());
  }
}

PmemDevice::~PmemDevice() { munmap(media_, config_.capacity); }

void PmemDevice::WritebackSlot(const Slot& slot) {
  const uint8_t kFullMask = (1u << kLinesPerXPLine) - 1;
  char merged[kXPLineSize];
  if (slot.dirty_mask != kFullMask) {
    // Partially dirty XPLine: the DIMM must read the 256 B media line,
    // merge the dirty cachelines, and write the whole line back. This is
    // the write-amplifying read-modify-write of §II-B.
    counters_.rmw_count.fetch_add(1, std::memory_order_relaxed);
    counters_.media_bytes_read.fetch_add(kXPLineSize,
                                         std::memory_order_relaxed);
    if (latency_ != nullptr) latency_->ChargeMediaRead(1);
    memcpy(merged, media_ + slot.xpline_addr, kXPLineSize);
    for (int i = 0; i < kLinesPerXPLine; i++) {
      if (slot.dirty_mask & (1u << i)) {
        memcpy(merged + i * kCacheLineSize,
               slot.data + i * kCacheLineSize, kCacheLineSize);
      }
    }
  } else {
    counters_.full_line_writebacks.fetch_add(1, std::memory_order_relaxed);
    memcpy(merged, slot.data, kXPLineSize);
  }
  memcpy(media_ + slot.xpline_addr, merged, kXPLineSize);
  counters_.media_bytes_written.fetch_add(kXPLineSize,
                                          std::memory_order_relaxed);
  if (latency_ != nullptr) latency_->ChargeMediaWrite(1);
}

void PmemDevice::ReceiveLine(uint64_t addr, const char* data,
                             bool non_temporal) {
  if (!IsAligned(addr, kCacheLineSize) ||
      addr + kCacheLineSize > config_.capacity) {
    // Never write out of bounds: drop the line and count it. The data
    // loss is detectable (CRCs, recovery plausibility checks); an OOB
    // memcpy would not be.
    counters_.oob_accesses.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Simulated media bit-rot: a fired "pmem.media.bitrot" point flips one
  // seeded-random bit of the incoming line before it is buffered.
  char rotted[kCacheLineSize];
  if (fault::AnyActive()) {
    fault::InjectResult inj = fault::Evaluate("pmem.media.bitrot");
    if (inj.bitrot) {
      memcpy(rotted, data, kCacheLineSize);
      const size_t byte = static_cast<size_t>(inj.rand % kCacheLineSize);
      const int bit = static_cast<int>((inj.rand / kCacheLineSize) % 8);
      rotted[byte] = static_cast<char>(rotted[byte] ^ (1u << bit));
      data = rotted;
    }
  }
  const uint64_t xpline = AlignDown(addr, kXPLineSize);
  const int sub = static_cast<int>((addr - xpline) / kCacheLineSize);
  Dimm& dimm = *dimms_[DimmOf(addr)];

  counters_.lines_received.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_received.fetch_add(kCacheLineSize,
                                     std::memory_order_relaxed);
  if (non_temporal) {
    counters_.nt_lines_received.fetch_add(1, std::memory_order_relaxed);
    counters_.nt_bytes_received.fetch_add(kCacheLineSize,
                                          std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lock(dimm.mu);
  auto it = dimm.index.find(xpline);
  if (it != dimm.index.end()) {
    // Combining hit: the XPLine is already open in the buffer.
    counters_.xpbuffer_hits.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = *it->second;
    memcpy(slot.data + sub * kCacheLineSize, data, kCacheLineSize);
    slot.dirty_mask |= (1u << sub);
    // Move to MRU position.
    dimm.slots.splice(dimm.slots.begin(), dimm.slots, it->second);
    return;
  }

  counters_.xpbuffer_misses.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<int>(dimm.slots.size()) >=
      config_.xpbuffer_slots) {
    // Evict the least recently used slot to media.
    Slot& victim = dimm.slots.back();
    WritebackSlot(victim);
    dimm.index.erase(victim.xpline_addr);
    dimm.slots.pop_back();
  }
  dimm.slots.emplace_front();
  Slot& slot = dimm.slots.front();
  slot.xpline_addr = xpline;
  slot.dirty_mask = static_cast<uint8_t>(1u << sub);
  memcpy(slot.data + sub * kCacheLineSize, data, kCacheLineSize);
  dimm.index[xpline] = dimm.slots.begin();
}

void PmemDevice::Read(uint64_t addr, void* dst, size_t len) {
  char* out = static_cast<char*>(dst);
  if (addr >= config_.capacity || len > config_.capacity - addr) {
    // Out-of-range read: zero-fill the inaccessible tail and count the
    // access instead of reading past the media array.
    counters_.oob_accesses.fetch_add(1, std::memory_order_relaxed);
    const size_t valid = addr < config_.capacity
                             ? static_cast<size_t>(config_.capacity - addr)
                             : 0;
    memset(out + valid, 0, len - valid);
    if (valid == 0) return;
    len = valid;
  }
  uint64_t pos = addr;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t xpline = AlignDown(pos, kXPLineSize);
    const uint64_t line_off = pos - xpline;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(remaining, kXPLineSize - line_off));
    Dimm& dimm = *dimms_[DimmOf(pos)];
    {
      std::lock_guard<std::mutex> lock(dimm.mu);
      auto it = dimm.index.find(xpline);
      if (it != dimm.index.end()) {
        // Serve fresher bytes from the XPBuffer where dirty, media
        // elsewhere.
        const Slot& slot = *it->second;
        for (size_t i = 0; i < chunk; i++) {
          const uint64_t o = line_off + i;
          const int sub = static_cast<int>(o / kCacheLineSize);
          if (slot.dirty_mask & (1u << sub)) {
            out[i] = slot.data[o];
          } else {
            out[i] = media_[xpline + o];
          }
        }
      } else {
        memcpy(out, media_ + pos, chunk);
        counters_.media_bytes_read.fetch_add(kXPLineSize,
                                             std::memory_order_relaxed);
        if (latency_ != nullptr) latency_->ChargeMediaRead(1);
      }
    }
    out += chunk;
    pos += chunk;
    remaining -= chunk;
  }
  // Simulated read disturb: a fired "pmem.media.read" point flips one
  // seeded-random bit of the returned buffer. Checksummed structures
  // (zone registry, manifest, SSTables) detect this as corruption.
  if (fault::AnyActive()) {
    fault::MaybeBitrot("pmem.media.read", static_cast<char*>(dst), len);
  }
}

void PmemDevice::DrainAll() {
  for (auto& dimm_ptr : dimms_) {
    Dimm& dimm = *dimm_ptr;
    std::lock_guard<std::mutex> lock(dimm.mu);
    for (Slot& slot : dimm.slots) {
      WritebackSlot(slot);
    }
    dimm.slots.clear();
    dimm.index.clear();
  }
}

}  // namespace cachekv
