#include "fault/fail_point.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/hash.h"

namespace cachekv {
namespace fault {

namespace {

// One entry per injection site wired into the engine. Keep in sync with
// docs/ROBUSTNESS.md (the fail-point table) and the crash-sweep test,
// which enumerates this list. Points outside the storage engine — the
// network layer's net.accept / net.read / net.write / net.decode
// (docs/SERVER.md) and the hot-key cache's cache.poison /
// cache.invalidate (src/cache/hot_key_cache.h) — are registered at
// runtime on first evaluation instead: the crash sweep requires every
// builtin point to fire during a DB workload, which non-engine points
// never would.
const char* const kBuiltinPoints[] = {
    "pmem.alloc",         // PmemAllocator::Allocate
    "pmem.reserve",       // PmemAllocator::Reserve (recovery re-adoption)
    "pmem.media.bitrot",  // PmemDevice::ReceiveLine — bit-rot on write
    "pmem.media.read",    // PmemDevice::Read — bit-rot on read
    "flush.copy",         // DB::CopyFlushOne entry
    "flush.copy.publish", // DB::CopyFlushOne, before zone AddTable
    "flush.zone_to_l0",   // DB::FlushZoneToL0 entry
    "zone.persist",       // FlushedZone registry A/B slot write (torn-able)
    "zone.drop",          // FlushedZone::DropTables
    "zone.recover",       // FlushedZone::Recover entry
    "index.sync",         // DB index thread, lazy index sync work
    "lsm.write_l0",       // LsmEngine::WriteL0Tables entry
    "lsm.compact",        // LsmEngine::CompactLevel entry
    "lsm.manifest",       // ManifestWriter A/B slot write (torn-able)
    "vlog.append.torn",   // ValueLog::Append record write (torn-able)
    "vlog.gc.drop",       // VlogGc pass / segment unlink
    "vlog.read.bitrot",   // ValueLog::Read — bit-rot on resolved value
};

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// One comma-separated item of a spec string.
Status ApplyItem(const std::string& item, FailPointSpec* spec) {
  std::string head = item;
  std::string arg;
  size_t colon = item.find(':');
  if (colon != std::string::npos) {
    head = item.substr(0, colon);
    arg = item.substr(colon + 1);
  }
  if (head == "always") {
    spec->trigger = Trigger::kAlways;
  } else if (head == "once") {
    spec->trigger = Trigger::kOnce;
  } else if (head == "every") {
    uint64_t n = 0;
    if (!ParseUint(arg, &n) || n == 0) {
      return Status::InvalidArgument("fail point: bad every:N", item);
    }
    spec->trigger = Trigger::kEveryN;
    spec->every_n = n;
  } else if (head == "p") {
    char* end = nullptr;
    double p = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("fail point: bad p:X", item);
    }
    spec->trigger = Trigger::kProbability;
    spec->probability = p;
  } else if (head == "error") {
    spec->action = Action::kReturnError;
    std::string kind = arg;
    size_t colon2 = arg.find(':');
    if (colon2 != std::string::npos) {
      kind = arg.substr(0, colon2);
      spec->message = arg.substr(colon2 + 1);
    }
    if (kind.empty() || kind == "io") {
      spec->error = ErrorKind::kIOError;
    } else if (kind == "corruption") {
      spec->error = ErrorKind::kCorruption;
    } else if (kind == "busy") {
      spec->error = ErrorKind::kBusy;
    } else if (kind == "oom" || kind == "outofspace") {
      spec->error = ErrorKind::kOutOfSpace;
    } else if (kind == "notfound") {
      spec->error = ErrorKind::kNotFound;
    } else {
      return Status::InvalidArgument("fail point: bad error kind", item);
    }
  } else if (head == "delay") {
    uint64_t us = 0;
    if (!ParseUint(arg, &us)) {
      return Status::InvalidArgument("fail point: bad delay:USEC", item);
    }
    spec->action = Action::kDelay;
    spec->delay_us = static_cast<uint32_t>(us);
  } else if (head == "bitrot") {
    spec->action = Action::kBitrot;
  } else if (head == "torn") {
    spec->action = Action::kTorn;
  } else if (head == "noop") {
    spec->action = Action::kNoop;
  } else {
    return Status::InvalidArgument("fail point: unknown spec item", item);
  }
  return Status::OK();
}

Status ParseSpec(const std::string& spec_str, FailPointSpec* spec) {
  size_t start = 0;
  while (start <= spec_str.size()) {
    size_t comma = spec_str.find(',', start);
    if (comma == std::string::npos) comma = spec_str.size();
    std::string item = spec_str.substr(start, comma - start);
    if (!item.empty()) {
      Status s = ApplyItem(item, spec);
      if (!s.ok()) return s;
    }
    start = comma + 1;
  }
  return Status::OK();
}

Status MakeError(const FailPointSpec& spec, const char* name) {
  std::string msg = spec.message.empty()
                        ? std::string("injected fault at ") + name
                        : spec.message;
  switch (spec.error) {
    case ErrorKind::kIOError:
      return Status::IOError(msg);
    case ErrorKind::kCorruption:
      return Status::Corruption(msg);
    case ErrorKind::kBusy:
      return Status::Busy(msg);
    case ErrorKind::kOutOfSpace:
      return Status::OutOfSpace(msg);
    case ErrorKind::kNotFound:
      return Status::NotFound(msg);
  }
  return Status::IOError(msg);
}

}  // namespace

FailPointRegistry::FailPointRegistry() : seed_(0xC0FFEEULL) {
  const char* seed_env = std::getenv(kEnvSeedVar);
  if (seed_env != nullptr) {
    uint64_t seed = 0;
    if (ParseUint(seed_env, &seed)) seed_ = seed;
  }
  for (const char* name : kBuiltinPoints) {
    FindOrCreateLocked(name);  // single-threaded in the constructor
  }
  const char* env = std::getenv(kEnvVar);
  if (env != nullptr && env[0] != '\0') {
    EnableFromSpecList(env);  // best effort; bad specs are ignored here
  }
}

FailPointRegistry* FailPointRegistry::Global() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return registry;
}

const std::vector<std::string>& FailPointRegistry::BuiltinPoints() {
  static const std::vector<std::string>* points = [] {
    auto* v = new std::vector<std::string>();
    for (const char* name : kBuiltinPoints) v->emplace_back(name);
    return v;
  }();
  return *points;
}

FailPointRegistry::Point* FailPointRegistry::FindOrCreateLocked(
    const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, Point()).first;
    it->second.rng = Random(seed_ ^ Hash64(name.data(), name.size(), 0));
  }
  return &it->second;
}

Status FailPointRegistry::Enable(const std::string& name,
                                 const std::string& spec_str) {
  FailPointSpec spec;
  Status s = ParseSpec(spec_str, &spec);
  if (!s.ok()) return s;
  return Enable(name, spec);
}

Status FailPointRegistry::Enable(const std::string& name,
                                 const FailPointSpec& spec) {
  if (name.empty()) return Status::InvalidArgument("fail point: empty name");
  std::lock_guard<std::mutex> lock(mu_);
  Point* p = FindOrCreateLocked(name);
  if (!p->enabled) active_points_.fetch_add(1, std::memory_order_relaxed);
  p->spec = spec;
  p->enabled = true;
  p->exhausted = false;
  p->evals = 0;
  p->fires = 0;
  p->rng = Random(seed_ ^ Hash64(name.data(), name.size(), 0));
  return Status::OK();
}

Status FailPointRegistry::EnableFromSpecList(const std::string& list) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t semi = list.find(';', start);
    if (semi == std::string::npos) semi = list.size();
    std::string entry = list.substr(start, semi - start);
    if (!entry.empty()) {
      size_t eq = entry.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fail point: missing '=' in", entry);
      }
      Status s = Enable(entry.substr(0, eq), entry.substr(eq + 1));
      if (!s.ok()) return s;
    }
    start = semi + 1;
  }
  return Status::OK();
}

void FailPointRegistry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end() && it->second.enabled) {
    it->second.enabled = false;
    active_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : points_) {
    Point& p = kv.second;
    p.enabled = false;
    p.exhausted = false;
    p.evals = 0;
    p.fires = 0;
  }
  active_points_.store(0, std::memory_order_relaxed);
}

void FailPointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& kv : points_) {
    kv.second.rng =
        Random(seed_ ^ Hash64(kv.first.data(), kv.first.size(), 0));
  }
}

uint64_t FailPointRegistry::EvalCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evals;
}

uint64_t FailPointRegistry::FireCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

InjectResult FailPointRegistry::Evaluate(const char* name) {
  InjectResult result;
  FailPointSpec spec;
  uint64_t rand = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point* p = FindOrCreateLocked(name);
    p->evals++;
    if (!p->enabled || p->exhausted) return result;
    bool fire = false;
    switch (p->spec.trigger) {
      case Trigger::kAlways:
        fire = true;
        break;
      case Trigger::kOnce:
        fire = true;
        p->exhausted = true;
        break;
      case Trigger::kEveryN:
        fire = (p->evals % p->spec.every_n) == 0;
        break;
      case Trigger::kProbability:
        fire = p->rng.NextDouble() < p->spec.probability;
        break;
    }
    if (!fire) return result;
    p->fires++;
    spec = p->spec;
    rand = p->rng.Next64();
  }
  result.fired = true;
  result.rand = rand;
  switch (spec.action) {
    case Action::kReturnError:
      result.status = MakeError(spec, name);
      break;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_us));
      break;
    case Action::kBitrot:
      result.bitrot = true;
      break;
    case Action::kTorn:
      result.torn = true;
      // Keep a strict prefix of the write: [0, kTearDenom) of 1024ths.
      result.rand = rand % kTearDenom;
      result.status = Status::IOError(
          std::string("injected torn write at ") + name);
      break;
    case Action::kNoop:
      break;
  }
  return result;
}

Status Inject(const char* name) {
  return FailPointRegistry::Global()->Evaluate(name).status;
}

InjectResult Evaluate(const char* name) {
  return FailPointRegistry::Global()->Evaluate(name);
}

bool MaybeBitrot(const char* name, char* data, size_t len) {
  if (len == 0) return false;
  InjectResult r = FailPointRegistry::Global()->Evaluate(name);
  if (!r.bitrot) return false;
  size_t byte = static_cast<size_t>(r.rand % len);
  int bit = static_cast<int>((r.rand / len) % 8);
  data[byte] = static_cast<char>(data[byte] ^ (1u << bit));
  return true;
}

}  // namespace fault
}  // namespace cachekv
