#ifndef CACHEKV_FAULT_FAIL_POINT_H_
#define CACHEKV_FAULT_FAIL_POINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace cachekv {
namespace fault {

/// Process-wide fail-point registry (the fail_point / SyncPoint idiom of
/// production LSM stores). Engine code declares named points at the places
/// where hardware or software can fail — PMem media access, allocator
/// exhaustion, flush/compaction stages, manifest installs — and tests (or
/// the CACHEKV_FAILPOINTS environment variable) arm them with a trigger
/// policy and an action. When nothing is armed the hot-path cost is a
/// single relaxed atomic load (see AnyActive()).
///
/// Spec grammar, used both by Enable() and the environment variable
///   CACHEKV_FAILPOINTS="point=item,item;point2=item,..."
/// where each comma-separated item is one of
///   triggers:  always (default) | once | every:N | p:X   (X in [0,1])
///   actions:   error[:io|corruption|busy|oom|notfound[:message]]
///              delay:USEC | bitrot | torn | noop
/// e.g.  CACHEKV_FAILPOINTS="flush.copy=once,error:io;pmem.media.bitrot=p:0.01,bitrot"
/// The probabilistic trigger draws from a per-point xorshift RNG seeded
/// from the registry seed (SetSeed / CACHEKV_FAILPOINTS_SEED), so fault
/// schedules are reproducible.

enum class Trigger : uint8_t {
  kAlways = 0,
  kOnce,
  kEveryN,
  kProbability,
};

enum class Action : uint8_t {
  kReturnError = 0,  // Evaluate() carries a non-OK Status
  kDelay,            // Evaluate() sleeps delay_us, then reports fired
  kBitrot,           // caller flips one bit of the in-flight data
  kTorn,             // caller tears the in-flight write at an XPLine edge
  kNoop,             // fires (counted) but takes no action; coverage probes
};

enum class ErrorKind : uint8_t {
  kIOError = 0,
  kCorruption,
  kBusy,
  kOutOfSpace,
  kNotFound,
};

struct FailPointSpec {
  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;       // kEveryN: fire on every Nth evaluation
  double probability = 1.0;   // kProbability
  Action action = Action::kReturnError;
  ErrorKind error = ErrorKind::kIOError;
  uint32_t delay_us = 0;
  std::string message;        // optional custom error message
};

/// Outcome of evaluating one fail point at its site.
struct InjectResult {
  Status status;       // non-OK when an error action (or torn) fired
  bool fired = false;  // the trigger matched this evaluation
  bool torn = false;   // site should tear the in-flight write
  bool bitrot = false; // site should flip one bit of the in-flight data
  // For torn: fraction (in 1/1024ths) of the write to keep. For bitrot:
  // a seeded random value the site uses to pick the damaged bit.
  uint64_t rand = 0;
};

constexpr const char* kEnvVar = "CACHEKV_FAILPOINTS";
constexpr const char* kEnvSeedVar = "CACHEKV_FAILPOINTS_SEED";
constexpr uint64_t kTearDenom = 1024;

class FailPointRegistry {
 public:
  /// The process-wide registry. On first use it arms any points named in
  /// $CACHEKV_FAILPOINTS (and seeds from $CACHEKV_FAILPOINTS_SEED).
  static FailPointRegistry* Global();

  /// Canonical list of every fail point wired into the engine, so test
  /// harnesses can enumerate and sweep them without executing the sites
  /// first. Registering extra points at runtime is also allowed.
  static const std::vector<std::string>& BuiltinPoints();

  /// Arms `name` with the parsed `spec` string (grammar above). Replaces
  /// any previous configuration of the point.
  Status Enable(const std::string& name, const std::string& spec_str);
  Status Enable(const std::string& name, const FailPointSpec& spec);
  /// Parses "a=spec;b=spec" and arms every listed point.
  Status EnableFromSpecList(const std::string& list);
  void Disable(const std::string& name);
  void DisableAll();

  /// Reseeds every per-point RNG (deterministic fault schedules). Call
  /// before arming probabilistic points.
  void SetSeed(uint64_t seed);

  /// Times the named point was evaluated / fired since the last
  /// DisableAll(). Evaluations are only counted while any point is armed
  /// (the disarmed fast path does not touch the registry).
  uint64_t EvalCount(const std::string& name) const;
  uint64_t FireCount(const std::string& name) const;

  /// Evaluates `name`: counts the evaluation and, when the trigger
  /// matches, applies the action (sleeps for kDelay; fills status for
  /// kReturnError/kTorn; sets the bitrot/torn flags for the site).
  InjectResult Evaluate(const char* name);

  /// True when at least one point is armed. One relaxed load; the guard
  /// every injection site checks before calling Evaluate().
  bool AnyActive() const {
    return active_points_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FailPointRegistry();

  struct Point {
    FailPointSpec spec;
    bool enabled = false;
    bool exhausted = false;  // kOnce already fired
    uint64_t evals = 0;
    uint64_t fires = 0;
    Random rng{0};
  };

  Point* FindOrCreateLocked(const std::string& name);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  uint64_t seed_;
  std::atomic<int> active_points_{0};
};

/// Convenience wrappers over the global registry. ----------------------

inline bool AnyActive() { return FailPointRegistry::Global()->AnyActive(); }

/// Evaluates `name`; returns OK unless an error action fired. Sites that
/// cannot honor torn/bitrot treat those actions as plain errors (torn) or
/// ignore them (bitrot flips nothing without a buffer).
Status Inject(const char* name);

InjectResult Evaluate(const char* name);

/// Flips one seeded-random bit of data[0..len) when the point fires with
/// the bitrot action. Returns true when it did.
bool MaybeBitrot(const char* name, char* data, size_t len);

}  // namespace fault
}  // namespace cachekv

/// Injection site for Status-returning functions: when the named point is
/// armed with an error action, returns that error from the enclosing
/// function. Compiles to one relaxed load when no points are armed.
#define CACHEKV_FAIL_POINT(name)                                      \
  do {                                                                \
    if (::cachekv::fault::AnyActive()) {                              \
      ::cachekv::Status _cfp_status = ::cachekv::fault::Inject(name); \
      if (!_cfp_status.ok()) return _cfp_status;                      \
    }                                                                 \
  } while (0)

#endif  // CACHEKV_FAULT_FAIL_POINT_H_
