#ifndef CACHEKV_REPL_REPL_LOG_H_
#define CACHEKV_REPL_REPL_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace cachekv {
namespace repl {

/// In-memory replication log for one shard (docs/REPLICATION.md).
///
/// The primary appends one record per committed write batch; followers
/// pull records by log sequence number (REPLBATCH) and report applied
/// progress (REPLACK). Records carry their own dense `log_seq`
/// numbering (1, 2, 3, ...) independent of DB sequence numbers — DB
/// seqnos can interleave across shards and are allocated before the
/// commit outcome is known, so they are recorded per batch
/// (`last_db_seq`) but never used for addressing.
///
/// The log is bounded by a byte budget: when an append would exceed it,
/// the oldest records are evicted and `start_seq` advances. A follower
/// whose cursor falls behind `start_seq` gets kNotFound from Fetch and
/// must bootstrap from a shard snapshot (REPLSNAPSHOT) instead.
///
/// Every log carries a `run_id`: a random nonzero token drawn at
/// construction and redrawn by Reset(). Two logs (or two lifetimes of
/// the same log — a primary restart, a promotion) never share a run id,
/// so a follower comparing run ids across fetches detects that its
/// cursor addresses a numbering that no longer exists and must
/// snapshot-bootstrap instead of applying aliased records.
///
/// Thread safety: all methods are safe to call concurrently.
class ReplLog {
 public:
  struct Record {
    uint64_t log_seq = 0;
    uint64_t last_db_seq = 0;
    std::string ops_blob;  // EncodeReplOps format (net/protocol.h).
  };

  explicit ReplLog(size_t max_bytes);

  ReplLog(const ReplLog&) = delete;
  ReplLog& operator=(const ReplLog&) = delete;

  /// Appends a committed batch; assigns and returns its log_seq.
  uint64_t Append(std::string ops_blob, uint64_t last_db_seq);

  /// Copies up to `max` records with log_seq >= `from` into `out`.
  /// `*head_out` receives the current head on both success and failure.
  /// Returns NotFound when `from` precedes the truncated start (the
  /// caller must snapshot-bootstrap); OK with an empty `out` when
  /// `from` is past the head (caller waits and re-polls).
  Status Fetch(uint64_t from, uint32_t max, std::vector<Record>* out,
               uint64_t* head_out) const;

  /// First log_seq still resident (0 when the log has never appended;
  /// after truncation the oldest surviving record's seq).
  uint64_t start_seq() const;
  /// Highest log_seq ever assigned (0 = empty).
  uint64_t head_seq() const;
  /// Total bytes of resident ops blobs.
  uint64_t resident_bytes() const;
  /// This log lifetime's identity token (nonzero; new after Reset()).
  uint64_t run_id() const;

  /// Records that follower `id` has applied through `seq` (monotonic;
  /// stale acks are ignored). Wakes WaitAcked waiters.
  void Ack(const std::string& id, uint64_t seq);
  /// Last acked position for `id` (0 if unknown).
  uint64_t AckedSeq(const std::string& id) const;
  /// Number of distinct followers whose acked position is >= `seq`.
  uint32_t AckedCount(uint64_t seq) const;

  /// Blocks until at least `needed` followers have acked `seq`, or
  /// `timeout_ms` elapses. Returns OK on success, Busy on timeout, and
  /// IOError when Reset() tore the log down mid-wait (the caller's
  /// record no longer exists; its replication fate is unknowable).
  /// `needed` == 0 returns OK immediately.
  Status WaitAcked(uint64_t seq, uint32_t needed, int timeout_ms);

  /// Like WaitAcked, but targets the record carrying the caller's own
  /// write: the record whose `last_db_seq` >= `db_seq` with the
  /// smallest log_seq. Appends arrive in DB-sequence order (the DB's
  /// commit-hook dispatcher guarantees it), so that record covers the
  /// write exactly — later concurrent writes never extend the wait.
  /// Blocks first for the record to be appended (hook dispatch can lag
  /// the caller's publish), then for `needed` follower acks. Same
  /// returns as WaitAcked.
  Status WaitCommit(uint64_t db_seq, uint32_t needed, int timeout_ms);

  /// Drops all records and follower state and redraws the run id
  /// (promotion of a follower resets its outbound log; its DB state is
  /// the source of truth). In-flight WaitAcked/WaitCommit callers wake
  /// with IOError, distinct from an ack timeout.
  void Reset();

 private:
  void TruncateLocked();
  uint32_t AckedCountLocked(uint64_t seq) const;

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::condition_variable ack_cv_;
  std::deque<Record> records_;
  uint64_t head_ = 0;               // Highest assigned log_seq.
  uint64_t bytes_ = 0;              // Sum of resident ops_blob sizes.
  uint64_t run_id_;                 // Nonzero; redrawn by Reset().
  uint64_t reset_gen_ = 0;          // Bumped by Reset(); wakes waiters.
  uint64_t last_db_seq_ = 0;        // db seq of the newest append.
  std::map<std::string, uint64_t> acked_;  // follower id -> log_seq.
};

}  // namespace repl
}  // namespace cachekv

#endif  // CACHEKV_REPL_REPL_LOG_H_
