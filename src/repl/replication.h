#ifndef CACHEKV_REPL_REPLICATION_H_
#define CACHEKV_REPL_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/protocol.h"
#include "repl/repl_log.h"
#include "util/status.h"

namespace cachekv {
namespace net {
class Client;  // net/client.h; only the follower thread dials out.
}  // namespace net

namespace repl {

/// How many followers must acknowledge a committed write before the
/// primary acks the client (docs/REPLICATION.md "Ack policies").
enum class AckPolicy {
  kNone,    // ack as soon as the primary committed (async replication)
  kQuorum,  // floor((replicas + 1) / 2) follower acks
  kAll,     // every configured replica must have applied the write
};

const char* AckPolicyName(AckPolicy policy);
bool ParseAckPolicy(const std::string& name, AckPolicy* out);

struct ReplOptions {
  AckPolicy ack = AckPolicy::kNone;
  /// How long a committed write may wait for follower acks before the
  /// server answers kReplTimeout (the write IS committed locally).
  int ack_timeout_ms = 2'000;
  /// Byte budget of each shard's in-memory replication log; beyond it
  /// the oldest records are evicted and lagging followers fall back to
  /// a snapshot bootstrap.
  size_t log_bytes_per_shard = 64u << 20;
  /// Follower pull sizing.
  uint32_t pull_batch_max = 256;
  uint32_t snapshot_page = 512;
  /// Sleep between pulls while fully caught up.
  int pull_idle_ms = 2;
  /// Backoff after a failed connect/pull against the primary.
  int reconnect_backoff_ms = 50;
  /// Follower self-promotion after this long without a successful
  /// exchange with the primary. 0 disables (PROMOTE op only).
  int auto_promote_ms = 0;
  /// Replica endpoints ("host:port") this server streams to, identical
  /// for every shard (process-level replication: one follower process
  /// mirrors all shards). Empty = unreplicated.
  std::vector<std::string> replicas;
  /// When non-empty this server starts as a follower of that primary
  /// for every shard.
  std::string primary_endpoint;
};

/// ReplHub owns the replication state of one server process: per-shard
/// role (primary/follower) and epoch, the per-shard replication logs,
/// the wire-op handlers the server delegates to, and — on a follower —
/// the background pull thread that subscribes to the primary, applies
/// batches in log order, and acks progress.
///
/// Epoch fencing rule, applied uniformly to every repl request: a
/// request carrying a NEWER epoch makes the receiver adopt it (and
/// step down if it believed itself primary — this is how a promoted
/// follower fences its deposed predecessor); a request carrying an
/// OLDER epoch is rejected with kStaleEpoch.
///
/// Thread safety: handlers and the commit path are safe to call from
/// any server worker; Start/Stop are main-thread lifecycle calls.
class ReplHub {
 public:
  /// `dbs` are the server's per-shard stores (borrowed, not owned);
  /// repl.* metrics register into each shard's registry. The hub
  /// starts as primary for every shard unless `options.primary_endpoint`
  /// is set, in which case it starts as a follower for every shard.
  ReplHub(const ReplOptions& options, std::vector<DB*> dbs);
  ~ReplHub();

  ReplHub(const ReplHub&) = delete;
  ReplHub& operator=(const ReplHub&) = delete;

  /// This server's own advertised "host:port"; used as the follower id
  /// in the pull protocol and filtered out of advertised replica sets.
  void SetSelfEndpoint(const std::string& endpoint);

  /// Installs the commit hook on every shard DB (call before serving)
  /// so committed batches land in the shard's replication log.
  void AttachCommitHooks();

  /// Starts the follower pull thread (no-op unless primary_endpoint is
  /// configured). Stop() joins it; the destructor also stops.
  void Start();
  void Stop();

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const ReplOptions& options() const { return options_; }
  bool IsPrimary(uint32_t shard) const;
  uint64_t Epoch(uint32_t shard) const;

  /// Commit-path tap (runs on the writer thread via DB::CommitHook).
  void OnCommit(uint32_t shard, const std::vector<KVStore::BatchOp>& ops,
                uint64_t last_db_seq);

  /// Blocks until the calling thread's own just-committed write (its
  /// DB::ThreadLastCommitSeq record) satisfies the ack policy — NOT
  /// the log head, so concurrent later writes never extend the wait.
  /// OK when satisfied (immediately under kNone or with no replicas);
  /// Busy after ack_timeout_ms (the server answers kReplTimeout: the
  /// write is committed locally but under-replicated); IOError when a
  /// concurrent promotion reset the log mid-wait.
  Status WaitCommitAcked(uint32_t shard);

  // Wire-op handlers (see src/net/server.cc). Each returns the wire
  // code; on net::kOk `*payload` holds the response payload, otherwise
  // `*error` holds the error message.
  uint16_t HandleSubscribe(const net::ReplSubscribeRequest& req,
                           std::string* payload, std::string* error);
  uint16_t HandleBatch(const net::ReplBatchRequest& req,
                       std::string* payload, std::string* error);
  uint16_t HandleAck(const net::ReplAckRequest& req, std::string* payload,
                     std::string* error);
  uint16_t HandleSnapshot(const net::ReplSnapshotRequest& req,
                          std::string* payload, std::string* error);
  uint16_t HandlePromote(const net::PromoteRequest& req,
                         std::string* payload, std::string* error);

  /// Snapshot of the per-shard replication state for the SHARDMAP v2
  /// image (net/shard_router.h).
  void FillShardMapState(
      std::vector<uint64_t>* epochs, std::vector<uint8_t>* primaries,
      std::vector<std::vector<std::string>>* replicas) const;

  /// Test hook: the shard's log.
  ReplLog* log(uint32_t shard) { return shards_[shard]->log.get(); }

 private:
  struct Shard {
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> is_primary{true};
    std::unique_ptr<ReplLog> log;
    /// Follower side: highest log_seq applied to the local DB.
    std::atomic<uint64_t> applied_seq{0};
    /// Follower side: the primary's log head as of the last pull.
    std::atomic<uint64_t> primary_head{0};
    /// Follower side: run id of the primary log that `applied_seq`
    /// addresses; 0 until the first snapshot bootstrap completes. A
    /// fetch response carrying a different run id means the primary's
    /// log numbering restarted (process restart, promotion) and the
    /// cursor would alias unrelated records — forces a re-bootstrap.
    std::atomic<uint64_t> primary_run_id{0};
    /// Snapshot bootstrap in progress (keys may still be missing), so
    /// self-promotion must not make this shard serve reads.
    std::atomic<bool> bootstrapping{false};
  };

  /// Uniform fencing: adopts req_epoch when newer (stepping down if
  /// primary), rejects when older. Returns false -> respond kStaleEpoch.
  bool FenceEpoch(uint32_t shard, uint64_t req_epoch);
  /// Bumps the shard's epoch past `min_epoch`, flips it to primary, and
  /// resets its outbound log. Returns the new epoch.
  uint64_t PromoteShard(uint32_t shard, uint64_t min_epoch);
  void UpdateLagGauge(uint32_t shard);
  void PublishShardGauges(uint32_t shard);

  void FollowerLoop();
  /// One pull round for one shard; false on any transport error (the
  /// caller reconnects). Applies records and acks progress.
  bool PullShard(net::Client* client, uint32_t shard, bool* made_progress);
  /// Cursor-paged snapshot bootstrap: converges the local store to
  /// exactly the primary's state (puts every snapshot entry AND sweeps
  /// local keys the snapshot does not carry — deletions and divergent
  /// suffixes do not survive it), then adopts the snapshot's log
  /// position and run id and acks them to the primary.
  bool BootstrapShard(net::Client* client, uint32_t shard);
  /// Deletes every live local key in (after, upto] — `upto` empty
  /// means to the end of the key space — that the sorted `keep` set
  /// (nullptr = keep nothing) does not contain. DB::Scan elides
  /// tombstones, so snapshot pages alone can never convey a deletion;
  /// this is the bootstrap's anti-entropy half.
  bool SweepLocalGap(uint32_t shard, const std::string& after,
                     const std::string& upto,
                     const std::vector<std::string>* keep);
  /// Best-effort fence of the deposed primary after self-promotion.
  void FenceOldPrimary();

  ReplOptions options_;
  std::vector<DB*> dbs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::string self_endpoint_;

  std::thread follower_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

}  // namespace repl
}  // namespace cachekv

#endif  // CACHEKV_REPL_REPLICATION_H_
