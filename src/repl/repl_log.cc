#include "repl/repl_log.h"

#include <algorithm>
#include <chrono>
#include <random>

namespace cachekv {
namespace repl {

namespace {

/// A nonzero token that no two log lifetimes share (process restarts
/// included): followers use inequality, never ordering, so collision
/// resistance is all that matters.
uint64_t DrawRunId() {
  std::random_device rd;
  const uint64_t id =
      (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd());
  return id == 0 ? 1 : id;
}

}  // namespace

ReplLog::ReplLog(size_t max_bytes)
    : max_bytes_(max_bytes), run_id_(DrawRunId()) {}

uint64_t ReplLog::Append(std::string ops_blob, uint64_t last_db_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  Record rec;
  rec.log_seq = ++head_;
  rec.last_db_seq = last_db_seq;
  bytes_ += ops_blob.size();
  rec.ops_blob = std::move(ops_blob);
  records_.push_back(std::move(rec));
  last_db_seq_ = std::max(last_db_seq_, last_db_seq);
  TruncateLocked();
  // WaitCommit callers may be parked waiting for their own record to
  // land (hook dispatch runs behind the writer's publish).
  ack_cv_.notify_all();
  return head_;
}

void ReplLog::TruncateLocked() {
  // Keep at least the newest record resident even if it alone exceeds
  // the budget — a log that evicts its own head can never be fetched.
  while (records_.size() > 1 && bytes_ > max_bytes_) {
    bytes_ -= records_.front().ops_blob.size();
    records_.pop_front();
  }
}

Status ReplLog::Fetch(uint64_t from, uint32_t max,
                      std::vector<Record>* out, uint64_t* head_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (head_out != nullptr) *head_out = head_;
  out->clear();
  if (from == 0) from = 1;
  if (from > head_) return Status::OK();  // Caught up; nothing new.
  if (!records_.empty() && from < records_.front().log_seq) {
    return Status::NotFound("repl log truncated before cursor");
  }
  if (records_.empty()) {
    // head_ > 0 but nothing resident: fully truncated.
    return Status::NotFound("repl log truncated before cursor");
  }
  // Records are dense: index of `from` is from - front.log_seq.
  size_t idx = static_cast<size_t>(from - records_.front().log_seq);
  for (; idx < records_.size() && out->size() < max; idx++) {
    out->push_back(records_[idx]);
  }
  return Status::OK();
}

uint64_t ReplLog::start_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.empty() ? 0 : records_.front().log_seq;
}

uint64_t ReplLog::head_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

uint64_t ReplLog::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ReplLog::run_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_id_;
}

void ReplLog::Ack(const std::string& id, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& pos = acked_[id];
  if (seq <= pos) return;  // Stale or duplicate ack.
  pos = seq;
  ack_cv_.notify_all();
}

uint64_t ReplLog::AckedSeq(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = acked_.find(id);
  return it == acked_.end() ? 0 : it->second;
}

uint32_t ReplLog::AckedCountLocked(uint64_t seq) const {
  uint32_t n = 0;
  for (const auto& [id, pos] : acked_) {
    if (pos >= seq) n++;
  }
  return n;
}

uint32_t ReplLog::AckedCount(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AckedCountLocked(seq);
}

Status ReplLog::WaitAcked(uint64_t seq, uint32_t needed, int timeout_ms) {
  if (needed == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t gen = reset_gen_;
  auto satisfied = [&] {
    return reset_gen_ != gen || AckedCountLocked(seq) >= needed;
  };
  if (ack_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       satisfied)) {
    if (reset_gen_ != gen) {
      return Status::IOError("replication log reset during ack wait");
    }
    return Status::OK();
  }
  return Status::Busy("replication ack timeout");
}

Status ReplLog::WaitCommit(uint64_t db_seq, uint32_t needed,
                           int timeout_ms) {
  if (needed == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t gen = reset_gen_;
  auto satisfied = [&] {
    if (reset_gen_ != gen) return true;
    if (last_db_seq_ < db_seq) return false;  // record not appended yet
    // The caller's record: first one with last_db_seq >= db_seq
    // (appends are db-seq ordered, so records_ is sorted by
    // last_db_seq). If truncation evicted it, any later record still
    // covers it: a follower acking past the eviction either applied
    // the record or bootstrapped from a snapshot that contained the
    // committed write.
    uint64_t target = head_;
    auto it = std::lower_bound(
        records_.begin(), records_.end(), db_seq,
        [](const Record& r, uint64_t v) { return r.last_db_seq < v; });
    if (it != records_.end()) target = it->log_seq;
    return AckedCountLocked(target) >= needed;
  };
  if (ack_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       satisfied)) {
    if (reset_gen_ != gen) {
      return Status::IOError("replication log reset during ack wait");
    }
    return Status::OK();
  }
  return Status::Busy("replication ack timeout");
}

void ReplLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  acked_.clear();
  head_ = 0;
  bytes_ = 0;
  last_db_seq_ = 0;
  run_id_ = DrawRunId();
  reset_gen_++;
  ack_cv_.notify_all();
}

}  // namespace repl
}  // namespace cachekv
