#include "repl/replication.h"

#include <algorithm>
#include <chrono>

#include "fault/fail_point.h"
#include "net/client.h"
#include "obs/metrics.h"

namespace cachekv {
namespace repl {

namespace {

/// Hard cap on records served per REPLBATCH, independent of what the
/// follower asks for.
constexpr uint32_t kMaxBatchesPerPull = 4096;
constexpr uint32_t kMaxSnapshotPage = 1u << 16;

bool SplitEndpoint(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return false;
  }
  unsigned long p = 0;
  for (size_t i = colon + 1; i < endpoint.size(); i++) {
    if (endpoint[i] < '0' || endpoint[i] > '9') return false;
    p = p * 10 + static_cast<unsigned long>(endpoint[i] - '0');
    if (p > 65535) return false;
  }
  if (p == 0) return false;
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

bool ReplTrace() {
  static const bool on = ::getenv("CACHEKV_NET_TRACE") != nullptr;
  return on;
}

long ReplTraceMs() {
  return (long)(std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count() %
                1000000);
}

}  // namespace

const char* AckPolicyName(AckPolicy policy) {
  switch (policy) {
    case AckPolicy::kNone: return "none";
    case AckPolicy::kQuorum: return "quorum";
    case AckPolicy::kAll: return "all";
  }
  return "?";
}

bool ParseAckPolicy(const std::string& name, AckPolicy* out) {
  if (name == "none") {
    *out = AckPolicy::kNone;
  } else if (name == "quorum") {
    *out = AckPolicy::kQuorum;
  } else if (name == "all") {
    *out = AckPolicy::kAll;
  } else {
    return false;
  }
  return true;
}

ReplHub::ReplHub(const ReplOptions& options, std::vector<DB*> dbs)
    : options_(options), dbs_(std::move(dbs)) {
  const bool follower = !options_.primary_endpoint.empty();
  shards_.reserve(dbs_.size());
  for (size_t s = 0; s < dbs_.size(); s++) {
    auto shard = std::make_unique<Shard>();
    shard->log = std::make_unique<ReplLog>(options_.log_bytes_per_shard);
    shard->is_primary.store(!follower, std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
    PublishShardGauges(static_cast<uint32_t>(s));
  }
}

ReplHub::~ReplHub() { Stop(); }

void ReplHub::SetSelfEndpoint(const std::string& endpoint) {
  self_endpoint_ = endpoint;
}

void ReplHub::AttachCommitHooks() {
  for (uint32_t s = 0; s < dbs_.size(); s++) {
    dbs_[s]->SetCommitHook(
        [this, s](const std::vector<KVStore::BatchOp>& ops,
                  SequenceNumber last_seq) { OnCommit(s, ops, last_seq); });
  }
}

void ReplHub::Start() {
  if (options_.primary_endpoint.empty()) return;
  if (started_.exchange(true)) return;
  stop_.store(false);
  follower_thread_ = std::thread([this] { FollowerLoop(); });
}

void ReplHub::Stop() {
  stop_.store(true);
  if (follower_thread_.joinable()) follower_thread_.join();
  started_.store(false);
}

bool ReplHub::IsPrimary(uint32_t shard) const {
  return shards_[shard]->is_primary.load(std::memory_order_acquire);
}

uint64_t ReplHub::Epoch(uint32_t shard) const {
  return shards_[shard]->epoch.load(std::memory_order_acquire);
}

void ReplHub::PublishShardGauges(uint32_t shard) {
  obs::MetricsRegistry* m = dbs_[shard]->metrics();
  Shard* st = shards_[shard].get();
  m->GetGauge("repl.epoch")
      ->Set(static_cast<double>(st->epoch.load(std::memory_order_relaxed)));
  m->GetGauge("repl.is_primary")
      ->Set(st->is_primary.load(std::memory_order_relaxed) ? 1 : 0);
  m->GetGauge("repl.log_start")
      ->Set(static_cast<double>(st->log->start_seq()));
  m->GetGauge("repl.log_head")
      ->Set(static_cast<double>(st->log->head_seq()));
}

void ReplHub::UpdateLagGauge(uint32_t shard) {
  Shard* st = shards_[shard].get();
  const uint64_t head = st->log->head_seq();
  uint64_t lag = 0;
  if (st->is_primary.load(std::memory_order_relaxed)) {
    // Primary: how far the slowest configured replica trails the head.
    uint64_t min_acked = head;
    for (const std::string& replica : options_.replicas) {
      min_acked = std::min(min_acked, st->log->AckedSeq(replica));
    }
    if (!options_.replicas.empty()) lag = head - min_acked;
  } else {
    // Follower: distance between the primary head we last saw and what
    // we have applied (applied_seq counts primary log records).
    const uint64_t applied =
        st->applied_seq.load(std::memory_order_relaxed);
    const uint64_t seen =
        st->primary_head.load(std::memory_order_relaxed);
    lag = seen > applied ? seen - applied : 0;
  }
  dbs_[shard]->metrics()->GetGauge("repl.lag_batches")
      ->Set(static_cast<double>(lag));
}

void ReplHub::OnCommit(uint32_t shard,
                       const std::vector<KVStore::BatchOp>& ops,
                       uint64_t last_db_seq) {
  std::string blob;
  net::EncodeReplOps(&blob, ops);
  Shard* st = shards_[shard].get();
  const uint64_t head = st->log->Append(std::move(blob), last_db_seq);
  dbs_[shard]->metrics()->GetGauge("repl.log_head")
      ->Set(static_cast<double>(head));
}

Status ReplHub::WaitCommitAcked(uint32_t shard) {
  uint32_t needed = 0;
  const uint32_t replicas =
      static_cast<uint32_t>(options_.replicas.size());
  switch (options_.ack) {
    case AckPolicy::kNone: needed = 0; break;
    case AckPolicy::kQuorum: needed = (replicas + 1) / 2; break;
    case AckPolicy::kAll: needed = replicas; break;
  }
  if (needed == 0) return Status::OK();
  Shard* st = shards_[shard].get();
  // Wait on the caller's own write, not the log head: the server worker
  // calls this right after its commit, so the thread-local commit seq
  // names the exact record whose replication the client is owed.
  // Waiting on the head would let concurrent later writes extend the
  // wait past the timeout.
  const uint64_t db_seq = DB::ThreadLastCommitSeq();
  Status s = db_seq != 0
                 ? st->log->WaitCommit(db_seq, needed,
                                       options_.ack_timeout_ms)
                 : st->log->WaitAcked(st->log->head_seq(), needed,
                                      options_.ack_timeout_ms);
  if (!s.ok()) {
    dbs_[shard]->metrics()
        ->GetCounter(s.IsIOError() ? "repl.ack_resets"
                                   : "repl.ack_timeouts")
        ->Increment();
  }
  return s;
}

bool ReplHub::FenceEpoch(uint32_t shard, uint64_t req_epoch) {
  Shard* st = shards_[shard].get();
  uint64_t cur = st->epoch.load(std::memory_order_acquire);
  while (req_epoch > cur) {
    if (st->epoch.compare_exchange_weak(cur, req_epoch,
                                        std::memory_order_acq_rel)) {
      // A newer epoch exists somewhere: if this server believed itself
      // primary it has been superseded — step down so every subsequent
      // client write is rejected with kNotPrimary (stale-primary
      // fencing; docs/REPLICATION.md "Epoch rules").
      if (st->is_primary.exchange(false, std::memory_order_acq_rel)) {
        dbs_[shard]->metrics()->GetCounter("repl.demotions")->Increment();
      }
      PublishShardGauges(shard);
      return true;
    }
  }
  return req_epoch >= cur;
}

uint64_t ReplHub::PromoteShard(uint32_t shard, uint64_t min_epoch) {
  Shard* st = shards_[shard].get();
  uint64_t cur = st->epoch.load(std::memory_order_acquire);
  uint64_t next;
  do {
    next = std::max(cur, min_epoch) + 1;
  } while (!st->epoch.compare_exchange_weak(cur, next,
                                            std::memory_order_acq_rel));
  // The outbound log restarts under the new reign: a promoted follower
  // serves subscribers from scratch (its DB is the source of truth),
  // and the deposed primary must bootstrap anyway.
  st->log->Reset();
  st->applied_seq.store(0, std::memory_order_release);
  st->primary_head.store(0, std::memory_order_release);
  st->primary_run_id.store(0, std::memory_order_release);
  st->is_primary.store(true, std::memory_order_release);
  dbs_[shard]->metrics()->GetCounter("repl.failovers")->Increment();
  PublishShardGauges(shard);
  UpdateLagGauge(shard);
  return next;
}

// Wire-op handlers. ---------------------------------------------------

uint16_t ReplHub::HandleSubscribe(const net::ReplSubscribeRequest& req,
                                  std::string* payload,
                                  std::string* error) {
  if (req.shard >= shards_.size()) {
    *error = "shard out of range";
    return net::kInvalidArgument;
  }
  if (req.follower_id.empty()) {
    *error = "empty follower id";
    return net::kInvalidArgument;
  }
  if (!FenceEpoch(req.shard, req.epoch)) {
    *error = "subscribe epoch behind server";
    return net::kStaleEpoch;
  }
  Shard* st = shards_[req.shard].get();
  // Register the follower (ack position 0) so ack policies and the lag
  // gauge see it before its first REPLACK.
  st->log->Ack(req.follower_id.ToString(), 0);
  net::ReplSubscribeResponse resp;
  resp.epoch = st->epoch.load(std::memory_order_acquire);
  resp.log_start = st->log->start_seq();
  resp.log_head = st->log->head_seq();
  resp.log_run_id = st->log->run_id();
  net::EncodeReplSubscribePayload(payload, resp);
  dbs_[req.shard]->metrics()->GetCounter("repl.subscribes")->Increment();
  return net::kOk;
}

uint16_t ReplHub::HandleBatch(const net::ReplBatchRequest& req,
                              std::string* payload, std::string* error) {
  if (req.shard >= shards_.size()) {
    *error = "shard out of range";
    return net::kInvalidArgument;
  }
  if (fault::AnyActive()) {
    Status injected = fault::Inject("repl.stream.drop");
    if (!injected.ok()) {
      *error = injected.ToString();
      return net::kIOError;
    }
  }
  if (!FenceEpoch(req.shard, req.epoch)) {
    *error = "fetch epoch behind server";
    return net::kStaleEpoch;
  }
  Shard* st = shards_[req.shard].get();
  net::ReplBatchResponse resp;
  std::vector<ReplLog::Record> records;
  const uint32_t max =
      std::min(req.max_batches == 0 ? kMaxBatchesPerPull : req.max_batches,
               kMaxBatchesPerPull);
  Status s = st->log->Fetch(req.from_seq, max, &records, &resp.log_head);
  if (s.IsNotFound()) {
    *error = "cursor behind truncated log; snapshot required";
    return net::kReplLagged;
  }
  // Read the run id AFTER Fetch: if a Reset races in between, the
  // response pairs old-run records with the NEW run id, which the
  // follower rejects (spurious bootstrap — safe). The opposite pairing
  // would let it apply new-run records against a stale cursor.
  resp.log_run_id = st->log->run_id();
  resp.epoch = st->epoch.load(std::memory_order_acquire);
  uint64_t bytes = 0;
  resp.records.reserve(records.size());
  for (ReplLog::Record& rec : records) {
    bytes += rec.ops_blob.size();
    net::ReplRecord wire;
    wire.log_seq = rec.log_seq;
    wire.last_db_seq = rec.last_db_seq;
    wire.ops_blob = std::move(rec.ops_blob);
    resp.records.push_back(std::move(wire));
  }
  net::EncodeReplBatchPayload(payload, resp);
  obs::MetricsRegistry* m = dbs_[req.shard]->metrics();
  m->GetCounter("repl.bytes_streamed")->Increment(bytes);
  m->GetCounter("repl.batches_streamed")->Increment(resp.records.size());
  return net::kOk;
}

uint16_t ReplHub::HandleAck(const net::ReplAckRequest& req,
                            std::string* payload, std::string* error) {
  (void)payload;  // REPLACK success responses are empty.
  if (req.shard >= shards_.size()) {
    *error = "shard out of range";
    return net::kInvalidArgument;
  }
  if (fault::AnyActive()) {
    Status injected = fault::Inject("repl.ack.delay");
    if (!injected.ok()) {
      *error = injected.ToString();
      return net::kIOError;
    }
  }
  if (!FenceEpoch(req.shard, req.epoch)) {
    *error = "ack epoch behind server";
    return net::kStaleEpoch;
  }
  shards_[req.shard]->log->Ack(req.follower_id.ToString(), req.acked_seq);
  dbs_[req.shard]->metrics()->GetCounter("repl.acks")->Increment();
  UpdateLagGauge(req.shard);
  return net::kOk;
}

uint16_t ReplHub::HandleSnapshot(const net::ReplSnapshotRequest& req,
                                 std::string* payload,
                                 std::string* error) {
  if (req.shard >= shards_.size()) {
    *error = "shard out of range";
    return net::kInvalidArgument;
  }
  if (fault::AnyActive()) {
    Status injected = fault::Inject("repl.snapshot.torn");
    if (!injected.ok()) {
      *error = injected.ToString();
      return net::kIOError;
    }
  }
  if (!FenceEpoch(req.shard, req.epoch)) {
    *error = "snapshot epoch behind server";
    return net::kStaleEpoch;
  }
  Shard* st = shards_[req.shard].get();
  net::ReplSnapshotResponse resp;
  // Read the run id BEFORE the log position: the follower adopts this
  // (run, pos) pair, and if a Reset races in between the pairing is
  // old-run/new-pos — the next fetch sees a different run id and
  // re-bootstraps (safe). Reading pos first could pair the new run id
  // with a stale (large) position, silently skipping records.
  resp.log_run_id = st->log->run_id();
  // Capture the log position BEFORE scanning: any write the scan then
  // misses commits after this point, so its record lands at a log_seq
  // > log_pos and the follower's log replay (from the first page's
  // log_pos) reapplies it. Replay converges because records apply in
  // log order.
  resp.log_pos = st->log->head_seq();
  resp.epoch = st->epoch.load(std::memory_order_acquire);
  const uint32_t page = std::min(
      req.max_entries == 0 ? kMaxSnapshotPage : req.max_entries,
      kMaxSnapshotPage);
  // Resume strictly after the cursor: the successor of cursor under
  // bytewise order is cursor + 0x00.
  std::string start;
  if (!req.cursor.empty()) {
    start = req.cursor.ToString();
    start.push_back('\0');
  }
  Status s = dbs_[req.shard]->Scan(start, page, &resp.entries);
  if (!s.ok()) {
    *error = s.ToString();
    return net::WireCodeOf(s);
  }
  resp.done = resp.entries.size() < page;
  net::EncodeReplSnapshotPayload(payload, resp);
  dbs_[req.shard]->metrics()->GetCounter("repl.snapshot_entries")
      ->Increment(resp.entries.size());
  return net::kOk;
}

uint16_t ReplHub::HandlePromote(const net::PromoteRequest& req,
                                std::string* payload, std::string* error) {
  if (req.shard >= shards_.size()) {
    *error = "shard out of range";
    return net::kInvalidArgument;
  }
  const bool was_follower = !IsPrimary(req.shard);
  const uint64_t new_epoch = PromoteShard(req.shard, Epoch(req.shard));
  if (was_follower && !options_.primary_endpoint.empty()) {
    // Best-effort synchronous fence: tell the deposed primary about the
    // new epoch so it demotes itself immediately instead of on its next
    // contact. A dead primary fails the connect fast; it learns the
    // epoch when it rejoins.
    std::string host;
    uint16_t port = 0;
    if (SplitEndpoint(options_.primary_endpoint, &host, &port)) {
      net::ClientOptions copts;
      copts.connect_timeout_ms = 1'000;
      copts.recv_timeout_ms = 2'000;
      net::Client fence(copts);
      if (fence.Connect(host, port).ok()) {
        net::ReplSubscribeRequest sub;
        sub.shard = req.shard;
        sub.epoch = new_epoch;
        const std::string id =
            self_endpoint_.empty() ? "promoted" : self_endpoint_;
        sub.follower_id = id;
        net::ReplSubscribeResponse ignored;
        fence.ReplSubscribe(sub, &ignored);
      }
    }
  }
  net::EncodePromotePayload(payload, new_epoch);
  return net::kOk;
}

void ReplHub::FillShardMapState(
    std::vector<uint64_t>* epochs, std::vector<uint8_t>* primaries,
    std::vector<std::vector<std::string>>* replicas) const {
  epochs->clear();
  primaries->clear();
  replicas->clear();
  for (uint32_t s = 0; s < shards_.size(); s++) {
    epochs->push_back(Epoch(s));
    primaries->push_back(IsPrimary(s) ? 1 : 0);
    // Failover candidates for clients: the configured replica set, and
    // (on a follower) the primary we stream from.
    std::vector<std::string> reps = options_.replicas;
    if (!IsPrimary(s) && !options_.primary_endpoint.empty()) {
      reps.push_back(options_.primary_endpoint);
    }
    replicas->push_back(std::move(reps));
  }
}

// Follower machinery. -------------------------------------------------

bool ReplHub::BootstrapShard(net::Client* client, uint32_t shard) {
  Shard* st = shards_[shard].get();
  st->bootstrapping.store(true, std::memory_order_release);
  dbs_[shard]->metrics()->GetCounter("repl.bootstraps")->Increment();
  uint64_t log_pos = 0;
  uint64_t run_id = 0;
  bool first = true;
  std::string cursor;
  std::string swept_upto;  // local keys <= this are reconciled
  bool ok = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    net::ReplSnapshotRequest req;
    req.shard = shard;
    req.epoch = Epoch(shard);
    req.cursor = cursor;
    req.max_entries = options_.snapshot_page;
    net::ReplSnapshotResponse resp;
    Status s = client->ReplSnapshot(req, &resp);
    if (!s.ok()) break;  // reconnect / restart the bootstrap
    if (resp.epoch > Epoch(shard)) FenceEpoch(shard, resp.epoch);
    if (first) {
      // Later pages capture later log positions; replay must start at
      // the FIRST page's position to cover writes racing the scan.
      log_pos = resp.log_pos;
      run_id = resp.log_run_id;
      first = false;
    } else if (resp.log_run_id != run_id) {
      // The primary's log restarted mid-bootstrap (process restart or
      // promotion): the captured log_pos addresses nothing in the new
      // numbering. Abandon and restart from scratch.
      break;
    }
    if (!resp.entries.empty()) {
      std::vector<KVStore::BatchOp> ops;
      std::vector<std::string> page_keys;
      ops.reserve(resp.entries.size());
      page_keys.reserve(resp.entries.size());
      for (auto& [key, value] : resp.entries) {
        page_keys.push_back(key);
        KVStore::BatchOp op;
        op.key = std::move(key);
        op.value = std::move(value);
        ops.push_back(std::move(op));
      }
      const std::string page_last = ops.back().key;
      if (!dbs_[shard]->ApplyBatch(ops).ok()) break;
      // Anti-entropy: the snapshot is the whole truth of the primary's
      // key space up to page_last, so any local key in that range the
      // page did NOT carry was deleted on the primary — or is a
      // divergent unacked suffix of a deposed primary rejoining as a
      // follower — and must go, or it resurrects after failover.
      if (!SweepLocalGap(shard, swept_upto, page_last, &page_keys)) break;
      swept_upto = page_last;
      cursor = page_last;
    }
    if (resp.done) {
      // Local keys past the last snapshot key are equally dead.
      if (!SweepLocalGap(shard, swept_upto, std::string(), nullptr)) break;
      st->applied_seq.store(log_pos, std::memory_order_release);
      st->primary_run_id.store(run_id, std::memory_order_release);
      // Report the adopted position: until the first streamed record
      // this follower would otherwise sit at acked 0, stalling ack=all
      // writes on the primary for the full ack timeout.
      net::ReplAckRequest ack;
      ack.shard = shard;
      ack.epoch = Epoch(shard);
      ack.follower_id = self_endpoint_;
      ack.acked_seq = log_pos;
      client->ReplAck(ack);  // best effort; the next pull re-acks
      ok = true;
      break;
    }
  }
  st->bootstrapping.store(false, std::memory_order_release);
  return ok;
}

bool ReplHub::SweepLocalGap(uint32_t shard, const std::string& after,
                            const std::string& upto,
                            const std::vector<std::string>* keep) {
  constexpr size_t kSweepPage = 512;
  std::string start = after;
  if (!start.empty()) start.push_back('\0');  // resume strictly after
  uint64_t deleted = 0;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return false;
    std::vector<std::pair<std::string, std::string>> local;
    if (!dbs_[shard]->Scan(start, kSweepPage, &local).ok()) return false;
    bool past_end = local.size() < kSweepPage;
    for (const auto& [key, value] : local) {
      (void)value;
      if (!upto.empty() && key > upto) {
        past_end = true;
        break;
      }
      if (keep != nullptr &&
          std::binary_search(keep->begin(), keep->end(), key)) {
        continue;
      }
      if (!dbs_[shard]->Delete(key).ok()) return false;
      deleted++;
    }
    if (past_end) break;
    start = local.back().first;
    start.push_back('\0');
  }
  if (deleted > 0) {
    dbs_[shard]->metrics()->GetCounter("repl.sweep_deletes")
        ->Increment(deleted);
  }
  return true;
}

bool ReplHub::PullShard(net::Client* client, uint32_t shard,
                        bool* made_progress) {
  Shard* st = shards_[shard].get();
  net::ReplBatchRequest req;
  req.shard = shard;
  req.epoch = Epoch(shard);
  req.from_seq = st->applied_seq.load(std::memory_order_acquire) + 1;
  req.max_batches = options_.pull_batch_max;
  net::ReplBatchResponse resp;
  Status s = client->ReplFetch(req, &resp);
  if (ReplTrace())
    fprintf(stderr, "[%ld fol] fetch shard=%u from=%llu -> %s recs=%zu\n",
            ReplTraceMs(), shard, (unsigned long long)req.from_seq,
            s.ToString().c_str(), resp.records.size());
  if (s.IsNotFound()) {
    // kReplLagged: the primary truncated past our cursor.
    if (!BootstrapShard(client, shard)) return client->connected();
    *made_progress = true;
    return true;
  }
  if (s.IsInvalidArgument()) {
    if (client->last_wire_code() != net::kStaleEpoch) {
      // Not an epoch race: the peer rejected the request itself
      // (replication disabled there, shard out of range — a
      // misconfiguration). Surface it and take the reconnect backoff
      // instead of spinning subscribe attempts forever.
      dbs_[shard]->metrics()->GetCounter("repl.config_errors")
          ->Increment();
      fprintf(stderr,
              "cachekv: replication fetch for shard %u rejected by %s: "
              "%s\n",
              shard, options_.primary_endpoint.c_str(),
              s.ToString().c_str());
      return false;
    }
    // kStaleEpoch: re-learn the primary's epoch via a subscribe.
    net::ReplSubscribeRequest sub;
    sub.shard = shard;
    sub.epoch = Epoch(shard);
    sub.follower_id = self_endpoint_;
    net::ReplSubscribeResponse subresp;
    if (!client->ReplSubscribe(sub, &subresp).ok()) {
      return client->connected();
    }
    if (subresp.epoch > Epoch(shard)) FenceEpoch(shard, subresp.epoch);
    return true;
  }
  if (!s.ok()) return false;  // transport error: reconnect
  if (resp.epoch > Epoch(shard)) FenceEpoch(shard, resp.epoch);
  st->primary_head.store(resp.log_head, std::memory_order_release);
  uint64_t applied = st->applied_seq.load(std::memory_order_acquire);
  const uint64_t known_run =
      st->primary_run_id.load(std::memory_order_acquire);
  if (resp.log_run_id != known_run || resp.log_head < applied) {
    // The primary's log is not the one our cursor indexes: a different
    // run id means its numbering restarted (process restart, epoch
    // promotion) and the same log_seqs now name unrelated records; a
    // head behind our cursor is the same restart seen before any new
    // writes. Either way the cursor is meaningless — a fetch would
    // report "caught up" until the head passes it and then silently
    // apply aliased records. Re-sync from a snapshot. This also covers
    // first contact (stored run id 0), closing the recovered-DB/fresh-
    // log gap: an empty fetch window proves nothing about DB equality.
    if (known_run != 0) {
      dbs_[shard]->metrics()->GetCounter("repl.log_reset_bootstraps")
          ->Increment();
    }
    if (!BootstrapShard(client, shard)) return client->connected();
    *made_progress = true;
    return true;
  }
  for (const net::ReplRecord& rec : resp.records) {
    if (rec.log_seq <= applied) continue;  // duplicate delivery
    if (rec.log_seq != applied + 1) {
      // A gap means the log was truncated between fetch rounds.
      if (!BootstrapShard(client, shard)) return client->connected();
      *made_progress = true;
      return true;
    }
    std::vector<KVStore::BatchOp> ops;
    Status parsed = net::ParseReplOps(rec.ops_blob, &ops);
    if (!parsed.ok() || !dbs_[shard]->ApplyBatch(ops).ok()) {
      return true;  // local failure: retry the same record next round
    }
    applied = rec.log_seq;
    st->applied_seq.store(applied, std::memory_order_release);
    dbs_[shard]->metrics()->GetCounter("repl.applied_batches")
        ->Increment();
    *made_progress = true;
  }
  if (!resp.records.empty()) {
    net::ReplAckRequest ack;
    ack.shard = shard;
    ack.epoch = Epoch(shard);
    ack.follower_id = self_endpoint_;
    ack.acked_seq = applied;
    if (!client->ReplAck(ack).ok()) return client->connected();
  }
  UpdateLagGauge(shard);
  return true;
}

void ReplHub::FenceOldPrimary() {
  std::string host;
  uint16_t port = 0;
  if (!SplitEndpoint(options_.primary_endpoint, &host, &port)) return;
  net::ClientOptions copts;
  copts.connect_timeout_ms = 1'000;
  copts.recv_timeout_ms = 2'000;
  // One delivery attempt is not enough: a deposed primary that is alive
  // but briefly unresponsive (CPU-starved, mid-GC of connections) would
  // keep accepting writes until some other contact happened to carry
  // the new epoch. Retry per shard until the fence is acknowledged; a
  // dead primary fails the connect fast and learns the epoch when it
  // rejoins.
  std::vector<bool> fenced(shards_.size(), false);
  for (int attempt = 0; attempt < 5; attempt++) {
    if (stop_.load(std::memory_order_relaxed)) return;
    net::Client fence(copts);
    if (fence.Connect(host, port).ok()) {
      for (uint32_t s = 0; s < shards_.size(); s++) {
        if (fenced[s] || !IsPrimary(s)) continue;
        net::ReplSubscribeRequest sub;
        sub.shard = s;
        sub.epoch = Epoch(s);
        sub.follower_id =
            self_endpoint_.empty() ? "promoted" : self_endpoint_;
        net::ReplSubscribeResponse ignored;
        if (fence.ReplSubscribe(sub, &ignored).ok()) fenced[s] = true;
      }
    }
    bool pending = false;
    for (uint32_t s = 0; s < shards_.size(); s++) {
      if (!fenced[s] && IsPrimary(s)) pending = true;
    }
    if (!pending) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
}

void ReplHub::FollowerLoop() {
  std::string host;
  uint16_t port = 0;
  if (!SplitEndpoint(options_.primary_endpoint, &host, &port)) return;
  net::ClientOptions copts;
  copts.connect_timeout_ms = 2'000;
  copts.recv_timeout_ms = 10'000;
  net::Client client(copts);
  bool subscribed = false;
  auto last_contact = std::chrono::steady_clock::now();
  auto following = [this] {
    for (uint32_t s = 0; s < shards_.size(); s++) {
      if (!IsPrimary(s)) return true;
    }
    return false;
  };
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!following()) {
      // Every shard promoted (PROMOTE op or auto-promote below): this
      // server is now a primary; stop pulling and fence the old one.
      FenceOldPrimary();
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    auto since_contact =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - last_contact)
            .count();
    if (options_.auto_promote_ms > 0 &&
        since_contact > options_.auto_promote_ms) {
      bool bootstrapping = false;
      for (auto& st : shards_) {
        if (st->bootstrapping.load(std::memory_order_acquire)) {
          bootstrapping = true;
        }
      }
      // Never self-promote a shard whose bootstrap is incomplete: its
      // DB is missing keys the dead primary acked.
      if (!bootstrapping) {
        for (uint32_t s = 0; s < shards_.size(); s++) {
          if (!IsPrimary(s)) PromoteShard(s, Epoch(s));
        }
        continue;  // next iteration exits via following() == false
      }
    }
    if (!client.connected()) {
      subscribed = false;
      if (!client.Connect(host, port).ok()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.reconnect_backoff_ms));
        continue;
      }
    }
    if (!subscribed) {
      bool all_ok = true;
      for (uint32_t s = 0; s < shards_.size(); s++) {
        if (IsPrimary(s)) continue;
        net::ReplSubscribeRequest sub;
        sub.shard = s;
        sub.epoch = Epoch(s);
        sub.follower_id = self_endpoint_;
        net::ReplSubscribeResponse resp;
        Status st = client.ReplSubscribe(sub, &resp);
        if (ReplTrace())
          fprintf(stderr, "[%ld fol] subscribe shard=%u -> %s\n",
                  ReplTraceMs(), s, st.ToString().c_str());
        if (!st.ok()) {
          all_ok = false;
          if (!client.connected()) break;
          continue;
        }
        if (resp.epoch > Epoch(s)) FenceEpoch(s, resp.epoch);
      }
      if (!client.connected()) continue;
      subscribed = all_ok;
      if (all_ok) last_contact = std::chrono::steady_clock::now();
    }
    bool progress = false;
    bool transport_ok = true;
    for (uint32_t s = 0;
         s < shards_.size() && !stop_.load(std::memory_order_relaxed);
         s++) {
      if (IsPrimary(s)) continue;
      if (!PullShard(&client, s, &progress)) {
        transport_ok = false;
        break;
      }
    }
    if (!transport_ok || !client.connected()) {
      client.Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.reconnect_backoff_ms));
      continue;
    }
    last_contact = std::chrono::steady_clock::now();
    if (!progress) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.pull_idle_ms));
    }
  }
}

}  // namespace repl
}  // namespace cachekv
