#ifndef CACHEKV_CORE_SUB_MEMTABLE_H_
#define CACHEKV_CORE_SUB_MEMTABLE_H_

#include <cstdint>

#include "core/record_format.h"
#include "lsm/dbformat.h"
#include "pmem/pmem_env.h"
#include "util/port.h"
#include "util/status.h"

namespace cachekv {

/// Lifecycle states of a sub-MemTable (§III-A).
enum class SubState : uint8_t {
  kFree = 0,       // unassigned, ready for a core
  kAllocated = 1,  // owned by a core, absorbing writes
  kImmutable = 2,  // sealed, awaiting the copy-based flush
};

/// SubMemTable is a fixed region inside the CAT pseudo-locked pool whose
/// persistent layout is (§III-A, Figure 7):
///
///   offset 0:  fixed64 packed header
///                { table_counter:38 | state:2 | tail_pointer:24 }
///   offset 8:  fixed64 remaining_space
///   offset 16: fixed64 slot_size (bytes, including this header; lets
///              crash recovery walk the variable-size pool)
///   offset 24..63: reserved
///   offset 64: data region (appended records, record_format.h layout)
///
/// The counter/state/tail triple is updated by one 64-bit CAS so a crash
/// can never observe a record as committed unless all its bytes precede
/// the header update in the (persistent) cache.
///
/// SubMemTable is a stateless handle: all state lives in the simulated
/// PMem, so any thread (or a recovery pass) can construct a handle over a
/// slot offset.
class SubMemTable {
 public:
  static constexpr uint64_t kDataOffset = 64;
  static constexpr uint64_t kCounterBits = 38;
  static constexpr uint64_t kStateBits = 2;
  static constexpr uint64_t kTailBits = 24;

  /// Parsed form of the packed header.
  struct Header {
    uint64_t counter = 0;
    SubState state = SubState::kFree;
    uint32_t tail = 0;  // next append offset, relative to the data region
  };

  static uint64_t Pack(const Header& h);
  static Header Unpack(uint64_t packed);

  /// Wraps the slot at [slot_offset, slot_offset + slot_size).
  SubMemTable(PmemEnv* env, uint64_t slot_offset, uint64_t slot_size);

  // Copyable handle.
  SubMemTable(const SubMemTable&) = default;
  SubMemTable& operator=(const SubMemTable&) = default;

  /// Formats the slot: Free state, zero counter/tail, persistent
  /// slot_size field.
  void Format();

  /// Reads the current packed header.
  Header ReadHeader() const;

  /// CAS from `expected` (repacked) to `desired`; on failure *expected
  /// receives the observed header.
  bool CasHeader(Header* expected, const Header& desired);

  /// Appends one record; updates the header with a single CAS. Returns
  /// OutOfSpace when the record does not fit (the owner then seals the
  /// table), Busy when the table is not in the kAllocated state.
  Status Append(SequenceNumber seq, ValueType type, const Slice& key,
                const Slice& value);

  /// Appends `record_count` pre-encoded records (record_format.h layout,
  /// back to back) and publishes them with ONE header CAS — the atomic
  /// commit point of a multi-key transaction (§III-A discussion). Same
  /// failure modes as Append.
  Status AppendEncoded(const Slice& records, uint32_t record_count);

  /// Transitions kFree -> kAllocated. False if the table was not free.
  bool TryAcquire();

  /// Transitions kAllocated -> kImmutable. False on state mismatch.
  bool Seal();

  /// Resets to an empty kFree table (after its contents were flushed).
  void Release();

  uint64_t slot_offset() const { return slot_offset_; }
  uint64_t slot_size() const { return slot_size_; }
  uint64_t data_offset() const { return slot_offset_ + kDataOffset; }
  uint64_t data_capacity() const { return slot_size_ - kDataOffset; }

  /// Reads the persistent remaining_space field.
  uint64_t ReadRemainingSpace() const;

  /// Reads the persisted slot size (recovery: walking the pool).
  static uint64_t ReadSlotSize(PmemEnv* env, uint64_t slot_offset);

 private:
  uint64_t HeaderAddr() const { return slot_offset_; }

  PmemEnv* env_;
  uint64_t slot_offset_;
  uint64_t slot_size_;
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_SUB_MEMTABLE_H_
