#include "core/sub_skiplist.h"

#include <cassert>

#include "util/coding.h"

namespace cachekv {

namespace {

// Node entry layout in the arena:
//   varint32 internal_key_len
//   internal key bytes (user key + fixed64 tag)
//   fixed32 record_offset (within the table's data region)
Slice EntryKey(const char* entry) {
  uint32_t len;
  const char* p = GetVarint32Ptr(entry, entry + 5, &len);
  return Slice(p, len);
}

uint32_t EntryOffset(const char* entry) {
  Slice key = EntryKey(entry);
  return DecodeFixed32(key.data() + key.size());
}

const char* EncodeSeekEntry(std::string* scratch,
                            const Slice& internal_key) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(internal_key.size()));
  scratch->append(internal_key.data(), internal_key.size());
  return scratch->data();
}

}  // namespace

int SubSkiplist::KeyComparator::operator()(const char* a,
                                           const char* b) const {
  return comparator.Compare(EntryKey(a), EntryKey(b));
}

SubSkiplist::SubSkiplist(PmemEnv* env, uint64_t data_base)
    : env_(env), data_base_(data_base), index_(comparator_, &arena_) {}

Status SubSkiplist::SyncWithTable(const SubMemTable& table) {
  // Fast path: compare the counters without taking the mutex.
  SubMemTable::Header h = table.ReadHeader();
  if (h.counter == list_counter()) {
    return Status::OK();
  }
  // Repeat the catch-up until the counters agree: the table may keep
  // absorbing writes while we sync (§III-B).
  for (;;) {
    if (h.counter < list_counter()) {
      // The slot was flushed, released, and recycled beneath a stale
      // sync request: this index is already final. Nothing to do.
      return Status::OK();
    }
    Status s = SyncTo(h.counter, h.tail);
    if (!s.ok()) {
      return s;
    }
    h = table.ReadHeader();
    if (h.counter == list_counter()) {
      return Status::OK();
    }
  }
}

Status SubSkiplist::SyncTo(uint64_t target_counter, uint32_t target_tail) {
  std::lock_guard<std::mutex> lock(sync_mu_);
  uint64_t counter = list_counter_.load(std::memory_order_relaxed);
  uint32_t tail = list_tail_.load(std::memory_order_relaxed);
  if (counter >= target_counter) {
    return Status::OK();
  }
  const uint64_t base = data_base();
  std::string key;
  while (counter < target_counter && tail < target_tail) {
    RecordHeader record;
    if (!DecodeRecordHeaderAt(env_, base + tail, &record)) {
      return Status::Corruption("bad record during sub-skiplist sync");
    }
    LoadRecordKey(env_, base + tail, record, &key);

    // Build the index node: the internal key plus the record offset.
    std::string ikey;
    AppendInternalKey(&ikey, Slice(key), record.sequence, record.type);
    const size_t encoded_len =
        VarintLength(ikey.size()) + ikey.size() + sizeof(uint32_t);
    char* buf = arena_.Allocate(encoded_len);
    char* p = EncodeVarint32(buf, static_cast<uint32_t>(ikey.size()));
    memcpy(p, ikey.data(), ikey.size());
    p += ikey.size();
    EncodeFixed32(p, tail);
    index_.Insert(buf);

    uint64_t seen = max_sequence_.load(std::memory_order_relaxed);
    if (record.sequence > seen) {
      max_sequence_.store(record.sequence, std::memory_order_release);
    }
    tail += static_cast<uint32_t>(record.TotalSize());
    counter++;
    list_tail_.store(tail, std::memory_order_release);
    list_counter_.store(counter, std::memory_order_release);
  }
  if (counter < target_counter) {
    return Status::Corruption(
        "sub-memtable tail exhausted before counter target");
  }
  return Status::OK();
}

bool SubSkiplist::Get(const Slice& user_key, Candidate* out,
                      SequenceNumber max_sequence) const {
  // Internal keys order by sequence descending within a user key, so
  // seeking at max_sequence lands on the freshest version visible at
  // that bound (kMaxSequenceNumber = the unbounded latest read).
  std::string target_ikey;
  AppendInternalKey(&target_ikey, user_key, max_sequence,
                    kValueTypeForSeek);
  std::string scratch;
  Index::Iterator iter(&index_);
  iter.Seek(EncodeSeekEntry(&scratch, Slice(target_ikey)));
  if (!iter.Valid()) {
    return false;
  }
  Slice found = EntryKey(iter.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(found, &parsed) || parsed.user_key != user_key) {
    return false;
  }
  out->sequence = parsed.sequence;
  out->type = parsed.type;
  out->record_offset = EntryOffset(iter.key());
  return true;
}

Status SubSkiplist::ReadValue(const Candidate& candidate,
                              std::string* value) const {
  const uint64_t addr = data_base() + candidate.record_offset;
  RecordHeader record;
  if (!DecodeRecordHeaderAt(env_, addr, &record)) {
    return Status::Corruption("bad record under sub-skiplist candidate");
  }
  LoadRecordValue(env_, addr, record, value);
  return Status::OK();
}

class SubSkiplist::Iter : public Iterator {
 public:
  explicit Iter(const SubSkiplist* list)
      : list_(list), iter_(&list->index_) {}

  bool Valid() const override { return iter_.Valid(); }

  void SeekToFirst() override {
    iter_.SeekToFirst();
    loaded_ = false;
  }

  void Seek(const Slice& internal_key) override {
    iter_.Seek(EncodeSeekEntry(&scratch_, internal_key));
    loaded_ = false;
  }

  void Next() override {
    iter_.Next();
    loaded_ = false;
  }

  Slice key() const override { return EntryKey(iter_.key()); }

  Slice value() const override {
    if (!loaded_) {
      const uint64_t addr =
          list_->data_base() + EntryOffset(iter_.key());
      RecordHeader record;
      if (DecodeRecordHeaderAt(list_->env_, addr, &record)) {
        LoadRecordValue(list_->env_, addr, record, &value_);
      } else {
        value_.clear();
      }
      loaded_ = true;
    }
    return Slice(value_);
  }

  Status status() const override { return Status::OK(); }

 private:
  const SubSkiplist* list_;
  Index::Iterator iter_;
  std::string scratch_;
  mutable std::string value_;
  mutable bool loaded_ = false;
};

Iterator* SubSkiplist::NewIterator() const { return new Iter(this); }

class SubSkiplistRawCursor : public SubSkiplist::RawCursor {
 public:
  explicit SubSkiplistRawCursor(
      const SkipList<const char*, SubSkiplist::KeyComparator>* index)
      : iter_(index) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Next() override { iter_.Next(); }
  Slice internal_key() const override { return EntryKey(iter_.key()); }
  uint32_t record_offset() const override {
    return EntryOffset(iter_.key());
  }

 private:
  SkipList<const char*, SubSkiplist::KeyComparator>::Iterator iter_;
};

std::unique_ptr<SubSkiplist::RawCursor> SubSkiplist::NewRawCursor() const {
  return std::make_unique<SubSkiplistRawCursor>(&index_);
}

}  // namespace cachekv
