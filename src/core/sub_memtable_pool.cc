#include "core/sub_memtable_pool.h"

#include <cassert>

namespace cachekv {

SubMemTablePool::SubMemTablePool(PmemEnv* env,
                                 const CacheKVOptions& options)
    : env_(env),
      options_(options),
      target_slot_bytes_(options.sub_memtable_bytes) {}

Status SubMemTablePool::ValidateOptions(const CacheKVOptions& options) {
  if (options.min_sub_memtable_bytes == 0 ||
      options.sub_memtable_bytes <
          SubMemTable::kDataOffset + kCacheLineSize) {
    return Status::InvalidArgument("sub-memtable size too small");
  }
  if (options.pool_bytes == 0 ||
      options.pool_bytes % options.sub_memtable_bytes != 0) {
    return Status::InvalidArgument(
        "pool_bytes must be a multiple of sub_memtable_bytes");
  }
  if (options.sub_memtable_bytes % options.min_sub_memtable_bytes != 0) {
    return Status::InvalidArgument(
        "sub_memtable_bytes must be a multiple of min_sub_memtable_bytes");
  }
  return Status::OK();
}

void SubMemTablePool::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  for (uint64_t off = 0; off < options_.pool_bytes;
       off += options_.sub_memtable_bytes) {
    SlotInfo info;
    info.offset = off;
    info.size = options_.sub_memtable_bytes;
    info.free = true;
    SubMemTable(env_, off, info.size).Format();
    slots_.push_back(info);
  }
  approx_slots_.store(static_cast<int>(slots_.size()),
                      std::memory_order_relaxed);
  target_slot_bytes_.store(options_.sub_memtable_bytes,
                           std::memory_order_relaxed);
}

Status SubMemTablePool::RecoverScan(
    const std::function<Status(const SubMemTable&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  uint64_t off = 0;
  while (off < options_.pool_bytes) {
    uint64_t size = SubMemTable::ReadSlotSize(env_, off);
    if (size < SubMemTable::kDataOffset + kCacheLineSize ||
        size > options_.pool_bytes - off ||
        size % options_.min_sub_memtable_bytes != 0) {
      return Status::Corruption("unparseable sub-memtable pool layout");
    }
    SubMemTable table(env_, off, size);
    SubMemTable::Header h = table.ReadHeader();
    // Plausibility-check the packed header before replaying anything:
    // recovery must report clobbered headers as corruption rather than
    // replay garbage (or silently skip a table that held committed
    // records).
    if (static_cast<uint8_t>(h.state) >
        static_cast<uint8_t>(SubState::kImmutable)) {
      return Status::Corruption("sub-memtable header has invalid state");
    }
    if (h.tail > size - SubMemTable::kDataOffset) {
      return Status::Corruption(
          "sub-memtable tail points beyond the slot capacity");
    }
    if (h.state == SubState::kFree && (h.counter != 0 || h.tail != 0)) {
      return Status::Corruption(
          "free sub-memtable with nonzero counter or tail");
    }
    if (h.counter > 0 &&
        (h.state == SubState::kAllocated ||
         h.state == SubState::kImmutable)) {
      Status s = fn(table);
      if (!s.ok()) {
        return s;
      }
    }
    table.Release();  // back to Free with the same size class
    SlotInfo info;
    info.offset = off;
    info.size = size;
    info.free = true;
    slots_.push_back(info);
    off += size;
  }
  approx_slots_.store(static_cast<int>(slots_.size()),
                      std::memory_order_relaxed);
  return Status::OK();
}

void SubMemTablePool::SplitLocked(size_t idx) {
  SlotInfo& slot = slots_[idx];
  assert(slot.free);
  assert(slot.size >= 2 * options_.min_sub_memtable_bytes);
  const uint64_t half = slot.size / 2;
  // Persist the second half's header first, then shrink the first, so a
  // crash mid-split still leaves a walkable pool.
  SubMemTable(env_, slot.offset + half, half).Format();
  SubMemTable(env_, slot.offset, half).Format();
  SlotInfo second;
  second.offset = slot.offset + half;
  second.size = half;
  second.free = true;
  slot.size = half;
  slots_.insert(slots_.begin() + idx + 1, second);
  approx_slots_.store(static_cast<int>(slots_.size()),
                      std::memory_order_relaxed);
}

bool SubMemTablePool::TryMergeLocked(size_t idx) {
  if (idx + 1 >= slots_.size()) {
    return false;
  }
  SlotInfo& a = slots_[idx];
  SlotInfo& b = slots_[idx + 1];
  if (!a.free || !b.free || a.size != b.size) {
    return false;
  }
  // Buddy alignment: a merge is only valid when the pair forms an
  // aligned slot of double size.
  if (a.offset % (2 * a.size) != 0) {
    return false;
  }
  a.size *= 2;
  SubMemTable(env_, a.offset, a.size).Format();
  slots_.erase(slots_.begin() + idx + 1);
  approx_slots_.store(static_cast<int>(slots_.size()),
                      std::memory_order_relaxed);
  return true;
}

void SubMemTablePool::ApplyElasticityLocked(size_t idx) {
  const uint64_t target =
      target_slot_bytes_.load(std::memory_order_relaxed);
  // Shrink: split the freed slot down to the target class so bursty
  // writers find more free tables.
  while (slots_[idx].size > target &&
         slots_[idx].size >= 2 * options_.min_sub_memtable_bytes) {
    SplitLocked(idx);
  }
  // Grow: merge buddies back while under-target.
  while (slots_[idx].size < target) {
    // Try merging with the next neighbour; if the buddy is the previous
    // slot, retry from there.
    if (TryMergeLocked(idx)) {
      continue;
    }
    if (idx > 0 && slots_[idx - 1].free &&
        slots_[idx - 1].size == slots_[idx].size &&
        slots_[idx - 1].offset % (2 * slots_[idx - 1].size) == 0) {
      idx = idx - 1;
      if (TryMergeLocked(idx)) {
        continue;
      }
    }
    break;
  }
}

Status SubMemTablePool::Acquire(SubMemTable* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t target =
      target_slot_bytes_.load(std::memory_order_relaxed);
  int best = -1;
  for (size_t i = 0; i < slots_.size(); i++) {
    if (!slots_[i].free) {
      continue;
    }
    if (best < 0 || (slots_[best].size != target &&
                     slots_[i].size == target)) {
      best = static_cast<int>(i);
    }
    if (slots_[best].size == target) {
      break;
    }
  }
  if (best < 0) {
    total_misses_.fetch_add(1, std::memory_order_relaxed);
    acquire_streak_ = 0;
    uint64_t streak = miss_streak_.fetch_add(1,
                                             std::memory_order_relaxed) +
                      1;
    if (streak >= options_.elasticity_miss_threshold) {
      // Elastic shrink (§III-A): halve the target so the next released
      // slots split, increasing the number of free tables. The miss
      // counter re-initializes after the adjustment.
      uint64_t cur = target_slot_bytes_.load(std::memory_order_relaxed);
      if (cur > options_.min_sub_memtable_bytes) {
        target_slot_bytes_.store(cur / 2, std::memory_order_relaxed);
      }
      miss_streak_.store(0, std::memory_order_relaxed);
    }
    return Status::Busy("no free sub-memtable");
  }
  // If the chosen slot is larger than the target, split it now so the
  // remainder stays available.
  while (slots_[best].size > target &&
         slots_[best].size >= 2 * options_.min_sub_memtable_bytes) {
    SplitLocked(static_cast<size_t>(best));
  }
  SlotInfo& slot = slots_[best];
  SubMemTable table(env_, slot.offset, slot.size);
  if (!table.TryAcquire()) {
    return Status::Corruption("pool directory out of sync with headers");
  }
  slot.free = false;
  miss_streak_.store(0, std::memory_order_relaxed);
  // Sustained success with spare capacity lets the pool grow the size
  // class back toward the configured maximum (fewer, larger tables ->
  // less background flush overhead).
  if (++acquire_streak_ >= 64) {
    acquire_streak_ = 0;
    int free_count = 0;
    for (const auto& s : slots_) {
      if (s.free) free_count++;
    }
    if (free_count * 4 >= static_cast<int>(slots_.size())) {
      uint64_t cur = target_slot_bytes_.load(std::memory_order_relaxed);
      if (cur < options_.sub_memtable_bytes) {
        target_slot_bytes_.store(cur * 2, std::memory_order_relaxed);
      }
    }
  }
  *out = table;
  return Status::OK();
}

Status SubMemTablePool::Release(const SubMemTable& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < slots_.size(); i++) {
    if (slots_[i].offset == table.slot_offset()) {
      if (slots_[i].size != table.slot_size()) {
        return Status::Corruption(
            "released table size does not match the pool directory");
      }
      // Only clear the persistent header once the directory agrees the
      // slot is ours; a mismatched release must not erase data.
      SubMemTable handle = table;  // stateless handle; state lives in PMem
      handle.Release();
      slots_[i].free = true;
      ApplyElasticityLocked(i);
      return Status::OK();
    }
  }
  return Status::Corruption("released table not in pool directory");
}

int SubMemTablePool::NumSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(slots_.size());
}

int SubMemTablePool::NumFreeSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& s : slots_) {
    if (s.free) count++;
  }
  return count;
}

}  // namespace cachekv
