#ifndef CACHEKV_CORE_FLUSHED_ZONE_H_
#define CACHEKV_CORE_FLUSHED_ZONE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/sub_skiplist.h"
#include "index/skiplist.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/merger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pmem/pmem_env.h"
#include "util/arena.h"

namespace cachekv {

/// One sub-ImmMemTable that was copy-flushed out of the CPU caches into
/// the PMem staging area (§III-C/§III-D).
struct FlushedTable {
  uint64_t region_offset = 0;  // region start (header + data copied)
  uint64_t region_size = 0;    // allocated size
  uint32_t data_tail = 0;      // bytes of records in the data region
  uint64_t entry_count = 0;
  SequenceNumber max_sequence = 0;
  /// Checksum of the data_tail record bytes, persisted in the zone
  /// registry so recovery can tell clobbered table data from a valid
  /// staged table (the record format itself carries no checksums).
  uint32_t data_crc = 0;
  std::shared_ptr<SubSkiplist> index;  // re-pointed at the copy
  /// Whether the current global skiplist already covers this table;
  /// readers probe uncovered tables individually until the next
  /// compaction pass.
  bool in_global = false;
};

/// GlobalSkiplist is the compacted DRAM index over every flushed
/// sub-ImmMemTable: one entry per live (user key, seq) with invalid
/// (superseded) nodes removed (§III-D, Figure 9). It is immutable once
/// built; the compactor swaps in a fresh one.
class GlobalSkiplist {
 public:
  GlobalSkiplist();

  GlobalSkiplist(const GlobalSkiplist&) = delete;
  GlobalSkiplist& operator=(const GlobalSkiplist&) = delete;

  /// Adds an entry during construction (single-threaded build). `addr`
  /// is the absolute PMem address of the record.
  void Add(const Slice& internal_key, uint64_t addr);

  struct Candidate {
    SequenceNumber sequence = 0;
    ValueType type = kTypeValue;
    uint64_t record_addr = 0;
  };

  /// Freshest entry for user_key.
  bool Get(const Slice& user_key, Candidate* out) const;

  /// Iterator over (internal key, value); values load from PMem lazily.
  Iterator* NewIterator(PmemEnv* env) const;

  uint64_t NumEntries() const { return num_entries_; }

 private:
  struct KeyComparator {
    InternalKeyComparator comparator;
    int operator()(const char* a, const char* b) const;
  };
  typedef SkipList<const char*, KeyComparator> Index;

  class Iter;

  KeyComparator comparator_;
  Arena arena_;
  Index index_;
  uint64_t num_entries_ = 0;
};

/// FlushedZone holds the sub-ImmMemTables staged in PMem between the
/// copy-based flush and the flush to the LSM-tree's L0 level. It offers
/// two read paths, matching the paper's ablation:
///
///   * compacted (SC on): a global skiplist over all live entries;
///   * uncompacted (SC off / PCSM+LIU): probe every table's sub-skiplist.
///
/// The zone's membership is persisted in a small A/B registry in the
/// fixed metadata area so crash recovery can re-adopt staged tables.
///
/// Thread-safe. Readers must call Get/ReadValue while holding the lock
/// from LockShared() so the L0 flush cannot free a region under them.
class FlushedZone {
 public:
  /// `metrics` and `trace` are optional observability sinks (the zone
  /// records its compaction passes there); both must outlive the zone
  /// when given.
  FlushedZone(PmemEnv* env, uint64_t registry_base,
              uint64_t registry_slot_size, bool compaction_enabled,
              obs::MetricsRegistry* metrics = nullptr,
              obs::Tracer* trace = nullptr);

  FlushedZone(const FlushedZone&) = delete;
  FlushedZone& operator=(const FlushedZone&) = delete;

  /// Checksum over a staged table's record bytes, as stored in
  /// FlushedTable::data_crc. Producers call this right after copying the
  /// table into its zone region; Recover() recomputes and compares.
  static uint32_t ComputeDataCrc(PmemEnv* env, uint64_t region_offset,
                                 uint32_t data_tail);

  /// Adds a freshly copy-flushed table and persists the registry.
  Status AddTable(FlushedTable table);

  /// Rebuilds the compacted global skiplist from the current tables
  /// (invoked by the background index thread; §III-D). No-op when
  /// compaction is disabled.
  void Compact();

  struct LookupResult {
    bool found = false;
    SequenceNumber sequence = 0;
    ValueType type = kTypeValue;
    std::string value;  // filled when type == kTypeValue
  };

  /// Looks up the freshest zone entry for user_key with sequence <=
  /// max_sequence; reads the value bytes from PMem. Caller holds
  /// LockShared(). Bounded lookups (snapshot reads) bypass the global
  /// skiplist — it indexes only the freshest version per key — and
  /// probe every table's sub-skiplist, which indexes all versions.
  Status Get(const Slice& user_key, LookupResult* out,
             SequenceNumber max_sequence = kMaxSequenceNumber);

  /// Total staged bytes (drives the flush-to-L0 trigger).
  uint64_t TotalBytes() const {
    return total_bytes_.load(std::memory_order_acquire);
  }
  SequenceNumber MaxSequence() const {
    return max_sequence_.load(std::memory_order_acquire);
  }
  int NumTables() const;
  uint64_t GlobalIndexEntries() const;

  /// Copy of the current membership, used to run a flush-to-L0 cycle
  /// against a stable set while new copy-flushes keep arriving.
  std::vector<FlushedTable> SnapshotTables() const;

  /// Sorted stream over a snapshot's entries with superseded versions
  /// removed (freshest per user key survives, tombstones included): the
  /// deferred space reclamation of §III-D. Feed this to the LSM's L0
  /// builder. The snapshot's tables must stay in the zone until the
  /// returned iterator is destroyed. When `dropped` is non-null it
  /// collects a copy of every superseded entry the stream discards;
  /// `dropped` must outlive the iterator. The caller delivers the buffer
  /// to its dead-entry observer only after the flush commits, so a
  /// retried flush cannot double-count the same drops.
  ///
  /// `snapshots` (sorted ascending) lists the pinned snapshot sequence
  /// numbers at pass start; superseded versions a pinned snapshot still
  /// resolves survive the dedup (docs/SNAPSHOTS.md), and `on_retain`
  /// observes each such extra version kept.
  Iterator* NewL0Stream(const std::vector<FlushedTable>& snapshot,
                        DroppedEntryLog* dropped = nullptr,
                        std::vector<SequenceNumber> snapshots = {},
                        DroppedEntryFn on_retain = nullptr);

  /// Removes and frees exactly the snapshot's tables (after they were
  /// written to L0) and persists the registry. Takes the exclusive lock
  /// internally.
  Status DropTables(const std::vector<FlushedTable>& snapshot);

  /// Restores zone membership from the persistent registry after a
  /// crash: reserves regions, rebuilds each table's sub-skiplist from its
  /// records, and recompacts.
  Status Recover();

  std::shared_lock<std::shared_mutex> LockShared() {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

 private:
  Status PersistRegistryLocked();

  PmemEnv* env_;
  uint64_t registry_base_;
  uint64_t registry_slot_size_;
  bool compaction_enabled_;
  obs::MetricsRegistry* metrics_;  // may be null
  obs::Tracer* trace_;             // may be null
  InternalKeyComparator icmp_;

  mutable std::shared_mutex mu_;
  std::vector<FlushedTable> tables_;
  std::shared_ptr<const GlobalSkiplist> global_;
  uint64_t registry_epoch_ = 0;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> max_sequence_{0};
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_FLUSHED_ZONE_H_
