#ifndef CACHEKV_CORE_SUB_MEMTABLE_POOL_H_
#define CACHEKV_CORE_SUB_MEMTABLE_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/options.h"
#include "core/sub_memtable.h"
#include "pmem/pmem_env.h"
#include "util/status.h"

namespace cachekv {

/// SubMemTablePool manages the CAT pseudo-locked cache range
/// [0, pool_bytes) as a set of variable-size sub-MemTable slots (§III-A).
/// The pool capacity is fixed; slot sizes adapt to the workload:
///
///   * The global miss counter counts acquisition failures ("a CPU core
///     cannot find a free sub-MemTable"). Past the configured threshold
///     the pool halves its target size class, splitting free slots so
///     more cores can make progress during bursts.
///   * When acquisitions keep succeeding with spare free slots, the
///     target size class grows back (up to the initial size) and
///     adjacent free buddies merge, reducing background flush overhead.
///
/// Slot sizes are persisted inside each slot's header, so crash recovery
/// can walk the pool without volatile state.
///
/// Thread-safe.
class SubMemTablePool {
 public:
  SubMemTablePool(PmemEnv* env, const CacheKVOptions& options);

  /// Checks the pool-geometry invariants (slot divisibility, minimum
  /// sizes). DB::Open rejects bad configurations with this instead of
  /// asserting inside the constructor.
  static Status ValidateOptions(const CacheKVOptions& options);

  SubMemTablePool(const SubMemTablePool&) = delete;
  SubMemTablePool& operator=(const SubMemTablePool&) = delete;

  /// Formats every slot to the initial size class (fresh store).
  void Format();

  /// Rebuilds the DRAM slot directory by walking the persistent slot
  /// headers, invoking `fn` for every non-empty slot before it is
  /// reformatted to Free (crash recovery, §III-E). `fn` must evacuate the
  /// slot's data (CacheKV copies it to the sub-ImmMemTable area).
  Status RecoverScan(
      const std::function<Status(const SubMemTable&)>& fn);

  /// Acquires a free sub-MemTable for a core. Fails with Busy when every
  /// slot is taken (the caller waits on the flusher); each failure bumps
  /// the miss counter and may trigger elastic shrinking.
  Status Acquire(SubMemTable* out);

  /// Returns a flushed sub-ImmMemTable to the free pool, applying any
  /// pending elastic resize to the freed slot. Fails with Corruption
  /// when the table does not match the pool directory (the slot is then
  /// left untouched, so its data remains recoverable).
  Status Release(const SubMemTable& table);

  uint64_t miss_count() const {
    return total_misses_.load(std::memory_order_relaxed);
  }

  /// Lock-free slot-count estimate (for mapping writer threads onto
  /// slots); exact value requires NumSlots().
  int ApproxNumSlots() const {
    return approx_slots_.load(std::memory_order_relaxed);
  }
  uint64_t target_slot_bytes() const {
    return target_slot_bytes_.load(std::memory_order_relaxed);
  }
  int NumSlots() const;
  int NumFreeSlots() const;

 private:
  struct SlotInfo {
    uint64_t offset = 0;
    uint64_t size = 0;
    bool free = true;
  };

  // Splits slots_[idx] in half (writes both persistent headers). Caller
  // holds mu_; the slot must be free.
  void SplitLocked(size_t idx);
  // Merges slots_[idx] with its next neighbour when both are free, equal
  // size, and buddy-aligned. Caller holds mu_.
  bool TryMergeLocked(size_t idx);
  void ApplyElasticityLocked(size_t idx);

  PmemEnv* env_;
  CacheKVOptions options_;

  mutable std::mutex mu_;
  std::vector<SlotInfo> slots_;  // sorted by offset
  std::atomic<uint64_t> target_slot_bytes_;
  std::atomic<uint64_t> miss_streak_{0};
  std::atomic<uint64_t> total_misses_{0};
  std::atomic<int> approx_slots_{0};
  uint64_t acquire_streak_ = 0;  // successes since last miss (under mu_)
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_SUB_MEMTABLE_POOL_H_
