#ifndef CACHEKV_CORE_BG_ERROR_MANAGER_H_
#define CACHEKV_CORE_BG_ERROR_MANAGER_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace cachekv {

/// Classifies background-stage failures and decides between retry and
/// degradation (the BackgroundErrorHandler idiom of production LSM
/// stores). Transient errors (I/O, allocator pressure, busy) are retried
/// with capped exponential backoff; hard errors (corruption, invalid
/// state) — or transient errors whose retry budget is exhausted — flip
/// the DB into an explicit read-only mode: the error is recorded, the
/// `db.read_only` gauge is raised, and every subsequent Put/ApplyBatch/
/// Delete returns the recorded error until the DB is reopened.
///
/// Shared by the flush and index threads; thread safe.
class BackgroundErrorManager {
 public:
  struct Policy {
    int max_retries = 5;
    uint32_t backoff_base_ms = 1;
    uint32_t backoff_max_ms = 100;
  };

  BackgroundErrorManager(const Policy& policy, obs::MetricsRegistry* metrics,
                         obs::Tracer* trace);

  enum class ErrorClass { kTransient, kHard };
  static ErrorClass Classify(const Status& s);

  enum class Decision { kRetry, kFail };

  /// A background stage failed with `s` after `attempt` completed retry
  /// attempts (0 on the first failure). Returns kRetry — with the
  /// backoff to sleep before the next attempt in *backoff — while the
  /// error is transient and budget remains; otherwise records the error,
  /// enters read-only mode, and returns kFail.
  Decision OnError(const char* stage, const Status& s, int attempt,
                   std::chrono::milliseconds* backoff);

  /// Records a hard error directly (no retry budget applies), e.g.
  /// corruption detected outside a retryable stage.
  void RaiseHardError(const char* stage, const Status& s);

  /// Foreground write gate: OK while writable, else the recorded error.
  Status CheckWritable() const;

  /// The recorded background error (OK while healthy).
  Status background_error() const;

  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

 private:
  const Policy policy_;
  obs::Tracer* trace_;
  obs::Counter* retries_;
  obs::Counter* retry_exhausted_;
  obs::Counter* hard_errors_;
  obs::Gauge* read_only_gauge_;

  mutable std::mutex mu_;
  Status bg_error_;
  std::string bg_stage_;
  std::atomic<bool> read_only_{false};
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_BG_ERROR_MANAGER_H_
