#include "core/record_format.h"

#include "util/coding.h"

namespace cachekv {

size_t EncodeRecord(std::string* buf, SequenceNumber seq, ValueType type,
                    const Slice& key, const Slice& value) {
  const size_t start = buf->size();
  PutVarint32(buf, static_cast<uint32_t>(key.size()));
  PutVarint32(buf, static_cast<uint32_t>(value.size()));
  PutFixed64(buf, PackSequenceAndType(seq, type));
  buf->append(key.data(), key.size());
  buf->append(value.data(), value.size());
  return buf->size() - start;
}

bool DecodeRecordHeaderAt(PmemEnv* env, uint64_t offset,
                          RecordHeader* header) {
  // Two varint32 (<= 5 bytes each) + fixed64 tag.
  char buf[18];
  const uint64_t avail = env->device()->capacity() - offset;
  const size_t to_read =
      static_cast<size_t>(avail < sizeof(buf) ? avail : sizeof(buf));
  if (to_read < 10) {  // minimum: 1 + 1 + 8
    return false;
  }
  env->Load(offset, buf, to_read);
  const char* p = buf;
  const char* limit = buf + to_read;
  uint32_t key_len, value_len;
  p = GetVarint32Ptr(p, limit, &key_len);
  if (p == nullptr) return false;
  p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr || static_cast<size_t>(limit - p) < 8) return false;
  if (key_len == 0 || key_len > (1u << 20) || value_len > (1u << 28)) {
    return false;  // implausible: zeroed or corrupt region
  }
  uint64_t packed = DecodeFixed64(p);
  p += 8;
  uint8_t type_byte = packed & 0xff;
  if (type_byte > kMaxValueType) {
    return false;
  }
  header->key_len = key_len;
  header->value_len = value_len;
  header->sequence = packed >> 8;
  header->type = static_cast<ValueType>(type_byte);
  header->header_size = static_cast<uint32_t>(p - buf);
  return true;
}

void LoadRecordKey(PmemEnv* env, uint64_t offset,
                   const RecordHeader& header, std::string* key) {
  key->resize(header.key_len);
  env->Load(offset + header.header_size, key->data(), header.key_len);
}

void LoadRecordValue(PmemEnv* env, uint64_t offset,
                     const RecordHeader& header, std::string* value) {
  value->resize(header.value_len);
  env->Load(offset + header.header_size + header.key_len, value->data(),
            header.value_len);
}

}  // namespace cachekv
