#ifndef CACHEKV_CORE_RECORD_FORMAT_H_
#define CACHEKV_CORE_RECORD_FORMAT_H_

#include <cstdint>
#include <string>

#include "lsm/dbformat.h"
#include "pmem/pmem_env.h"
#include "util/slice.h"

namespace cachekv {

/// Log-structured KV record format shared by CacheKV's sub-MemTables and
/// the SLM-DB baseline's data chunks:
///
///   varint32 key_len
///   varint32 value_len
///   fixed64  packed (sequence << 8 | type)
///   key bytes
///   value bytes
///
/// Records are appended back to back; a record never begins with a zero
/// key_len (keys are non-empty), so a zeroed region terminates a scan.
struct RecordHeader {
  uint32_t key_len = 0;
  uint32_t value_len = 0;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
  /// Bytes of the encoded header (varints + tag).
  uint32_t header_size = 0;

  uint64_t TotalSize() const {
    return static_cast<uint64_t>(header_size) + key_len + value_len;
  }
};

/// Appends an encoded record to *buf; returns its encoded length.
size_t EncodeRecord(std::string* buf, SequenceNumber seq, ValueType type,
                    const Slice& key, const Slice& value);

/// Upper bound of EncodeRecord's output for the given key/value sizes.
inline size_t MaxRecordSize(size_t key_len, size_t value_len) {
  return 5 + 5 + 8 + key_len + value_len;
}

/// Parses the record header at `offset` (simulated-PMem address).
/// Returns false if the bytes are not a plausible record header.
bool DecodeRecordHeaderAt(PmemEnv* env, uint64_t offset,
                          RecordHeader* header);

/// Loads the key of the record at `offset` whose header is `header`.
void LoadRecordKey(PmemEnv* env, uint64_t offset,
                   const RecordHeader& header, std::string* key);

/// Loads the value of the record at `offset` whose header is `header`.
void LoadRecordValue(PmemEnv* env, uint64_t offset,
                     const RecordHeader& header, std::string* value);

}  // namespace cachekv

#endif  // CACHEKV_CORE_RECORD_FORMAT_H_
