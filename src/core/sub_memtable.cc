#include "core/sub_memtable.h"

#include <cassert>

#include "util/coding.h"

namespace cachekv {

uint64_t SubMemTable::Pack(const Header& h) {
  assert(h.counter < (1ull << kCounterBits));
  assert(h.tail < (1u << kTailBits));
  return (h.counter << (kStateBits + kTailBits)) |
         (static_cast<uint64_t>(h.state) << kTailBits) |
         static_cast<uint64_t>(h.tail);
}

SubMemTable::Header SubMemTable::Unpack(uint64_t packed) {
  Header h;
  h.tail = static_cast<uint32_t>(packed & ((1ull << kTailBits) - 1));
  h.state = static_cast<SubState>((packed >> kTailBits) &
                                  ((1ull << kStateBits) - 1));
  h.counter = packed >> (kStateBits + kTailBits);
  return h;
}

SubMemTable::SubMemTable(PmemEnv* env, uint64_t slot_offset,
                         uint64_t slot_size)
    : env_(env), slot_offset_(slot_offset), slot_size_(slot_size) {
  assert(IsAligned(slot_offset, kCacheLineSize));
  assert(slot_size > kDataOffset);
}

void SubMemTable::Format() {
  Header h;  // zero counter, kFree, zero tail
  env_->Store64(HeaderAddr(), Pack(h));
  env_->Store64(HeaderAddr() + 8, data_capacity());
  env_->Store64(HeaderAddr() + 16, slot_size_);
}

SubMemTable::Header SubMemTable::ReadHeader() const {
  return Unpack(env_->Load64(HeaderAddr()));
}

bool SubMemTable::CasHeader(Header* expected, const Header& desired) {
  uint64_t expected_packed = Pack(*expected);
  bool ok = env_->CompareExchange64(HeaderAddr(), &expected_packed,
                                    Pack(desired));
  if (!ok) {
    *expected = Unpack(expected_packed);
  }
  return ok;
}

uint64_t SubMemTable::ReadRemainingSpace() const {
  return env_->Load64(HeaderAddr() + 8);
}

uint64_t SubMemTable::ReadSlotSize(PmemEnv* env, uint64_t slot_offset) {
  return env->Load64(slot_offset + 16);
}

Status SubMemTable::Append(SequenceNumber seq, ValueType type,
                           const Slice& key, const Slice& value) {
  std::string record;
  EncodeRecord(&record, seq, type, key, value);
  return AppendEncoded(Slice(record), 1);
}

Status SubMemTable::AppendEncoded(const Slice& records,
                                  uint32_t record_count) {
  Header h = ReadHeader();
  if (h.state != SubState::kAllocated) {
    return Status::Busy("sub-memtable not allocated to a core");
  }
  if (h.tail + records.size() > data_capacity()) {
    return Status::OutOfSpace("sub-memtable full");
  }
  // Write the record bytes first (they land in the pseudo-locked,
  // persistent cache region), then publish with one atomic header CAS:
  // crash-consistent without any flush instruction (§III-A). For a
  // multi-record batch the single CAS makes the whole batch atomic.
  env_->Store(data_offset() + h.tail, records.data(), records.size());
  Header next = h;
  next.counter = h.counter + record_count;
  next.tail = h.tail + static_cast<uint32_t>(records.size());
  if (!CasHeader(&h, next)) {
    // The only legal concurrent header change is a state transition by
    // the owner itself; appenders are per-core so this indicates misuse.
    return Status::Busy("concurrent header update");
  }
  env_->Store64(HeaderAddr() + 8, data_capacity() - next.tail);
  return Status::OK();
}

bool SubMemTable::TryAcquire() {
  Header h = ReadHeader();
  for (;;) {
    if (h.state != SubState::kFree) {
      return false;
    }
    Header next = h;
    next.state = SubState::kAllocated;
    if (CasHeader(&h, next)) {
      return true;
    }
  }
}

bool SubMemTable::Seal() {
  Header h = ReadHeader();
  for (;;) {
    if (h.state != SubState::kAllocated) {
      return false;
    }
    Header next = h;
    next.state = SubState::kImmutable;
    if (CasHeader(&h, next)) {
      return true;
    }
  }
}

void SubMemTable::Release() {
  Header h;  // zero counter, kFree, zero tail
  env_->Store64(HeaderAddr(), Pack(h));
  env_->Store64(HeaderAddr() + 8, data_capacity());
}

}  // namespace cachekv
