#include "core/db.h"

#include <algorithm>
#include <array>
#include <thread>

#include "core/record_format.h"
#include "fault/fail_point.h"
#include "lsm/merger.h"
#include "pmem/meta_layout.h"
#include "util/json.h"

namespace cachekv {

namespace {

/// Sequence of the last batch this thread committed on any DB, for
/// DB::ThreadLastCommitSeq(). One static suffices: a caller waiting on
/// a write's replication does so immediately after performing it, so
/// the value can only describe that write.
thread_local SequenceNumber tls_last_commit_seq = 0;

}  // namespace

SequenceNumber DB::ThreadLastCommitSeq() { return tls_last_commit_seq; }

DB::DB(PmemEnv* env, const CacheKVOptions& options)
    : env_(env),
      options_(options),
      trace_(options.trace_events_per_thread),
      bg_errors_(BackgroundErrorManager::Policy{options.max_bg_retries,
                                                options.bg_backoff_base_ms,
                                                options.bg_backoff_max_ms},
                 &metrics_, &trace_),
      pool_(std::make_unique<SubMemTablePool>(env, options)),
      zone_(std::make_unique<FlushedZone>(
          env, MetaLayout::ZoneRegistryBase(env),
          MetaLayout::kZoneRegistrySlotSize, options.zone_compaction,
          &metrics_, &trace_)),
      engine_(std::make_unique<LsmEngine>(env, options.lsm,
                                          MetaLayout::ManifestBase(env),
                                          &metrics_, &trace_)),
      vlog_(std::make_unique<ValueLog>(
          env, &metrics_, MetaLayout::VlogRegistryBase(env),
          MetaLayout::kVlogRegistrySlotSize, options.vlog_segment_bytes)),
      puts_(metrics_.GetCounter("db.puts")),
      gets_(metrics_.GetCounter("db.gets")),
      seals_(metrics_.GetCounter("db.seals")),
      copy_flushes_(metrics_.GetCounter("db.copy_flushes")),
      zone_flushes_(metrics_.GetCounter("db.zone_flushes")),
      index_syncs_(metrics_.GetCounter("db.index_syncs")),
      acquire_waits_(metrics_.GetCounter("db.acquire_waits")),
      write_stalls_(metrics_.GetCounter("db.write_stalls")),
      get_hit_submemtable_(
          metrics_.GetCounter("db.get_hit_submemtable")),
      get_hit_zone_(metrics_.GetCounter("db.get_hit_zone")),
      get_hit_lsm_(metrics_.GetCounter("db.get_hit_lsm")),
      get_miss_(metrics_.GetCounter("db.get_miss")),
      ingest_bytes_(metrics_.GetCounter("db.ingest_bytes")),
      separated_puts_(metrics_.GetCounter("db.separated_puts")),
      snap_pins_(metrics_.GetCounter("snap.pins")),
      snap_releases_(metrics_.GetCounter("snap.releases")),
      snap_retained_bytes_(metrics_.GetCounter("snap.retained_bytes")) {
  trace_.set_enabled(options_.trace_enabled ||
                     obs::TraceEnabledFromEnv());
  metadata_.resize(options_.num_cores);
  // Flush and compaction report every superseded pointer entry they drop
  // back to the value log as dead bytes (the GC's liveness signal). Each
  // internal-key version is dropped exactly once across the two sites:
  // both buffer their drops and deliver them only after the pass
  // commits, so the background-error retry machinery cannot replay the
  // same drops and inflate dead ratios.
  drop_observer_ = [this](const Slice& internal_key, const Slice& value) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed) ||
        parsed.type != kTypeValuePointer) {
      return;
    }
    ValuePointer ptr;
    if (DecodeValuePointer(value, &ptr)) {
      vlog_->AddDeadBytes(ptr, parsed.user_key.size());
    }
  };
  engine_->SetDroppedEntryObserver(drop_observer_);
  // Compaction passes capture the pinned snapshots at pass start and
  // retain every version a pin still resolves (docs/SNAPSHOTS.md).
  engine_->SetSnapshotProvider([this] { return PinnedSnapshots(); });
}

Status DB::Open(PmemEnv* env, const CacheKVOptions& options, bool recover,
                std::unique_ptr<DB>* db) {
  if (env->locked_size() != options.pool_bytes) {
    return Status::InvalidArgument(
        "env cat_locked_bytes must equal the sub-MemTable pool size");
  }
  if (env->options().domain != PersistDomain::kEadr) {
    return Status::InvalidArgument(
        "CacheKV requires persistent CPU caches (eADR)");
  }
  // Validate before constructing: the pool is built in the DB
  // constructor, which clamps rather than checks.
  Status s = SubMemTablePool::ValidateOptions(options);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<DB> d(new DB(env, options));
  s = d->engine_->Open(recover);
  if (!s.ok()) {
    return s;
  }
  if (recover) {
    // §III-E: recover the staged zone, then evacuate any sub-MemTable
    // that survived in the persistent caches into the zone, rebuilding
    // its sub-skiplist from the data first.
    s = d->zone_->Recover();
    if (!s.ok()) {
      return s;
    }
    // Re-adopt the value-log segments (reserving their regions) before
    // the pool scan so every persistent region is accounted for.
    s = d->vlog_->Recover();
    if (!s.ok()) {
      return s;
    }
    uint64_t max_seq = std::max<uint64_t>(d->engine_->LastSequence(),
                                          d->zone_->MaxSequence());
    // Cross-check against the vlog heads: torn-off appends may have
    // consumed sequence numbers whose pointers never committed; starting
    // below them would let a future write collide with an orphan record.
    max_seq = std::max<uint64_t>(max_seq, d->vlog_->MaxSequence());
    s = d->pool_->RecoverScan([&](const SubMemTable& table) -> Status {
      SubMemTable::Header h = table.ReadHeader();
      auto index =
          std::make_shared<SubSkiplist>(env, table.data_offset());
      Status rs = index->SyncTo(h.counter, h.tail);
      if (!rs.ok()) {
        return rs;
      }
      if (index->max_sequence() > max_seq) {
        max_seq = index->max_sequence();
      }
      // Copy the recovered table into the sub-ImmMemTable area so the
      // pool slot can be reused.
      const uint64_t copy_len = SubMemTable::kDataOffset + h.tail;
      const uint64_t region_size = AlignUp(copy_len, kXPLineSize);
      uint64_t region = 0;
      rs = env->allocator()->Allocate(region_size, &region);
      if (!rs.ok()) {
        return rs;
      }
      char buf[4096];
      for (uint64_t off = 0; off < copy_len; off += sizeof(buf)) {
        const size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(sizeof(buf), copy_len - off));
        env->Load(table.slot_offset() + off, buf, chunk);
        env->NtStore(region + off, buf, chunk);
      }
      env->Sfence();
      index->SetDataBase(region + SubMemTable::kDataOffset);
      FlushedTable ft;
      ft.region_offset = region;
      ft.region_size = region_size;
      ft.data_tail = h.tail;
      ft.entry_count = h.counter;
      ft.max_sequence = index->max_sequence();
      ft.data_crc = FlushedZone::ComputeDataCrc(env, region, h.tail);
      ft.index = std::move(index);
      return d->zone_->AddTable(std::move(ft));
    });
    if (!s.ok()) {
      return s;
    }
    d->zone_->Compact();
    d->sequence_.store(max_seq, std::memory_order_release);
    d->flushed_hwm_.store(d->zone_->MaxSequence(),
                          std::memory_order_release);
    d->l0_hwm_.store(d->engine_->LastSequence(),
                     std::memory_order_release);
  } else {
    d->pool_->Format();
    s = d->vlog_->Format();
    if (!s.ok()) {
      return s;
    }
  }

  for (int i = 0; i < options.num_flush_threads; i++) {
    d->flush_threads_.emplace_back(&DB::FlushThread, d.get());
  }
  for (int i = 0; i < options.num_index_threads; i++) {
    d->index_threads_.emplace_back(&DB::IndexThread, d.get());
  }
  DB* raw = d.get();
  d->vlog_gc_ = std::make_unique<VlogGc>(
      d->vlog_.get(), &d->metrics_,
      [raw](SequenceNumber seq, const Slice& key,
            const ValuePointer& old_ptr, const Slice& value,
            bool* relocated, bool* snapshot_pinned) {
        return raw->RelocateForGc(seq, key, old_ptr, value, relocated,
                                  snapshot_pinned);
      },
      options.vlog_gc_dead_ratio, options.vlog_gc_interval_ms);
  d->vlog_gc_->Start();
  *db = std::move(d);
  return Status::OK();
}

DB::~DB() {
  // Stop the GC first: its relocation writes go through the normal write
  // path and must not race the teardown of the background threads.
  if (vlog_gc_ != nullptr) {
    vlog_gc_->Stop();
  }
  shutting_down_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_cv_.notify_all();
    flush_done_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index_cv_.notify_all();
  }
  for (auto& t : flush_threads_) {
    if (t.joinable()) t.join();
  }
  for (auto& t : index_threads_) {
    if (t.joinable()) t.join();
  }
}

std::string DB::Name() const {
  if (!options_.lazy_index_update && !options_.zone_compaction) {
    return "CacheKV-PCSM";
  }
  if (!options_.zone_compaction) {
    return "CacheKV-PCSM+LIU";
  }
  if (!options_.lazy_index_update) {
    return "CacheKV-PCSM+SC";
  }
  return "CacheKV";
}

int DB::CoreOf() {
  static std::atomic<int> next_thread_slot{0};
  thread_local int thread_slot = -1;
  if (thread_slot < 0) {
    thread_slot = next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  }
  // Map threads onto at most min(num_cores, pool slots) writer slots so
  // progress is guaranteed even when the pool currently has fewer tables
  // than cores (the pool capacity is fixed; see §III-A).
  int slots = std::min(options_.num_cores, pool_->ApproxNumSlots());
  if (slots < 1) slots = 1;
  return thread_slot % slots;
}

Status DB::AcquireFor(int core) {
  OBS_SPAN(&metrics_, "put.acquire");
  SubMemTable table(env_, 0, SubMemTable::kDataOffset + kCacheLineSize);
  // Write-stall deadline: if the flushers cannot recycle a slot within
  // the budget (e.g. they are stuck in retry backoff), fail the write
  // instead of blocking the caller forever.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.write_stall_timeout_ms);
  for (;;) {
    Status s = pool_->Acquire(&table);
    if (s.ok()) {
      break;
    }
    if (!s.IsBusy()) {
      return s;
    }
    acquire_waits_->Increment();
    trace_.Instant("acquire.wait");
    // Wait for the copy-based flush to free a table.
    std::unique_lock<std::mutex> lock(flush_mu_);
    Status gate = bg_errors_.CheckWritable();
    if (!gate.ok()) {
      return gate;
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      return Status::Busy("shutting down");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      write_stalls_->Increment();
      trace_.Instant("write.stall");
      return Status::Busy(
          "write stalled: sealed-table queue is not draining");
    }
    flush_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  auto active = std::make_shared<ActiveTable>(env_, table);
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    live_tables_.push_back(active);
  }
  metadata_[core] = std::move(active);
  return Status::OK();
}

Status DB::SealAndReplace(int core,
                          std::shared_ptr<ActiveTable> current) {
  SubMemTable::Header h = current->table.ReadHeader();
  if (!current->table.Seal()) {
    return Status::Corruption("seal failed: unexpected table state");
  }
  seals_->Increment();
  trace_.Instant("seal", "bytes", h.tail);
  metadata_[core] = nullptr;
  if (h.counter == 0) {
    // Nothing to flush: recycle the empty table immediately (it was too
    // small for the record being appended).
    {
      std::unique_lock<std::shared_mutex> lock(tables_mu_);
      live_tables_.erase(
          std::remove(live_tables_.begin(), live_tables_.end(), current),
          live_tables_.end());
    }
    Status rs = pool_->Release(current->table);
    if (!rs.ok()) {
      // A release mismatch means the pool directory no longer describes
      // the slot: corruption, not a retryable condition.
      bg_errors_.RaiseHardError("pool.release", rs);
      return rs;
    }
  } else {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_queue_.push_back(std::move(current));
    flush_cv_.notify_one();
  }
  return AcquireFor(core);
}

Status DB::WriteToCore(int core, SequenceNumber seq, ValueType type,
                       const Slice& key, const Slice& value) {
  // The per-slot mutex stands in for per-core exclusivity: uncontended
  // when each thread owns a slot, correct when threads share one.
  for (int attempt = 0; attempt < 16; attempt++) {
    std::shared_ptr<ActiveTable> t = metadata_[core];
    if (t == nullptr) {
      Status s = AcquireFor(core);
      if (!s.ok()) {
        return s;
      }
      t = metadata_[core];
    }
    Status s;
    {
      OBS_SPAN(&metrics_, "put.append");
      s = t->table.Append(seq, type, key, value);
    }
    if (s.ok()) {
      if (!options_.lazy_index_update) {
        // PCSM mode: diligently update the sub-skiplist on every write.
        OBS_SPAN(&metrics_, "put.index_sync");
        return t->index->SyncWithTable(t->table);
      }
      uint64_t pending =
          t->writes_since_sync.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (pending >= options_.sync_write_threshold) {
        t->writes_since_sync.store(0, std::memory_order_relaxed);
        ScheduleSync(t);
      }
      return s;
    }
    if (s.IsOutOfSpace()) {
      s = SealAndReplace(core, std::move(t));
      if (!s.ok()) {
        return s;
      }
      continue;  // retry on the fresh table
    }
    return s;
  }
  return Status::OutOfSpace(
      "record does not fit any available sub-memtable");
}

SequenceNumber DB::AllocSeqBlock(size_t n) {
  if (!commit_hook_) {
    return sequence_.fetch_add(n, std::memory_order_acq_rel) + 1;
  }
  // Reservation and in-flight registration must be atomic: a later
  // block registered before an earlier one would let the dispatcher
  // release the later block's hook first.
  std::lock_guard<std::mutex> lock(hook_mu_);
  const SequenceNumber first =
      sequence_.fetch_add(n, std::memory_order_acq_rel) + 1;
  hook_inflight_.insert(first);
  return first;
}

void DB::DispatchCommitHook(SequenceNumber first_seq,
                            SequenceNumber last_seq,
                            const std::vector<BatchOp>* ops) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  hook_inflight_.erase(first_seq);
  if (ops != nullptr) {
    if (hook_pending_.empty() &&
        (hook_inflight_.empty() || first_seq < *hook_inflight_.begin())) {
      // Every earlier block has settled: fire in place, no copy.
      commit_hook_(*ops, last_seq);
    } else {
      hook_pending_.emplace(first_seq, PendingHook{*ops, last_seq});
    }
  }
  // Settle buffered successors this block (or this failure) unblocked.
  while (!hook_pending_.empty() &&
         (hook_inflight_.empty() ||
          hook_pending_.begin()->first < *hook_inflight_.begin())) {
    PendingHook pending = std::move(hook_pending_.begin()->second);
    hook_pending_.erase(hook_pending_.begin());
    commit_hook_(pending.ops, pending.last_seq);
  }
}

bool DB::ShouldSeparate(const Slice& key, const Slice& value) const {
  return options_.value_separation_threshold > 0 &&
         value.size() >= options_.value_separation_threshold &&
         vlog_->Fits(key.size(), value.size());
}

Status DB::Write(ValueType type, const Slice& key, const Slice& value) {
  OBS_SPAN(&metrics_, "put");
  // Background-error propagation: once a flush/index/compaction stage
  // failed hard, acknowledge no further writes.
  Status gate = bg_errors_.CheckWritable();
  if (!gate.ok()) {
    return gate;
  }
  // Key–value separation: a large value goes to the value log and the
  // memory component carries a 16-byte pointer (values too large for a
  // vlog segment fall back to the inline path and the check below).
  const bool separate = type == kTypeValue && ShouldSeparate(key, value);
  if (MaxRecordSize(key.size(),
                    separate ? kValuePointerSize : value.size()) >
      options_.sub_memtable_bytes - SubMemTable::kDataOffset) {
    return Status::InvalidArgument(
        "record larger than a full-size sub-memtable");
  }
  puts_->Increment();
  const int core = CoreOf();
  std::lock_guard<std::mutex> core_lock(core_mu_[core % kMaxCoreLocks]);
  // The sequence is allocated while the core lock is held so the vlog
  // GC's write fence (all core locks) can rely on: any writer not
  // currently holding a core lock will sequence AFTER a fenced GC
  // relocation, and any writer inside the fence has published.
  const SequenceNumber seq = AllocSeqBlock(1);
  Status s;
  if (separate) {
    // The value must be durable in the log before the pointer can
    // commit: recovery replays the pointer only if the record frame
    // checks out, so an acked key never dangles.
    ValuePointer ptr;
    s = vlog_->Append(seq, key, value, &ptr);
    if (s.ok()) {
      std::string encoded_ptr;
      EncodeValuePointer(&encoded_ptr, ptr);
      s = WriteToCore(core, seq, kTypeValuePointer, key,
                      Slice(encoded_ptr));
      if (s.ok()) {
        separated_puts_->Increment();
      } else {
        // Orphaned log record (pointer never committed): it is dead
        // weight until GC reclaims the segment.
        vlog_->AddDeadBytes(ptr, key.size());
      }
    }
  } else {
    s = WriteToCore(core, seq, type, key, value);
  }
  if (s.ok()) {
    tls_last_commit_seq = seq;
    ingest_bytes_->fetch_add(key.size() + value.size());
  }
  if (commit_hook_) {
    if (s.ok()) {
      std::vector<BatchOp> ops(1);
      ops[0].is_delete = type == kTypeDeletion;
      ops[0].key = key.ToString();
      if (type != kTypeDeletion) ops[0].value = value.ToString();
      DispatchCommitHook(seq, seq, &ops);
    } else {
      DispatchCommitHook(seq, seq, nullptr);
    }
  }
  return s;
}

Status DB::Put(const Slice& key, const Slice& value) {
  return Write(kTypeValue, key, value);
}

Status DB::ApplyBatch(const std::vector<BatchOp>& batch) {
  return MultiPut(batch);
}

Status DB::MultiPut(const std::vector<BatchOp>& batch) {
  OBS_SPAN(&metrics_, "put");
  Status gate = bg_errors_.CheckWritable();
  if (!gate.ok()) {
    return gate;
  }
  if (batch.empty()) {
    return Status::OK();
  }
  size_t encoded_bound = 0;
  std::vector<uint8_t> separate(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); i++) {
    const BatchOp& op = batch[i];
    if (op.key.empty()) {
      return Status::InvalidArgument("empty key in batch");
    }
    separate[i] = !op.is_delete &&
                  ShouldSeparate(Slice(op.key), Slice(op.value));
    encoded_bound += MaxRecordSize(
        op.key.size(), separate[i] ? kValuePointerSize : op.value.size());
  }
  if (encoded_bound >
      options_.sub_memtable_bytes - SubMemTable::kDataOffset) {
    return Status::InvalidArgument(
        "batch larger than a full-size sub-memtable");
  }
  puts_->Increment(batch.size());
  obs::TraceScope trace(&trace_, "multiput");
  trace.AddArg("keys", batch.size());
  const int core = CoreOf();
  std::lock_guard<std::mutex> core_lock(core_mu_[core % kMaxCoreLocks]);
  // Reserve a contiguous sequence block for the transaction (under the
  // core lock — see the GC write-fence comment in Write()).
  const SequenceNumber first_seq = AllocSeqBlock(batch.size());
  const SequenceNumber last_seq = first_seq + batch.size() - 1;
  // Every exit below must settle the reserved block with the hook
  // dispatcher — a block that never settles would stall the hooks of
  // all later writes. `ops` stays null on the failure paths. Vlog
  // records appended for a batch that then fails to commit are orphans:
  // credit them back as dead bytes so GC reclaims them.
  struct SettleBlock {
    DB* db;
    SequenceNumber first, last;
    const std::vector<BatchOp>* ops = nullptr;
    bool armed;
    std::vector<std::pair<ValuePointer, size_t>> appended;  // + key size
    bool committed = false;
    ~SettleBlock() {
      if (!committed) {
        for (const auto& [ptr, key_len] : appended) {
          db->vlog_->AddDeadBytes(ptr, key_len);
        }
      }
      if (armed) db->DispatchCommitHook(first, last, ops);
    }
  } settle{this, first_seq, last_seq, nullptr,
           commit_hook_ != nullptr};
  std::string records;
  records.reserve(encoded_bound);
  SequenceNumber seq = first_seq;
  for (size_t i = 0; i < batch.size(); i++) {
    const BatchOp& op = batch[i];
    if (separate[i]) {
      // Durable in the log before the batch's single-CAS publish.
      ValuePointer ptr;
      Status vs = vlog_->Append(seq, Slice(op.key), Slice(op.value), &ptr);
      if (!vs.ok()) {
        return vs;
      }
      settle.appended.emplace_back(ptr, op.key.size());
      std::string encoded_ptr;
      EncodeValuePointer(&encoded_ptr, ptr);
      EncodeRecord(&records, seq++, kTypeValuePointer, Slice(op.key),
                   Slice(encoded_ptr));
    } else {
      EncodeRecord(&records, seq++,
                   op.is_delete ? kTypeDeletion : kTypeValue,
                   Slice(op.key), Slice(op.value));
    }
  }

  auto mark_committed = [&] {
    settle.committed = true;
    settle.ops = &batch;
    tls_last_commit_seq = last_seq;
    uint64_t bytes = 0;
    uint64_t separations = 0;
    for (size_t i = 0; i < batch.size(); i++) {
      bytes += batch[i].key.size() + batch[i].value.size();
      separations += separate[i];
    }
    ingest_bytes_->fetch_add(bytes);
    if (separations > 0) {
      separated_puts_->Increment(separations);
    }
  };

  for (int attempt = 0; attempt < 16; attempt++) {
    std::shared_ptr<ActiveTable> t = metadata_[core];
    if (t == nullptr) {
      Status s = AcquireFor(core);
      if (!s.ok()) {
        return s;
      }
      t = metadata_[core];
    }
    Status s;
    {
      OBS_SPAN(&metrics_, "put.append");
      s = t->table.AppendEncoded(Slice(records),
                                 static_cast<uint32_t>(batch.size()));
    }
    if (s.ok()) {
      if (!options_.lazy_index_update) {
        OBS_SPAN(&metrics_, "put.index_sync");
        Status sync = t->index->SyncWithTable(t->table);
        if (sync.ok()) {
          mark_committed();
        }
        return sync;
      }
      uint64_t pending = t->writes_since_sync.fetch_add(
                             batch.size(), std::memory_order_relaxed) +
                         batch.size();
      if (pending >= options_.sync_write_threshold) {
        t->writes_since_sync.store(0, std::memory_order_relaxed);
        ScheduleSync(t);
      }
      mark_committed();
      return s;
    }
    if (s.IsOutOfSpace()) {
      s = SealAndReplace(core, std::move(t));
      if (!s.ok()) {
        return s;
      }
      continue;
    }
    return s;
  }
  return Status::OutOfSpace(
      "batch does not fit any available sub-memtable");
}

uint64_t DB::ApproxMultiPutCapacityBytes() const {
  // Elasticity (§III-A) can hand out tables shrunk to the minimum size
  // class, so a batch bounded by that class commits after at most one
  // seal-and-replace; halving leaves headroom for per-record framing.
  const uint64_t slot = options_.min_sub_memtable_bytes;
  if (slot <= SubMemTable::kDataOffset) {
    return 0;
  }
  return (slot - SubMemTable::kDataOffset) / 2;
}

const DB::Snapshot* DB::GetSnapshot() {
  // Global write fence (all core locks): no writer sits between its
  // sequence allocation and its sub-memtable publish, so every sequence
  // <= the pin is committed and the snapshot view is stable from the
  // first read on.
  std::array<std::unique_lock<std::mutex>, kMaxCoreLocks> fence;
  for (int i = 0; i < kMaxCoreLocks; i++) {
    fence[i] = std::unique_lock<std::mutex>(core_mu_[i]);
  }
  std::lock_guard<std::mutex> lock(snapshots_mu_);
  if (pinned_snapshots_.size() >= options_.max_pinned_snapshots) {
    return nullptr;
  }
  const SequenceNumber seq = LastSequence();
  pinned_snapshots_.insert(seq);
  snap_pins_->Increment();
  trace_.Instant("snapshot.pin", "seq", seq);
  return new Snapshot(seq);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(snapshots_mu_);
    auto it = pinned_snapshots_.find(snapshot->sequence());
    if (it != pinned_snapshots_.end()) {
      pinned_snapshots_.erase(it);
    }
  }
  snap_releases_->Increment();
  trace_.Instant("snapshot.release", "seq", snapshot->sequence());
  delete snapshot;
}

std::vector<SequenceNumber> DB::PinnedSnapshots() const {
  std::lock_guard<std::mutex> lock(snapshots_mu_);
  return std::vector<SequenceNumber>(pinned_snapshots_.begin(),
                                     pinned_snapshots_.end());
}

Iterator* DB::NewScanIterator() {
  return NewScanIteratorAt(kMaxSequenceNumber);
}

Iterator* DB::NewScanIteratorAt(SequenceNumber snapshot) {
  // The scan pins the memory component for its lifetime: the locks are
  // owned by the returned iterator.
  class ScanIterator : public Iterator {
   public:
    ScanIterator(DB* db, SequenceNumber snapshot)
        : tables_lock_(db->tables_mu_),
          zone_lock_(db->zone_->LockShared()),
          vlog_pin_(db->vlog_->PinSegments()) {
      std::vector<Iterator*> children;
      for (const auto& t : db->live_tables_) {
        // Read trigger: scans need the same strict consistency as Gets.
        Status s = t->index->SyncWithTable(t->table);
        if (!s.ok()) {
          status_ = s;
        }
        children.push_back(t->index->NewIterator());
        pinned_.push_back(t);
      }
      zone_tables_ = db->zone_->SnapshotTables();
      for (const FlushedTable& zt : zone_tables_) {
        children.push_back(zt.index->NewIterator());
      }
      children.push_back(db->engine_->NewIterator());
      // The pin blocks vlog GC from unlinking segments for the scan's
      // lifetime, so pointer resolution below can never hit a recycled
      // segment.
      ValueLog* vlog = db->vlog_.get();
      // A bounded scan filters out versions newer than the snapshot
      // BEFORE the dedup, so the freshest *visible* version per key
      // wins (a fresher invisible one must not shadow it).
      Iterator* merged =
          NewMergingIterator(&db->scan_icmp_, std::move(children));
      if (snapshot != kMaxSequenceNumber) {
        merged = NewSnapshotFilterIterator(merged, snapshot);
      }
      impl_.reset(NewUserKeyIterator(
          NewDedupingIterator(merged),
          [vlog](const Slice& internal_key, const Slice& raw_value,
                 std::string* value) -> Status {
            ParsedInternalKey parsed;
            if (!ParseInternalKey(internal_key, &parsed) ||
                parsed.type != kTypeValuePointer) {
              return Status::Corruption("resolver on a non-pointer entry");
            }
            ValuePointer ptr;
            if (!DecodeValuePointer(raw_value, &ptr)) {
              return Status::Corruption("bad value pointer");
            }
            return vlog->Read(ptr, parsed.user_key, value);
          }));
    }

    bool Valid() const override { return impl_->Valid(); }
    void SeekToFirst() override { impl_->SeekToFirst(); }
    void Seek(const Slice& user_key) override { impl_->Seek(user_key); }
    void Next() override { impl_->Next(); }
    Slice key() const override { return impl_->key(); }
    Slice value() const override { return impl_->value(); }
    Status status() const override {
      return status_.ok() ? impl_->status() : status_;
    }

   private:
    std::shared_lock<std::shared_mutex> tables_lock_;
    std::shared_lock<std::shared_mutex> zone_lock_;
    std::shared_lock<std::shared_mutex> vlog_pin_;
    std::vector<std::shared_ptr<ActiveTable>> pinned_;
    std::vector<FlushedTable> zone_tables_;
    std::unique_ptr<Iterator> impl_;
    Status status_;
  };
  return new ScanIterator(this, snapshot);
}

Status DB::Scan(const Slice& start, size_t limit,
                std::vector<std::pair<std::string, std::string>>* out) {
  return ScanAt(start, limit, kMaxSequenceNumber, out);
}

Status DB::ScanAt(const Slice& start, size_t limit,
                  SequenceNumber snapshot,
                  std::vector<std::pair<std::string, std::string>>* out) {
  OBS_SPAN(&metrics_, "scan");
  obs::TraceScope trace(&trace_, "scan");
  out->clear();
  std::unique_ptr<Iterator> it(NewScanIteratorAt(snapshot));
  if (start.empty()) {
    it->SeekToFirst();
  } else {
    it->Seek(start);
  }
  while (it->Valid() && out->size() < limit) {
    out->emplace_back(it->key().ToString(), it->value().ToString());
    it->Next();
  }
  trace.AddArg("rows", out->size());
  return it->status();
}

Status DB::Delete(const Slice& key) {
  return Write(kTypeDeletion, key, Slice());
}

Status DB::SearchRaw(const Slice& key, RawResult* out,
                     SequenceNumber max_sequence) {
  out->found = false;
  out->sequence = 0;
  out->type = kTypeValue;
  out->value.clear();
  out->where = RawResult::Where::kNone;

  // 1) Memory component: every live sub-MemTable (read trigger: sync
  //    the sub-skiplist before searching; §III-B strict consistency).
  {
    OBS_SPAN(&metrics_, "get.memtable");
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    const SubSkiplist* best_index = nullptr;
    SubSkiplist::Candidate best_candidate;
    for (const auto& t : live_tables_) {
      Status s = t->index->SyncWithTable(t->table);
      if (!s.ok()) {
        return s;
      }
      index_syncs_->Increment();
      SubSkiplist::Candidate c;
      if (t->index->Get(key, &c, max_sequence) &&
          (!out->found || c.sequence > out->sequence)) {
        out->found = true;
        out->sequence = c.sequence;
        out->type = c.type;
        best_index = t->index.get();
        best_candidate = c;
      }
    }
    if (out->found && out->type != kTypeDeletion) {
      Status s = best_index->ReadValue(best_candidate, &out->value);
      if (!s.ok()) {
        return s;
      }
    }
  }
  if (out->found) {
    out->where = RawResult::Where::kSubMemTable;
    if (out->sequence > flushed_hwm_.load(std::memory_order_acquire)) {
      // Nothing outside the live tables can be fresher. Valid for
      // bounded reads too: the zone and LSM hold only sequences below
      // this answer's, so none can beat it under the same bound.
      return Status::OK();
    }
  }

  // 2) Sub-ImmMemTable zone (global skiplist / per-table probes).
  {
    OBS_SPAN(&metrics_, "get.zone");
    auto zone_lock = zone_->LockShared();
    FlushedZone::LookupResult zr;
    Status s = zone_->Get(key, &zr, max_sequence);
    if (!s.ok()) {
      return s;
    }
    if (zr.found && (!out->found || zr.sequence > out->sequence)) {
      out->found = true;
      out->sequence = zr.sequence;
      out->type = zr.type;
      out->where = RawResult::Where::kZone;
      if (zr.type != kTypeDeletion) {
        out->value = std::move(zr.value);
      }
    }
  }
  if (out->found && out->sequence > l0_hwm_.load(std::memory_order_acquire)) {
    return Status::OK();
  }

  // 3) LSM storage component.
  {
    OBS_SPAN(&metrics_, "get.lsm");
    std::string lsm_value;
    bool lsm_deleted = false;
    SequenceNumber lsm_seq = 0;
    ValueType lsm_type = kTypeValue;
    Status s = engine_->Get(key, max_sequence, &lsm_value,
                            &lsm_deleted, &lsm_seq, &lsm_type);
    if (s.ok() || (s.IsNotFound() && lsm_deleted)) {
      if (!out->found || lsm_seq > out->sequence) {
        out->found = true;
        out->sequence = lsm_seq;
        out->type = lsm_deleted ? kTypeDeletion : lsm_type;
        out->where = RawResult::Where::kLsm;
        if (!lsm_deleted) {
          out->value = std::move(lsm_value);
        }
      }
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::OK();
}

Status DB::Get(const Slice& key, std::string* value) {
  return GetImpl(key, kMaxSequenceNumber, value);
}

Status DB::GetAt(const Slice& key, SequenceNumber snapshot,
                 std::string* value) {
  return GetImpl(key, snapshot, value);
}

Status DB::GetImpl(const Slice& key, SequenceNumber max_sequence,
                   std::string* value) {
  OBS_SPAN(&metrics_, "get");
  obs::TraceScope trace(&trace_, "get");
  gets_->Increment();

  // A pointer read can lose a race with GC: the victim segment is
  // unlinked after the relocated pointer committed, so a stale pointer
  // resolved from a pre-relocation search turns into a retryable
  // NotFound("vlog segment recycled"). The relocated pointer is
  // committed before Unlink, so one re-search converges; the bound only
  // guards against pathological churn. (A snapshot read under a live pin
  // cannot lose its pointer at all: GC defers the unlink while any pin
  // resolves a record in the victim segment.)
  Status s;
  RawResult r;
  for (int attempt = 0; attempt < 16; attempt++) {
    s = SearchRaw(key, &r, max_sequence);
    if (!s.ok()) {
      return s;  // component error: bypass hit/miss accounting
    }
    if (r.found && r.type == kTypeValuePointer) {
      ValuePointer ptr;
      if (!DecodeValuePointer(Slice(r.value), &ptr)) {
        return Status::Corruption("bad value pointer");
      }
      s = vlog_->Read(ptr, key, value);
      if (s.IsNotFound()) {
        continue;  // segment recycled mid-read: retry the search
      }
      if (!s.ok()) {
        return s;
      }
    } else if (r.found && r.type != kTypeDeletion) {
      *value = std::move(r.value);
    }
    break;
  }
  if (s.IsNotFound()) {
    return Status::Corruption("value pointer kept racing GC");
  }

  // Which component held the freshest entry (the one that answered the
  // Get, whether with a value or a tombstone). Error returns bypass the
  // accounting, so on clean runs the four db.get_hit_*/db.get_miss
  // counters sum to db.gets.
  switch (r.where) {
    case RawResult::Where::kNone:
      get_miss_->Increment();
      break;
    case RawResult::Where::kSubMemTable:
      get_hit_submemtable_->Increment();
      break;
    case RawResult::Where::kZone:
      get_hit_zone_->Increment();
      break;
    case RawResult::Where::kLsm:
      get_hit_lsm_->Increment();
      break;
  }
  if (!r.found || r.type == kTypeDeletion) {
    return Status::NotFound(r.where == RawResult::Where::kNone
                                ? "no visible entry"
                                : "deleted");
  }
  return Status::OK();
}

Status DB::RelocateForGc(SequenceNumber record_seq, const Slice& key,
                         const ValuePointer& old_ptr, const Slice& value,
                         bool* relocated, bool* snapshot_pinned) {
  *relocated = false;
  *snapshot_pinned = false;
  Status gate = bg_errors_.CheckWritable();
  if (!gate.ok()) {
    return gate;
  }
  // Global write fence: with every core lock held, no write is between
  // its AllocSeqBlock and its sub-memtable publish, so the SearchRaw
  // probe below sees the latest committed version of `key` and no
  // concurrent writer can commit an older-seq entry after we probe.
  std::array<std::unique_lock<std::mutex>, kMaxCoreLocks> fence;
  for (int i = 0; i < kMaxCoreLocks; i++) {
    fence[i] = std::unique_lock<std::mutex>(core_mu_[i]);
  }
  RawResult r;
  Status s = SearchRaw(key, &r);
  if (!s.ok()) {
    return s;
  }
  ValuePointer current;
  const bool live_at_latest =
      r.found && r.type == kTypeValuePointer &&
      DecodeValuePointer(Slice(r.value), &current) && current == old_ptr;
  if (!live_at_latest) {
    // Dead at latest (superseded, deleted, or relocated already) — but a
    // pinned snapshot may still resolve this exact pointer. Probe each
    // pin at or above the record's sequence with a bounded search; a
    // pointer-equal answer means the segment cannot be unlinked yet.
    for (SequenceNumber pin : PinnedSnapshots()) {
      if (pin < record_seq) {
        continue;
      }
      RawResult pr;
      Status ps = SearchRaw(key, &pr, pin);
      if (!ps.ok()) {
        return ps;
      }
      ValuePointer pinned_ptr;
      if (pr.found && pr.type == kTypeValuePointer &&
          DecodeValuePointer(Slice(pr.value), &pinned_ptr) &&
          pinned_ptr == old_ptr) {
        *snapshot_pinned = true;
        break;
      }
    }
    return Status::OK();
  }
  const SequenceNumber seq = AllocSeqBlock(1);
  ValuePointer new_ptr;
  s = vlog_->Append(seq, key, value, &new_ptr);
  if (s.ok()) {
    std::string encoded_ptr;
    EncodeValuePointer(&encoded_ptr, new_ptr);
    s = WriteToCore(0, seq, kTypeValuePointer, key, Slice(encoded_ptr));
    if (!s.ok()) {
      vlog_->AddDeadBytes(new_ptr, key.size());  // orphaned copy
    }
  }
  std::vector<BatchOp> ops;
  if (s.ok()) {
    *relocated = true;
    // Pins in [record_seq, seq) still resolve the OLD pointer (the
    // record was the freshest version of the key until this relocation
    // committed at `seq`): the victim segment must survive until they
    // release. Pins created later sequence at or above `seq` — the
    // write fence blocks GetSnapshot() — and see the new pointer.
    {
      std::lock_guard<std::mutex> snap_lock(snapshots_mu_);
      auto it = pinned_snapshots_.lower_bound(record_seq);
      if (it != pinned_snapshots_.end() && *it < seq) {
        *snapshot_pinned = true;
      }
    }
    tls_last_commit_seq = seq;
    // Followers replay user-visible ops, so the hook carries the value
    // itself — on the far side this is a benign same-bytes overwrite.
    BatchOp op;
    op.key = key.ToString();
    op.value = value.ToString();
    ops.push_back(std::move(op));
  }
  if (commit_hook_) {
    DispatchCommitHook(seq, seq, s.ok() ? &ops : nullptr);
  }
  return s;
}

void DB::ScheduleSync(const std::shared_ptr<ActiveTable>& table) {
  if (table->sync_scheduled.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  sync_queue_.push_back(table);
  index_cv_.notify_one();
}

Status DB::CopyFlushOne(std::shared_ptr<ActiveTable> sealed) {
  CACHEKV_FAIL_POINT("flush.copy");
  OBS_SPAN(&metrics_, "flush.copy");
  obs::TraceScope trace(&trace_, "flush.copy");
  // Final synchronization of the sub-skiplist (lazy trigger 3).
  Status s = sealed->index->SyncWithTable(sealed->table);
  if (!s.ok()) {
    return s;
  }
  SubMemTable::Header h = sealed->table.ReadHeader();
  if (h.state != SubState::kImmutable) {
    return Status::Corruption("flush of a table that is not sealed");
  }

  // Copy-based flush (§III-C): stream the whole sub-ImmMemTable out of
  // the persistent cache with non-temporal stores ("modified memory
  // copy"), so the write-back is large, sequential, and immune to the
  // cacheline eviction policy.
  const uint64_t copy_len = SubMemTable::kDataOffset + h.tail;
  const uint64_t region_size = AlignUp(copy_len, kXPLineSize);
  uint64_t region = 0;
  s = env_->allocator()->Allocate(region_size, &region);
  if (!s.ok()) {
    return s;
  }
  char buf[4096];
  for (uint64_t off = 0; off < copy_len; off += sizeof(buf)) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(sizeof(buf), copy_len - off));
    env_->Load(sealed->table.slot_offset() + off, buf, chunk);
    env_->NtStore(region + off, buf, chunk);
  }
  env_->Sfence();
  copy_flushes_->Increment();
  metrics_.GetCounter("flush.copy_bytes")->fetch_add(copy_len);
  trace.AddArg("bytes", copy_len);
  trace.AddArg("keys", h.counter);

  // Re-point the index at the copy, publish the table in the zone, then
  // recycle the pool slot. Any failure between here and the zone publish
  // must undo both steps — re-point the index back at the (identical)
  // pool-slot bytes and free the staged region — so a retried flush
  // starts from the same clean state.
  sealed->index->SetDataBase(region + SubMemTable::kDataOffset);
  auto unpublish = [&]() {
    sealed->index->SetDataBase(sealed->table.data_offset());
    env_->allocator()->Free(region, region_size);
  };
  if (fault::AnyActive()) {
    Status inj = fault::Inject("flush.copy.publish");
    if (!inj.ok()) {
      unpublish();
      return inj;
    }
  }
  FlushedTable ft;
  ft.region_offset = region;
  ft.region_size = region_size;
  ft.data_tail = h.tail;
  ft.entry_count = h.counter;
  ft.max_sequence = sealed->index->max_sequence();
  ft.data_crc = FlushedZone::ComputeDataCrc(env_, region, h.tail);
  ft.index = sealed->index;
  s = zone_->AddTable(std::move(ft));
  if (!s.ok()) {
    unpublish();
    return s;
  }
  uint64_t seen = flushed_hwm_.load(std::memory_order_relaxed);
  uint64_t table_max = sealed->index->max_sequence();
  while (table_max > seen &&
         !flushed_hwm_.compare_exchange_weak(seen, table_max)) {
  }
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    live_tables_.erase(
        std::remove(live_tables_.begin(), live_tables_.end(), sealed),
        live_tables_.end());
  }
  s = pool_->Release(sealed->table);
  if (!s.ok()) {
    // The data is already safe in the zone; a directory mismatch here
    // only loses the slot. Record it as a hard error (corruption).
    bg_errors_.RaiseHardError("pool.release", s);
    return s;
  }

  // Ask the index thread to fold the new table into the global skiplist
  // and to check the zone-to-L0 threshold.
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    compaction_requested_ = true;
    index_cv_.notify_one();
  }
  return Status::OK();
}

void DB::FlushThread() {
  trace_.SetThreadName("flush");
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (true) {
    while (flush_queue_.empty() &&
           !shutting_down_.load(std::memory_order_acquire)) {
      flush_cv_.wait(lock);
    }
    if (flush_queue_.empty() &&
        shutting_down_.load(std::memory_order_acquire)) {
      return;
    }
    auto sealed = std::move(flush_queue_.front());
    flush_queue_.pop_front();
    flushes_in_flight_++;
    // Retry loop: transient failures back off and re-run the flush
    // (CopyFlushOne un-publishes on failure, so a retry is idempotent);
    // hard failures or an exhausted budget flip the DB to read-only. The
    // sealed table then stays in live_tables_, still serving reads from
    // its pool slot.
    int attempt = 0;
    for (;;) {
      lock.unlock();
      Status s = CopyFlushOne(sealed);
      lock.lock();
      if (s.ok() || shutting_down_.load(std::memory_order_acquire)) {
        break;
      }
      std::chrono::milliseconds backoff(0);
      if (bg_errors_.OnError("flush.copy", s, attempt, &backoff) ==
          BackgroundErrorManager::Decision::kFail) {
        break;
      }
      attempt++;
      flush_cv_.wait_for(lock, backoff, [this] {
        return shutting_down_.load(std::memory_order_acquire);
      });
    }
    flushes_in_flight_--;
    flush_done_cv_.notify_all();
  }
}

Status DB::FlushZoneToL0() {
  CACHEKV_FAIL_POINT("flush.zone_to_l0");
  OBS_SPAN(&metrics_, "flush.zone");
  std::vector<FlushedTable> snapshot = zone_->SnapshotTables();
  if (snapshot.empty()) {
    return Status::OK();
  }
  obs::TraceScope trace(&trace_, "flush.zone");
  trace.AddArg("tables", snapshot.size());
  trace.AddArg("bytes", zone_->TotalBytes());
  uint64_t snapshot_max_seq = 0;
  for (const FlushedTable& t : snapshot) {
    snapshot_max_seq = std::max(snapshot_max_seq, t.max_sequence);
  }
  DroppedEntryLog dropped;
  // Pinned snapshots, captured at pass start (a pin created later
  // sequences above every entry in this stable table set, so it sees the
  // freshest versions — which the dedup keeps unconditionally).
  std::vector<SequenceNumber> pins = PinnedSnapshots();
  DroppedEntryFn on_retain;
  if (!pins.empty()) {
    on_retain = [this](const Slice& internal_key, const Slice& value) {
      snap_retained_bytes_->fetch_add(internal_key.size() + value.size());
    };
  }
  std::unique_ptr<Iterator> stream(zone_->NewL0Stream(
      snapshot, &dropped, std::move(pins), std::move(on_retain)));
  // Publish the high-water mark before the data becomes invisible in the
  // zone, so readers never skip the LSM for entries that moved there.
  uint64_t seen = l0_hwm_.load(std::memory_order_relaxed);
  while (snapshot_max_seq > seen &&
         !l0_hwm_.compare_exchange_weak(seen, snapshot_max_seq)) {
  }
  Status s = engine_->WriteL0Tables(stream.get());
  if (!s.ok()) {
    return s;  // buffered drops discarded: the retry re-collects them
  }
  stream.reset();
  zone_flushes_->Increment();
  s = zone_->DropTables(snapshot);
  if (!s.ok()) {
    return s;
  }
  // The flush committed end to end: only now do the dedup drops become
  // dead vlog bytes, so a retried flush never double-credits them.
  for (const auto& [internal_key, value] : dropped) {
    drop_observer_(Slice(internal_key), Slice(value));
  }
  return Status::OK();
}

void DB::IndexThread() {
  trace_.SetThreadName("index");
  std::unique_lock<std::mutex> lock(index_mu_);
  while (true) {
    while (sync_queue_.empty() && !compaction_requested_ &&
           !shutting_down_.load(std::memory_order_acquire)) {
      index_cv_.wait(lock);
    }
    if (sync_queue_.empty() && !compaction_requested_ &&
        shutting_down_.load(std::memory_order_acquire)) {
      return;
    }
    if (!sync_queue_.empty()) {
      auto table = std::move(sync_queue_.front());
      sync_queue_.pop_front();
      index_work_in_flight_++;
      lock.unlock();
      table->sync_scheduled.store(false, std::memory_order_release);
      // Lazy index update (trigger 2), §III-B: batch-replay the appended
      // records into the sub-skiplist without blocking writers. Sync is
      // idempotent (replays from the last synced offset), so transient
      // failures simply back off and run it again.
      int attempt = 0;
      for (;;) {
        Status s;
        {
          OBS_SPAN(&metrics_, "index.sync");
          obs::TraceScope sync_trace(&trace_, "index.sync");
          s = [&]() -> Status {
            CACHEKV_FAIL_POINT("index.sync");
            return table->index->SyncWithTable(table->table);
          }();
        }
        if (s.ok() || shutting_down_.load(std::memory_order_acquire)) {
          break;
        }
        std::chrono::milliseconds backoff(0);
        if (bg_errors_.OnError("index.sync", s, attempt, &backoff) ==
            BackgroundErrorManager::Decision::kFail) {
          break;
        }
        attempt++;
        std::this_thread::sleep_for(backoff);
      }
      index_syncs_->Increment();
      lock.lock();
      index_work_in_flight_--;
      index_done_cv_.notify_all();
      continue;
    }
    // Zone work: compaction of the sub-skiplists (§III-D) and the flush
    // to L0 once the staged bytes cross the threshold.
    compaction_requested_ = false;
    index_work_in_flight_++;
    lock.unlock();
    // The "zone.compact" span and trace event are emitted inside
    // FlushedZone::Compact(), which owns that stage.
    zone_->Compact();
    // Retry-safe: the zone keeps its tables until DropTables succeeds,
    // and the L0 high-water mark is published before the LSM write, so
    // re-running the flush after a failure never loses visibility.
    int attempt = 0;
    while (zone_->TotalBytes() >= options_.imm_zone_flush_threshold) {
      Status s = FlushZoneToL0();
      if (s.ok() || shutting_down_.load(std::memory_order_acquire)) {
        break;
      }
      std::chrono::milliseconds backoff(0);
      if (bg_errors_.OnError("flush.zone", s, attempt, &backoff) ==
          BackgroundErrorManager::Decision::kFail) {
        break;
      }
      attempt++;
      std::this_thread::sleep_for(backoff);
    }
    lock.lock();
    index_work_in_flight_--;
    index_done_cv_.notify_all();
  }
}

obs::MetricsSnapshot DB::GetMetricsSnapshot() {
  // Mirror the device- and cache-level hardware counters into gauges so
  // one scrape carries the whole stack (engine spans + PMem media +
  // LLC). Gauges, not counters: the device owns the source of truth and
  // we overwrite with its current value on every snapshot.
  const PmemCounters& pc = env_->device()->counters();
  metrics_.GetGauge("pmem.rmw_count")
      ->Set(static_cast<double>(pc.rmw_count.load()));
  metrics_.GetGauge("pmem.media_bytes_written")
      ->Set(static_cast<double>(pc.media_bytes_written.load()));
  metrics_.GetGauge("pmem.bytes_received")
      ->Set(static_cast<double>(pc.bytes_received.load()));
  metrics_.GetGauge("pmem.nt_bytes")
      ->Set(static_cast<double>(pc.nt_bytes_received.load()));
  metrics_.GetGauge("pmem.write_amplification")
      ->Set(pc.WriteAmplification());
  metrics_.GetGauge("pmem.write_hit_ratio")->Set(pc.WriteHitRatio());
  const CacheStats& cs = env_->cache()->stats();
  metrics_.GetGauge("cache.clwb_lines")
      ->Set(static_cast<double>(cs.clwb_lines.load()));
  metrics_.GetGauge("cache.fences")
      ->Set(static_cast<double>(cs.fences.load()));
  metrics_.GetGauge("cache.dirty_evictions")
      ->Set(static_cast<double>(cs.dirty_evictions.load()));
  return metrics_.Snapshot();
}

void DB::DumpMetrics(std::string* out) {
  JsonValue json;
  GetMetricsSnapshot().ToJson(&json);
  json.Write(out);
}

Status DB::WaitIdle() {
  // Timed waits throughout: the workers do not signal while sleeping in
  // a retry backoff, and the predicate must also observe a background
  // error raised by the other thread.
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    while ((!flush_queue_.empty() || flushes_in_flight_ > 0) &&
           !bg_errors_.read_only()) {
      flush_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  Status s = bg_errors_.background_error();
  if (!s.ok()) {
    return s;
  }
  {
    std::unique_lock<std::mutex> lock(index_mu_);
    while ((!sync_queue_.empty() || compaction_requested_ ||
            index_work_in_flight_ > 0) &&
           !bg_errors_.read_only()) {
      index_done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  s = bg_errors_.background_error();
  if (!s.ok()) {
    return s;
  }
  return engine_->WaitForCompactions();
}

Status DB::BackgroundError() {
  Status s = bg_errors_.background_error();
  if (!s.ok()) {
    return s;
  }
  return engine_->BackgroundError();
}

}  // namespace cachekv
