#include "core/flushed_zone.h"

#include <algorithm>

#include "core/record_format.h"
#include "fault/fail_point.h"
#include "lsm/merger.h"
#include "lsm/wal.h"
#include "util/coding.h"

namespace cachekv {

namespace {

Slice GlobalEntryKey(const char* entry) {
  uint32_t len;
  const char* p = GetVarint32Ptr(entry, entry + 5, &len);
  return Slice(p, len);
}

uint64_t GlobalEntryAddr(const char* entry) {
  Slice key = GlobalEntryKey(entry);
  return DecodeFixed64(key.data() + key.size());
}

const char* EncodeSeekEntry(std::string* scratch,
                            const Slice& internal_key) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(internal_key.size()));
  scratch->append(internal_key.data(), internal_key.size());
  return scratch->data();
}

}  // namespace

int GlobalSkiplist::KeyComparator::operator()(const char* a,
                                              const char* b) const {
  return comparator.Compare(GlobalEntryKey(a), GlobalEntryKey(b));
}

GlobalSkiplist::GlobalSkiplist() : index_(comparator_, &arena_) {}

void GlobalSkiplist::Add(const Slice& internal_key, uint64_t addr) {
  const size_t encoded_len = VarintLength(internal_key.size()) +
                             internal_key.size() + sizeof(uint64_t);
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf,
                           static_cast<uint32_t>(internal_key.size()));
  memcpy(p, internal_key.data(), internal_key.size());
  p += internal_key.size();
  EncodeFixed64(p, addr);
  index_.Insert(buf);
  num_entries_++;
}

bool GlobalSkiplist::Get(const Slice& user_key, Candidate* out) const {
  std::string target_ikey;
  AppendInternalKey(&target_ikey, user_key, kMaxSequenceNumber,
                    kValueTypeForSeek);
  std::string scratch;
  Index::Iterator iter(&index_);
  iter.Seek(EncodeSeekEntry(&scratch, Slice(target_ikey)));
  if (!iter.Valid()) {
    return false;
  }
  Slice found = GlobalEntryKey(iter.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(found, &parsed) || parsed.user_key != user_key) {
    return false;
  }
  out->sequence = parsed.sequence;
  out->type = parsed.type;
  out->record_addr = GlobalEntryAddr(iter.key());
  return true;
}

class GlobalSkiplist::Iter : public Iterator {
 public:
  Iter(const GlobalSkiplist* list, PmemEnv* env)
      : env_(env), iter_(&list->index_) {}

  bool Valid() const override { return iter_.Valid(); }

  void SeekToFirst() override {
    iter_.SeekToFirst();
    loaded_ = false;
  }

  void Seek(const Slice& internal_key) override {
    iter_.Seek(EncodeSeekEntry(&scratch_, internal_key));
    loaded_ = false;
  }

  void Next() override {
    iter_.Next();
    loaded_ = false;
  }

  Slice key() const override { return GlobalEntryKey(iter_.key()); }

  Slice value() const override {
    if (!loaded_) {
      const uint64_t addr = GlobalEntryAddr(iter_.key());
      RecordHeader record;
      if (DecodeRecordHeaderAt(env_, addr, &record)) {
        LoadRecordValue(env_, addr, record, &value_);
      } else {
        value_.clear();
      }
      loaded_ = true;
    }
    return Slice(value_);
  }

  Status status() const override { return Status::OK(); }

 private:
  PmemEnv* env_;
  Index::Iterator iter_;
  std::string scratch_;
  mutable std::string value_;
  mutable bool loaded_ = false;
};

Iterator* GlobalSkiplist::NewIterator(PmemEnv* env) const {
  return new Iter(this, env);
}

FlushedZone::FlushedZone(PmemEnv* env, uint64_t registry_base,
                         uint64_t registry_slot_size,
                         bool compaction_enabled,
                         obs::MetricsRegistry* metrics,
                         obs::Tracer* trace)
    : env_(env),
      registry_base_(registry_base),
      registry_slot_size_(registry_slot_size),
      compaction_enabled_(compaction_enabled),
      metrics_(metrics),
      trace_(trace),
      global_(std::make_shared<GlobalSkiplist>()) {}

uint32_t FlushedZone::ComputeDataCrc(PmemEnv* env, uint64_t region_offset,
                                     uint32_t data_tail) {
  std::string data(data_tail, '\0');
  env->Load(region_offset + SubMemTable::kDataOffset, data.data(),
            data_tail);
  return WalCrc(data.data(), data.size());
}

Status FlushedZone::PersistRegistryLocked() {
  std::string body;
  PutFixed64(&body, registry_epoch_ + 1);
  PutFixed32(&body, static_cast<uint32_t>(tables_.size()));
  for (const FlushedTable& t : tables_) {
    PutFixed64(&body, t.region_offset);
    PutFixed64(&body, t.region_size);
    PutFixed32(&body, t.data_tail);
    PutFixed64(&body, t.entry_count);
    PutFixed64(&body, t.max_sequence);
    PutFixed32(&body, t.data_crc);
  }
  std::string encoded;
  PutFixed32(&encoded, static_cast<uint32_t>(body.size()));
  PutFixed32(&encoded, WalCrc(body.data(), body.size()));
  encoded.append(body);
  if (encoded.size() > registry_slot_size_) {
    return Status::OutOfSpace("zone registry exceeds its slot");
  }
  const uint64_t slot =
      registry_base_ + ((registry_epoch_ + 1) % 2) * registry_slot_size_;
  if (fault::AnyActive()) {
    fault::InjectResult inj = fault::Evaluate("zone.persist");
    if (inj.torn) {
      // Torn A/B slot write: persist only an XPLine-aligned prefix of the
      // encoded registry. The epoch is not consumed, so a retry rewrites
      // this same (partially written) slot and never overwrites the last
      // fully-written one; recovery falls back to the surviving slot.
      uint64_t keep = (encoded.size() * (inj.rand % fault::kTearDenom)) /
                      fault::kTearDenom;
      keep -= keep % kXPLineSize;
      if (keep > 0) {
        env_->NtStore(slot, encoded.data(), keep);
        env_->Sfence();
      }
      return inj.status;
    }
    if (!inj.status.ok()) {
      return inj.status;
    }
  }
  env_->NtStore(slot, encoded.data(), encoded.size());
  env_->Sfence();
  registry_epoch_++;
  return Status::OK();
}

Status FlushedZone::AddTable(FlushedTable table) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  total_bytes_.fetch_add(table.data_tail, std::memory_order_release);
  uint64_t seen = max_sequence_.load(std::memory_order_relaxed);
  while (table.max_sequence > seen &&
         !max_sequence_.compare_exchange_weak(seen, table.max_sequence)) {
  }
  table.in_global = false;
  const uint32_t data_tail = table.data_tail;
  tables_.push_back(std::move(table));
  Status s = PersistRegistryLocked();
  if (!s.ok()) {
    // Roll back the in-memory add so a retried flush re-adds the table
    // exactly once. The monotonic max_sequence_ bump is harmless.
    tables_.pop_back();
    total_bytes_.fetch_sub(data_tail, std::memory_order_release);
  }
  return s;
}

void FlushedZone::Compact() {
  if (!compaction_enabled_) {
    return;
  }
  obs::SpanTimer span(metrics_, "zone.compact");
  obs::TraceScope trace(trace_, "zone.compact");
  // Snapshot the member tables.
  std::vector<std::shared_ptr<SubSkiplist>> indexes;
  std::vector<uint64_t> bases;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    indexes.reserve(tables_.size());
    for (const FlushedTable& t : tables_) {
      indexes.push_back(t.index);
      bases.push_back(t.index->data_base());
    }
  }

  // K-way merge of the sub-skiplists; only the first (freshest) entry
  // per user key survives -- the "invalid node" removal of Figure 9.
  // Tombstones are kept: they must mask older LSM data until the zone is
  // flushed to L0.
  auto rebuilt = std::make_shared<GlobalSkiplist>();
  struct MergeSource {
    std::unique_ptr<SubSkiplist::RawCursor> cursor;
    uint64_t base;
  };
  std::vector<MergeSource> sources;
  for (size_t i = 0; i < indexes.size(); i++) {
    MergeSource src;
    src.cursor = indexes[i]->NewRawCursor();
    src.base = bases[i];
    src.cursor->SeekToFirst();
    if (src.cursor->Valid()) {
      sources.push_back(std::move(src));
    }
  }
  std::string last_user_key;
  bool has_last = false;
  while (!sources.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < sources.size(); i++) {
      if (icmp_.Compare(sources[i].cursor->internal_key(),
                        sources[best].cursor->internal_key()) < 0) {
        best = i;
      }
    }
    Slice ikey = sources[best].cursor->internal_key();
    Slice user_key = ExtractUserKey(ikey);
    if (!has_last || Slice(last_user_key) != user_key) {
      rebuilt->Add(ikey,
                   sources[best].base +
                       sources[best].cursor->record_offset());
      has_last = true;
      last_user_key.assign(user_key.data(), user_key.size());
    }
    sources[best].cursor->Next();
    if (!sources[best].cursor->Valid()) {
      sources.erase(sources.begin() + best);
    }
  }

  trace.AddArg("tables", indexes.size());
  trace.AddArg("entries", rebuilt->NumEntries());

  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t still_present = 0;
  for (FlushedTable& t : tables_) {
    // Only tables included in this rebuild are covered; anything added
    // while we merged stays individually probed until the next pass.
    bool included = false;
    for (const auto& index : indexes) {
      if (index == t.index) {
        included = true;
        break;
      }
    }
    t.in_global = included;
    if (included) {
      still_present++;
    }
  }
  if (still_present != indexes.size()) {
    // A snapshot table left the zone while we merged (flushed to L0):
    // the rebuilt index would hold dangling addresses. Skip the swap.
    return;
  }
  global_ = rebuilt;
}

Status FlushedZone::Get(const Slice& user_key, LookupResult* out,
                        SequenceNumber max_sequence) {
  out->found = false;
  // The caller holds the shared lock; take a consistent view.
  std::shared_ptr<const GlobalSkiplist> global = global_;
  const bool bounded = max_sequence != kMaxSequenceNumber;

  SequenceNumber best_seq = 0;
  ValueType best_type = kTypeValue;
  uint64_t best_addr = 0;
  const SubSkiplist* best_table_index = nullptr;
  SubSkiplist::Candidate best_table_candidate;

  if (compaction_enabled_ && !bounded) {
    GlobalSkiplist::Candidate c;
    if (global->Get(user_key, &c)) {
      out->found = true;
      best_seq = c.sequence;
      best_type = c.type;
      best_addr = c.record_addr;
    }
  }
  // Probe tables not yet covered by the global skiplist (or all tables
  // when compaction is off). A bounded read probes every table: the
  // global skiplist dropped the superseded versions a snapshot may need.
  for (const FlushedTable& t : tables_) {
    if (compaction_enabled_ && !bounded && t.in_global) {
      continue;
    }
    SubSkiplist::Candidate c;
    if (t.index->Get(user_key, &c, max_sequence) &&
        (!out->found || c.sequence > best_seq)) {
      out->found = true;
      best_seq = c.sequence;
      best_type = c.type;
      best_addr = 0;
      best_table_index = t.index.get();
      best_table_candidate = c;
    }
  }
  if (!out->found) {
    return Status::OK();
  }
  out->sequence = best_seq;
  out->type = best_type;
  if (best_type == kTypeDeletion) {
    return Status::OK();
  }
  if (best_table_index != nullptr) {
    return best_table_index->ReadValue(best_table_candidate, &out->value);
  }
  RecordHeader record;
  if (!DecodeRecordHeaderAt(env_, best_addr, &record)) {
    return Status::Corruption("bad record under global skiplist node");
  }
  LoadRecordValue(env_, best_addr, record, &out->value);
  return Status::OK();
}

std::vector<FlushedTable> FlushedZone::SnapshotTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_;
}

Iterator* FlushedZone::NewL0Stream(
    const std::vector<FlushedTable>& snapshot, DroppedEntryLog* dropped,
    std::vector<SequenceNumber> snapshots, DroppedEntryFn on_retain) {
  std::vector<Iterator*> children;
  children.reserve(snapshot.size());
  for (const FlushedTable& t : snapshot) {
    children.push_back(t.index->NewIterator());
  }
  DroppedEntryFn on_drop;
  if (dropped != nullptr) {
    on_drop = [dropped](const Slice& internal_key, const Slice& value) {
      dropped->emplace_back(internal_key.ToString(), value.ToString());
    };
  }
  return NewDedupingIterator(
      NewMergingIterator(&icmp_, std::move(children)), std::move(on_drop),
      std::move(snapshots), std::move(on_retain));
}

Status FlushedZone::DropTables(const std::vector<FlushedTable>& snapshot) {
  CACHEKV_FAIL_POINT("zone.drop");
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const FlushedTable& dropped : snapshot) {
    for (size_t i = 0; i < tables_.size(); i++) {
      if (tables_[i].index == dropped.index) {
        total_bytes_.fetch_sub(tables_[i].data_tail,
                               std::memory_order_release);
        Status s = env_->allocator()->Free(tables_[i].region_offset,
                                           tables_[i].region_size);
        if (!s.ok()) {
          return s;
        }
        tables_.erase(tables_.begin() + i);
        break;
      }
    }
  }
  // The global skiplist may reference freed regions: replace it with an
  // empty one; remaining tables fall back to per-table probing until the
  // next compaction pass.
  global_ = std::make_shared<GlobalSkiplist>();
  for (FlushedTable& t : tables_) {
    t.in_global = false;
  }
  return PersistRegistryLocked();
}

Status FlushedZone::Recover() {
  CACHEKV_FAIL_POINT("zone.recover");
  // Read both registry slots; adopt the valid one with the higher epoch.
  auto read_slot = [&](int slot, uint64_t* epoch,
                       std::vector<FlushedTable>* out) -> Status {
    const uint64_t base = registry_base_ +
                          static_cast<uint64_t>(slot) *
                              registry_slot_size_;
    char header[8];
    env_->Load(base, header, sizeof(header));
    const uint32_t body_len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (body_len == 0 || body_len > registry_slot_size_ - 8) {
      return Status::NotFound("empty zone registry slot");
    }
    std::string body(body_len, '\0');
    env_->Load(base + 8, body.data(), body_len);
    if (WalCrc(body.data(), body.size()) != crc) {
      return Status::Corruption("zone registry crc mismatch");
    }
    Slice in(body);
    if (in.size() < 12) {
      return Status::Corruption("zone registry too short");
    }
    *epoch = DecodeFixed64(in.data());
    uint32_t count = DecodeFixed32(in.data() + 8);
    in.remove_prefix(12);
    for (uint32_t i = 0; i < count; i++) {
      if (in.size() < 40) {
        return Status::Corruption("zone registry truncated");
      }
      FlushedTable t;
      t.region_offset = DecodeFixed64(in.data());
      t.region_size = DecodeFixed64(in.data() + 8);
      t.data_tail = DecodeFixed32(in.data() + 16);
      t.entry_count = DecodeFixed64(in.data() + 20);
      t.max_sequence = DecodeFixed64(in.data() + 28);
      t.data_crc = DecodeFixed32(in.data() + 36);
      in.remove_prefix(40);
      out->push_back(std::move(t));
    }
    return Status::OK();
  };

  uint64_t epoch_a = 0, epoch_b = 0;
  std::vector<FlushedTable> tables_a, tables_b;
  Status sa = read_slot(0, &epoch_a, &tables_a);
  Status sb = read_slot(1, &epoch_b, &tables_b);
  std::vector<FlushedTable>* chosen = nullptr;
  uint64_t chosen_epoch = 0;
  if (sa.ok() && (!sb.ok() || epoch_a > epoch_b)) {
    chosen = &tables_a;
    chosen_epoch = epoch_a;
  } else if (sb.ok()) {
    chosen = &tables_b;
    chosen_epoch = epoch_b;
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  tables_.clear();
  total_bytes_.store(0, std::memory_order_release);
  if (chosen == nullptr) {
    registry_epoch_ = 0;
    return Status::OK();  // fresh zone
  }
  registry_epoch_ = chosen_epoch;
  for (FlushedTable& t : *chosen) {
    Status s = env_->allocator()->Reserve(t.region_offset, t.region_size);
    if (!s.ok()) {
      return s;
    }
    // The registry named this table, but the staged bytes themselves may
    // have been damaged (torn copy, media corruption): verify the data
    // checksum before trusting a single record header.
    if (ComputeDataCrc(env_, t.region_offset, t.data_tail) != t.data_crc) {
      return Status::Corruption("zone table data crc mismatch");
    }
    t.index = std::make_shared<SubSkiplist>(
        env_, t.region_offset + SubMemTable::kDataOffset);
    s = t.index->SyncTo(t.entry_count, t.data_tail);
    if (!s.ok()) {
      return s;
    }
    total_bytes_.fetch_add(t.data_tail, std::memory_order_release);
    uint64_t seen = max_sequence_.load(std::memory_order_relaxed);
    if (t.max_sequence > seen) {
      max_sequence_.store(t.max_sequence, std::memory_order_release);
    }
    t.in_global = false;
    tables_.push_back(std::move(t));
  }
  lock.unlock();
  Compact();
  return Status::OK();
}

int FlushedZone::NumTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(tables_.size());
}

uint64_t FlushedZone::GlobalIndexEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return global_->NumEntries();
}

}  // namespace cachekv
