#ifndef CACHEKV_CORE_DB_H_
#define CACHEKV_CORE_DB_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/kvstore.h"
#include "core/bg_error_manager.h"
#include "core/flushed_zone.h"
#include "core/options.h"
#include "core/sub_memtable.h"
#include "core/sub_memtable_pool.h"
#include "core/sub_skiplist.h"
#include "lsm/lsm_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pmem/pmem_env.h"
#include "vlog/value_log.h"
#include "vlog/value_pointer.h"
#include "vlog/vlog_gc.h"

namespace cachekv {

/// DB is the CacheKV store (§III): per-core sub-MemTables pinned in the
/// persistent CPU caches, lazily synchronized DRAM sub-skiplists,
/// copy-based flush of sealed sub-ImmMemTables into a PMem staging zone,
/// periodic sub-skiplist compaction into a global skiplist, and an
/// LSM-tree storage component underneath.
///
/// Requirements on the environment: env->locked_size() must equal
/// options.pool_bytes (the pool is the CAT pseudo-locked range), and the
/// platform must be eADR (the design relies on persistent caches for the
/// crash-consistency of unflushed sub-MemTables).
class DB : public KVStore {
 public:
  /// Opens a fresh store, or recovers a crashed one when `recover` is
  /// set (§III-E: rebuild sub-skiplists from the persistent
  /// sub-MemTables, re-adopt the staged zone, recover the LSM manifest).
  static Status Open(PmemEnv* env, const CacheKVOptions& options,
                     bool recover, std::unique_ptr<DB>* db);

  ~DB() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  std::string Name() const override;
  Status WaitIdle() override;

  /// One operation of a multi-key transaction (shared with the generic
  /// KVStore batch interface).
  using BatchOp = KVStore::BatchOp;

  /// Atomic batch commit: forwards to MultiPut.
  Status ApplyBatch(const std::vector<BatchOp>& batch) override;

  /// Ordered forward scan built on NewScanIterator().
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override;

  /// Multi-key transaction (§III-A discussion): all operations are
  /// appended contiguously to the calling core's sub-MemTable and
  /// published by a single 64-bit header CAS, so a crash either persists
  /// the whole batch or none of it. All records carry one sequence
  /// number block assigned atomically. Fails with InvalidArgument when
  /// the batch cannot fit one sub-MemTable.
  Status MultiPut(const std::vector<BatchOp>& batch);

  /// Forward iterator over the live user keys (freshest versions,
  /// tombstones elided), merging the sub-MemTables, the staged zone, and
  /// the LSM tree. The iterator pins the memory component: background
  /// copy-flushes and zone-to-L0 flushes stall until it is destroyed, so
  /// keep scans short-lived.
  Iterator* NewScanIterator();

  /// A pinned read view (docs/SNAPSHOTS.md): every read at the snapshot
  /// sees exactly the versions with sequence <= sequence() and nothing
  /// newer, for as long as the pin is held. Obtained from GetSnapshot()
  /// and returned through ReleaseSnapshot(); the DB owns the object.
  class Snapshot {
   public:
    SequenceNumber sequence() const { return sequence_; }

   private:
    friend class DB;
    explicit Snapshot(SequenceNumber seq) : sequence_(seq) {}
    const SequenceNumber sequence_;
  };

  /// Pins the current last-committed sequence number: flush, compaction,
  /// and vlog GC retain every version the pin can still resolve until it
  /// is released. Returns null when max_pinned_snapshots pins are
  /// already live (the caller should back off or release one).
  const Snapshot* GetSnapshot();

  /// Unpins and destroys `snapshot` (null is a no-op). Versions retained
  /// only for this pin become reclaimable on the next flush/compaction/
  /// GC pass.
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// The live pinned sequence numbers, sorted ascending (compaction and
  /// GC capture this at pass start).
  std::vector<SequenceNumber> PinnedSnapshots() const;

  /// Point read at a pinned snapshot: the freshest version with
  /// sequence <= `snapshot` answers. The caller must hold a pin at (or
  /// below) `snapshot` for the duration, or dropped versions may leak
  /// into view.
  Status GetAt(const Slice& key, SequenceNumber snapshot,
               std::string* value);

  /// Ordered forward scan at a pinned snapshot (same pin requirement as
  /// GetAt).
  Status ScanAt(const Slice& start, size_t limit, SequenceNumber snapshot,
                std::vector<std::pair<std::string, std::string>>* out);

  /// NewScanIterator() bounded at a pinned snapshot: versions newer than
  /// `snapshot` are invisible; the freshest visible version per key
  /// wins, tombstones elided (same pin requirement as GetAt).
  Iterator* NewScanIteratorAt(SequenceNumber snapshot);

  /// The store's metrics registry: "db.*" counters, stage-span
  /// histograms (nanoseconds), and — after a snapshot refresh —
  /// "pmem.*" / "cache.*" device gauges. Components may register more.
  /// All runtime counters live here and ONLY here; read one with
  /// CounterValue() or via a snapshot — there is no separate stats
  /// structure.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Convenience read of one registry counter (0 when never touched).
  uint64_t CounterValue(std::string_view name) {
    return metrics_.GetCounter(name)->value();
  }

  /// The store's event tracer (off unless Options::trace_enabled or
  /// CACHEKV_TRACE turned it on at Open time).
  obs::Tracer* trace() { return &trace_; }

  /// Serializes the retained trace events as one Chrome trace-event
  /// JSON array (loadable in Perfetto / chrome://tracing). Empty array
  /// when tracing is disabled. Best called after WaitIdle().
  void DumpTrace(std::string* out) { trace_.Export(out); }

  /// Scrapes the registry after refreshing the PMem device and cache
  /// simulator gauges (pmem.rmw_count, pmem.media_bytes_written,
  /// pmem.bytes_received, pmem.nt_bytes, pmem.write_amplification,
  /// cache.clwb_lines, cache.fences, cache.dirty_evictions).
  obs::MetricsSnapshot GetMetricsSnapshot();

  /// Appends the current snapshot to *out as pretty-printed JSON.
  void DumpMetrics(std::string* out);

  /// The sticky background error: OK while healthy. Set when a flush,
  /// index-sync, or zone-to-L0 stage failed hard (or exhausted its retry
  /// budget) — from then on the DB is read-only and every write returns
  /// this error. Also surfaces the LSM engine's own background error.
  Status BackgroundError();

  /// True once a background failure degraded the store to read-only.
  bool IsReadOnly() const override { return bg_errors_.read_only(); }

  /// Conservative bound on the total encoded bytes one MultiPut /
  /// ApplyBatch call can carry and still commit on the first available
  /// sub-MemTable even under elasticity (front ends batching pipelined
  /// writes size their batches against this; see src/net/server.cc).
  uint64_t ApproxMultiPutCapacityBytes() const;

  /// Observer of every successful write commit, invoked after the
  /// batch is durably published, with the committed ops and the
  /// sequence number of the batch's last record. Single writes surface
  /// as a one-element batch (a Delete as an is_delete op). The
  /// replication layer taps this to append to the per-shard
  /// replication log (src/repl/).
  ///
  /// Invocations are totally ordered by sequence number: when two
  /// concurrent writes race (even to the same key), their hooks fire
  /// in the order their sequence blocks were allocated, so a log built
  /// from the hook replays to the same state the DB converged to. To
  /// keep that order, a hook may run on a *different* writer's thread
  /// than the one that committed the batch (the later-sequenced writer
  /// that published first drains it). Hooks must be fast and
  /// non-blocking.
  using CommitHook =
      std::function<void(const std::vector<BatchOp>& ops,
                         SequenceNumber last_seq)>;

  /// Installs `hook` (empty disables). Not synchronized against
  /// in-flight writes: set it before the DB starts serving.
  void SetCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// The last sequence number this thread committed through Put /
  /// Delete / MultiPut on any DB, or 0 if it never wrote. Lets a
  /// server worker wait for the replication of exactly the write it
  /// just performed instead of whatever the log head happens to be
  /// (repl::ReplHub::WaitCommitAcked).
  static SequenceNumber ThreadLastCommitSeq();

  SubMemTablePool* pool() { return pool_.get(); }
  FlushedZone* zone() { return zone_.get(); }
  LsmEngine* engine() { return engine_.get(); }
  ValueLog* vlog() { return vlog_.get(); }
  VlogGc* vlog_gc() { return vlog_gc_.get(); }
  SequenceNumber LastSequence() const {
    return sequence_.load(std::memory_order_acquire);
  }

 private:
  /// An acquired sub-MemTable with its DRAM-side attachments.
  struct ActiveTable {
    SubMemTable table;
    std::shared_ptr<SubSkiplist> index;
    /// Serializes appends when more threads than writer slots exist;
    /// uncontended in the per-core regime.
    std::mutex append_mu;
    std::atomic<uint64_t> writes_since_sync{0};
    std::atomic<bool> sync_scheduled{false};

    ActiveTable(PmemEnv* env, const SubMemTable& t)
        : table(t),
          index(std::make_shared<SubSkiplist>(env, t.data_offset())) {}
  };

  DB(PmemEnv* env, const CacheKVOptions& options);

  /// Freshest committed version of `key` across all three components,
  /// with the raw stored bytes (a pointer entry's encoded ValuePointer is
  /// NOT resolved). `count_hit` routes the per-component hit counters;
  /// the GC liveness probe passes false.
  struct RawResult {
    bool found = false;
    SequenceNumber sequence = 0;
    ValueType type = kTypeValue;
    std::string value;  // raw bytes unless type == kTypeDeletion
    /// Which component answered, for the db.get_hit_* attribution.
    enum class Where { kNone, kSubMemTable, kZone, kLsm } where =
        Where::kNone;
  };
  /// `max_sequence` bounds the search to versions with sequence <=
  /// max_sequence (kMaxSequenceNumber = unbounded latest read).
  Status SearchRaw(const Slice& key, RawResult* out,
                   SequenceNumber max_sequence = kMaxSequenceNumber);

  /// Shared body of Get / GetAt: bounded search plus value-pointer
  /// resolution and hit/miss accounting.
  Status GetImpl(const Slice& key, SequenceNumber max_sequence,
                 std::string* value);

  /// True when a Put of (key, value) goes through the value log.
  bool ShouldSeparate(const Slice& key, const Slice& value) const;

  /// GC relocation of one vlog record, under the global write fence (all
  /// core locks, so no writer sits between sequence allocation and
  /// publication). Re-appends `value` under a fresh sequence and commits
  /// the new pointer iff the freshest committed version of `key` is
  /// exactly `old_ptr`; otherwise the record is dead and *relocated
  /// stays false. `record_seq` is the record's original sequence;
  /// *snapshot_pinned reports whether a pinned snapshot still resolves
  /// the old pointer (relocated or not), which blocks the segment's
  /// unlink (docs/SNAPSHOTS.md).
  Status RelocateForGc(SequenceNumber record_seq, const Slice& key,
                       const ValuePointer& old_ptr, const Slice& value,
                       bool* relocated, bool* snapshot_pinned);

  Status Write(ValueType type, const Slice& key, const Slice& value);
  Status WriteToCore(int core, SequenceNumber seq, ValueType type,
                     const Slice& key, const Slice& value);
  /// Reserves a block of `n` sequence numbers, returning the first.
  /// With a commit hook installed the block is also registered as
  /// in-flight (atomically with the reservation) so DispatchCommitHook
  /// can order hook invocations across racing writers.
  SequenceNumber AllocSeqBlock(size_t n);
  /// Retires the in-flight block starting at `first_seq` and fires the
  /// commit hook for it — in sequence order: a block that outran an
  /// earlier writer is buffered until that writer publishes or fails.
  /// `ops` == nullptr means the write failed after reserving its block
  /// (the hook is skipped but successors it was blocking are drained).
  void DispatchCommitHook(SequenceNumber first_seq,
                          SequenceNumber last_seq,
                          const std::vector<BatchOp>* ops);
  // Seals `current`, hands it to the flushers, and acquires a
  // replacement for `core` (waiting on the flushers when the pool is
  // exhausted). Returns the new table via metadata_[core].
  Status SealAndReplace(int core, std::shared_ptr<ActiveTable> current);
  Status AcquireFor(int core);
  int CoreOf();

  // Background machinery.
  void FlushThread();
  void IndexThread();
  Status CopyFlushOne(std::shared_ptr<ActiveTable> sealed);
  Status FlushZoneToL0();
  void ScheduleSync(const std::shared_ptr<ActiveTable>& table);

  PmemEnv* env_;
  CacheKVOptions options_;
  InternalKeyComparator scan_icmp_;
  // The registry and tracer must outlive (so precede) every component
  // holding pointers into them: pool_/zone_/engine_, the cached counter
  // pointers below, and the span call sites in background threads.
  obs::MetricsRegistry metrics_;
  obs::Tracer trace_;
  // Background-error policy: classifies failures from the flush and
  // index threads, drives their retry loops, and owns the read-only
  // degradation state checked by every foreground write.
  BackgroundErrorManager bg_errors_;
  std::unique_ptr<SubMemTablePool> pool_;
  std::unique_ptr<FlushedZone> zone_;
  std::unique_ptr<LsmEngine> engine_;
  // Key–value separation (src/vlog/): the log outlives the GC thread,
  // which is stopped first in ~DB.
  std::unique_ptr<ValueLog> vlog_;
  std::unique_ptr<VlogGc> vlog_gc_;
  // Credits dropped pointer entries back to the vlog as dead bytes.
  // Compaction invokes it through the engine; the zone→L0 flush buffers
  // its drops and delivers them here only after the flush commits.
  DroppedEntryFn drop_observer_;

  // Hot-path counters, cached once from the registry (which owns them;
  // DumpMetrics() is the single source of truth for their values).
  obs::Counter* puts_;
  obs::Counter* gets_;
  obs::Counter* seals_;
  obs::Counter* copy_flushes_;
  obs::Counter* zone_flushes_;
  obs::Counter* index_syncs_;
  obs::Counter* acquire_waits_;
  obs::Counter* write_stalls_;
  obs::Counter* get_hit_submemtable_;
  obs::Counter* get_hit_zone_;
  obs::Counter* get_hit_lsm_;
  obs::Counter* get_miss_;
  obs::Counter* ingest_bytes_;
  obs::Counter* separated_puts_;
  obs::Counter* snap_pins_;
  obs::Counter* snap_releases_;
  obs::Counter* snap_retained_bytes_;

  std::atomic<uint64_t> sequence_{0};

  // Pinned snapshot sequence numbers (a multiset: concurrent pins can
  // land on the same sequence). Guarded by snapshots_mu_.
  mutable std::mutex snapshots_mu_;
  std::multiset<SequenceNumber> pinned_snapshots_;
  CommitHook commit_hook_;

  // Commit-hook ordering (engaged only while commit_hook_ is set).
  // hook_inflight_ holds the first_seq of every reserved-but-unsettled
  // sequence block; hook_pending_ buffers committed batches whose hook
  // cannot fire yet because an earlier block is still in flight.
  struct PendingHook {
    std::vector<BatchOp> ops;
    SequenceNumber last_seq;
  };
  std::mutex hook_mu_;
  std::set<SequenceNumber> hook_inflight_;
  std::map<SequenceNumber, PendingHook> hook_pending_;

  // Per-core assignments (the global metadata structure of Figure 7;
  // kept in DRAM to avoid PMem write amplification). Each slot is
  // guarded by its core mutex, which stands in for per-core exclusivity
  // when more threads than writer slots exist.
  static constexpr int kMaxCoreLocks = 64;
  std::mutex core_mu_[kMaxCoreLocks];
  std::vector<std::shared_ptr<ActiveTable>> metadata_;
  // All tables currently serving reads from the pool (active + sealed
  // but not yet copy-flushed). Guarded by tables_mu_; readers hold it
  // shared across the whole memory-component search so the flusher
  // cannot recycle a slot under them.
  mutable std::shared_mutex tables_mu_;
  std::vector<std::shared_ptr<ActiveTable>> live_tables_;

  // Sequence high-water marks for read pruning: any memory-component
  // answer fresher than flushed_hwm_ is authoritative without consulting
  // the zone; anything fresher than l0_hwm_ skips the LSM.
  std::atomic<uint64_t> flushed_hwm_{0};
  std::atomic<uint64_t> l0_hwm_{0};

  // Flush queue (sealed tables awaiting the copy-based flush).
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::condition_variable flush_done_cv_;
  std::deque<std::shared_ptr<ActiveTable>> flush_queue_;
  int flushes_in_flight_ = 0;
  std::vector<std::thread> flush_threads_;

  // Index/compaction work queue (lazy index trigger 2 + zone work).
  std::mutex index_mu_;
  std::condition_variable index_cv_;
  std::condition_variable index_done_cv_;
  std::deque<std::shared_ptr<ActiveTable>> sync_queue_;
  bool compaction_requested_ = false;
  int index_work_in_flight_ = 0;
  std::vector<std::thread> index_threads_;

  std::atomic<bool> shutting_down_{false};
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_DB_H_
