#ifndef CACHEKV_CORE_SUB_SKIPLIST_H_
#define CACHEKV_CORE_SUB_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/sub_memtable.h"
#include "index/skiplist.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "pmem/pmem_env.h"
#include "util/arena.h"

namespace cachekv {

/// SubSkiplist is the DRAM-resident index of one sub-MemTable (§III-B).
/// Nodes hold a copy of the internal key plus the record's offset inside
/// the sub-MemTable's data region; values stay in the (persistent-cache
/// resident) sub-MemTable and are fetched on demand. Keeping the index in
/// DRAM shortens update latency, avoids PMem write amplification for the
/// small index writes, and saves cache footprint for KV data — the three
/// advantages §III-B lists.
///
/// A `list_counter` / `list_tail` pair mirrors the sub-MemTable's
/// table_counter/tail; syncing means replaying records in
/// [list_tail, tail) until the counters match.
///
/// Thread-safety: Sync* calls serialize on an internal mutex (they are
/// issued by readers, background index threads, and the flusher);
/// Get/iteration may run concurrently with a sync (LevelDB skiplist
/// reader guarantees).
class SubSkiplist {
 public:
  /// `data_base` is the PMem address of the table's data region; it is
  /// re-pointed by the copy-based flush when the data moves to the
  /// sub-ImmMemTable area.
  SubSkiplist(PmemEnv* env, uint64_t data_base);

  SubSkiplist(const SubSkiplist&) = delete;
  SubSkiplist& operator=(const SubSkiplist&) = delete;

  /// Catches up with the live table until list_counter == table_counter
  /// (the strict read-time trigger of §III-B). Cheap when already in
  /// sync: one header read.
  Status SyncWithTable(const SubMemTable& table);

  /// Catches up to an explicit (counter, tail) target; used by the
  /// flusher's final sync and by crash recovery over relocated data.
  Status SyncTo(uint64_t target_counter, uint32_t target_tail);

  /// Freshest indexed entry for user_key.
  struct Candidate {
    SequenceNumber sequence = 0;
    ValueType type = kTypeValue;
    uint32_t record_offset = 0;
  };

  /// Returns true and fills *out when an entry for user_key exists.
  /// `max_sequence` bounds the read: the freshest version with
  /// sequence <= max_sequence answers (snapshot reads pass their
  /// pinned sequence; the default is the unbounded latest read).
  bool Get(const Slice& user_key, Candidate* out,
           SequenceNumber max_sequence = kMaxSequenceNumber) const;

  /// Loads the value of a candidate from the table data.
  Status ReadValue(const Candidate& candidate, std::string* value) const;

  /// Re-points the data region (copy-based flush relocation).
  void SetDataBase(uint64_t base) {
    data_base_.store(base, std::memory_order_release);
  }
  uint64_t data_base() const {
    return data_base_.load(std::memory_order_acquire);
  }

  uint64_t list_counter() const {
    return list_counter_.load(std::memory_order_acquire);
  }
  uint32_t list_tail() const {
    return list_tail_.load(std::memory_order_acquire);
  }

  /// Highest sequence number indexed so far.
  SequenceNumber max_sequence() const {
    return max_sequence_.load(std::memory_order_acquire);
  }

  /// Number of writes appended to the table but not yet indexed, based
  /// on the given table counter (trigger-2 bookkeeping).
  uint64_t Lag(uint64_t table_counter) const {
    uint64_t lc = list_counter();
    return table_counter > lc ? table_counter - lc : 0;
  }

  /// Iterator over indexed entries in internal-key order; value() loads
  /// record bytes from PMem lazily. The SubSkiplist must outlive it and
  /// keep its data region mapped.
  Iterator* NewIterator() const;

  /// Low-level ordered cursor over (internal key, record offset) pairs,
  /// used by the zone compactor's k-way merge.
  class RawCursor {
   public:
    virtual ~RawCursor() = default;
    virtual bool Valid() const = 0;
    virtual void SeekToFirst() = 0;
    virtual void Next() = 0;
    virtual Slice internal_key() const = 0;
    virtual uint32_t record_offset() const = 0;
  };

  /// Returns a cursor positioned before the first entry.
  std::unique_ptr<RawCursor> NewRawCursor() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

 private:
  friend class SubSkiplistRawCursor;

  struct KeyComparator {
    InternalKeyComparator comparator;
    int operator()(const char* a, const char* b) const;
  };
  typedef SkipList<const char*, KeyComparator> Index;

  class Iter;

  PmemEnv* env_;
  std::atomic<uint64_t> data_base_;
  KeyComparator comparator_;
  Arena arena_;
  Index index_;
  std::mutex sync_mu_;
  std::atomic<uint64_t> list_counter_{0};
  std::atomic<uint32_t> list_tail_{0};
  std::atomic<uint64_t> max_sequence_{0};
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_SUB_SKIPLIST_H_
