#include "core/bg_error_manager.h"

namespace cachekv {

BackgroundErrorManager::BackgroundErrorManager(const Policy& policy,
                                               obs::MetricsRegistry* metrics,
                                               obs::Tracer* trace)
    : policy_(policy),
      trace_(trace),
      retries_(metrics->GetCounter("bg.retries")),
      retry_exhausted_(metrics->GetCounter("bg.retry_exhausted")),
      hard_errors_(metrics->GetCounter("bg.hard_errors")),
      read_only_gauge_(metrics->GetGauge("db.read_only")) {
  read_only_gauge_->Set(0);
}

BackgroundErrorManager::ErrorClass BackgroundErrorManager::Classify(
    const Status& s) {
  // Corruption and programming/state errors cannot be healed by running
  // the same stage again; everything else (I/O error, allocator
  // exhaustion that compaction may relieve, busy) is worth retrying.
  if (s.IsCorruption() || s.IsInvalidArgument() || s.IsNotSupported()) {
    return ErrorClass::kHard;
  }
  return ErrorClass::kTransient;
}

BackgroundErrorManager::Decision BackgroundErrorManager::OnError(
    const char* stage, const Status& s, int attempt,
    std::chrono::milliseconds* backoff) {
  if (Classify(s) == ErrorClass::kTransient && attempt < policy_.max_retries) {
    retries_->Increment();
    trace_->Instant("bg.retry", "attempt",
                    static_cast<uint64_t>(attempt + 1));
    uint64_t ms = policy_.backoff_base_ms;
    for (int i = 0; i < attempt && ms < policy_.backoff_max_ms; i++) ms *= 2;
    if (ms > policy_.backoff_max_ms) ms = policy_.backoff_max_ms;
    if (ms == 0) ms = 1;
    *backoff = std::chrono::milliseconds(ms);
    return Decision::kRetry;
  }
  if (Classify(s) == ErrorClass::kTransient) {
    retry_exhausted_->Increment();
  }
  RaiseHardError(stage, s);
  return Decision::kFail;
}

void BackgroundErrorManager::RaiseHardError(const char* stage,
                                            const Status& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bg_error_.ok()) {  // first error wins; later ones are symptoms
    bg_error_ = s;
    bg_stage_ = stage;
    hard_errors_->Increment();
    read_only_gauge_->Set(1);
    trace_->Instant("bg.read_only");
    read_only_.store(true, std::memory_order_release);
  }
}

Status BackgroundErrorManager::CheckWritable() const {
  if (!read_only_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return Status::IOError("db is read-only after background error in " +
                             bg_stage_,
                         bg_error_.ToString());
}

Status BackgroundErrorManager::background_error() const {
  if (!read_only_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return bg_error_;
}

}  // namespace cachekv
