#ifndef CACHEKV_CORE_OPTIONS_H_
#define CACHEKV_CORE_OPTIONS_H_

#include <cstdint>

#include "lsm/lsm_engine.h"

namespace cachekv {

/// Configuration of a CacheKV store (§III). The defaults follow the
/// paper's evaluation setup (§IV-A): a 12 MB sub-MemTable pool inside the
/// LLC, 2 MB sub-MemTables, one background flush thread and one
/// background index/compaction thread.
struct CacheKVOptions {
  /// Capacity of the CAT pseudo-locked sub-MemTable pool. Must match the
  /// environment's cat_locked_bytes.
  uint64_t pool_bytes = 12ull << 20;

  /// Initial (maximum) sub-MemTable size class. Elasticity may halve free
  /// tables down to min_sub_memtable_bytes under write bursts (§III-A).
  uint64_t sub_memtable_bytes = 2ull << 20;
  uint64_t min_sub_memtable_bytes = 256ull << 10;

  /// Number of per-core writer slots in the global metadata structure
  /// (the paper's testbed has 24 physical cores per socket).
  int num_cores = 24;

  /// Background copy-based-flush threads (§III-C; Exp#5 sweeps this).
  int num_flush_threads = 1;

  /// Background threads for the lazy index update and the sub-skiplist
  /// compaction (§III-B, §III-D; the paper uses one).
  int num_index_threads = 1;

  /// Lazy-index trigger 2: schedule a background sync for a sub-skiplist
  /// once this many writes accumulated since its last synchronization.
  uint32_t sync_write_threshold = 256;

  /// Flush the compacted sub-ImmMemTable zone into the LSM-tree's L0
  /// once its total size reaches this threshold (§III-D).
  uint64_t imm_zone_flush_threshold = 24ull << 20;

  /// Elasticity: consecutive failed sub-MemTable acquisitions (the
  /// paper's miss counter) that trigger halving of free tables.
  uint32_t elasticity_miss_threshold = 8;

  /// Event tracing (docs/OBSERVABILITY.md): when true the store records
  /// begin/end and instant events into per-thread ring buffers and
  /// DB::DumpTrace() exports them as Chrome trace-event JSON. Off by
  /// default; the CACHEKV_TRACE environment variable also enables it at
  /// Open() time. Disabled tracing costs one relaxed load per probe.
  bool trace_enabled = false;

  /// Fixed ring capacity (events) of each emitting thread's trace
  /// shard. Overflow keeps the newest events and counts drops.
  size_t trace_events_per_thread = 1 << 16;

  /// Ablation switches for the paper's breakdown (Exp#1/Exp#2):
  /// lazy_index_update=false gives the PCSM configuration (sub-skiplists
  /// updated synchronously on every write); zone_compaction=false
  /// disables SC (reads search every flushed sub-skiplist instead of a
  /// compacted global skiplist). Both true = full CacheKV.
  bool lazy_index_update = true;
  bool zone_compaction = true;

  /// Background-error handling (docs/ROBUSTNESS.md): transient flush /
  /// index / compaction failures are retried up to max_bg_retries times
  /// with capped exponential backoff before the store degrades to
  /// read-only mode.
  int max_bg_retries = 5;
  uint32_t bg_backoff_base_ms = 1;
  uint32_t bg_backoff_max_ms = 100;

  /// How long a writer waits for the flushers to free a sub-MemTable
  /// before the Put fails with Busy (write stall; the db.write_stalls
  /// counter records every such failure).
  uint32_t write_stall_timeout_ms = 5000;

  /// Key–value separation (src/vlog/, WiscKey-style): values at or above
  /// this many bytes are appended to the value log and the LSM carries a
  /// 16-byte pointer instead, keeping flush and compaction write
  /// amplification flat in the value size. 0 disables separation (every
  /// value stays inline). Values too large for a vlog segment fall back
  /// to the inline path.
  uint64_t value_separation_threshold = 4096;

  /// Size of each append-only value-log segment (the GC reclamation
  /// unit).
  uint64_t vlog_segment_bytes = 4ull << 20;

  /// A sealed segment becomes a GC victim once compaction has reported
  /// at least this fraction of its bytes dead.
  double vlog_gc_dead_ratio = 0.5;

  /// Period of the background vlog GC thread's victim scan.
  uint64_t vlog_gc_interval_ms = 200;

  /// Cap on concurrently pinned snapshots (docs/SNAPSHOTS.md). Each pin
  /// forces flush, compaction, and vlog GC to retain superseded versions
  /// it can still see; GetSnapshot() returns null at the cap.
  uint32_t max_pinned_snapshots = 64;

  /// The LSM storage component underneath.
  LsmOptions lsm;
};

}  // namespace cachekv

#endif  // CACHEKV_CORE_OPTIONS_H_
