#include "baselines/kvstore.h"

namespace cachekv {

Status KVStore::ApplyBatch(const std::vector<BatchOp>& batch) {
  for (const BatchOp& op : batch) {
    Status s = op.is_delete ? Delete(op.key) : Put(op.key, op.value);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status KVStore::Scan(const Slice& /*start*/, size_t /*limit*/,
                     std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  return Status::NotSupported("scan not implemented by " + Name());
}

}  // namespace cachekv
