#ifndef CACHEKV_BASELINES_KVSTORE_H_
#define CACHEKV_BASELINES_KVSTORE_H_

#include <string>
#include <utility>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Common interface implemented by every key-value engine in this
/// repository (CacheKV and the baseline systems), so that the benchmark
/// harness and the tests can drive them uniformly.
///
/// Implementations must support concurrent calls from multiple threads.
class KVStore {
 public:
  virtual ~KVStore() = default;

  /// One operation of a multi-key batch.
  struct BatchOp {
    bool is_delete = false;
    std::string key;
    std::string value;
  };

  /// Inserts or updates the entry for key.
  virtual Status Put(const Slice& key, const Slice& value) = 0;

  /// Reads the freshest value for key into *value. Returns
  /// Status::NotFound if the key does not exist or was deleted.
  virtual Status Get(const Slice& key, std::string* value) = 0;

  /// Removes the entry for key (writes a tombstone). It is not an error
  /// if the key does not exist.
  virtual Status Delete(const Slice& key) = 0;

  /// Applies every operation of `batch`. The default decomposes the
  /// batch into individual Put/Delete calls (no atomicity); engines with
  /// a native multi-key commit (CacheKV's MultiPut) override this with
  /// an all-or-nothing implementation.
  virtual Status ApplyBatch(const std::vector<BatchOp>& batch);

  /// Forward scan over the live user keys: fills `out` with at most
  /// `limit` (key, value) pairs, in ascending key order, starting at the
  /// first key >= `start` (tombstones elided, freshest versions).
  /// Engines without an ordered view return NotSupported.
  virtual Status Scan(const Slice& start, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out);

  /// Human-readable engine name used in benchmark output.
  virtual std::string Name() const = 0;

  /// Blocks until background work that affects durability or visibility
  /// (index sync, memtable flushes) has quiesced. Benchmarks call this
  /// before switching phases.
  virtual Status WaitIdle() { return Status::OK(); }

  /// True when the engine degraded to read-only mode after a background
  /// failure (docs/ROBUSTNESS.md). The harness records this in bench
  /// reports so a degraded run is never mistaken for a performance
  /// result. Engines without the degradation state report false.
  virtual bool IsReadOnly() const { return false; }
};

}  // namespace cachekv

#endif  // CACHEKV_BASELINES_KVSTORE_H_
