#ifndef CACHEKV_BASELINES_KVSTORE_H_
#define CACHEKV_BASELINES_KVSTORE_H_

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Common interface implemented by every key-value engine in this
/// repository (CacheKV and the baseline systems), so that the benchmark
/// harness and the tests can drive them uniformly.
///
/// Implementations must support concurrent calls from multiple threads.
class KVStore {
 public:
  virtual ~KVStore() = default;

  /// Inserts or updates the entry for key.
  virtual Status Put(const Slice& key, const Slice& value) = 0;

  /// Reads the freshest value for key into *value. Returns
  /// Status::NotFound if the key does not exist or was deleted.
  virtual Status Get(const Slice& key, std::string* value) = 0;

  /// Removes the entry for key (writes a tombstone). It is not an error
  /// if the key does not exist.
  virtual Status Delete(const Slice& key) = 0;

  /// Human-readable engine name used in benchmark output.
  virtual std::string Name() const = 0;

  /// Blocks until background work that affects durability or visibility
  /// (index sync, memtable flushes) has quiesced. Benchmarks call this
  /// before switching phases.
  virtual Status WaitIdle() { return Status::OK(); }
};

}  // namespace cachekv

#endif  // CACHEKV_BASELINES_KVSTORE_H_
