#include "baselines/novelsm.h"

#include <cassert>

#include "lsm/merger.h"
#include "pmem/meta_layout.h"

namespace cachekv {

std::string VariantSuffix(BaselineVariant variant) {
  switch (variant) {
    case BaselineVariant::kRaw:
      return "";
    case BaselineVariant::kNoFlush:
      return "-w/o-flush";
    case BaselineVariant::kCachePinned:
      return "-cache";
  }
  return "";
}

namespace {

FlushMode FlushModeFor(BaselineVariant variant) {
  return variant == BaselineVariant::kRaw ? FlushMode::kFlushEveryWrite
                                          : FlushMode::kNone;
}

}  // namespace

NoveLsmStore::NoveLsmStore(PmemEnv* env, const NoveLsmOptions& options)
    : env_(env),
      options_(options),
      engine_(std::make_unique<LsmEngine>(env, options.lsm,
                                          MetaLayout::ManifestBase(env))) {}

NoveLsmStore::~NoveLsmStore() {
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    shutting_down_ = true;
    flush_cv_.notify_all();
  }
  if (flush_thread_.joinable()) {
    flush_thread_.join();
  }
}

Status NoveLsmStore::Open(PmemEnv* env, const NoveLsmOptions& options,
                          std::unique_ptr<NoveLsmStore>* store) {
  if (options.variant == BaselineVariant::kCachePinned &&
      env->locked_size() < options.segment_bytes) {
    return Status::InvalidArgument(
        "kCachePinned requires a CAT window >= segment_bytes");
  }
  std::unique_ptr<NoveLsmStore> s(new NoveLsmStore(env, options));
  Status st = s->engine_->Open(false);
  if (!st.ok()) {
    return st;
  }
  for (int i = 0; i < 2; i++) {
    st = env->allocator()->Allocate(options.pmem_memtable_bytes,
                                    &s->regions_[i]);
    if (!st.ok()) {
      return st;
    }
  }
  if (options.variant == BaselineVariant::kCachePinned) {
    // Pin the first segment of the active memtable region.
    env->cache()->SetLockedWindow(s->regions_[0]);
    s->pinned_segment_ = 0;
  }
  s->active_ = std::make_unique<PmemSkipList>(
      env, s->regions_[0], options.pmem_memtable_bytes,
      FlushModeFor(options.variant));
  s->active_->SetProfiler(&s->profiler_);
  s->flush_thread_ = std::thread(&NoveLsmStore::FlushThread, s.get());
  *store = std::move(s);
  return Status::OK();
}

void NoveLsmStore::MaybeAdvanceSegment() {
  if (options_.variant != BaselineVariant::kCachePinned) {
    return;
  }
  const uint64_t region = regions_[active_region_];
  const uint64_t used = active_->BytesUsed();
  const uint64_t segment = used / options_.segment_bytes;
  if (segment != pinned_segment_) {
    // The finished segment leaves the cache with clflush (as in the
    // paper's NoveLSM-cache description), and the window re-locks onto
    // the segment now being written.
    env_->Clflush(region + pinned_segment_ * options_.segment_bytes,
                  options_.segment_bytes);
    env_->Sfence();
    uint64_t new_base = region + segment * options_.segment_bytes;
    env_->cache()->SetLockedWindow(new_base);
    pinned_segment_ = segment;
  }
}

Status NoveLsmStore::SealActiveLocked(
    std::unique_lock<std::mutex>* write_lock) {
  assert(write_lock->owns_lock());
  (void)write_lock;
  // Wait for a previous flush to drain.
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    while (flush_requested_ && !shutting_down_) {
      flush_done_cv_.wait(lock);
    }
    if (!flush_error_.ok()) {
      return flush_error_;
    }
  }
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    imm_ = std::move(active_);
    active_region_ = 1 - active_region_;
    if (options_.variant == BaselineVariant::kCachePinned) {
      // Flush the tail segment of the sealed memtable and re-lock onto
      // the new region's first segment.
      env_->Clflush(regions_[1 - active_region_] +
                        pinned_segment_ * options_.segment_bytes,
                    options_.segment_bytes);
      env_->Sfence();
      env_->cache()->SetLockedWindow(regions_[active_region_]);
      pinned_segment_ = 0;
    }
    active_ = std::make_unique<PmemSkipList>(
        env_, regions_[active_region_], options_.pmem_memtable_bytes,
        FlushModeFor(options_.variant));
    active_->SetProfiler(&profiler_);
  }
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_requested_ = true;
    flush_cv_.notify_one();
  }
  return Status::OK();
}

void NoveLsmStore::FlushThread() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (true) {
    while (!flush_requested_ && !shutting_down_) {
      flush_cv_.wait(lock);
    }
    if (shutting_down_ && !flush_requested_) {
      return;
    }
    lock.unlock();
    Status s;
    {
      // imm_ is stable while flush_requested_ is set.
      std::unique_ptr<Iterator> iter(imm_->NewIterator());
      s = engine_->WriteL0Tables(iter.get());
    }
    {
      std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
      imm_.reset();
    }
    lock.lock();
    if (!s.ok()) {
      flush_error_ = s;
    }
    flush_requested_ = false;
    flush_done_cv_.notify_all();
  }
}

Status NoveLsmStore::Write(ValueType type, const Slice& key,
                           const Slice& value) {
  ScopedNs total_timer(&profiler_.total_ns);
  profiler_.ops.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> write_lock(write_mu_, std::defer_lock);
  {
    ScopedNs lock_timer(&profiler_.lock_wait_ns);
    write_lock.lock();
  }

  const SequenceNumber seq =
      sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;
  Status s = active_->Insert(seq, type, key, value);
  if (s.IsOutOfSpace()) {
    s = SealActiveLocked(&write_lock);
    if (s.ok()) {
      s = active_->Insert(seq, type, key, value);
    }
  }
  if (s.ok()) {
    MaybeAdvanceSegment();
  }
  return s;
}

Status NoveLsmStore::Put(const Slice& key, const Slice& value) {
  return Write(kTypeValue, key, value);
}

Status NoveLsmStore::Delete(const Slice& key) {
  return Write(kTypeDeletion, key, Slice());
}

Status NoveLsmStore::Get(const Slice& key, std::string* value) {
  const SequenceNumber snapshot = kMaxSequenceNumber;
  {
    std::shared_lock<std::shared_mutex> swap_lock(swap_mu_);
    PmemSkipList::GetResult r = active_->Get(key, snapshot, value);
    if (r == PmemSkipList::GetResult::kFound) {
      return Status::OK();
    }
    if (r == PmemSkipList::GetResult::kDeleted) {
      return Status::NotFound("deleted");
    }
    if (imm_ != nullptr) {
      r = imm_->Get(key, snapshot, value);
      if (r == PmemSkipList::GetResult::kFound) {
        return Status::OK();
      }
      if (r == PmemSkipList::GetResult::kDeleted) {
        return Status::NotFound("deleted");
      }
    }
  }
  bool deleted = false;
  return engine_->Get(key, snapshot, value, &deleted);
}

Status NoveLsmStore::WaitIdle() {
  {
    std::unique_lock<std::mutex> write_lock(write_mu_);
    if (active_->NumEntries() > 0) {
      Status s = SealActiveLocked(&write_lock);
      if (!s.ok()) {
        return s;
      }
    }
    std::unique_lock<std::mutex> lock(flush_mu_);
    while (flush_requested_ && !shutting_down_) {
      flush_done_cv_.wait(lock);
    }
    if (!flush_error_.ok()) {
      return flush_error_;
    }
  }
  return engine_->WaitForCompactions();
}

Status NoveLsmStore::Scan(
    const Slice& start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Writers are held off and the memtable pointers pinned: the PMem
  // skiplists require external synchronization to iterate.
  std::unique_lock<std::mutex> write_lock(write_mu_);
  std::shared_lock<std::shared_mutex> swap_lock(swap_mu_);
  std::vector<Iterator*> children;
  children.push_back(active_->NewIterator());
  if (imm_ != nullptr) {
    children.push_back(imm_->NewIterator());
  }
  children.push_back(engine_->NewIterator());
  static InternalKeyComparator icmp;
  std::unique_ptr<Iterator> it(NewUserKeyIterator(
      NewDedupingIterator(NewMergingIterator(&icmp, std::move(children)))));
  if (start.empty()) {
    it->SeekToFirst();
  } else {
    it->Seek(start);
  }
  while (it->Valid() && out->size() < limit) {
    out->emplace_back(it->key().ToString(), it->value().ToString());
    it->Next();
  }
  return it->status();
}

}  // namespace cachekv
