#ifndef CACHEKV_BASELINES_NOVELSM_H_
#define CACHEKV_BASELINES_NOVELSM_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "baselines/kvstore.h"
#include "baselines/write_profiler.h"
#include "index/pmem_skiplist.h"
#include "lsm/lsm_engine.h"
#include "pmem/pmem_env.h"

namespace cachekv {

/// How a baseline interacts with the persistent CPU caches; these are the
/// three configurations the paper compares (§II-C and §IV-A).
enum class BaselineVariant {
  /// Vanilla: store + clwb + sfence per write (designed for ADR).
  kRaw,
  /// "-w/o-flush": flush instructions removed, relying on eADR; dirty
  /// cachelines leave the cache by LRU eviction (observation Ob1).
  kNoFlush,
  /// "-cache": the active memtable segment is pinned in the LLC with
  /// Intel CAT; a full segment is clflush'ed out and the window moves to
  /// the next segment (observation Ob2 setup).
  kCachePinned,
};

std::string VariantSuffix(BaselineVariant variant);

/// Tuning of the NoveLSM reimplementation.
struct NoveLsmOptions {
  BaselineVariant variant = BaselineVariant::kRaw;
  /// Size of each of the two ping-pong persistent MemTables. The paper
  /// configures NoveLSM's PMem MemTable at 4 GB; scaled to the simulated
  /// device size.
  uint64_t pmem_memtable_bytes = 48ull << 20;
  /// Segment pinned in the cache in the kCachePinned variant (paper:
  /// 12 MB). Must be <= the environment's CAT window size.
  uint64_t segment_bytes = 12ull << 20;
  LsmOptions lsm;
};

/// NoveLsmStore reimplements the structure of NoveLSM (Kannan et al.,
/// ATC'18) on the simulated substrate: a large *mutable persistent
/// MemTable* (skiplist in PMem, giving in-place durability without a
/// WAL), a second immutable one being flushed in the background, and a
/// leveled LSM storage component below. Writes to the shared MemTable are
/// serialized by a mutex and update the skiplist index synchronously --
/// the two software bottlenecks the paper measures in Fig. 5.
class NoveLsmStore : public KVStore {
 public:
  static Status Open(PmemEnv* env, const NoveLsmOptions& options,
                     std::unique_ptr<NoveLsmStore>* store);
  ~NoveLsmStore() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  std::string Name() const override {
    return "NoveLSM" + VariantSuffix(options_.variant);
  }
  Status WaitIdle() override;

  /// Ordered forward scan merging the active/immutable persistent
  /// memtables with the LSM levels. Blocks writers for the duration.
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override;

  WriteProfiler* profiler() { return &profiler_; }
  LsmEngine* engine() { return engine_.get(); }

 private:
  NoveLsmStore(PmemEnv* env, const NoveLsmOptions& options);

  Status Write(ValueType type, const Slice& key, const Slice& value);
  // Seals the active memtable; blocks while the previous immutable one is
  // still flushing. Caller holds write_mu_.
  Status SealActiveLocked(std::unique_lock<std::mutex>* write_lock);
  void FlushThread();
  void MaybeAdvanceSegment();

  PmemEnv* env_;
  NoveLsmOptions options_;
  std::unique_ptr<LsmEngine> engine_;
  WriteProfiler profiler_;

  // The "memtable lock" of observation Ob2.
  std::mutex write_mu_;
  // Protects the active/imm pointers against the swap; readers share it.
  std::shared_mutex swap_mu_;
  uint64_t regions_[2] = {0, 0};
  int active_region_ = 0;
  std::unique_ptr<PmemSkipList> active_;
  std::unique_ptr<PmemSkipList> imm_;

  std::atomic<uint64_t> sequence_{0};

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::condition_variable flush_done_cv_;
  bool flush_requested_ = false;
  bool shutting_down_ = false;
  Status flush_error_;
  std::thread flush_thread_;

  // kCachePinned: index of the segment currently pinned.
  uint64_t pinned_segment_ = 0;
};

}  // namespace cachekv

#endif  // CACHEKV_BASELINES_NOVELSM_H_
