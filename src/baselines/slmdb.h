#ifndef CACHEKV_BASELINES_SLMDB_H_
#define CACHEKV_BASELINES_SLMDB_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/kvstore.h"
#include "baselines/novelsm.h"  // BaselineVariant
#include "baselines/write_profiler.h"
#include "index/pmem_bptree.h"
#include "index/pmem_skiplist.h"
#include "pmem/pmem_env.h"

namespace cachekv {

/// Tuning of the SLM-DB reimplementation.
struct SlmDbOptions {
  BaselineVariant variant = BaselineVariant::kRaw;
  /// Each of the two ping-pong persistent MemTables (paper default:
  /// 64 MB; the "-cache" comparison enlarges it like NoveLSM's).
  uint64_t pmem_memtable_bytes = 48ull << 20;
  /// Pinned segment for the kCachePinned variant.
  uint64_t segment_bytes = 12ull << 20;
  /// PMem region backing the global B+-tree index.
  uint64_t bptree_bytes = 96ull << 20;
  /// Size of each single-level data chunk.
  uint64_t chunk_bytes = 8ull << 20;
  /// Selective compaction starts when garbage exceeds this fraction of
  /// the sealed data bytes.
  double gc_garbage_ratio = 0.5;
};

/// SlmDbStore reimplements the structure of SLM-DB (Kaiyrakhmet et al.,
/// FAST'19) on the simulated substrate: a persistent MemTable (skiplist
/// in PMem), a *single-level* storage organization whose KV records are
/// located exactly by a global persistent B+-tree index, and selective
/// compaction (garbage collection) instead of leveled merges. As in the
/// paper's analysis, the shared MemTable lock and the PMem-resident index
/// are the write-path bottlenecks, and the B+-tree makes flushes
/// expensive but point reads single-probe.
class SlmDbStore : public KVStore {
 public:
  static Status Open(PmemEnv* env, const SlmDbOptions& options,
                     std::unique_ptr<SlmDbStore>* store);
  ~SlmDbStore() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  std::string Name() const override {
    return "SLM-DB" + VariantSuffix(options_.variant);
  }
  Status WaitIdle() override;

  /// Ordered forward scan: unflushed memtable entries (tombstones
  /// included) are overlaid on the B+-tree's live index. Materializes
  /// the merged key set, which is fine for the simulated baseline.
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override;

  WriteProfiler* profiler() { return &profiler_; }
  uint64_t GarbageBytes() const;
  uint64_t DataBytes() const;
  int NumChunks() const;

 private:
  struct Chunk {
    uint64_t region = 0;
    uint64_t capacity = 0;
    uint64_t used = 0;  // bytes of appended records
    uint64_t live = 0;  // bytes still referenced by the B+-tree
    bool sealed = false;
  };

  SlmDbStore(PmemEnv* env, const SlmDbOptions& options);

  Status Write(ValueType type, const Slice& key, const Slice& value);
  Status SealActiveLocked(std::unique_lock<std::mutex>* write_lock);
  void FlushThread();
  void MaybeAdvanceSegment();

  // Flushes the immutable memtable's live entries into chunks and the
  // B+-tree. Runs on the flush thread.
  Status FlushImm();
  // Appends one record to the open chunk (allocating chunks as needed);
  // returns its absolute device offset.
  Status AppendRecord(SequenceNumber seq, ValueType type, const Slice& key,
                      const Slice& value, uint64_t* locator);
  // Marks the record at `locator` as garbage.
  void AccountGarbage(uint64_t locator, uint64_t record_size);
  int ChunkIndexOf(uint64_t locator) const;
  Status MaybeGarbageCollect();
  // Rewrites the sealed chunk with the lowest live ratio; NotFound means
  // no collection was needed or possible.
  Status CollectOneChunk();

  PmemEnv* env_;
  SlmDbOptions options_;
  WriteProfiler profiler_;

  std::mutex write_mu_;
  std::shared_mutex swap_mu_;
  uint64_t regions_[2] = {0, 0};
  int active_region_ = 0;
  std::unique_ptr<PmemSkipList> active_;
  std::unique_ptr<PmemSkipList> imm_;
  std::atomic<uint64_t> sequence_{0};
  uint64_t pinned_segment_ = 0;

  // B+-tree index (readers share, the flush thread mutates).
  mutable std::shared_mutex index_mu_;
  uint64_t bptree_region_ = 0;
  std::unique_ptr<PmemBPlusTree> index_;

  // Single-level data chunks.
  mutable std::mutex chunks_mu_;
  std::vector<Chunk> chunks_;
  int open_chunk_ = -1;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::condition_variable flush_done_cv_;
  bool flush_requested_ = false;
  bool shutting_down_ = false;
  Status flush_error_;
  std::thread flush_thread_;
};

}  // namespace cachekv

#endif  // CACHEKV_BASELINES_SLMDB_H_
