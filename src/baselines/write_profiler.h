#ifndef CACHEKV_BASELINES_WRITE_PROFILER_H_
#define CACHEKV_BASELINES_WRITE_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cachekv {

/// Accumulates the write-latency breakdown of Figure 5(b): time spent
/// waiting on the shared-MemTable lock, updating the index structure,
/// appending the record, and everything else. Engines add samples on
/// their write path; the Fig. 5 harness reads the fractions.
struct WriteProfiler {
  std::atomic<uint64_t> lock_wait_ns{0};
  std::atomic<uint64_t> index_update_ns{0};
  std::atomic<uint64_t> append_ns{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> ops{0};

  void Reset() {
    lock_wait_ns.store(0);
    index_update_ns.store(0);
    append_ns.store(0);
    total_ns.store(0);
    ops.store(0);
  }

  double LockFraction() const {
    uint64_t t = total_ns.load();
    return t == 0 ? 0 : static_cast<double>(lock_wait_ns.load()) / t;
  }
  double IndexFraction() const {
    uint64_t t = total_ns.load();
    return t == 0 ? 0 : static_cast<double>(index_update_ns.load()) / t;
  }
  double AppendFraction() const {
    uint64_t t = total_ns.load();
    return t == 0 ? 0 : static_cast<double>(append_ns.load()) / t;
  }
  double OtherFraction() const {
    double f = 1.0 - LockFraction() - IndexFraction() - AppendFraction();
    return f < 0 ? 0 : f;
  }
  double AvgWriteLatencyNs() const {
    uint64_t n = ops.load();
    return n == 0 ? 0 : static_cast<double>(total_ns.load()) / n;
  }
};

/// Stopwatch helper: accumulates the elapsed nanoseconds into an atomic
/// on destruction or Stop().
class ScopedNs {
 public:
  explicit ScopedNs(std::atomic<uint64_t>* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}

  ~ScopedNs() { Stop(); }

  void Stop() {
    if (sink_ != nullptr) {
      auto end = std::chrono::steady_clock::now();
      sink_->fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
              .count(),
          std::memory_order_relaxed);
      sink_ = nullptr;
    }
  }

 private:
  std::atomic<uint64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cachekv

#endif  // CACHEKV_BASELINES_WRITE_PROFILER_H_
