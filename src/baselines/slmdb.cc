#include "baselines/slmdb.h"

#include <cassert>
#include <map>

#include "core/record_format.h"
#include "lsm/merger.h"

namespace cachekv {

namespace {

FlushMode FlushModeFor(BaselineVariant variant) {
  return variant == BaselineVariant::kRaw ? FlushMode::kFlushEveryWrite
                                          : FlushMode::kNone;
}

}  // namespace

SlmDbStore::SlmDbStore(PmemEnv* env, const SlmDbOptions& options)
    : env_(env), options_(options) {}

SlmDbStore::~SlmDbStore() {
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    shutting_down_ = true;
    flush_cv_.notify_all();
  }
  if (flush_thread_.joinable()) {
    flush_thread_.join();
  }
}

Status SlmDbStore::Open(PmemEnv* env, const SlmDbOptions& options,
                        std::unique_ptr<SlmDbStore>* store) {
  if (options.variant == BaselineVariant::kCachePinned &&
      env->locked_size() < options.segment_bytes) {
    return Status::InvalidArgument(
        "kCachePinned requires a CAT window >= segment_bytes");
  }
  std::unique_ptr<SlmDbStore> s(new SlmDbStore(env, options));
  Status st;
  for (int i = 0; i < 2; i++) {
    st = env->allocator()->Allocate(options.pmem_memtable_bytes,
                                    &s->regions_[i]);
    if (!st.ok()) {
      return st;
    }
  }
  st = env->allocator()->Allocate(options.bptree_bytes,
                                  &s->bptree_region_);
  if (!st.ok()) {
    return st;
  }
  if (options.variant == BaselineVariant::kCachePinned) {
    env->cache()->SetLockedWindow(s->regions_[0]);
    s->pinned_segment_ = 0;
  }
  s->active_ = std::make_unique<PmemSkipList>(
      env, s->regions_[0], options.pmem_memtable_bytes,
      FlushModeFor(options.variant));
  s->active_->SetProfiler(&s->profiler_);
  s->index_ = std::make_unique<PmemBPlusTree>(
      env, s->bptree_region_, options.bptree_bytes,
      FlushModeFor(options.variant));
  s->flush_thread_ = std::thread(&SlmDbStore::FlushThread, s.get());
  *store = std::move(s);
  return Status::OK();
}

void SlmDbStore::MaybeAdvanceSegment() {
  if (options_.variant != BaselineVariant::kCachePinned) {
    return;
  }
  const uint64_t region = regions_[active_region_];
  const uint64_t segment =
      active_->BytesUsed() / options_.segment_bytes;
  if (segment != pinned_segment_) {
    env_->Clflush(region + pinned_segment_ * options_.segment_bytes,
                  options_.segment_bytes);
    env_->Sfence();
    env_->cache()->SetLockedWindow(region +
                                   segment * options_.segment_bytes);
    pinned_segment_ = segment;
  }
}

Status SlmDbStore::SealActiveLocked(
    std::unique_lock<std::mutex>* write_lock) {
  assert(write_lock->owns_lock());
  (void)write_lock;
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    while (flush_requested_ && !shutting_down_) {
      flush_done_cv_.wait(lock);
    }
    if (!flush_error_.ok()) {
      return flush_error_;
    }
  }
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    imm_ = std::move(active_);
    active_region_ = 1 - active_region_;
    if (options_.variant == BaselineVariant::kCachePinned) {
      env_->Clflush(regions_[1 - active_region_] +
                        pinned_segment_ * options_.segment_bytes,
                    options_.segment_bytes);
      env_->Sfence();
      env_->cache()->SetLockedWindow(regions_[active_region_]);
      pinned_segment_ = 0;
    }
    active_ = std::make_unique<PmemSkipList>(
        env_, regions_[active_region_], options_.pmem_memtable_bytes,
        FlushModeFor(options_.variant));
    active_->SetProfiler(&profiler_);
  }
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_requested_ = true;
    flush_cv_.notify_one();
  }
  return Status::OK();
}

int SlmDbStore::ChunkIndexOf(uint64_t locator) const {
  // Caller holds chunks_mu_.
  for (size_t i = 0; i < chunks_.size(); i++) {
    if (locator >= chunks_[i].region &&
        locator < chunks_[i].region + chunks_[i].capacity) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SlmDbStore::AccountGarbage(uint64_t locator, uint64_t record_size) {
  std::lock_guard<std::mutex> lock(chunks_mu_);
  int idx = ChunkIndexOf(locator);
  if (idx >= 0) {
    Chunk& c = chunks_[idx];
    c.live = (c.live >= record_size) ? c.live - record_size : 0;
  }
}

Status SlmDbStore::AppendRecord(SequenceNumber seq, ValueType type,
                                const Slice& key, const Slice& value,
                                uint64_t* locator) {
  std::string buf;
  const size_t record_size =
      EncodeRecord(&buf, seq, type, key, value);
  std::lock_guard<std::mutex> lock(chunks_mu_);
  if (open_chunk_ < 0 ||
      chunks_[open_chunk_].used + record_size >
          chunks_[open_chunk_].capacity) {
    if (open_chunk_ >= 0) {
      chunks_[open_chunk_].sealed = true;
    }
    Chunk c;
    c.capacity = options_.chunk_bytes;
    Status s = env_->allocator()->Allocate(c.capacity, &c.region);
    if (!s.ok()) {
      return s;
    }
    chunks_.push_back(c);
    open_chunk_ = static_cast<int>(chunks_.size()) - 1;
  }
  Chunk& c = chunks_[open_chunk_];
  *locator = c.region + c.used;
  // Single-level data writes stream to PMem with non-temporal stores (as
  // SSTable writes do), avoiding XPLine write amplification.
  env_->NtStore(*locator, buf.data(), buf.size());
  c.used += record_size;
  c.live += record_size;
  return Status::OK();
}

Status SlmDbStore::FlushImm() {
  std::unique_ptr<Iterator> iter(imm_->NewIterator());
  std::string last_user_key;
  bool has_last = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("bad key in slm-db memtable");
    }
    // Only the freshest version of each user key reaches the single
    // level (the iterator yields fresher entries first).
    if (has_last && Slice(last_user_key) == parsed.user_key) {
      continue;
    }
    last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
    has_last = true;

    if (parsed.type == kTypeDeletion) {
      uint64_t old_locator = 0;
      std::unique_lock<std::shared_mutex> index_lock(index_mu_);
      Status s = index_->Delete(parsed.user_key, &old_locator);
      index_lock.unlock();
      if (s.ok()) {
        RecordHeader old_header;
        if (DecodeRecordHeaderAt(env_, old_locator, &old_header)) {
          AccountGarbage(old_locator, old_header.TotalSize());
        }
      } else if (!s.IsNotFound()) {
        return s;
      }
      continue;
    }

    uint64_t locator = 0;
    Status s = AppendRecord(parsed.sequence, parsed.type, parsed.user_key,
                            iter->value(), &locator);
    if (!s.ok()) {
      return s;
    }
    uint64_t old_locator = 0;
    bool replaced = false;
    {
      std::unique_lock<std::shared_mutex> index_lock(index_mu_);
      s = index_->Insert(parsed.user_key, locator, &old_locator,
                         &replaced);
    }
    if (!s.ok()) {
      return s;
    }
    if (replaced) {
      RecordHeader old_header;
      if (DecodeRecordHeaderAt(env_, old_locator, &old_header)) {
        AccountGarbage(old_locator, old_header.TotalSize());
      }
    }
  }
  env_->Sfence();
  return MaybeGarbageCollect();
}

Status SlmDbStore::MaybeGarbageCollect() {
  // Selective compaction: rewrite sealed chunks (lowest live ratio
  // first) until overall garbage drops below the threshold.
  for (int pass = 0; pass < 64; pass++) {
    Status s = CollectOneChunk();
    if (!s.ok()) {
      return s.IsNotFound() ? Status::OK() : s;
    }
  }
  return Status::OK();
}

Status SlmDbStore::CollectOneChunk() {
  int victim = -1;
  {
    std::lock_guard<std::mutex> lock(chunks_mu_);
    uint64_t used = 0, live = 0;
    double worst_ratio = 1.0;
    for (size_t i = 0; i < chunks_.size(); i++) {
      const Chunk& c = chunks_[i];
      if (!c.sealed) continue;
      used += c.used;
      live += c.live;
      double ratio = c.used == 0
                         ? 1.0
                         : static_cast<double>(c.live) / c.used;
      if (ratio < worst_ratio) {
        worst_ratio = ratio;
        victim = static_cast<int>(i);
      }
    }
    if (used == 0 ||
        static_cast<double>(used - live) / used <
            options_.gc_garbage_ratio) {
      return Status::NotFound("gc not needed");
    }
  }
  if (victim < 0) {
    return Status::NotFound("no sealed victim");
  }

  uint64_t region, capacity, used;
  {
    std::lock_guard<std::mutex> lock(chunks_mu_);
    region = chunks_[victim].region;
    capacity = chunks_[victim].capacity;
    used = chunks_[victim].used;
  }
  // Walk the victim's records; re-append those the index still points
  // at.
  uint64_t offset = region;
  std::string key, value;
  while (offset < region + used) {
    RecordHeader header;
    if (!DecodeRecordHeaderAt(env_, offset, &header)) {
      break;
    }
    LoadRecordKey(env_, offset, header, &key);
    uint64_t current = 0;
    bool live_record = false;
    {
      std::shared_lock<std::shared_mutex> index_lock(index_mu_);
      live_record =
          index_->Get(Slice(key), &current).ok() && current == offset;
    }
    if (live_record) {
      LoadRecordValue(env_, offset, header, &value);
      uint64_t new_locator = 0;
      Status s = AppendRecord(header.sequence, header.type, Slice(key),
                              Slice(value), &new_locator);
      if (!s.ok()) {
        return s;
      }
      std::unique_lock<std::shared_mutex> index_lock(index_mu_);
      s = index_->Insert(Slice(key), new_locator);
      if (!s.ok()) {
        return s;
      }
    }
    offset += header.TotalSize();
  }
  {
    std::lock_guard<std::mutex> lock(chunks_mu_);
    chunks_.erase(chunks_.begin() + victim);
    if (open_chunk_ > victim) {
      open_chunk_--;
    } else if (open_chunk_ == victim) {
      open_chunk_ = -1;
    }
  }
  env_->Sfence();
  // Exclusive index lock: no reader can be dereferencing a locator into
  // the victim region while it is returned to the allocator.
  std::unique_lock<std::shared_mutex> index_lock(index_mu_);
  return env_->allocator()->Free(region, capacity);
}

void SlmDbStore::FlushThread() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (true) {
    while (!flush_requested_ && !shutting_down_) {
      flush_cv_.wait(lock);
    }
    if (shutting_down_ && !flush_requested_) {
      return;
    }
    lock.unlock();
    Status s = FlushImm();
    {
      std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
      imm_.reset();
    }
    lock.lock();
    if (!s.ok()) {
      flush_error_ = s;
    }
    flush_requested_ = false;
    flush_done_cv_.notify_all();
  }
}

Status SlmDbStore::Write(ValueType type, const Slice& key,
                         const Slice& value) {
  ScopedNs total_timer(&profiler_.total_ns);
  profiler_.ops.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> write_lock(write_mu_, std::defer_lock);
  {
    ScopedNs lock_timer(&profiler_.lock_wait_ns);
    write_lock.lock();
  }
  const SequenceNumber seq =
      sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;
  Status s = active_->Insert(seq, type, key, value);
  if (s.IsOutOfSpace()) {
    s = SealActiveLocked(&write_lock);
    if (s.ok()) {
      s = active_->Insert(seq, type, key, value);
    }
  }
  if (s.ok()) {
    MaybeAdvanceSegment();
  }
  return s;
}

Status SlmDbStore::Put(const Slice& key, const Slice& value) {
  return Write(kTypeValue, key, value);
}

Status SlmDbStore::Delete(const Slice& key) {
  return Write(kTypeDeletion, key, Slice());
}

Status SlmDbStore::Get(const Slice& key, std::string* value) {
  const SequenceNumber snapshot = kMaxSequenceNumber;
  {
    std::shared_lock<std::shared_mutex> swap_lock(swap_mu_);
    PmemSkipList::GetResult r = active_->Get(key, snapshot, value);
    if (r == PmemSkipList::GetResult::kFound) {
      return Status::OK();
    }
    if (r == PmemSkipList::GetResult::kDeleted) {
      return Status::NotFound("deleted");
    }
    if (imm_ != nullptr) {
      r = imm_->Get(key, snapshot, value);
      if (r == PmemSkipList::GetResult::kFound) {
        return Status::OK();
      }
      if (r == PmemSkipList::GetResult::kDeleted) {
        return Status::NotFound("deleted");
      }
    }
  }
  uint64_t locator = 0;
  // Hold the index lock (shared) across both the lookup and the record
  // read so the GC (which frees chunk regions under the exclusive lock)
  // cannot pull the record out from under us.
  std::shared_lock<std::shared_mutex> index_lock(index_mu_);
  Status s = index_->Get(key, &locator);
  if (!s.ok()) {
    return s;
  }
  // The B+-tree gives the exact record position: one direct PMem read.
  RecordHeader header;
  if (!DecodeRecordHeaderAt(env_, locator, &header)) {
    return Status::Corruption("dangling slm-db locator");
  }
  std::string stored_key;
  LoadRecordKey(env_, locator, header, &stored_key);
  if (Slice(stored_key) != key) {
    return Status::Corruption("slm-db locator key mismatch");
  }
  LoadRecordValue(env_, locator, header, value);
  return Status::OK();
}

Status SlmDbStore::Scan(
    const Slice& start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Block writers and pin the memtable pointers; the PMem skiplists need
  // external synchronization to iterate.
  std::unique_lock<std::mutex> write_lock(write_mu_);
  std::shared_lock<std::shared_mutex> swap_lock(swap_mu_);
  // key -> (is_delete, value); memtable state overlays the flushed index.
  std::map<std::string, std::pair<bool, std::string>> merged;
  {
    std::vector<Iterator*> children;
    children.push_back(active_->NewIterator());
    if (imm_ != nullptr) {
      children.push_back(imm_->NewIterator());
    }
    static InternalKeyComparator icmp;
    std::unique_ptr<Iterator> it(
        NewDedupingIterator(NewMergingIterator(&icmp, std::move(children))));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(it->key(), &parsed)) {
        return Status::Corruption("bad key in slm-db memtable");
      }
      merged.emplace(parsed.user_key.ToString(),
                     std::make_pair(parsed.type == kTypeDeletion,
                                    it->value().ToString()));
    }
    if (!it->status().ok()) {
      return it->status();
    }
  }
  // The B+-tree indexes exactly the live flushed records (deletes are
  // applied to it at flush time); fresher memtable entries win.
  std::shared_lock<std::shared_mutex> index_lock(index_mu_);
  Status scan_status;
  index_->Scan([&](const Slice& key, uint64_t locator) {
    if (!scan_status.ok()) {
      return;
    }
    std::string user_key = key.ToString();
    if (merged.find(user_key) != merged.end()) {
      return;
    }
    RecordHeader header;
    if (!DecodeRecordHeaderAt(env_, locator, &header)) {
      scan_status = Status::Corruption("dangling slm-db locator");
      return;
    }
    std::string value;
    LoadRecordValue(env_, locator, header, &value);
    merged.emplace(std::move(user_key),
                   std::make_pair(false, std::move(value)));
  });
  if (!scan_status.ok()) {
    return scan_status;
  }
  auto it = start.empty() ? merged.begin()
                          : merged.lower_bound(start.ToString());
  for (; it != merged.end() && out->size() < limit; ++it) {
    if (it->second.first) {
      continue;  // tombstone masking nothing or a flushed record
    }
    out->emplace_back(it->first, it->second.second);
  }
  return Status::OK();
}

Status SlmDbStore::WaitIdle() {
  std::unique_lock<std::mutex> write_lock(write_mu_);
  if (active_->NumEntries() > 0) {
    Status s = SealActiveLocked(&write_lock);
    if (!s.ok()) {
      return s;
    }
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (flush_requested_ && !shutting_down_) {
    flush_done_cv_.wait(lock);
  }
  return flush_error_;
}

uint64_t SlmDbStore::GarbageBytes() const {
  std::lock_guard<std::mutex> lock(chunks_mu_);
  uint64_t garbage = 0;
  for (const Chunk& c : chunks_) {
    garbage += c.used - c.live;
  }
  return garbage;
}

uint64_t SlmDbStore::DataBytes() const {
  std::lock_guard<std::mutex> lock(chunks_mu_);
  uint64_t used = 0;
  for (const Chunk& c : chunks_) {
    used += c.used;
  }
  return used;
}

int SlmDbStore::NumChunks() const {
  std::lock_guard<std::mutex> lock(chunks_mu_);
  return static_cast<int>(chunks_.size());
}

}  // namespace cachekv
