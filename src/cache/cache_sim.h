#ifndef CACHEKV_CACHE_CACHE_SIM_H_
#define CACHEKV_CACHE_CACHE_SIM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pmem/pmem_device.h"
#include "sim/latency_model.h"
#include "util/port.h"

namespace cachekv {

/// Persistence domain of the platform (Feature 2, §II-B). Under ADR only
/// the iMC write-pending queue and the PMem media survive power failure;
/// dirty CPU cachelines are lost. Under eADR the CPU caches are flushed on
/// power failure, so everything that reached a cacheline is durable.
enum class PersistDomain {
  kAdr,
  kEadr,
};

/// Counters of the simulated cache.
struct CacheStats {
  std::atomic<uint64_t> load_hits{0};
  std::atomic<uint64_t> load_misses{0};
  std::atomic<uint64_t> store_hits{0};
  std::atomic<uint64_t> store_misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dirty_evictions{0};
  std::atomic<uint64_t> clwb_lines{0};
  std::atomic<uint64_t> nt_lines{0};
  std::atomic<uint64_t> fences{0};

  void Reset() {
    load_hits.store(0);
    load_misses.store(0);
    store_hits.store(0);
    store_misses.store(0);
    evictions.store(0);
    dirty_evictions.store(0);
    clwb_lines.store(0);
    nt_lines.store(0);
    fences.store(0);
  }
};

/// Cache geometry and the CAT pseudo-locked region.
struct CacheConfig {
  /// LLC capacity available to simulated PMem traffic. The testbed in the
  /// paper has a 36 MB LLC per socket.
  uint64_t capacity = 36ull << 20;
  /// Set associativity.
  int ways = 12;
  /// Intel CAT pseudo-locked address range [locked_base,
  /// locked_base+locked_size) in device space. Lines in this range live in
  /// a dedicated partition and are never evicted by other traffic; the
  /// capacity they use is deducted from the normal partition. Zero size
  /// disables the region.
  uint64_t locked_base = 0;
  uint64_t locked_size = 0;
  /// Persistence domain applied on Crash().
  PersistDomain domain = PersistDomain::kEadr;
};

/// CacheSim models the CPU cache hierarchy in front of the simulated PMem
/// device: a set-associative write-back, write-allocate cache of 64 B
/// lines with per-set LRU replacement. Every byte the KV engines move
/// to/from "PMem" flows through Store()/Load() here; dirty lines reach the
/// PmemDevice either by LRU eviction, by explicit Clwb()/Clflush(), by
/// NtStore() bypass, or by the eADR flush-on-power-failure in Crash().
///
/// This is the mechanism by which the paper's observations reproduce:
/// without flush instructions, LRU evicts isolated 64 B lines in an order
/// uncorrelated with spatial adjacency, so they miss the XPBuffer and
/// amplify writes (Ob1/R1); CAT pseudo-locking keeps the sub-MemTable pool
/// resident so CacheKV's writes never leave the cache until a copy-based
/// flush (§III-A/III-C).
///
/// Thread-safe; lines are protected by sharded locks.
class CacheSim {
 public:
  CacheSim(const CacheConfig& config, PmemDevice* device,
           LatencyModel* latency);

  CacheSim(const CacheSim&) = delete;
  CacheSim& operator=(const CacheSim&) = delete;

  /// Regular (temporal) store of [src, src+len) to device address `addr`,
  /// write-allocating affected lines.
  void Store(uint64_t addr, const void* src, size_t len);

  /// Load of `len` bytes at `addr` into dst, allocating on miss.
  void Load(uint64_t addr, void* dst, size_t len);

  /// clwb: writes back (without invalidating) every dirty line overlapping
  /// [addr, addr+len).
  void Clwb(uint64_t addr, size_t len);

  /// clflush: writes back and invalidates every line overlapping the
  /// range. Note: per the paper's footnote, this evicts even CAT
  /// pseudo-locked lines.
  void Clflush(uint64_t addr, size_t len);

  /// Store fence; charges the ordering stall.
  void Sfence();

  /// Non-temporal store: bypasses the cache. Cached copies of affected
  /// lines are invalidated (their bytes folded into the written line so no
  /// data is lost on partial-line edges) and full 64 B lines are sent
  /// straight to the device's XPBuffer.
  void NtStore(uint64_t addr, const void* src, size_t len);

  /// 8-byte atomic load from a naturally aligned address.
  uint64_t Load64(uint64_t addr);

  /// 8-byte atomic store to a naturally aligned address.
  void Store64(uint64_t addr, uint64_t value);

  /// 8-byte compare-and-swap at a naturally aligned address. On failure
  /// *expected receives the observed value.
  bool CompareExchange64(uint64_t addr, uint64_t* expected,
                         uint64_t desired);

  /// Simulates power failure: under eADR every dirty line (including the
  /// locked region) is written back; under ADR dirty lines are dropped.
  /// In both domains the XPBuffer drains (it is inside the ADR domain) and
  /// the cache comes back cold.
  void Crash();

  /// Writes back all dirty lines without invalidating (clean shutdown /
  /// test barrier).
  void WritebackAll();

  /// Remaps the CAT pseudo-locked window to a new base address
  /// (re-locking onto the next memtable segment, as the paper's
  /// NoveLSM-cache variant does when a segment fills). Dirty locked lines
  /// are written back and all locked lines invalidated first. The caller
  /// must ensure no concurrent traffic targets the old or the new window
  /// while remapping.
  void SetLockedWindow(uint64_t new_base);

  uint64_t locked_window_base() const {
    return locked_base_.load(std::memory_order_acquire);
  }

  const CacheConfig& config() const { return config_; }
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }
  PmemDevice* device() { return device_; }

  /// Number of currently valid lines in the locked partition (test hook).
  uint64_t LockedResidentLines() const;

 private:
  struct Way {
    uint64_t addr = 0;
    uint32_t lru = 0;
    bool valid = false;
    bool dirty = false;
    char data[kCacheLineSize];
  };

  struct LockedLine {
    uint64_t addr = 0;  // the line this slot currently caches
    bool valid = false;
    bool dirty = false;
    char data[kCacheLineSize];
  };

  static constexpr int kNumShards = 4096;

  bool InLocked(uint64_t line_addr) const {
    const uint64_t base = locked_base_.load(std::memory_order_acquire);
    return config_.locked_size > 0 && line_addr >= base &&
           line_addr < base + config_.locked_size;
  }

  size_t SetOf(uint64_t line_addr) const {
    return static_cast<size_t>((line_addr / kCacheLineSize) % num_sets_);
  }

  std::mutex& SetMutex(size_t set) { return shard_mu_[set % kNumShards]; }
  std::mutex& LockedMutex(size_t idx) {
    return locked_mu_[idx % kNumShards];
  }

  // Runs fn(char* line_data, bool* dirty) with the line present in cache
  // and its lock held. fill_on_miss controls whether a miss reads the
  // device before fn runs (required unless fn overwrites all 64 bytes).
  template <typename Fn>
  void WithLine(uint64_t line_addr, bool fill_on_miss, bool is_store,
                Fn&& fn);

  // Picks a victim way in the set (caller holds the set lock); writes back
  // if dirty. Returns the way to (re)fill.
  Way* EvictFor(size_t set, uint64_t line_addr);

  CacheConfig config_;
  PmemDevice* device_;
  LatencyModel* latency_;
  std::atomic<uint64_t> locked_base_{0};
  size_t num_sets_;
  std::vector<Way> ways_;           // num_sets_ * config_.ways entries
  std::vector<uint32_t> set_tick_;  // per-set LRU clock
  std::vector<LockedLine> locked_;  // locked_size / 64 entries
  std::unique_ptr<std::mutex[]> shard_mu_;
  std::unique_ptr<std::mutex[]> locked_mu_;
  CacheStats stats_;
};

}  // namespace cachekv

#endif  // CACHEKV_CACHE_CACHE_SIM_H_
