#include "cache/cache_sim.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cachekv {

CacheSim::CacheSim(const CacheConfig& config, PmemDevice* device,
                   LatencyModel* latency)
    : config_(config), device_(device), latency_(latency) {
  locked_base_.store(config_.locked_base, std::memory_order_release);
  assert(config_.ways >= 1);
  assert(IsAligned(config_.locked_base, kCacheLineSize));
  assert(IsAligned(config_.locked_size, kCacheLineSize));
  assert(config_.locked_size <= config_.capacity);
  uint64_t normal_capacity = config_.capacity - config_.locked_size;
  num_sets_ = static_cast<size_t>(
      normal_capacity / (kCacheLineSize * config_.ways));
  if (num_sets_ == 0) {
    num_sets_ = 1;
  }
  ways_.resize(num_sets_ * config_.ways);
  set_tick_.assign(num_sets_, 0);
  locked_.resize(config_.locked_size / kCacheLineSize);
  shard_mu_ = std::make_unique<std::mutex[]>(kNumShards);
  locked_mu_ = std::make_unique<std::mutex[]>(kNumShards);
}

CacheSim::Way* CacheSim::EvictFor(size_t set, uint64_t line_addr) {
  Way* base = &ways_[set * config_.ways];
  Way* victim = nullptr;
  for (int i = 0; i < config_.ways; i++) {
    Way& w = base[i];
    if (!w.valid) {
      victim = &w;
      break;
    }
    if (victim == nullptr || w.lru < victim->lru) {
      victim = &w;
    }
  }
  if (victim->valid) {
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    if (victim->dirty) {
      stats_.dirty_evictions.fetch_add(1, std::memory_order_relaxed);
      device_->ReceiveLine(victim->addr, victim->data);
    }
  }
  victim->addr = line_addr;
  victim->valid = true;
  victim->dirty = false;
  return victim;
}

template <typename Fn>
void CacheSim::WithLine(uint64_t line_addr, bool fill_on_miss,
                        bool is_store, Fn&& fn) {
  const uint64_t locked_base = locked_window_base();
  if (config_.locked_size > 0 && line_addr >= locked_base &&
      line_addr < locked_base + config_.locked_size) {
    size_t idx =
        static_cast<size_t>((line_addr - locked_base) / kCacheLineSize);
    std::lock_guard<std::mutex> lock(LockedMutex(idx));
    LockedLine& l = locked_[idx];
    if (l.valid && l.addr != line_addr) {
      // The window moved under a racing access: this slot caches a line
      // from the previous window. Evict it safely.
      if (l.dirty) {
        device_->ReceiveLine(l.addr, l.data);
      }
      l.valid = false;
      l.dirty = false;
    }
    if (!l.valid) {
      if (fill_on_miss) {
        device_->Read(line_addr, l.data, kCacheLineSize);
      }
      l.addr = line_addr;
      l.valid = true;
      l.dirty = false;
      if (is_store) {
        stats_.store_misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.load_misses.fetch_add(1, std::memory_order_relaxed);
        if (latency_ != nullptr) latency_->ChargeCacheMissLoad();
      }
    } else {
      if (is_store) {
        stats_.store_hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.load_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    fn(l.data, &l.dirty);
    return;
  }

  size_t set = SetOf(line_addr);
  std::lock_guard<std::mutex> lock(SetMutex(set));
  Way* base = &ways_[set * config_.ways];
  Way* way = nullptr;
  for (int i = 0; i < config_.ways; i++) {
    if (base[i].valid && base[i].addr == line_addr) {
      way = &base[i];
      break;
    }
  }
  if (way != nullptr) {
    if (is_store) {
      stats_.store_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.load_hits.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    if (is_store) {
      stats_.store_misses.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.load_misses.fetch_add(1, std::memory_order_relaxed);
      if (latency_ != nullptr) latency_->ChargeCacheMissLoad();
    }
    way = EvictFor(set, line_addr);
    if (fill_on_miss) {
      device_->Read(line_addr, way->data, kCacheLineSize);
    }
  }
  way->lru = ++set_tick_[set];
  fn(way->data, &way->dirty);
}

void CacheSim::Store(uint64_t addr, const void* src, size_t len) {
  const char* in = static_cast<const char*>(src);
  uint64_t pos = addr;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t line = AlignDown(pos, kCacheLineSize);
    const size_t off = static_cast<size_t>(pos - line);
    const size_t chunk = std::min(remaining, kCacheLineSize - off);
    const bool full_line = (chunk == kCacheLineSize);
    WithLine(line, /*fill_on_miss=*/!full_line, /*is_store=*/true,
             [&](char* data, bool* dirty) {
               memcpy(data + off, in, chunk);
               *dirty = true;
             });
    in += chunk;
    pos += chunk;
    remaining -= chunk;
  }
}

void CacheSim::Load(uint64_t addr, void* dst, size_t len) {
  char* out = static_cast<char*>(dst);
  uint64_t pos = addr;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t line = AlignDown(pos, kCacheLineSize);
    const size_t off = static_cast<size_t>(pos - line);
    const size_t chunk = std::min(remaining, kCacheLineSize - off);
    WithLine(line, /*fill_on_miss=*/true, /*is_store=*/false,
             [&](char* data, bool*) { memcpy(out, data + off, chunk); });
    out += chunk;
    pos += chunk;
    remaining -= chunk;
  }
}

void CacheSim::Clwb(uint64_t addr, size_t len) {
  uint64_t first = AlignDown(addr, kCacheLineSize);
  uint64_t last = AlignDown(addr + (len == 0 ? 0 : len - 1), kCacheLineSize);
  for (uint64_t line = first; line <= last; line += kCacheLineSize) {
    stats_.clwb_lines.fetch_add(1, std::memory_order_relaxed);
    if (latency_ != nullptr) latency_->ChargeClwb();
    if (InLocked(line)) {
      size_t idx = static_cast<size_t>(
          ((line - locked_window_base()) / kCacheLineSize) %
          locked_.size());
      std::lock_guard<std::mutex> lock(LockedMutex(idx));
      LockedLine& l = locked_[idx];
      if (l.valid && l.addr == line && l.dirty) {
        device_->ReceiveLine(line, l.data);
        l.dirty = false;
      }
      continue;
    }
    size_t set = SetOf(line);
    std::lock_guard<std::mutex> lock(SetMutex(set));
    Way* base = &ways_[set * config_.ways];
    for (int i = 0; i < config_.ways; i++) {
      Way& w = base[i];
      if (w.valid && w.addr == line) {
        if (w.dirty) {
          device_->ReceiveLine(line, w.data);
          w.dirty = false;
        }
        break;
      }
    }
  }
}

void CacheSim::Clflush(uint64_t addr, size_t len) {
  uint64_t first = AlignDown(addr, kCacheLineSize);
  uint64_t last = AlignDown(addr + (len == 0 ? 0 : len - 1), kCacheLineSize);
  for (uint64_t line = first; line <= last; line += kCacheLineSize) {
    stats_.clwb_lines.fetch_add(1, std::memory_order_relaxed);
    if (latency_ != nullptr) latency_->ChargeClwb();
    if (InLocked(line)) {
      // Per the paper's footnote: clflush evicts even CAT pseudo-locked
      // lines.
      size_t idx = static_cast<size_t>(
          ((line - locked_window_base()) / kCacheLineSize) %
          locked_.size());
      std::lock_guard<std::mutex> lock(LockedMutex(idx));
      LockedLine& l = locked_[idx];
      if (l.valid && l.addr == line) {
        if (l.dirty) {
          device_->ReceiveLine(line, l.data);
        }
        l.valid = false;
        l.dirty = false;
      }
      continue;
    }
    size_t set = SetOf(line);
    std::lock_guard<std::mutex> lock(SetMutex(set));
    Way* base = &ways_[set * config_.ways];
    for (int i = 0; i < config_.ways; i++) {
      Way& w = base[i];
      if (w.valid && w.addr == line) {
        if (w.dirty) {
          device_->ReceiveLine(line, w.data);
        }
        w.valid = false;
        w.dirty = false;
        break;
      }
    }
  }
}

void CacheSim::Sfence() {
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (latency_ != nullptr) latency_->ChargeSfence();
}

void CacheSim::NtStore(uint64_t addr, const void* src, size_t len) {
  const char* in = static_cast<const char*>(src);
  uint64_t pos = addr;
  size_t remaining = len;
  while (remaining > 0) {
    const uint64_t line = AlignDown(pos, kCacheLineSize);
    const size_t off = static_cast<size_t>(pos - line);
    const size_t chunk = std::min(remaining, kCacheLineSize - off);
    char merged[kCacheLineSize];
    bool have_base = false;

    // Fold in (and invalidate) any cached copy so coherence is preserved.
    if (InLocked(line)) {
      size_t idx = static_cast<size_t>(
          ((line - locked_window_base()) / kCacheLineSize) %
          locked_.size());
      std::lock_guard<std::mutex> lock(LockedMutex(idx));
      LockedLine& l = locked_[idx];
      if (l.valid && l.addr == line) {
        memcpy(merged, l.data, kCacheLineSize);
        have_base = true;
        l.valid = false;
        l.dirty = false;
      }
    } else {
      size_t set = SetOf(line);
      std::lock_guard<std::mutex> lock(SetMutex(set));
      Way* base = &ways_[set * config_.ways];
      for (int i = 0; i < config_.ways; i++) {
        Way& w = base[i];
        if (w.valid && w.addr == line) {
          memcpy(merged, w.data, kCacheLineSize);
          have_base = true;
          w.valid = false;
          w.dirty = false;
          break;
        }
      }
    }
    if (!have_base && chunk < kCacheLineSize) {
      device_->Read(line, merged, kCacheLineSize);
      have_base = true;
    }
    memcpy(merged + off, in, chunk);
    stats_.nt_lines.fetch_add(1, std::memory_order_relaxed);
    if (latency_ != nullptr) latency_->ChargeNtStore(1);
    device_->ReceiveLine(line, merged, /*non_temporal=*/true);

    in += chunk;
    pos += chunk;
    remaining -= chunk;
  }
}

uint64_t CacheSim::Load64(uint64_t addr) {
  assert(IsAligned(addr, 8));
  uint64_t value = 0;
  const uint64_t line = AlignDown(addr, kCacheLineSize);
  const size_t off = static_cast<size_t>(addr - line);
  WithLine(line, /*fill_on_miss=*/true, /*is_store=*/false,
           [&](char* data, bool*) { memcpy(&value, data + off, 8); });
  return value;
}

void CacheSim::Store64(uint64_t addr, uint64_t value) {
  assert(IsAligned(addr, 8));
  const uint64_t line = AlignDown(addr, kCacheLineSize);
  const size_t off = static_cast<size_t>(addr - line);
  WithLine(line, /*fill_on_miss=*/true, /*is_store=*/true,
           [&](char* data, bool* dirty) {
             memcpy(data + off, &value, 8);
             *dirty = true;
           });
}

bool CacheSim::CompareExchange64(uint64_t addr, uint64_t* expected,
                                 uint64_t desired) {
  assert(IsAligned(addr, 8));
  const uint64_t line = AlignDown(addr, kCacheLineSize);
  const size_t off = static_cast<size_t>(addr - line);
  bool success = false;
  WithLine(line, /*fill_on_miss=*/true, /*is_store=*/true,
           [&](char* data, bool* dirty) {
             uint64_t current;
             memcpy(&current, data + off, 8);
             if (current == *expected) {
               memcpy(data + off, &desired, 8);
               *dirty = true;
               success = true;
             } else {
               *expected = current;
             }
           });
  return success;
}

void CacheSim::Crash() {
  const bool eadr = (config_.domain == PersistDomain::kEadr);
  for (size_t set = 0; set < num_sets_; set++) {
    std::lock_guard<std::mutex> lock(SetMutex(set));
    Way* base = &ways_[set * config_.ways];
    for (int i = 0; i < config_.ways; i++) {
      Way& w = base[i];
      if (w.valid && w.dirty && eadr) {
        device_->ReceiveLine(w.addr, w.data);
      }
      w.valid = false;
      w.dirty = false;
    }
    set_tick_[set] = 0;
  }
  for (size_t idx = 0; idx < locked_.size(); idx++) {
    std::lock_guard<std::mutex> lock(LockedMutex(idx));
    LockedLine& l = locked_[idx];
    if (l.valid && l.dirty && eadr) {
      device_->ReceiveLine(l.addr, l.data);
    }
    l.valid = false;
    l.dirty = false;
  }
  device_->DrainAll();
}

void CacheSim::WritebackAll() {
  for (size_t set = 0; set < num_sets_; set++) {
    std::lock_guard<std::mutex> lock(SetMutex(set));
    Way* base = &ways_[set * config_.ways];
    for (int i = 0; i < config_.ways; i++) {
      Way& w = base[i];
      if (w.valid && w.dirty) {
        device_->ReceiveLine(w.addr, w.data);
        w.dirty = false;
      }
    }
  }
  for (size_t idx = 0; idx < locked_.size(); idx++) {
    std::lock_guard<std::mutex> lock(LockedMutex(idx));
    LockedLine& l = locked_[idx];
    if (l.valid && l.dirty) {
      device_->ReceiveLine(l.addr, l.data);
      l.dirty = false;
    }
  }
  device_->DrainAll();
}

uint64_t CacheSim::LockedResidentLines() const {
  uint64_t count = 0;
  for (const auto& l : locked_) {
    if (l.valid) count++;
  }
  return count;
}

void CacheSim::SetLockedWindow(uint64_t new_base) {
  assert(IsAligned(new_base, kCacheLineSize));
  for (size_t idx = 0; idx < locked_.size(); idx++) {
    std::lock_guard<std::mutex> lock(LockedMutex(idx));
    LockedLine& l = locked_[idx];
    if (l.valid && l.dirty) {
      device_->ReceiveLine(l.addr, l.data);
    }
    l.valid = false;
    l.dirty = false;
  }
  // Lines of the NEW window may be cached (possibly dirty) in the normal
  // partition from before the re-lock; push them out so locked-path
  // fills observe the freshest bytes.
  for (uint64_t line = new_base; line < new_base + config_.locked_size;
       line += kCacheLineSize) {
    size_t set = SetOf(line);
    std::lock_guard<std::mutex> lock(SetMutex(set));
    Way* base = &ways_[set * config_.ways];
    for (int i = 0; i < config_.ways; i++) {
      Way& w = base[i];
      if (w.valid && w.addr == line) {
        if (w.dirty) {
          device_->ReceiveLine(line, w.data);
        }
        w.valid = false;
        w.dirty = false;
        break;
      }
    }
  }
  locked_base_.store(new_base, std::memory_order_release);
}

}  // namespace cachekv
