#ifndef CACHEKV_CACHE_HOT_KEY_CACHE_H_
#define CACHEKV_CACHE_HOT_KEY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/slice.h"

namespace cachekv {
namespace cache {

/// Tuning knobs of one HotKeyCache instance.
struct HotKeyCacheOptions {
  /// Total byte budget (keys + values + per-entry overhead), split
  /// evenly across the stripes.
  size_t capacity_bytes = 8u << 20;
  /// A fill is admitted only once the key's estimated access frequency
  /// (Count-Min sketch, incremented per lookup) reaches this. 2 keeps
  /// one-hit wonders out; 1 admits every miss; 0 behaves like 1.
  uint32_t admit_threshold = 2;
  /// Values larger than this are never cached (they would evict a whole
  /// working set of hot entries for one cold read).
  size_t max_value_bytes = 64u << 10;
  /// Lock stripes; rounded up to a power of two.
  int stripes = 8;
  /// Invalidation-guard epoch slots per stripe; power of two.
  size_t guard_slots = 512;
};

/// Read-through hot-key cache: a striped, byte-bounded LRU map with a
/// Count-Min-sketch frequency admission filter, sitting in front of
/// DB::Get on the server's read path (docs/ARCHITECTURE.md).
///
/// Coherence protocol. The cache itself cannot know when the store
/// changes, so the caller must Invalidate(key) after every committed
/// write of `key` and before acknowledging that write. The remaining
/// hazard is the read-side fill race:
///
///   reader: Lookup(k) -> miss          writer: DB commits k=v2
///   reader: DB::Get(k) -> v1 (stale)   writer: Invalidate(k); ack v2
///   reader: Insert(k, v1)              <- must NOT be published!
///
/// Lookup therefore hands the reader a FillToken carrying the epoch of
/// the key's guard slot, and Insert republishes only while that epoch
/// is unchanged. Invalidate erases the entry AND bumps the guard slot.
/// All three touch the guard under the stripe mutex, so for any
/// reader/writer pair only three interleavings exist, each safe:
///  - Invalidate before Lookup: the mutex orders the writer's commit
///    before the reader's DB::Get, which then sees v2;
///  - Invalidate between Lookup and Insert: the token is stale and the
///    fill is rejected (counted in cache.rejected_fills);
///  - Invalidate after Insert: the stale entry is erased again before
///    the writer acks.
/// Hence after a write is acked the cache holds either nothing or the
/// acked value for that key — an acked overwrite can never be shadowed.
/// Guard slots are hashed (guard_slots per stripe), so collisions only
/// over-reject fills; they never admit a stale one.
///
/// Fail points (runtime-registered, not part of the crash-sweep builtin
/// list — see src/fault/fail_point.cc):
///  - "cache.poison": evaluated at the top of Insert. A delay action
///    widens the miss->overwrite->fill race window so the token guard
///    is exercised; an error action drops the fill entirely.
///  - "cache.invalidate": evaluated at the top of Invalidate. Only the
///    delay action is honored — error statuses are deliberately ignored
///    because skipping an invalidation would break the protocol above.
///
/// Metrics (registered in `registry`): cache.hits, cache.misses,
/// cache.admissions, cache.evictions, cache.invalidations,
/// cache.rejected_fills (token-guard rejections), cache.filtered
/// (admission-filter rejections), and gauges cache.entries/cache.bytes.
///
/// Thread safety: fully thread-safe; every public call takes exactly
/// one stripe mutex (Clear takes them one at a time).
class HotKeyCache {
 public:
  /// `registry` must outlive the cache and must not be null.
  HotKeyCache(const HotKeyCacheOptions& options,
              obs::MetricsRegistry* registry);
  ~HotKeyCache();

  HotKeyCache(const HotKeyCache&) = delete;
  HotKeyCache& operator=(const HotKeyCache&) = delete;

  /// Capability to publish a value read from the store no earlier than
  /// the Lookup miss that produced the token.
  struct FillToken {
    uint32_t stripe = 0;
    uint32_t slot = 0;
    uint64_t epoch = 0;
  };

  /// On hit: copies the cached value into *value, refreshes LRU order
  /// and returns true. On miss: fills *token (when non-null) for a
  /// subsequent Insert and returns false.
  bool Lookup(const Slice& key, std::string* value, FillToken* token);

  /// Publishes a value the caller read from the store after the Lookup
  /// miss that produced `token`. Dropped (returns false) when the
  /// token's guard epoch has moved (a write invalidated the key in the
  /// meantime), when the admission filter rejects the key, when the
  /// value exceeds max_value_bytes, or when "cache.poison" fires with
  /// an error action.
  bool Insert(const Slice& key, const Slice& value,
              const FillToken& token);

  /// Erases any cached entry for `key` and bumps its guard slot so
  /// in-flight fills of the old value are rejected. Callers must invoke
  /// this after the store commit and before acking the write.
  void Invalidate(const Slice& key);

  /// Drops every entry and bumps every guard slot.
  void Clear();

  size_t entries() const;
  size_t charge_bytes() const;
  const HotKeyCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    size_t charge = 0;
  };
  struct Stripe;

  Stripe* StripeFor(uint64_t hash) const;
  /// Count-Min estimate after counting this access.
  uint32_t SketchTouch(uint64_t hash);
  void SketchAgeIfDue();

  const HotKeyCacheOptions options_;
  size_t per_stripe_capacity_;
  uint32_t stripe_mask_;
  uint32_t slot_mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Count-Min sketch: kSketchRows rows of width_ relaxed counters.
  // Increments race benignly (it is an estimator); aging halves every
  // cell once the touch budget is spent so old hotness decays.
  static constexpr int kSketchRows = 4;
  uint32_t sketch_width_mask_;
  std::vector<std::atomic<uint32_t>> sketch_;
  std::atomic<uint64_t> sketch_touches_{0};
  std::atomic<bool> sketch_aging_{false};

  std::atomic<size_t> total_entries_{0};
  std::atomic<size_t> total_charge_{0};

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* admissions_;
  obs::Counter* evictions_;
  obs::Counter* invalidations_;
  obs::Counter* rejected_fills_;
  obs::Counter* filtered_;
  obs::Gauge* entries_gauge_;
  obs::Gauge* bytes_gauge_;
};

}  // namespace cache
}  // namespace cachekv

#endif  // CACHEKV_CACHE_HOT_KEY_CACHE_H_
