#include "cache/hot_key_cache.h"

#include <algorithm>

#include "fault/fail_point.h"
#include "util/hash.h"

namespace cachekv {
namespace cache {

namespace {

/// 64 bytes models the map node + list node + bookkeeping per entry so
/// the byte budget tracks real memory, not just payload.
constexpr size_t kEntryOverhead = 64;

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

struct HotKeyCache::Stripe {
  std::mutex mu;
  /// Front = most recently used.
  std::list<Entry> lru;
  std::unordered_map<std::string, std::list<Entry>::iterator> index;
  size_t charge = 0;
  /// Invalidation guard epochs, hashed per key. Only ever touched under
  /// `mu`, which is what makes the fill-token protocol airtight (see
  /// the header's interleaving analysis).
  std::vector<uint64_t> guard;
};

HotKeyCache::HotKeyCache(const HotKeyCacheOptions& options,
                         obs::MetricsRegistry* registry)
    : options_(options) {
  const uint32_t num_stripes =
      RoundUpPow2(options_.stripes < 1 ? 1u
                                       : static_cast<uint32_t>(
                                             options_.stripes));
  stripe_mask_ = num_stripes - 1;
  per_stripe_capacity_ =
      std::max<size_t>(1, options_.capacity_bytes / num_stripes);
  const uint32_t slots = RoundUpPow2(std::max<uint32_t>(
      1, static_cast<uint32_t>(options_.guard_slots)));
  slot_mask_ = slots - 1;
  stripes_.reserve(num_stripes);
  for (uint32_t i = 0; i < num_stripes; i++) {
    auto s = std::make_unique<Stripe>();
    s->guard.assign(slots, 0);
    stripes_.push_back(std::move(s));
  }

  // Sketch width scales with how many entries the budget could hold
  // (≈1 KiB apiece is a fine guess — only the estimate quality moves).
  const uint32_t width = RoundUpPow2(static_cast<uint32_t>(std::min<size_t>(
      1u << 20,
      std::max<size_t>(1024, options_.capacity_bytes / 1024))));
  sketch_width_mask_ = width - 1;
  sketch_ = std::vector<std::atomic<uint32_t>>(
      static_cast<size_t>(kSketchRows) * width);

  hits_ = registry->GetCounter("cache.hits");
  misses_ = registry->GetCounter("cache.misses");
  admissions_ = registry->GetCounter("cache.admissions");
  evictions_ = registry->GetCounter("cache.evictions");
  invalidations_ = registry->GetCounter("cache.invalidations");
  rejected_fills_ = registry->GetCounter("cache.rejected_fills");
  filtered_ = registry->GetCounter("cache.filtered");
  entries_gauge_ = registry->GetGauge("cache.entries");
  bytes_gauge_ = registry->GetGauge("cache.bytes");
}

HotKeyCache::~HotKeyCache() = default;

HotKeyCache::Stripe* HotKeyCache::StripeFor(uint64_t hash) const {
  return stripes_[hash & stripe_mask_].get();
}

uint32_t HotKeyCache::SketchTouch(uint64_t hash) {
  SketchAgeIfDue();
  uint32_t estimate = UINT32_MAX;
  uint64_t h = hash;
  const size_t width = static_cast<size_t>(sketch_width_mask_) + 1;
  for (int row = 0; row < kSketchRows; row++) {
    h = Mix64(h + static_cast<uint64_t>(row) * 0x9e3779b97f4a7c15ULL);
    std::atomic<uint32_t>& cell =
        sketch_[static_cast<size_t>(row) * width +
                (h & sketch_width_mask_)];
    const uint32_t after =
        cell.fetch_add(1, std::memory_order_relaxed) + 1;
    estimate = std::min(estimate, after);
  }
  return estimate;
}

void HotKeyCache::SketchAgeIfDue() {
  // Halve every cell once the touch budget (8x the width) is spent, so
  // yesterday's hot set cannot pin the admission filter forever. One
  // thread ages at a time; concurrent increments racing the halving
  // only blur an estimator that is approximate by design.
  const uint64_t budget =
      (static_cast<uint64_t>(sketch_width_mask_) + 1) * 8;
  if (sketch_touches_.fetch_add(1, std::memory_order_relaxed) < budget) {
    return;
  }
  bool expected = false;
  if (!sketch_aging_.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return;
  }
  for (std::atomic<uint32_t>& cell : sketch_) {
    cell.store(cell.load(std::memory_order_relaxed) / 2,
               std::memory_order_relaxed);
  }
  sketch_touches_.store(0, std::memory_order_relaxed);
  sketch_aging_.store(false, std::memory_order_release);
}

bool HotKeyCache::Lookup(const Slice& key, std::string* value,
                         FillToken* token) {
  const uint64_t hash = Hash64(key.data(), key.size(), 0xcafe);
  SketchTouch(hash);
  Stripe* stripe = StripeFor(hash);
  const uint32_t slot = static_cast<uint32_t>(hash >> 32) & slot_mask_;
  std::lock_guard<std::mutex> lock(stripe->mu);
  auto it = stripe->index.find(
      std::string(key.data(), key.size()));
  if (it != stripe->index.end()) {
    *value = it->second->value;
    stripe->lru.splice(stripe->lru.begin(), stripe->lru, it->second);
    hits_->Increment();
    return true;
  }
  if (token != nullptr) {
    token->stripe = static_cast<uint32_t>(hash & stripe_mask_);
    token->slot = slot;
    token->epoch = stripe->guard[slot];
  }
  misses_->Increment();
  return false;
}

bool HotKeyCache::Insert(const Slice& key, const Slice& value,
                         const FillToken& token) {
  if (fault::AnyActive()) {
    // "cache.poison": a delay here widens the classic miss -> overwrite
    // -> stale-fill window the token guard exists for; an error drops
    // the fill outright.
    if (!fault::Inject("cache.poison").ok()) {
      rejected_fills_->Increment();
      return false;
    }
  }
  if (value.size() > options_.max_value_bytes) {
    filtered_->Increment();
    return false;
  }
  const uint64_t hash = Hash64(key.data(), key.size(), 0xcafe);
  // Admission: the sketch already counted this access in the Lookup
  // miss, so a read-only estimate (no extra touch) is compared here.
  uint32_t estimate = UINT32_MAX;
  uint64_t h = hash;
  const size_t width = static_cast<size_t>(sketch_width_mask_) + 1;
  for (int row = 0; row < kSketchRows; row++) {
    h = Mix64(h + static_cast<uint64_t>(row) * 0x9e3779b97f4a7c15ULL);
    estimate = std::min(
        estimate, sketch_[static_cast<size_t>(row) * width +
                          (h & sketch_width_mask_)]
                      .load(std::memory_order_relaxed));
  }
  if (estimate < std::max<uint32_t>(1, options_.admit_threshold)) {
    filtered_->Increment();
    return false;
  }

  Stripe* stripe = StripeFor(hash);
  const uint32_t slot = static_cast<uint32_t>(hash >> 32) & slot_mask_;
  const size_t charge = key.size() + value.size() + kEntryOverhead;
  std::lock_guard<std::mutex> lock(stripe->mu);
  if (stripe->guard[slot] != token.epoch) {
    // A write invalidated this key (or a guard-slot neighbor) after our
    // Lookup miss: the value in hand may predate an acked overwrite.
    rejected_fills_->Increment();
    return false;
  }
  std::string key_str(key.data(), key.size());
  auto it = stripe->index.find(key_str);
  if (it != stripe->index.end()) {
    // Another reader filled it first; refresh the value (same epoch, so
    // both fills are safe) and the LRU position.
    total_charge_.fetch_sub(it->second->charge, std::memory_order_relaxed);
    stripe->charge -= it->second->charge;
    it->second->value.assign(value.data(), value.size());
    it->second->charge = charge;
    stripe->charge += charge;
    total_charge_.fetch_add(charge, std::memory_order_relaxed);
    stripe->lru.splice(stripe->lru.begin(), stripe->lru, it->second);
  } else {
    stripe->lru.push_front(Entry{std::move(key_str),
                                 std::string(value.data(), value.size()),
                                 charge});
    stripe->index.emplace(stripe->lru.front().key, stripe->lru.begin());
    stripe->charge += charge;
    total_charge_.fetch_add(charge, std::memory_order_relaxed);
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    admissions_->Increment();
    while (stripe->charge > per_stripe_capacity_ &&
           stripe->lru.size() > 1) {
      const Entry& victim = stripe->lru.back();
      stripe->charge -= victim.charge;
      total_charge_.fetch_sub(victim.charge, std::memory_order_relaxed);
      total_entries_.fetch_sub(1, std::memory_order_relaxed);
      stripe->index.erase(victim.key);
      stripe->lru.pop_back();
      evictions_->Increment();
    }
  }
  entries_gauge_->Set(
      static_cast<double>(total_entries_.load(std::memory_order_relaxed)));
  bytes_gauge_->Set(
      static_cast<double>(total_charge_.load(std::memory_order_relaxed)));
  return true;
}

void HotKeyCache::Invalidate(const Slice& key) {
  if (fault::AnyActive()) {
    // "cache.invalidate": only the delay action matters (it models a
    // slow write path between commit and ack). Error statuses are
    // ignored on purpose — an invalidation must never be skipped, or
    // an acked overwrite could stay shadowed forever.
    (void)fault::Inject("cache.invalidate");
  }
  const uint64_t hash = Hash64(key.data(), key.size(), 0xcafe);
  Stripe* stripe = StripeFor(hash);
  const uint32_t slot = static_cast<uint32_t>(hash >> 32) & slot_mask_;
  std::lock_guard<std::mutex> lock(stripe->mu);
  stripe->guard[slot]++;
  auto it = stripe->index.find(std::string(key.data(), key.size()));
  if (it != stripe->index.end()) {
    total_charge_.fetch_sub(it->second->charge, std::memory_order_relaxed);
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
    stripe->charge -= it->second->charge;
    stripe->lru.erase(it->second);
    stripe->index.erase(it);
  }
  invalidations_->Increment();
}

void HotKeyCache::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (uint64_t& epoch : stripe->guard) epoch++;
    total_charge_.fetch_sub(stripe->charge, std::memory_order_relaxed);
    total_entries_.fetch_sub(stripe->lru.size(),
                             std::memory_order_relaxed);
    stripe->charge = 0;
    stripe->index.clear();
    stripe->lru.clear();
  }
  entries_gauge_->Set(0);
  bytes_gauge_->Set(0);
}

size_t HotKeyCache::entries() const {
  return total_entries_.load(std::memory_order_relaxed);
}

size_t HotKeyCache::charge_bytes() const {
  return total_charge_.load(std::memory_order_relaxed);
}

}  // namespace cache
}  // namespace cachekv
