#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace cachekv {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(what, std::strerror(errno));
}

Status NotConnected() { return Status::IOError("not connected"); }

/// SplitMix64: trace ids must be well-mixed (they key merged
/// timelines) yet reproducible from (seed, ordinal).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Client-side span name for a sampled op (string literal: the tracer
/// stores the pointer).
const char* ClientSpanName(Op op) {
  switch (op) {
    case Op::kGet: return "client.get";
    case Op::kPut: return "client.put";
    case Op::kDelete: return "client.del";
    case Op::kMultiPut: return "client.multiput";
    case Op::kScan: return "client.scan";
    default: return "client.op";
  }
}

}  // namespace

Client::Client(const ClientOptions& options)
    : options_(options), decoder_(options.max_frame_bytes) {}

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Errno("socket");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a literal address: resolve the name.
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
        result == nullptr) {
      Close();
      return Status::IOError("cannot resolve host", host);
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
    ::freeaddrinfo(result);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status s = Errno("connect");
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  next_id_ = 1;
  keyed_seq_ = 0;
  sendbuf_.clear();
  outstanding_.clear();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  sendbuf_.clear();
  outstanding_.clear();
}

void Client::FailConnection() { Close(); }

Status Client::RequireIdle() const {
  if (!outstanding_.empty()) {
    return Status::InvalidArgument(
        "pipelined requests outstanding; WaitAll() first");
  }
  return Status::OK();
}

TraceContext Client::NextTrace() {
  TraceContext tc;
  const uint64_t seq = keyed_seq_++;
  if (options_.trace_sample_every == 0 ||
      seq % options_.trace_sample_every != 0) {
    return tc;
  }
  tc.traced = true;
  // Mask to 48 bits: trace ids round-trip through JSON doubles (both
  // in trace dumps and the slow log), so they must stay below 2^53.
  tc.trace_id = Mix64(options_.trace_seed ^ seq) & ((1ULL << 48) - 1);
  if (tc.trace_id == 0) tc.trace_id = 1;
  return tc;
}

uint64_t Client::NowNs() const {
  // Span timestamps must live on the tracer's epoch so client spans
  // align with other events in the same dump; without a tracer only
  // durations are consumed and any steady epoch works.
  if (options_.tracer != nullptr) return options_.tracer->NowNs();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Client::SendAll(const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      Status s = Errno("send");
      FailConnection();
      return s;
    }
  }
  return Status::OK();
}

Status Client::ReadFrame(Frame* frame) {
  char buf[64 << 10];
  while (true) {
    FrameDecoder::Result r = decoder_.Next(frame);
    if (r == FrameDecoder::Result::kFrame) {
      return Status::OK();
    }
    if (r == FrameDecoder::Result::kError) {
      Status s = Status::Corruption("protocol", decoder_.error());
      FailConnection();
      return s;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
    } else if (n == 0) {
      FailConnection();
      return Status::IOError("connection closed by server");
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      FailConnection();
      return Status::IOError("recv timeout");
    } else {
      Status s = Errno("recv");
      FailConnection();
      return s;
    }
  }
}

Status Client::RoundTrip(Op op, const std::string& request,
                         Frame* response, std::string* payload_out) {
  last_wire_code_ = 0;  // 0 = no response arrived
  if (fd_ < 0) return NotConnected();
  Status s = RequireIdle();
  if (!s.ok()) return s;
  s = SendAll(request.data(), request.size());
  if (!s.ok()) return s;
  s = ReadFrame(response);
  if (!s.ok()) return s;
  if (!response->response || response->op != op) {
    FailConnection();
    return Status::Corruption("protocol", "unexpected response frame");
  }
  last_wire_code_ = response->code;
  if (response->code != kOk) {
    return StatusFromWire(response->code,
                          response->payload);
  }
  if (payload_out != nullptr) {
    *payload_out = response->payload.ToString();
  }
  return Status::OK();
}

// Synchronous API. ----------------------------------------------------

namespace {

/// Emits the client-side span for a sampled synchronous request.
void EmitClientSpan(obs::Tracer* tracer, Op op, const TraceContext& tc,
                    uint64_t start_ns, uint64_t end_ns) {
  if (tracer == nullptr || !tracer->enabled() || !tc.traced) return;
  tracer->Complete(ClientSpanName(op), start_ns, end_ns - start_ns,
                   "trace", tc.trace_id);
}

}  // namespace

Status Client::Put(const Slice& key, const Slice& value) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodePutRequest(&req, next_id_++, key, value, tc);
  Frame resp;
  const uint64_t start = tc.traced ? NowNs() : 0;
  Status s = RoundTrip(Op::kPut, req, &resp, nullptr);
  EmitClientSpan(options_.tracer, Op::kPut, tc, start, NowNs());
  return s;
}

Status Client::Get(const Slice& key, std::string* value) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeGetRequest(&req, next_id_++, key, tc);
  Frame resp;
  const uint64_t start = tc.traced ? NowNs() : 0;
  Status s = RoundTrip(Op::kGet, req, &resp, value);
  EmitClientSpan(options_.tracer, Op::kGet, tc, start, NowNs());
  return s;
}

Status Client::Delete(const Slice& key) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeDeleteRequest(&req, next_id_++, key, tc);
  Frame resp;
  const uint64_t start = tc.traced ? NowNs() : 0;
  Status s = RoundTrip(Op::kDelete, req, &resp, nullptr);
  EmitClientSpan(options_.tracer, Op::kDelete, tc, start, NowNs());
  return s;
}

Status Client::MultiPut(const std::vector<KVStore::BatchOp>& batch) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeMultiPutRequest(&req, next_id_++, batch, tc);
  Frame resp;
  const uint64_t start = tc.traced ? NowNs() : 0;
  Status s = RoundTrip(Op::kMultiPut, req, &resp, nullptr);
  EmitClientSpan(options_.tracer, Op::kMultiPut, tc, start, NowNs());
  return s;
}

Status Client::Scan(
    const Slice& start, uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeScanRequest(&req, next_id_++, start, limit, tc);
  Frame resp;
  std::string payload;
  const uint64_t t0 = tc.traced ? NowNs() : 0;
  Status s = RoundTrip(Op::kScan, req, &resp, &payload);
  EmitClientSpan(options_.tracer, Op::kScan, tc, t0, NowNs());
  if (!s.ok()) return s;
  return ParseScanPayload(payload, out);
}

Status Client::Stats(std::string* json) {
  std::string req;
  EncodeStatsRequest(&req, next_id_++);
  Frame resp;
  return RoundTrip(Op::kStats, req, &resp, json);
}

Status Client::SlowLog(uint32_t limit, std::string* json) {
  std::string req;
  EncodeSlowLogRequest(&req, next_id_++, limit);
  Frame resp;
  return RoundTrip(Op::kSlowLog, req, &resp, json);
}

Status Client::MetricsProm(std::string* text) {
  std::string req;
  EncodeMetricsPromRequest(&req, next_id_++);
  Frame resp;
  return RoundTrip(Op::kMetricsProm, req, &resp, text);
}

Status Client::Ping() {
  std::string req;
  EncodePingRequest(&req, next_id_++);
  Frame resp;
  return RoundTrip(Op::kPing, req, &resp, nullptr);
}

Status Client::FetchShardMap(ShardRouter* out) {
  std::string req;
  EncodeShardMapRequest(&req, next_id_++);
  Frame resp;
  std::string payload;
  Status s = RoundTrip(Op::kShardMap, req, &resp, &payload);
  if (!s.ok()) return s;
  return ShardRouter::Decode(payload, out);
}

// Snapshot API. -------------------------------------------------------

Status Client::CreateSnapshot(uint32_t ttl_ms, SnapshotResponse* resp) {
  std::string req;
  EncodeSnapshotRequest(&req, next_id_++, ttl_ms);
  Frame frame;
  std::string payload;
  Status s = RoundTrip(Op::kSnapshot, req, &frame, &payload);
  if (!s.ok()) return s;
  return ParseSnapshotPayload(payload, resp);
}

Status Client::ReleaseSnapshot(uint64_t snapshot_id) {
  std::string req;
  EncodeSnapshotReleaseRequest(&req, next_id_++, snapshot_id);
  Frame frame;
  return RoundTrip(Op::kSnapshotRelease, req, &frame, nullptr);
}

Status Client::GetAt(const Slice& key, uint64_t snapshot_id,
                     std::string* value) {
  SnapshotRef snap;
  snap.at_snapshot = true;
  snap.id = snapshot_id;
  std::string req;
  EncodeGetRequest(&req, next_id_++, key, TraceContext(), snap);
  Frame resp;
  return RoundTrip(Op::kGet, req, &resp, value);
}

Status Client::ScanAt(
    const Slice& start, uint32_t limit, uint64_t snapshot_id,
    std::vector<std::pair<std::string, std::string>>* out) {
  SnapshotRef snap;
  snap.at_snapshot = true;
  snap.id = snapshot_id;
  std::string req;
  EncodeScanRequest(&req, next_id_++, start, limit, TraceContext(), snap);
  Frame resp;
  std::string payload;
  Status s = RoundTrip(Op::kScan, req, &resp, &payload);
  if (!s.ok()) return s;
  return ParseScanPayload(payload, out);
}

// Replication API. ----------------------------------------------------

Status Client::ReplSubscribe(const ReplSubscribeRequest& request,
                             ReplSubscribeResponse* resp) {
  std::string req;
  EncodeReplSubscribeRequest(&req, next_id_++, request);
  Frame frame;
  std::string payload;
  Status s = RoundTrip(Op::kReplSubscribe, req, &frame, &payload);
  if (!s.ok()) return s;
  return ParseReplSubscribePayload(payload, resp);
}

Status Client::ReplFetch(const ReplBatchRequest& request,
                         ReplBatchResponse* resp) {
  std::string req;
  EncodeReplBatchRequest(&req, next_id_++, request);
  Frame frame;
  std::string payload;
  Status s = RoundTrip(Op::kReplBatch, req, &frame, &payload);
  if (!s.ok()) return s;
  return ParseReplBatchPayload(payload, resp);
}

Status Client::ReplAck(const ReplAckRequest& request) {
  std::string req;
  EncodeReplAckRequest(&req, next_id_++, request);
  Frame frame;
  return RoundTrip(Op::kReplAck, req, &frame, nullptr);
}

Status Client::ReplSnapshot(const ReplSnapshotRequest& request,
                            ReplSnapshotResponse* resp) {
  std::string req;
  EncodeReplSnapshotRequest(&req, next_id_++, request);
  Frame frame;
  std::string payload;
  Status s = RoundTrip(Op::kReplSnapshot, req, &frame, &payload);
  if (!s.ok()) return s;
  return ParseReplSnapshotPayload(payload, resp);
}

Status Client::Promote(uint32_t shard, uint64_t* new_epoch) {
  std::string req;
  EncodePromoteRequest(&req, next_id_++, shard);
  Frame frame;
  std::string payload;
  Status s = RoundTrip(Op::kPromote, req, &frame, &payload);
  if (!s.ok()) return s;
  return ParsePromotePayload(payload, new_epoch);
}

// Pipelined API. ------------------------------------------------------

uint64_t Client::Enqueue(Op op, std::string encoded,
                         const TraceContext& tc) {
  sendbuf_.append(encoded);
  const uint64_t id = next_id_ - 1;  // the id the encoder consumed
  PendingOp pending;
  pending.id = id;
  pending.op = op;
  pending.traced = tc.traced;
  pending.trace_id = tc.trace_id;
  outstanding_.push_back(pending);
  return id;
}

uint64_t Client::SubmitGet(const Slice& key) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeGetRequest(&req, next_id_++, key, tc);
  return Enqueue(Op::kGet, std::move(req), tc);
}

uint64_t Client::SubmitPut(const Slice& key, const Slice& value) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodePutRequest(&req, next_id_++, key, value, tc);
  return Enqueue(Op::kPut, std::move(req), tc);
}

uint64_t Client::SubmitDelete(const Slice& key) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeDeleteRequest(&req, next_id_++, key, tc);
  return Enqueue(Op::kDelete, std::move(req), tc);
}

uint64_t Client::SubmitMultiPut(
    const std::vector<KVStore::BatchOp>& batch) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeMultiPutRequest(&req, next_id_++, batch, tc);
  return Enqueue(Op::kMultiPut, std::move(req), tc);
}

uint64_t Client::SubmitScan(const Slice& start, uint32_t limit) {
  const TraceContext tc = NextTrace();
  std::string req;
  EncodeScanRequest(&req, next_id_++, start, limit, tc);
  return Enqueue(Op::kScan, std::move(req), tc);
}

uint64_t Client::SubmitScanAt(const Slice& start, uint32_t limit,
                              uint64_t snapshot_id) {
  SnapshotRef snap;
  snap.at_snapshot = true;
  snap.id = snapshot_id;
  std::string req;
  EncodeScanRequest(&req, next_id_++, start, limit, TraceContext(), snap);
  return Enqueue(Op::kScan, std::move(req));
}

uint64_t Client::SubmitPing() {
  std::string req;
  EncodePingRequest(&req, next_id_++);
  return Enqueue(Op::kPing, std::move(req));
}

Status Client::Flush() {
  if (fd_ < 0) return NotConnected();
  if (sendbuf_.empty()) return Status::OK();
  // Stamp the send time of every not-yet-sent traced request: the
  // client-observed latency window is flush → response, which excludes
  // local queueing in sendbuf_ (the sampled measurement should cover
  // network + server only).
  bool have_now = false;
  uint64_t now = 0;
  for (PendingOp& pending : outstanding_) {
    if (pending.traced && pending.start_ns == 0) {
      if (!have_now) {
        now = NowNs();
        have_now = true;
      }
      pending.start_ns = now;
    }
  }
  std::string buf;
  buf.swap(sendbuf_);
  return SendAll(buf.data(), buf.size());
}

Status Client::WaitAll(std::vector<Result>* results) {
  Status s = Flush();
  if (!s.ok()) return s;
  while (!outstanding_.empty()) {
    Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) {
      outstanding_.clear();
      return s;
    }
    if (!frame.response) {
      FailConnection();
      return Status::Corruption("protocol", "request frame from server");
    }
    // The server answers in request order; tolerate reordering anyway
    // by searching the outstanding window for the id.
    size_t idx = 0;
    bool found = false;
    for (size_t i = 0; i < outstanding_.size(); i++) {
      if (outstanding_[i].id == frame.request_id) {
        idx = i;
        found = true;
        break;
      }
    }
    if (!found) {
      FailConnection();
      return Status::Corruption("protocol", "response for unknown id");
    }
    Result result;
    result.id = frame.request_id;
    result.wire_code = frame.code;
    result.op = outstanding_[idx].op;
    if (frame.op != result.op) {
      FailConnection();
      return Status::Corruption("protocol", "response opcode mismatch");
    }
    if (frame.code != kOk) {
      result.status = StatusFromWire(frame.code, frame.payload);
    } else if (result.op == Op::kGet) {
      result.value = frame.payload.ToString();
    } else if (result.op == Op::kScan) {
      result.status = ParseScanPayload(frame.payload, &result.entries);
    } else if (result.op == Op::kStats) {
      result.value = frame.payload.ToString();
    }
    const PendingOp& pending = outstanding_[idx];
    if (pending.traced) {
      const uint64_t end = NowNs();
      result.traced = true;
      result.trace_id = pending.trace_id;
      result.server_ns = frame.traced ? frame.server_ns : 0;
      if (pending.start_ns != 0 && end > pending.start_ns) {
        result.client_ns = end - pending.start_ns;
      }
      EmitClientSpan(options_.tracer, result.op,
                     TraceContext{true, pending.trace_id, 0},
                     pending.start_ns, end);
    }
    outstanding_.erase(outstanding_.begin() + idx);
    results->push_back(std::move(result));
  }
  return Status::OK();
}

// ShardedClient. ------------------------------------------------------

namespace {

/// Splits an advertised "host:port" endpoint. Falls back to the
/// bootstrap address on anything unusable (empty, malformed, or a
/// wildcard bind address that is not routable from a client).
void ResolveEndpoint(const std::string& endpoint,
                     const std::string& bootstrap_host,
                     uint16_t bootstrap_port, std::string* host,
                     uint16_t* port) {
  *host = bootstrap_host;
  *port = bootstrap_port;
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return;
  }
  const std::string ep_host = endpoint.substr(0, colon);
  if (ep_host == "0.0.0.0") {
    return;
  }
  unsigned long ep_port = 0;
  for (size_t i = colon + 1; i < endpoint.size(); i++) {
    if (endpoint[i] < '0' || endpoint[i] > '9') return;
    ep_port = ep_port * 10 + static_cast<unsigned long>(endpoint[i] - '0');
    if (ep_port > 65535) return;
  }
  if (ep_port == 0) return;
  *host = ep_host;
  *port = static_cast<uint16_t>(ep_port);
}

}  // namespace

ShardedClient::ShardedClient(const ClientOptions& options)
    : options_(options) {}

Status ShardedClient::RequireConnected() const {
  if (conns_.empty()) return NotConnected();
  return Status::OK();
}

void ShardedClient::RememberEndpoint(const std::string& endpoint) {
  if (endpoint.empty()) return;
  for (const std::string& known : known_endpoints_) {
    if (known == endpoint) return;
  }
  known_endpoints_.push_back(endpoint);
}

void ShardedClient::AddSeedEndpoint(const std::string& endpoint) {
  std::string host;
  uint16_t port = 0;
  ResolveEndpoint(endpoint, "", 0, &host, &port);
  if (host.empty() || port == 0) return;
  RememberEndpoint(host + ":" + std::to_string(port));
}

void ShardedClient::LearnEndpoints(const ShardMap& map,
                                   const std::string& source) {
  std::string src_host;
  uint16_t src_port = 0;
  ResolveEndpoint(source, "", 0, &src_host, &src_port);
  for (const std::string& ep : map.endpoints) {
    std::string host = src_host;
    uint16_t port = src_port;
    ResolveEndpoint(ep, src_host, src_port, &host, &port);
    if (!host.empty() && port != 0) {
      RememberEndpoint(host + ":" + std::to_string(port));
    }
  }
  for (const auto& shard_replicas : map.replicas) {
    for (const std::string& ep : shard_replicas) {
      std::string host;
      uint16_t port = 0;
      ResolveEndpoint(ep, "", 0, &host, &port);
      if (!host.empty() && port != 0) {
        RememberEndpoint(host + ":" + std::to_string(port));
      }
    }
  }
}

Status ShardedClient::Connect(const std::string& host, uint16_t port) {
  const std::vector<std::string> seeds = known_endpoints_;
  Close();
  known_endpoints_ = seeds;  // AddSeedEndpoint survives reconnects
  bootstrap_host_ = host;
  bootstrap_port_ = port;
  RememberEndpoint(host + ":" + std::to_string(port));
  // Bootstrap: one throwaway connection fetches the ring.
  {
    Client bootstrap(options_);
    Status s = bootstrap.Connect(host, port);
    if (!s.ok()) return s;
    s = bootstrap.FetchShardMap(&router_);
    if (!s.ok()) return s;
    LearnEndpoints(router_.map(),
                   host + ":" + std::to_string(port));
  }
  const std::vector<std::string>& endpoints = router_.map().endpoints;
  const std::vector<uint8_t>& primaries = router_.map().primaries;
  // When the bootstrap server is not primary for some shard (it is a
  // replication follower), polling the full endpoint set finds the
  // primaries; otherwise connect straight to the advertised endpoints.
  bool bootstrap_serves_all = true;
  for (uint8_t p : primaries) {
    if (p == 0) bootstrap_serves_all = false;
  }
  if (!bootstrap_serves_all) {
    Status s = RefreshRouting();
    if (!s.ok()) Close();
    return s;
  }
  conns_.reserve(router_.num_shards());
  for (uint32_t shard = 0; shard < router_.num_shards(); shard++) {
    std::string shard_host;
    uint16_t shard_port = 0;
    ResolveEndpoint(shard < endpoints.size() ? endpoints[shard] : "",
                    host, port, &shard_host, &shard_port);
    // Each shard connection samples independently; perturb the seed so
    // two connections never derive the same trace id for the same
    // request ordinal.
    ClientOptions conn_options = options_;
    if (conn_options.trace_sample_every > 0) {
      conn_options.trace_seed =
          options_.trace_seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1));
    }
    auto conn = std::make_unique<Client>(conn_options);
    Status s = conn->Connect(shard_host, shard_port);
    if (!s.ok()) {
      Close();
      return s;
    }
    conns_.push_back(std::move(conn));
    resolved_endpoints_.push_back(shard_host + ":" +
                                  std::to_string(shard_port));
  }
  return Status::OK();
}

Status ShardedClient::RefreshRouting() {
  // Poll every known endpoint for its current view; dead ones are
  // skipped. Endpoints learned from fetched maps extend the poll list
  // (but are only contacted on the next refresh).
  struct View {
    ShardRouter router;
    std::string endpoint;
  };
  std::vector<View> views;
  const std::vector<std::string> candidates = known_endpoints_;
  for (const std::string& endpoint : candidates) {
    std::string host;
    uint16_t port = 0;
    ResolveEndpoint(endpoint, "", 0, &host, &port);
    if (host.empty() || port == 0) continue;
    Client probe(options_);
    if (!probe.Connect(host, port).ok()) continue;
    View view;
    if (!probe.FetchShardMap(&view.router).ok()) continue;
    view.endpoint = endpoint;
    LearnEndpoints(view.router.map(), endpoint);
    views.push_back(std::move(view));
  }
  if (views.empty()) {
    return Status::IOError("shard map refresh",
                           "no reachable endpoint");
  }
  const uint32_t num_shards = views[0].router.num_shards();
  // Per shard, the server claiming primary under the highest epoch
  // wins; with no primary claim, fall back to the highest-epoch view.
  std::vector<std::string> chosen(num_shards);
  for (uint32_t shard = 0; shard < num_shards; shard++) {
    const View* best_primary = nullptr;
    uint64_t best_primary_epoch = 0;
    const View* best_any = nullptr;
    uint64_t best_any_epoch = 0;
    for (const View& view : views) {
      if (view.router.num_shards() != num_shards) continue;
      const ShardMap& map = view.router.map();
      const uint64_t epoch =
          shard < map.epochs.size() ? map.epochs[shard] : 0;
      const bool primary =
          map.primaries.empty() || map.primaries[shard] != 0;
      if (primary &&
          (best_primary == nullptr || epoch > best_primary_epoch)) {
        best_primary = &view;
        best_primary_epoch = epoch;
      }
      if (best_any == nullptr || epoch > best_any_epoch) {
        best_any = &view;
        best_any_epoch = epoch;
      }
    }
    const View* pick = best_primary != nullptr ? best_primary : best_any;
    if (pick == nullptr) {
      return Status::IOError("shard map refresh", "no view for shard");
    }
    chosen[shard] = pick->endpoint;
  }
  // Swap in the refreshed routing only once every shard reconnected.
  std::vector<std::unique_ptr<Client>> conns;
  std::vector<std::string> endpoints;
  conns.reserve(num_shards);
  for (uint32_t shard = 0; shard < num_shards; shard++) {
    std::string host;
    uint16_t port = 0;
    ResolveEndpoint(chosen[shard], bootstrap_host_, bootstrap_port_,
                    &host, &port);
    ClientOptions conn_options = options_;
    if (conn_options.trace_sample_every > 0) {
      conn_options.trace_seed =
          options_.trace_seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1));
    }
    auto conn = std::make_unique<Client>(conn_options);
    Status s = conn->Connect(host, port);
    if (!s.ok()) return s;
    conns.push_back(std::move(conn));
    endpoints.push_back(host + ":" + std::to_string(port));
  }
  router_ = std::move(views[0].router);
  conns_ = std::move(conns);
  resolved_endpoints_ = std::move(endpoints);
  return Status::OK();
}

void ShardedClient::Close() {
  conns_.clear();
  resolved_endpoints_.clear();
  known_endpoints_.clear();
  router_ = ShardRouter();
  bootstrap_host_.clear();
  bootstrap_port_ = 0;
}

void ShardedClient::Backoff(uint32_t attempt) {
  uint64_t ms = options_.retry_backoff_base_ms;
  for (uint32_t i = 0; i < attempt && ms < options_.retry_backoff_max_ms;
       i++) {
    ms *= 2;
  }
  ms = std::min<uint64_t>(ms, options_.retry_backoff_max_ms);
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

bool ShardedClient::ShouldFailover(uint32_t shard,
                                   const Status& s) const {
  if (s.ok() || shard >= conns_.size()) return false;
  // Transport loss (the conn closed itself) — a replica may serve the
  // shard now; kNotPrimary — the map moved under us. Anything else
  // (NotFound, Busy backpressure, validation) is the caller's to see.
  if (!conns_[shard]->connected()) return true;
  return conns_[shard]->last_wire_code() == kNotPrimary;
}

Status ShardedClient::RetryShardOp(
    uint32_t shard, const std::function<Status(Client*)>& op) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  s = op(conns_[shard].get());
  for (uint32_t attempt = 0;
       attempt < options_.max_retries && ShouldFailover(shard, s);
       attempt++) {
    Backoff(attempt);
    if (!RefreshRouting().ok()) continue;  // endpoints may come back
    failovers_++;
    s = op(conns_[shard].get());
  }
  return s;
}

Status ShardedClient::Put(const Slice& key, const Slice& value) {
  return RetryShardOp(
      router_.ShardOf(key),
      [&](Client* conn) { return conn->Put(key, value); });
}

Status ShardedClient::Get(const Slice& key, std::string* value) {
  return RetryShardOp(
      router_.ShardOf(key),
      [&](Client* conn) { return conn->Get(key, value); });
}

Status ShardedClient::Delete(const Slice& key) {
  return RetryShardOp(router_.ShardOf(key),
                      [&](Client* conn) { return conn->Delete(key); });
}

Status ShardedClient::MultiPut(
    const std::vector<KVStore::BatchOp>& batch) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  if (conns_.size() == 1) {
    return RetryShardOp(
        0, [&](Client* conn) { return conn->MultiPut(batch); });
  }
  std::vector<std::vector<KVStore::BatchOp>> split(conns_.size());
  for (const KVStore::BatchOp& op : batch) {
    split[router_.ShardOf(op.key)].push_back(op);
  }
  Status first_error;
  for (uint32_t shard = 0; shard < split.size(); shard++) {
    if (split[shard].empty()) continue;
    Status st = RetryShardOp(shard, [&](Client* conn) {
      return conn->MultiPut(split[shard]);
    });
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedClient::Scan(
    const Slice& start, uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  bool retriable = false;
  s = ScanAttempt(start, limit, out, &retriable);
  for (uint32_t attempt = 0;
       attempt < options_.max_retries && !s.ok() && retriable;
       attempt++) {
    Backoff(attempt);
    if (!RefreshRouting().ok()) continue;
    failovers_++;
    s = ScanAttempt(start, limit, out, &retriable);
  }
  return s;
}

Status ShardedClient::ScanAttempt(
    const Slice& start, uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out,
    bool* retriable) {
  *retriable = false;
  // A server merges across every shard it hosts, so asking two conns
  // that resolve to the same server would duplicate the result. Fan
  // out to one representative connection per distinct endpoint; each
  // may own up to `limit` of the smallest keys, so all are asked for
  // the full limit and the merge trims.
  std::vector<uint32_t> reps;
  for (uint32_t shard = 0; shard < conns_.size(); shard++) {
    bool seen = false;
    for (uint32_t r : reps) {
      if (resolved_endpoints_[r] == resolved_endpoints_[shard]) {
        seen = true;
        break;
      }
    }
    if (!seen) reps.push_back(shard);
  }
  if (reps.size() == 1) {
    Status s = conns_[reps[0]]->Scan(start, limit, out);
    if (!s.ok()) *retriable = ShouldFailover(reps[0], s);
    return s;
  }
  for (uint32_t r : reps) {
    conns_[r]->SubmitScan(start, limit);
    Status st = conns_[r]->Flush();
    if (!st.ok()) {
      *retriable = !conns_[r]->connected();
      return st;
    }
  }
  std::vector<std::vector<std::pair<std::string, std::string>>>
      per_server(reps.size());
  for (size_t i = 0; i < reps.size(); i++) {
    std::vector<Client::Result> results;
    Status st = conns_[reps[i]]->WaitAll(&results);
    if (!st.ok()) {
      *retriable = !conns_[reps[i]]->connected();
      return st;
    }
    if (results.size() != 1) {
      return Status::Corruption("protocol", "scan fan-out mismatch");
    }
    if (!results[0].status.ok()) {
      *retriable = results[0].wire_code == kNotPrimary;
      return results[0].status;
    }
    per_server[i] = std::move(results[0].entries);
  }
  MergeShardScans(std::move(per_server), limit, out);
  return Status::OK();
}

// Snapshot API. -------------------------------------------------------

bool ShardedClient::SnapshotIdFor(const ShardedSnapshot& snap,
                                  const std::string& endpoint,
                                  uint64_t* id) {
  for (const auto& [ep, server_id] : snap.server_ids) {
    if (ep == endpoint) {
      *id = server_id;
      return true;
    }
  }
  return false;
}

Status ShardedClient::CreateSnapshot(uint32_t ttl_ms,
                                     ShardedSnapshot* out) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  out->server_ids.clear();
  out->shard_seqs.assign(conns_.size(), 0);
  // One SNAPSHOT per distinct server endpoint: a server pins every
  // shard it hosts under one id and reports their sequences.
  for (uint32_t shard = 0; shard < conns_.size(); shard++) {
    uint64_t ignored;
    if (SnapshotIdFor(*out, resolved_endpoints_[shard], &ignored)) {
      continue;  // this server is already pinned
    }
    SnapshotResponse resp;
    s = conns_[shard]->CreateSnapshot(ttl_ms, &resp);
    if (!s.ok()) {
      ReleaseSnapshot(*out);  // best-effort unwind of partial pins
      out->server_ids.clear();
      return s;
    }
    out->server_ids.emplace_back(resolved_endpoints_[shard],
                                 resp.snapshot_id);
    // Adopt the pinned sequence for every shard this server serves.
    for (uint32_t other = 0; other < conns_.size(); other++) {
      if (resolved_endpoints_[other] == resolved_endpoints_[shard] &&
          other < resp.shard_seqs.size()) {
        out->shard_seqs[other] = resp.shard_seqs[other];
      }
    }
  }
  return Status::OK();
}

Status ShardedClient::ReleaseSnapshot(const ShardedSnapshot& snap) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  Status first_error;
  for (const auto& [endpoint, id] : snap.server_ids) {
    // Any connection resolved to that server can carry the release.
    Client* conn = nullptr;
    for (uint32_t shard = 0; shard < conns_.size(); shard++) {
      if (resolved_endpoints_[shard] == endpoint) {
        conn = conns_[shard].get();
        break;
      }
    }
    if (conn == nullptr) {
      if (first_error.ok()) {
        first_error = Status::NotFound("snapshot endpoint unroutable",
                                       endpoint);
      }
      continue;
    }
    Status st = conn->ReleaseSnapshot(id);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedClient::GetAt(const Slice& key, const ShardedSnapshot& snap,
                            std::string* value) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  const uint32_t shard = router_.ShardOf(key);
  uint64_t id = 0;
  if (!SnapshotIdFor(snap, resolved_endpoints_[shard], &id)) {
    // Routing moved since the pin (failover reconnected the shard to a
    // server that holds no pin for this snapshot); the caller re-pins.
    return Status::NotFound("snapshot_unknown",
                            "shard routed away from its pinned server");
  }
  return conns_[shard]->GetAt(key, id, value);
}

Status ShardedClient::ScanAt(
    const Slice& start, uint32_t limit, const ShardedSnapshot& snap,
    std::vector<std::pair<std::string, std::string>>* out) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  // Same per-distinct-endpoint fan-out as ScanAttempt, each with the
  // server's own pin id — no retry: a refresh could route a shard to a
  // server without the pin, silently breaking the cut.
  std::vector<uint32_t> reps;
  for (uint32_t shard = 0; shard < conns_.size(); shard++) {
    bool seen = false;
    for (uint32_t r : reps) {
      if (resolved_endpoints_[r] == resolved_endpoints_[shard]) {
        seen = true;
        break;
      }
    }
    if (!seen) reps.push_back(shard);
  }
  std::vector<uint64_t> rep_ids(reps.size(), 0);
  for (size_t i = 0; i < reps.size(); i++) {
    if (!SnapshotIdFor(snap, resolved_endpoints_[reps[i]], &rep_ids[i])) {
      return Status::NotFound("snapshot_unknown",
                              "shard routed away from its pinned server");
    }
  }
  if (reps.size() == 1) {
    return conns_[reps[0]]->ScanAt(start, limit, rep_ids[0], out);
  }
  for (size_t i = 0; i < reps.size(); i++) {
    conns_[reps[i]]->SubmitScanAt(start, limit, rep_ids[i]);
    Status st = conns_[reps[i]]->Flush();
    if (!st.ok()) return st;
  }
  std::vector<std::vector<std::pair<std::string, std::string>>>
      per_server(reps.size());
  for (size_t i = 0; i < reps.size(); i++) {
    std::vector<Client::Result> results;
    Status st = conns_[reps[i]]->WaitAll(&results);
    if (!st.ok()) return st;
    if (results.size() != 1) {
      return Status::Corruption("protocol", "scan fan-out mismatch");
    }
    if (!results[0].status.ok()) return results[0].status;
    per_server[i] = std::move(results[0].entries);
  }
  MergeShardScans(std::move(per_server), limit, out);
  return Status::OK();
}

Status ShardedClient::Stats(std::string* json) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  return conns_[0]->Stats(json);
}

Status ShardedClient::SlowLog(uint32_t limit, std::string* json) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  return conns_[0]->SlowLog(limit, json);
}

Status ShardedClient::MetricsProm(std::string* text) {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  return conns_[0]->MetricsProm(text);
}

Status ShardedClient::Ping() {
  Status s = RequireConnected();
  if (!s.ok()) return s;
  for (auto& conn : conns_) {
    Status st = conn->Ping();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace net
}  // namespace cachekv
