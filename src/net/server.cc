#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define CACHEKV_NET_EPOLL 1
#endif

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "core/db.h"
#include "fault/fail_point.h"
#include "obs/prom.h"
#include "obs/trace.h"
#include "repl/replication.h"
#include "util/json.h"

namespace cachekv {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(what, std::strerror(errno));
}

bool NetTrace() {
  static const bool on = ::getenv("CACHEKV_NET_TRACE") != nullptr;
  return on;
}

long TraceMs() {
  return (long)(std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count() %
                1000000);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

void DrainPipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

void WakeByte(int fd) {
  char b = 1;
  ssize_t ignored = ::write(fd, &b, 1);
  (void)ignored;
}

/// Span histogram name for one op's service latency (string literals:
/// both the registry and the tracer only store the pointer).
const char* OpHistogramName(Op op) {
  switch (op) {
    case Op::kGet: return "net.op.get";
    case Op::kPut: return "net.op.put";
    case Op::kDelete: return "net.op.del";
    case Op::kMultiPut: return "net.op.multiput";
    case Op::kScan: return "net.op.scan";
    case Op::kStats: return "net.op.stats";
    case Op::kPing: return "net.op.ping";
    case Op::kShardMap: return "net.op.shardmap";
    case Op::kSlowLog: return "net.op.slowlog";
    case Op::kMetricsProm: return "net.op.metricsprom";
    case Op::kReplSubscribe: return "net.op.replsubscribe";
    case Op::kReplBatch: return "net.op.replbatch";
    case Op::kReplAck: return "net.op.replack";
    case Op::kReplSnapshot: return "net.op.replsnapshot";
    case Op::kPromote: return "net.op.promote";
    case Op::kSnapshot: return "net.op.snapshot";
    case Op::kSnapshotRelease: return "net.op.snapshotrelease";
  }
  return "net.op.other";
}

const char* OpTraceName(Op op) {
  switch (op) {
    case Op::kGet: return "net.get";
    case Op::kPut: return "net.put";
    case Op::kDelete: return "net.del";
    case Op::kMultiPut: return "net.multiput";
    case Op::kScan: return "net.scan";
    case Op::kStats: return "net.stats";
    case Op::kPing: return "net.ping";
    case Op::kShardMap: return "net.shardmap";
    case Op::kSlowLog: return "net.slowlog";
    case Op::kMetricsProm: return "net.metricsprom";
    case Op::kReplSubscribe: return "net.replsubscribe";
    case Op::kReplBatch: return "net.replbatch";
    case Op::kReplAck: return "net.replack";
    case Op::kReplSnapshot: return "net.replsnapshot";
    case Op::kPromote: return "net.promote";
    case Op::kSnapshot: return "net.snapshot";
    case Op::kSnapshotRelease: return "net.snapshotrelease";
  }
  return "net.other";
}

}  // namespace

/// Per-request stage clock feeding both halves of the telemetry plane:
/// each Stage() call closes the window since the previous mark, emitting
/// a tracer span tagged with the trace id (traced requests) and
/// accumulating the stage into a SlowLogEntry. Finish() — called from
/// the destructor — records the entry when the request exceeded the
/// slow threshold. Inert (no clock reads) when the request is neither
/// traced nor eligible for the slow log.
class Server::RequestTimeline {
 public:
  RequestTimeline(Server* server, const Frame& frame,
                  uint32_t queue_depth)
      : server_(server),
        tracer_(server->primary()->trace()),
        traced_(frame.traced),
        trace_id_(frame.trace_id) {
    slow_ns_ = server_->slow_log_ != nullptr
                   ? static_cast<uint64_t>(server_->options_.slow_request_us) *
                         1000
                   : 0;
    active_ = traced_ || slow_ns_ > 0;
    if (!active_) return;
    start_ns_ = last_ns_ = tracer_->NowNs();
    entry_.trace_id = traced_ ? trace_id_ : 0;
    entry_.op = static_cast<uint8_t>(frame.op);
    entry_.queue_depth = queue_depth;
  }

  ~RequestTimeline() { Finish(); }

  RequestTimeline(const RequestTimeline&) = delete;
  RequestTimeline& operator=(const RequestTimeline&) = delete;

  /// Closes the stage window [previous mark, now) under `name` (a
  /// string literal).
  void Stage(const char* name) {
    if (!active_) return;
    const uint64_t now = tracer_->NowNs();
    if (traced_) {
      tracer_->Complete(name, last_ns_, now - last_ns_, "trace",
                        trace_id_);
    }
    entry_.AddStage(name, (now - last_ns_) / 1000);
    last_ns_ = now;
  }

  void SetShard(uint32_t shard) { entry_.shard = shard; }
  void SetKey(const Slice& key) {
    if (active_) entry_.SetKey(key.data(), key.size());
  }

  bool traced() const { return traced_; }

  /// The trace context for the response frame: echoes the request's id
  /// and reports the service time measured so far.
  TraceContext ResponseContext() const {
    TraceContext tc;
    if (traced_) {
      tc.traced = true;
      tc.trace_id = trace_id_;
      tc.server_ns = tracer_->NowNs() - start_ns_;
    }
    return tc;
  }

  void Finish() {
    if (!active_ || finished_) return;
    finished_ = true;
    if (slow_ns_ == 0) return;
    const uint64_t now = tracer_->NowNs();
    const uint64_t total = now - start_ns_;
    if (total < slow_ns_) return;
    entry_.ts_ns = now;
    entry_.total_us = total / 1000;
    obs::SlowLog* log = server_->slow_log_.get();
    log->Record(entry_);
    server_->slowlog_captured_->Increment();
    if (log->Captured() > log->capacity()) {
      server_->slowlog_dropped_->Increment();
    }
  }

 private:
  Server* server_;
  obs::Tracer* tracer_;
  bool traced_;
  uint64_t trace_id_;
  uint64_t slow_ns_ = 0;
  bool active_ = false;
  bool finished_ = false;
  uint64_t start_ns_ = 0;
  uint64_t last_ns_ = 0;
  obs::SlowLogEntry entry_;
};

/// One wire-pinned snapshot: the DB::GetSnapshot handle pinned on each
/// shard, the pinned sequences (the wire-visible cut), and the TTL
/// deadline. Destruction — last shared_ptr dropped, after the registry
/// entry is erased and any in-flight at-snapshot read finished —
/// releases every pin.
struct Server::SnapshotEntry {
  SnapshotEntry(std::vector<DB*>* dbs) : dbs(dbs) {}
  ~SnapshotEntry() {
    for (size_t i = 0; i < handles.size(); i++) {
      (*dbs)[i]->ReleaseSnapshot(handles[i]);
    }
  }
  SnapshotEntry(const SnapshotEntry&) = delete;
  SnapshotEntry& operator=(const SnapshotEntry&) = delete;

  std::vector<DB*>* dbs;
  std::vector<const DB::Snapshot*> handles;  // one per shard
  std::vector<uint64_t> seqs;                // handles[i]->sequence()
  std::chrono::steady_clock::time_point deadline;
};

/// One TCP connection; owned by exactly one worker thread.
struct Server::Conn {
  explicit Conn(int fd_in, size_t max_frame)
      : fd(fd_in), decoder(max_frame) {}

  int fd;
  FrameDecoder decoder;
  std::string out;
  size_t out_pos = 0;
  /// The poller currently watches for writability (out backlog).
  bool want_write = false;
  /// With replication on, every fresh connection starts on the repl
  /// worker and is classified by its first frame's opcode before any
  /// frame is handled: repl streams stay, everything else migrates to
  /// a client worker. The repl worker never blocks in WaitCommitAcked,
  /// so a follower's subscribe is answered promptly even when every
  /// client worker is wedged waiting for that follower's acks
  /// (docs/REPLICATION.md "Threading").
  bool classified = false;
  /// The connection speaks the repl stream ops and belongs on the repl
  /// worker. Also flipped mid-stream when a classified client
  /// connection later sends a repl op.
  bool is_repl = false;
};

struct Server::Worker {
  int index = 0;
#if CACHEKV_NET_EPOLL
  int epfd = -1;
#endif
  int wake_rd = -1;
  int wake_wr = -1;
  std::mutex mu;
  std::deque<int> pending_fds;  // accepted, not yet adopted
  /// Live connections migrated here from another worker (replication
  /// connections moving to the repl worker), decoder/out state intact.
  std::deque<std::unique_ptr<Conn>> pending_conns;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::thread thread;
};

Server::Server(DB* db, const ServerOptions& options)
    : Server(std::vector<DB*>{db}, ShardRouter(), options) {}

Server::Server(std::vector<DB*> shards, const ShardRouter& router,
               const ServerOptions& options)
    : dbs_(std::move(shards)),
      router_(router),
      options_(options),
      repl_(options.repl) {
  assert(!dbs_.empty());
  assert(dbs_.size() == router_.num_shards());
  assert(repl_ == nullptr || repl_->num_shards() == dbs_.size());

  obs::MetricsRegistry* reg = primary()->metrics();
  accepts_ = reg->GetCounter("net.accepts");
  requests_ = reg->GetCounter("net.requests");
  bytes_in_ = reg->GetCounter("net.bytes_in");
  bytes_out_ = reg->GetCounter("net.bytes_out");
  decode_errors_ = reg->GetCounter("net.decode_errors");
  batched_writes_ = reg->GetCounter("net.batched_writes");
  batched_ops_ = reg->GetCounter("net.batched_ops");
  backpressure_sheds_ = reg->GetCounter("net.backpressure_sheds");
  slowlog_captured_ = reg->GetCounter("net.slowlog.captured");
  slowlog_dropped_ = reg->GetCounter("net.slowlog.dropped");
  slowlog_queries_ = reg->GetCounter("net.slowlog.queries");
  traced_requests_ = reg->GetCounter("net.traced_requests");
  snap_expired_ = reg->GetCounter("snap.expired");
  connections_ = reg->GetGauge("net.connections");
  snap_active_ = reg->GetGauge("snap.active");
  if (options_.slow_log_capacity > 0 && options_.slow_request_us > 0) {
    slow_log_ =
        std::make_unique<obs::SlowLog>(options_.slow_log_capacity);
  }
  shard_requests_.reserve(dbs_.size());
  for (DB* db : dbs_) {
    shard_requests_.push_back(
        db->metrics()->GetCounter("net.shard.requests"));
  }

  if (options_.hot_key_cache_bytes > 0) {
    cache::HotKeyCacheOptions cache_opts;
    cache_opts.capacity_bytes = options_.hot_key_cache_bytes;
    cache_opts.admit_threshold = options_.hot_key_cache_admit;
    caches_.reserve(dbs_.size());
    for (DB* db : dbs_) {
      caches_.push_back(std::make_unique<cache::HotKeyCache>(
          cache_opts, db->metrics()));
    }
  }

  if (options_.max_batch_bytes != 0) {
    batch_bytes_cap_ = options_.max_batch_bytes;
  } else {
    // Every op of a run could land on one shard, so the derived cap is
    // the smallest shard's batch capacity.
    for (DB* db : dbs_) {
      const size_t cap = db->ApproxMultiPutCapacityBytes();
      if (batch_bytes_cap_ == 0 || cap < batch_bytes_cap_) {
        batch_bytes_cap_ = cap;
      }
    }
  }
}

Server::~Server() { Stop(); }

DB* Server::Route(const Slice& key, uint32_t* shard_out) {
  const uint32_t shard =
      dbs_.size() == 1 ? 0 : router_.ShardOf(key);
  shard_requests_[shard]->Increment();
  if (shard_out != nullptr) {
    *shard_out = shard;
  }
  return dbs_[shard];
}

Server::Worker* Server::repl_worker() const {
  if (repl_ == nullptr || workers_.empty()) return nullptr;
  return workers_.back().get();
}

bool Server::ShardNotPrimary(uint32_t shard) const {
  return repl_ != nullptr && !repl_->IsPrimary(shard);
}

void Server::BuildShardMapImage(std::string* out) {
  // Epochs and roles move at runtime (promotion, fencing), so a
  // replicated server encodes the map fresh per request instead of
  // serving the Start()-time image.
  std::vector<uint64_t> epochs;
  std::vector<uint8_t> primaries;
  std::vector<std::vector<std::string>> replicas;
  repl_->FillShardMapState(&epochs, &primaries, &replicas);
  ShardRouter router = router_;
  Status s = router.SetReplication(std::move(epochs), std::move(primaries),
                                   std::move(replicas));
  out->clear();
  if (s.ok()) {
    router.Encode(out);
  } else {
    *out = shard_map_image_;  // unreachable unless the hub misbehaves
  }
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host", options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);

  // The SHARDMAP image can only be finalized now that the port is
  // known: every shard of this process is served at the bound address.
  {
    std::vector<std::string> endpoints(
        router_.num_shards(),
        options_.host + ":" + std::to_string(port_));
    router_.SetEndpoints(std::move(endpoints));
    shard_map_image_.clear();
    router_.Encode(&shard_map_image_);
  }

  Status s = SetNonBlocking(listen_fd_);
  if (!s.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::pipe(accept_wake_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("pipe");
  }
  SetNonBlocking(accept_wake_[0]);

  int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  // With replication the last worker is reserved for repl connections,
  // so at least one other worker must exist to serve clients.
  if (repl_ != nullptr && num_workers < 2) {
    num_workers = 2;
  }
  workers_.clear();
  for (int i = 0; i < num_workers; i++) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      s = Errno("pipe");
      break;
    }
    SetNonBlocking(pipe_fds[0]);
    w->wake_rd = pipe_fds[0];
    w->wake_wr = pipe_fds[1];
#if CACHEKV_NET_EPOLL
    w->epfd = ::epoll_create1(0);
    if (w->epfd < 0) {
      s = Errno("epoll_create1");
      ::close(w->wake_rd);
      ::close(w->wake_wr);
      break;
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_rd;
    ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->wake_rd, &ev);
#endif
    workers_.push_back(std::move(w));
  }
  if (!s.ok()) {
    for (auto& w : workers_) {
#if CACHEKV_NET_EPOLL
      if (w->epfd >= 0) ::close(w->epfd);
#endif
      ::close(w->wake_rd);
      ::close(w->wake_wr);
    }
    workers_.clear();
    ::close(accept_wake_[0]);
    ::close(accept_wake_[1]);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread(&Server::WorkerLoop, this, w.get());
  }
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  snapshot_sweeper_ = std::thread(&Server::SnapshotSweeperLoop, this);
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  snapshot_sweeper_cv_.notify_all();
  if (snapshot_sweeper_.joinable()) {
    snapshot_sweeper_.join();
  }
  WakeByte(accept_wake_[1]);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  for (auto& w : workers_) {
    WakeByte(w->wake_wr);
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    // The worker closed its connections on exit; release the plumbing.
    for (auto& [fd, conn] : w->conns) {
      (void)conn;
      ::close(fd);
      connections_->Add(-1);
    }
    w->conns.clear();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      for (int fd : w->pending_fds) {
        ::close(fd);
      }
      w->pending_fds.clear();
      for (auto& conn : w->pending_conns) {
        ::close(conn->fd);
        connections_->Add(-1);
      }
      w->pending_conns.clear();
    }
#if CACHEKV_NET_EPOLL
    if (w->epfd >= 0) ::close(w->epfd);
#endif
    ::close(w->wake_rd);
    ::close(w->wake_wr);
  }
  workers_.clear();
  ::close(accept_wake_[0]);
  ::close(accept_wake_[1]);
  accept_wake_[0] = accept_wake_[1] = -1;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Every worker is joined, so no at-snapshot read holds an entry;
  // drop the remaining wire pins before the caller destroys the DBs.
  {
    std::lock_guard<std::mutex> lock(snapshots_mu_);
    for (const auto& [id, entry] : snapshots_) {
      (void)id;
      (void)entry;
      snap_active_->Add(-1);
    }
    snapshots_.clear();
  }
}

std::shared_ptr<Server::SnapshotEntry> Server::FindSnapshot(uint64_t id) {
  std::lock_guard<std::mutex> lock(snapshots_mu_);
  auto it = snapshots_.find(id);
  return it == snapshots_.end() ? nullptr : it->second;
}

void Server::SweepSnapshots() {
  const auto now = std::chrono::steady_clock::now();
  // Erase under the lock, destroy (release the DB pins) outside it:
  // ReleaseSnapshot takes the store's write fence and must not run
  // under the registry mutex a request handler is about to take.
  std::vector<std::shared_ptr<SnapshotEntry>> expired;
  {
    std::lock_guard<std::mutex> lock(snapshots_mu_);
    for (auto it = snapshots_.begin(); it != snapshots_.end();) {
      if (it->second->deadline <= now) {
        expired.push_back(std::move(it->second));
        it = snapshots_.erase(it);
        snap_expired_->Increment();
        snap_active_->Add(-1);
      } else {
        ++it;
      }
    }
  }
  expired.clear();
}

void Server::SnapshotSweeperLoop() {
  primary()->trace()->SetThreadName("net-snap-sweeper");
  std::unique_lock<std::mutex> lock(snapshots_mu_);
  while (running_.load(std::memory_order_acquire)) {
    snapshot_sweeper_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (!running_.load(std::memory_order_acquire)) break;
    lock.unlock();
    SweepSnapshots();
    lock.lock();
  }
}

void Server::AcceptLoop() {
  primary()->trace()->SetThreadName("net-accept");
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = accept_wake_[0];
  fds[1].events = POLLIN;
  while (running_.load(std::memory_order_acquire)) {
    fds[0].revents = fds[1].revents = 0;
    int n = ::poll(fds, 2, 500);
    if (n < 0 && errno != EINTR) {
      break;
    }
    if (fds[1].revents != 0) {
      DrainPipe(accept_wake_[0]);
      continue;  // re-check running_
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    while (true) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        break;  // EAGAIN or transient error; poll again
      }
      if (fault::AnyActive() && !fault::Inject("net.accept").ok()) {
        // Injected accept failure: the connection is dropped before it
        // ever reaches a worker; the server itself stays healthy.
        ::close(fd);
        continue;
      }
      SetNonBlocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      accepts_->Increment();
      connections_->Add(1);
      primary()->trace()->Instant("net.accept");
      // With replication on, every fresh connection starts on the repl
      // worker (last), which classifies it by its first frame and
      // migrates client connections out (see Conn::classified). Client
      // workers can block seconds at a time in WaitCommitAcked, so a
      // follower (re)subscribing must never depend on one of them
      // noticing the bytes.
      Worker* w;
      if (repl_ != nullptr) {
        w = workers_.back().get();
      } else {
        w = workers_[next_worker_.fetch_add(1,
                                            std::memory_order_relaxed) %
                     workers_.size()]
                .get();
      }
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->pending_fds.push_back(fd);
      }
      WakeByte(w->wake_wr);
    }
  }
}

void Server::CloseConn(Worker* worker, int fd) {
#if CACHEKV_NET_EPOLL
  ::epoll_ctl(worker->epfd, EPOLL_CTL_DEL, fd, nullptr);
#endif
  if (NetTrace())
    fprintf(stderr, "[%ld srv %d w%d] close fd=%d\n", TraceMs(), (int)port_,
            worker->index, fd);
  worker->conns.erase(fd);
  ::close(fd);
  connections_->Add(-1);
  primary()->trace()->Instant("net.close");
}

void Server::WorkerLoop(Worker* worker) {
  char name[32];
  std::snprintf(name, sizeof(name), "net-worker-%d", worker->index);
  primary()->trace()->SetThreadName(name);

  char rbuf[64 << 10];
  while (running_.load(std::memory_order_acquire)) {
    // Collect the fds that are ready this round.
    std::vector<std::pair<int, uint32_t>> ready;  // fd, POLLIN|POLLOUT
    bool woke = false;
#if CACHEKV_NET_EPOLL
    epoll_event events[64];
    int n = ::epoll_wait(worker->epfd, events, 64, 500);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; i++) {
      if (events[i].data.fd == worker->wake_rd) {
        woke = true;
        continue;
      }
      uint32_t mask = 0;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        mask |= POLLIN;
      }
      if (events[i].events & EPOLLOUT) {
        mask |= POLLOUT;
      }
      ready.emplace_back(static_cast<int>(events[i].data.fd), mask);
    }
#else
    std::vector<pollfd> fds;
    fds.reserve(worker->conns.size() + 1);
    fds.push_back({worker->wake_rd, POLLIN, 0});
    for (const auto& [fd, conn] : worker->conns) {
      short ev = POLLIN;
      if (conn->want_write) ev |= POLLOUT;
      fds.push_back({fd, ev, 0});
    }
    int n = ::poll(fds.data(), fds.size(), 500);
    if (n < 0 && errno != EINTR) {
      break;
    }
    if (fds[0].revents != 0) {
      woke = true;
    }
    for (size_t i = 1; i < fds.size(); i++) {
      if (fds[i].revents != 0) {
        uint32_t mask = 0;
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) mask |= POLLIN;
        if (fds[i].revents & POLLOUT) mask |= POLLOUT;
        ready.emplace_back(fds[i].fd, mask);
      }
    }
#endif
    if (woke) {
      DrainPipe(worker->wake_rd);
      // Adopt connections handed over by the acceptor.
      std::deque<int> adopted;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        adopted.swap(worker->pending_fds);
      }
      for (int fd : adopted) {
        worker->conns.emplace(
            fd, std::make_unique<Conn>(fd, options_.max_frame_bytes));
#if CACHEKV_NET_EPOLL
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev);
#endif
      }
      // Adopt live connections migrated from another worker (repl
      // conns moving here); their decoder/out state came along.
      std::deque<std::unique_ptr<Conn>> migrated;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        migrated.swap(worker->pending_conns);
      }
      for (auto& conn : migrated) {
        const int fd = conn->fd;
        Conn* c = conn.get();
        auto ins = worker->conns.emplace(fd, std::move(conn));
        if (NetTrace())
          fprintf(stderr, "[%ld srv %d w%d] adopt fd=%d inserted=%d buffered=%zu\n",
                  TraceMs(), (int)port_, worker->index, fd, (int)ins.second,
                  c->decoder.buffered());
        // The frame that triggered the migration crossed over unread
        // inside the decoder; no epoll event will ever fire for bytes
        // that are already buffered, so drain them now.
        if (!ProcessFrames(worker, c)) {
          CloseConn(worker, fd);
          continue;
        }
        const bool backlog = c->out_pos < c->out.size();
        c->want_write = backlog;
#if CACHEKV_NET_EPOLL
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events =
            EPOLLIN | (backlog ? static_cast<uint32_t>(EPOLLOUT) : 0u);
        ev.data.fd = fd;
        ::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev);
#else
        (void)backlog;  // the poll() path rebuilds interest per round
#endif
      }
    }

    for (const auto& [fd, mask] : ready) {
      auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) {
        continue;  // closed earlier this round
      }
      Conn* conn = it->second.get();
      bool alive = true;
      if (mask & POLLIN) {
        while (alive) {
          if (fault::AnyActive() && !fault::Inject("net.read").ok()) {
            alive = false;  // injected read failure closes the conn
            break;
          }
          ssize_t got = ::recv(fd, rbuf, sizeof(rbuf), 0);
          if (got > 0) {
            bytes_in_->Increment(static_cast<uint64_t>(got));
            conn->decoder.Feed(rbuf, static_cast<size_t>(got));
            alive = ProcessFrames(worker, conn);
            if (Misplaced(worker, conn)) {
              break;  // migrate first; the owner-to-be reads the rest
            }
            if (got < static_cast<ssize_t>(sizeof(rbuf))) {
              break;  // drained the socket
            }
          } else if (got == 0) {
            alive = false;  // orderly peer close
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              alive = false;
            }
            break;
          }
        }
      }
      if (alive && (mask & POLLOUT)) {
        alive = FlushOut(conn);
      }
      if (!alive) {
        CloseConn(worker, fd);
        continue;
      }
      // A connection classified for the other side of the house moves
      // there before its next frame is handled (whole Conn, mid-stream
      // state intact, undecoded frames still parked in the decoder):
      // repl streams to the dedicated repl worker so subscribes and
      // acks keep flowing even when every client worker blocks in
      // WaitCommitAcked; client connections off the repl worker so
      // client writes can never block it.
      if (Misplaced(worker, conn)) {
        Worker* rw = repl_worker();
        Worker* target =
            conn->is_repl
                ? rw
                : workers_[next_worker_.fetch_add(
                               1, std::memory_order_relaxed) %
                           (workers_.size() - 1)]
                      .get();
#if CACHEKV_NET_EPOLL
        ::epoll_ctl(worker->epfd, EPOLL_CTL_DEL, fd, nullptr);
#endif
        auto node = std::move(it->second);
        worker->conns.erase(it);
        {
          std::lock_guard<std::mutex> lock(target->mu);
          target->pending_conns.push_back(std::move(node));
        }
        if (NetTrace())
          fprintf(stderr, "[%ld srv %d w%d] migrate fd=%d -> w%d\n",
                  TraceMs(), (int)port_, worker->index, fd,
                  target->index);
        WakeByte(target->wake_wr);
        continue;
      }
      // (Re-)arm write interest to match the backlog.
      const bool backlog = conn->out_pos < conn->out.size();
      if (backlog != conn->want_write) {
        conn->want_write = backlog;
#if CACHEKV_NET_EPOLL
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN | (backlog ? static_cast<uint32_t>(EPOLLOUT) : 0u);
        ev.data.fd = fd;
        ::epoll_ctl(worker->epfd, EPOLL_CTL_MOD, fd, &ev);
#endif
      }
    }
  }

  // Shutdown: close every connection this worker owns.
  for (auto& [fd, conn] : worker->conns) {
    (void)conn;
#if CACHEKV_NET_EPOLL
    ::epoll_ctl(worker->epfd, EPOLL_CTL_DEL, fd, nullptr);
#endif
    ::close(fd);
    connections_->Add(-1);
  }
  worker->conns.clear();
}

namespace {
// Repl stream ops are served only by the dedicated repl worker; a
// client worker that sees one parks the frame and migrates the whole
// connection instead of handling it in place. PROMOTE is excluded: it
// is a one-shot admin request, and with --repl-ack it must not queue
// behind the repl worker's ack traffic.
bool IsReplStreamOp(Op op) {
  return op == Op::kReplSubscribe || op == Op::kReplBatch ||
         op == Op::kReplAck || op == Op::kReplSnapshot;
}
}  // namespace

bool Server::Misplaced(Worker* worker, Conn* conn) const {
  Worker* rw = repl_worker();
  if (rw == nullptr || !conn->classified) return false;
  return conn->is_repl ? worker != rw : worker == rw;
}

bool Server::ProcessFrames(Worker* worker, Conn* conn) {
  Worker* rw = repl_worker();
  if (rw != nullptr && !conn->classified) {
    // Classify by the first frame's opcode before handling anything,
    // so the connection reaches the right worker first (see
    // Conn::classified).
    Op first;
    if (conn->decoder.PeekOp(&first)) {
      conn->classified = true;
      conn->is_repl = IsReplStreamOp(first);
    } else if (conn->decoder.buffered() >= 6) {
      // Header bytes present but malformed: treat as a client conn so
      // Next latches the decode error on a client worker.
      conn->classified = true;
      conn->is_repl = false;
    } else {
      return FlushOut(conn);  // length + opcode not buffered yet
    }
  }
  if (Misplaced(worker, conn)) {
    // Park the bytes in the decoder; WorkerLoop migrates the whole
    // Conn and the destination worker drains them on adoption.
    return FlushOut(conn);
  }
  // Pull every complete frame first: the span between "bytes arrived"
  // and "responses written" is where pipelined writes batch.
  //
  // Exception: a repl stream frame on a client worker is left inside
  // the decoder, and the connection is flagged for migration to the
  // repl worker, which drains it on adoption. Handling it here would
  // deadlock under --repl-ack: the client worker can be blocked in
  // WaitCommitAcked waiting on acks from the very follower whose
  // subscribe just landed on it.
  // The reverse also holds: the repl worker only ever executes repl
  // stream frames. Anything else (a PING, a PROMOTE, a stray write) is
  // parked and the connection re-classified, so WaitCommitAcked can
  // never run on — and wedge — the repl worker.
  std::vector<Frame> frames;
  Frame frame;
  FrameDecoder::Result r = FrameDecoder::Result::kNeedMore;
  Op next_op;
  while (true) {
    if (rw != nullptr && conn->decoder.PeekOp(&next_op)) {
      const bool repl_op = IsReplStreamOp(next_op);
      if (repl_op != (worker == rw)) {
        conn->is_repl = repl_op;
        break;
      }
    }
    r = conn->decoder.Next(&frame);
    if (r != FrameDecoder::Result::kFrame) break;
    frames.push_back(frame);
  }
  obs::Tracer* tracer = primary()->trace();
  const bool tracing = tracer->enabled();
  std::vector<uint64_t> traced_ids;
  if (tracing) {
    for (const Frame& f : frames) {
      if (f.traced) {
        // The receive-side marker of the merged timeline: when the
        // request became visible to the server.
        tracer->Instant("net.recv", "trace", f.trace_id);
        traced_ids.push_back(f.trace_id);
      }
    }
  }
  bool alive = true;
  size_t i = 0;
  while (i < frames.size()) {
    // Frames decoded behind this one in the same round = the queueing
    // the request observed on its own connection.
    const uint32_t depth =
        static_cast<uint32_t>(frames.size() - 1 - i);
    if (ShedForBackpressure(conn, frames[i].op, frames[i].request_id)) {
      i++;
      continue;
    }
    if (NetTrace() && frames[i].op >= Op::kReplSubscribe)
      fprintf(stderr, "[%ld srv %d w%d] handle op=%d fd=%d\n", TraceMs(),
              (int)port_, worker->index, (int)frames[i].op, conn->fd);
    if (frames[i].op == Op::kPut || frames[i].op == Op::kDelete) {
      i = HandleWriteRun(conn, frames, i, depth);
    } else {
      HandleRequest(conn, frames[i], depth);
      i++;
    }
  }
  if (r == FrameDecoder::Result::kError) {
    // The stream is unrecoverable: report once, then close. The id is 0
    // because the broken frame's id cannot be trusted.
    decode_errors_->Increment();
    EncodeErrorResponse(&conn->out, Op::kPing, 0, kDecodeError,
                        conn->decoder.error());
    alive = false;
  }
  const bool flushed = FlushOut(conn);
  if (flushed && tracing) {
    for (uint64_t id : traced_ids) {
      tracer->Instant("net.send", "trace", id);
    }
  }
  return flushed && alive;
}

bool Server::ShedForBackpressure(Conn* conn, Op op, uint64_t id) {
  const size_t cap = options_.max_conn_write_buffer_bytes;
  if (cap == 0 || op == Op::kPing) {
    return false;  // disabled, or a liveness probe that must pass
  }
  if (conn->out.size() - conn->out_pos <= cap) {
    return false;
  }
  // Offer the backlog to the socket once before giving up; a fatal
  // write error here surfaces on the next FlushOut and closes the conn.
  FlushOut(conn);
  if (conn->out.size() - conn->out_pos <= cap) {
    return false;
  }
  backpressure_sheds_->Increment();
  EncodeErrorResponse(&conn->out, op, id, kBusy,
                      "connection write buffer full; request shed");
  return true;
}

void Server::InvalidateCache(uint32_t shard, const Slice& key) {
  if (!caches_.empty()) {
    caches_[shard]->Invalidate(key);
  }
}

bool Server::RejectIfReadOnly(Conn* conn, DB* db, Op op, uint64_t id,
                              const TraceContext& tc) {
  if (!db->IsReadOnly()) {
    return false;
  }
  EncodeErrorResponse(&conn->out, op, id, kReadOnly,
                      db->BackgroundError().ToString(), tc);
  return true;
}

void Server::AppendWriteResponse(Conn* conn, DB* db, Op op, uint64_t id,
                                 const Status& s,
                                 const TraceContext& tc) {
  if (s.ok()) {
    EncodeOkResponse(&conn->out, op, id, Slice(), tc);
  } else {
    // A write refused because of background degradation surfaces as
    // kReadOnly so clients can tell it from an ordinary IO error.
    const uint16_t code =
        db->IsReadOnly() ? static_cast<uint16_t>(kReadOnly) : WireCodeOf(s);
    EncodeErrorResponse(&conn->out, op, id, code, s.ToString(), tc);
  }
}

size_t Server::HandleWriteRun(Conn* conn, const std::vector<Frame>& frames,
                              size_t begin, uint32_t queue_depth) {
  // Stage timing is needed when the slow log is armed or any frame of
  // the (prospective) run is traced; probing the op/traced flags ahead
  // of parsing is cheap and may only over-include.
  bool any_traced = false;
  for (size_t j = begin; j < frames.size() &&
                         (frames[j].op == Op::kPut ||
                          frames[j].op == Op::kDelete);
       j++) {
    if (frames[j].traced) {
      any_traced = true;
      break;
    }
  }
  obs::Tracer* tracer = primary()->trace();
  const bool timing = any_traced || slow_log_ != nullptr;
  const uint64_t t_start = timing ? tracer->NowNs() : 0;

  // Gather the maximal batchable run under the caps, routing each op to
  // its shard as it is parsed.
  std::vector<std::vector<KVStore::BatchOp>> shard_batches(dbs_.size());
  std::vector<uint32_t> op_shards;  // shard of frames[begin + i]
  std::string first_key;            // slow-log key prefix for the run
  size_t end = begin;
  size_t batch_bytes = 0;
  size_t total_ops = 0;
  while (end < frames.size() && total_ops < options_.max_batch_ops) {
    const Frame& f = frames[end];
    if ((f.op != Op::kPut && f.op != Op::kDelete) || f.at_snapshot) {
      break;  // at-snapshot writes fall to HandleRequest and reject
    }
    KVStore::BatchOp op;
    if (f.op == Op::kPut) {
      PutRequest req;
      if (!ParsePutRequest(f.payload, &req).ok()) {
        break;
      }
      op.key = req.key.ToString();
      op.value = req.value.ToString();
    } else {
      DeleteRequest req;
      if (!ParseDeleteRequest(f.payload, &req).ok()) {
        break;
      }
      op.is_delete = true;
      op.key = req.key.ToString();
    }
    // 64 bytes per record bounds the engine's framing overhead.
    const size_t cost = op.key.size() + op.value.size() + 64;
    if (batch_bytes_cap_ != 0 && total_ops > 0 &&
        batch_bytes + cost > batch_bytes_cap_) {
      break;
    }
    batch_bytes += cost;
    const uint32_t shard =
        dbs_.size() == 1 ? 0 : router_.ShardOf(op.key);
    if (total_ops == 0) first_key = op.key;
    op_shards.push_back(shard);
    shard_batches[shard].push_back(std::move(op));
    total_ops++;
    end++;
  }
  if (total_ops <= 1) {
    // Nothing to batch (lone write, or the first frame failed to
    // parse); the single-op path owns its histogram and error.
    HandleRequest(conn, frames[begin], queue_depth);
    return begin + 1;
  }
  // The whole run shares one service span; each touched shard gets one
  // commit, and every request is answered with its shard's outcome.
  obs::SpanTimer span(primary()->metrics(), "net.op.put");
  requests_->Increment(total_ops);
  const uint64_t t_parsed = timing ? tracer->NowNs() : 0;
  std::vector<Status> shard_status(dbs_.size(), Status::OK());
  std::vector<bool> shard_read_only(dbs_.size(), false);
  std::vector<bool> shard_not_primary(dbs_.size(), false);
  std::vector<bool> shard_repl_timeout(dbs_.size(), false);
  for (uint32_t shard = 0; shard < dbs_.size(); shard++) {
    std::vector<KVStore::BatchOp>& batch = shard_batches[shard];
    if (batch.empty()) {
      continue;
    }
    shard_requests_[shard]->Increment(batch.size());
    DB* db = dbs_[shard];
    if (ShardNotPrimary(shard)) {
      shard_not_primary[shard] = true;
      shard_status[shard] =
          Status::IOError("not_primary", "shard is a replication follower");
      continue;
    }
    if (db->IsReadOnly()) {
      shard_read_only[shard] = true;
      shard_status[shard] = db->BackgroundError();
      continue;
    }
    obs::TraceScope trace(primary()->trace(), "net.write_batch");
    trace.AddArg("ops", batch.size());
    Status s = db->ApplyBatch(batch);
    if (s.IsInvalidArgument() || s.IsOutOfSpace()) {
      // The combined batch exceeded what one sub-MemTable holds (the
      // caps are estimates); commit the run op by op instead — clients
      // never asked for cross-request atomicity.
      s = Status::OK();
      for (size_t i = 0; i < batch.size() && s.ok(); i++) {
        s = batch[i].is_delete ? db->Delete(batch[i].key)
                               : db->Put(batch[i].key, batch[i].value);
      }
    }
    if (s.ok()) {
      batched_writes_->Increment();
      batched_ops_->Increment(batch.size());
    }
    // Invalidation precedes the response loop below, so every ack in
    // this run is only sent after its key's cache entry is gone.
    for (const KVStore::BatchOp& bop : batch) {
      InvalidateCache(shard, bop.key);
    }
    if (s.ok() && repl_ != nullptr) {
      Status acked = repl_->WaitCommitAcked(shard);
      if (!acked.ok()) {
        shard_repl_timeout[shard] = true;
        s = acked;
      }
    }
    shard_status[shard] = s;
  }
  const uint64_t t_committed = timing ? tracer->NowNs() : 0;
  for (size_t i = begin; i < end; i++) {
    const uint32_t shard = op_shards[i - begin];
    // Every request of the run reports the run's service time so far:
    // a batched write's latency is the batch's latency.
    TraceContext tc;
    if (frames[i].traced) {
      traced_requests_->Increment();
      tc.traced = true;
      tc.trace_id = frames[i].trace_id;
      tc.server_ns = t_committed - t_start;
    }
    if (shard_not_primary[shard]) {
      EncodeErrorResponse(&conn->out, frames[i].op, frames[i].request_id,
                          kNotPrimary, shard_status[shard].ToString(), tc);
    } else if (shard_repl_timeout[shard]) {
      EncodeErrorResponse(&conn->out, frames[i].op, frames[i].request_id,
                          kReplTimeout, shard_status[shard].ToString(),
                          tc);
    } else if (shard_read_only[shard]) {
      EncodeErrorResponse(&conn->out, frames[i].op, frames[i].request_id,
                          kReadOnly, shard_status[shard].ToString(), tc);
    } else {
      AppendWriteResponse(conn, dbs_[shard], frames[i].op,
                          frames[i].request_id, shard_status[shard], tc);
    }
  }
  if (timing) {
    const uint64_t t_done = tracer->NowNs();
    if (tracer->enabled()) {
      // Stage spans for every traced member of the run: the stages are
      // shared (one parse loop, one commit loop, one encode loop), so
      // each traced id gets the same windows under its own id.
      for (size_t i = begin; i < end; i++) {
        if (!frames[i].traced) continue;
        const uint64_t id = frames[i].trace_id;
        tracer->Complete("req.decode", t_start, t_parsed - t_start,
                         "trace", id);
        tracer->Complete("req.db", t_parsed, t_committed - t_parsed,
                         "trace", id);
        tracer->Complete("req.encode", t_committed, t_done - t_committed,
                         "trace", id);
        tracer->Complete(OpTraceName(frames[i].op), t_start,
                         t_done - t_start, "trace", id, "batched",
                         total_ops);
      }
    }
    const uint64_t slow_ns =
        slow_log_ != nullptr
            ? static_cast<uint64_t>(options_.slow_request_us) * 1000
            : 0;
    if (slow_ns > 0 && t_done - t_start >= slow_ns) {
      // One entry for the whole run (op "batch"): the run is the unit
      // of service here.
      obs::SlowLogEntry entry;
      entry.ts_ns = t_done;
      entry.op = 255;
      entry.shard = op_shards[0];
      entry.total_us = (t_done - t_start) / 1000;
      entry.queue_depth = queue_depth;
      entry.SetKey(first_key.data(), first_key.size());
      for (size_t i = begin; i < end; i++) {
        if (frames[i].traced) {
          entry.trace_id = frames[i].trace_id;
          break;
        }
      }
      entry.AddStage("req.decode", (t_parsed - t_start) / 1000);
      entry.AddStage("req.db", (t_committed - t_parsed) / 1000);
      entry.AddStage("req.encode", (t_done - t_committed) / 1000);
      slow_log_->Record(entry);
      slowlog_captured_->Increment();
      if (slow_log_->Captured() > slow_log_->capacity()) {
        slowlog_dropped_->Increment();
      }
    }
  }
  return end;
}

void Server::BuildStatsPayload(std::string* out) {
  if (dbs_.size() == 1) {
    // Reuses the registry's canonical JSON dump (src/obs); the server
    // adds no formatting of its own, so STATS and DB::DumpMetrics can
    // never drift apart.
    primary()->DumpMetrics(out);
    return;
  }
  // Sharded: one document, every shard's dump under a "shard.<i>"
  // label (the per-shard objects are the same shape as the single-DB
  // dump, so existing consumers work per shard).
  JsonValue root = JsonValue::Object();
  root.Set("shards", JsonValue::Number(static_cast<double>(dbs_.size())));
  for (size_t i = 0; i < dbs_.size(); i++) {
    JsonValue snap;
    dbs_[i]->GetMetricsSnapshot().ToJson(&snap);
    root.Set("shard." + std::to_string(i), std::move(snap));
  }
  out->append(root.ToString());
}

void Server::HandleRequest(Conn* conn, const Frame& frame,
                           uint32_t queue_depth) {
  requests_->Increment();
  const Op op = frame.op;
  const uint64_t id = frame.request_id;
  obs::SpanTimer span(primary()->metrics(), OpHistogramName(op));
  obs::TraceScope trace(primary()->trace(), OpTraceName(op));
  RequestTimeline timeline(this, frame, queue_depth);
  if (frame.traced) {
    traced_requests_->Increment();
    trace.AddArg("trace", frame.trace_id);
  }

  // Every response echoes the trace context of a traced request (with
  // the service time measured at encode) and closes the encode stage.
  auto respond_ok = [&](const Slice& payload) {
    EncodeOkResponse(&conn->out, op, id, payload,
                     timeline.ResponseContext());
    timeline.Stage("req.encode");
  };
  auto respond_error = [&](uint16_t code, const std::string& message) {
    EncodeErrorResponse(&conn->out, op, id, code, message,
                        timeline.ResponseContext());
    timeline.Stage("req.encode");
  };

  if (frame.response) {
    // A client must never send response frames; treat as decode error.
    decode_errors_->Increment();
    respond_error(kDecodeError, "response frame sent to server");
    return;
  }
  if (frame.at_snapshot && op != Op::kGet && op != Op::kScan) {
    respond_error(kInvalidArgument,
                  "at-snapshot flag on a non-read request");
    return;
  }
  if (fault::AnyActive()) {
    // An armed delay action here lands inside the req.decode stage
    // window, so the slow log attributes it to decode.
    Status injected = fault::Inject("net.decode");
    if (!injected.ok()) {
      decode_errors_->Increment();
      respond_error(kDecodeError, injected.ToString());
      return;
    }
  }

  switch (op) {
    case Op::kGet: {
      GetRequest req;
      Status s = ParseGetRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      timeline.SetKey(req.key);
      timeline.Stage("req.decode");
      uint32_t shard = 0;
      DB* db = Route(req.key, &shard);
      timeline.SetShard(shard);
      timeline.Stage("req.route");
      if (ShardNotPrimary(shard)) {
        // Followers reject reads too: an acked write may not have
        // streamed here yet, and serving it stale would break
        // read-your-writes for clients that failed over.
        respond_error(kNotPrimary, "shard is a replication follower");
        return;
      }
      if (frame.at_snapshot) {
        // Snapshot reads bypass the hot-key cache entirely: the cache
        // holds latest-state values, which may be newer than the pin.
        std::shared_ptr<SnapshotEntry> snap =
            FindSnapshot(frame.snapshot_id);
        if (snap == nullptr) {
          respond_error(kSnapshotUnknown,
                        "snapshot id not held (released or expired)");
          return;
        }
        std::string value;
        s = db->GetAt(req.key, snap->seqs[shard], &value);
        timeline.Stage("req.db");
        if (s.ok()) {
          respond_ok(value);
        } else {
          respond_error(WireCodeOf(s), s.ToString());
        }
        return;
      }
      std::string value;
      cache::HotKeyCache* hot =
          caches_.empty() ? nullptr : caches_[shard].get();
      cache::HotKeyCache::FillToken token;
      if (hot != nullptr && hot->Lookup(req.key, &value, &token)) {
        timeline.Stage("req.cache");
        respond_ok(value);
        return;
      }
      if (hot != nullptr) {
        timeline.Stage("req.cache");
      }
      s = db->Get(req.key, &value);
      timeline.Stage("req.db");
      if (s.ok()) {
        if (hot != nullptr) {
          // Read-through fill, guarded by the token: if a write
          // invalidated this key since the Lookup miss, the fill is
          // dropped rather than shadowing the acked overwrite.
          hot->Insert(req.key, value, token);
          // Separate stage so a poisoned/delayed fill (cache.poison)
          // shows up under its own name in the slow log.
          timeline.Stage("req.cache.fill");
        }
        respond_ok(value);
      } else {
        respond_error(WireCodeOf(s), s.ToString());
      }
      return;
    }
    case Op::kPut: {
      PutRequest req;
      Status s = ParsePutRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      timeline.SetKey(req.key);
      timeline.Stage("req.decode");
      uint32_t shard = 0;
      DB* db = Route(req.key, &shard);
      timeline.SetShard(shard);
      timeline.Stage("req.route");
      if (ShardNotPrimary(shard)) {
        respond_error(kNotPrimary, "shard is a replication follower");
        return;
      }
      if (RejectIfReadOnly(conn, db, op, id,
                           timeline.ResponseContext())) {
        return;
      }
      Status ws = db->Put(req.key, req.value);
      InvalidateCache(shard, req.key);
      if (ws.ok() && repl_ != nullptr) {
        Status acked = repl_->WaitCommitAcked(shard);
        if (!acked.ok()) {
          // Committed locally but under-replicated within the ack
          // window; the client must treat the write as unacked.
          timeline.Stage("req.db");
          respond_error(kReplTimeout, acked.ToString());
          return;
        }
      }
      timeline.Stage("req.db");
      AppendWriteResponse(conn, db, op, id, ws,
                          timeline.ResponseContext());
      timeline.Stage("req.encode");
      return;
    }
    case Op::kDelete: {
      DeleteRequest req;
      Status s = ParseDeleteRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      timeline.SetKey(req.key);
      timeline.Stage("req.decode");
      uint32_t shard = 0;
      DB* db = Route(req.key, &shard);
      timeline.SetShard(shard);
      timeline.Stage("req.route");
      if (ShardNotPrimary(shard)) {
        respond_error(kNotPrimary, "shard is a replication follower");
        return;
      }
      if (RejectIfReadOnly(conn, db, op, id,
                           timeline.ResponseContext())) {
        return;
      }
      Status ws = db->Delete(req.key);
      InvalidateCache(shard, req.key);
      if (ws.ok() && repl_ != nullptr) {
        Status acked = repl_->WaitCommitAcked(shard);
        if (!acked.ok()) {
          timeline.Stage("req.db");
          respond_error(kReplTimeout, acked.ToString());
          return;
        }
      }
      timeline.Stage("req.db");
      AppendWriteResponse(conn, db, op, id, ws,
                          timeline.ResponseContext());
      timeline.Stage("req.encode");
      return;
    }
    case Op::kMultiPut: {
      MultiPutRequest req;
      Status s = ParseMultiPutRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      trace.AddArg("keys", req.ops.size());
      if (!req.ops.empty()) {
        timeline.SetKey(req.ops[0].key);
      }
      timeline.Stage("req.decode");
      if (dbs_.size() == 1) {
        shard_requests_[0]->Increment(req.ops.size());
        if (ShardNotPrimary(0)) {
          respond_error(kNotPrimary, "shard is a replication follower");
          return;
        }
        if (RejectIfReadOnly(conn, primary(), op, id,
                             timeline.ResponseContext())) {
          return;
        }
        Status ws = primary()->ApplyBatch(req.ops);
        for (const KVStore::BatchOp& bop : req.ops) {
          InvalidateCache(0, bop.key);
        }
        if (ws.ok() && repl_ != nullptr) {
          Status acked = repl_->WaitCommitAcked(0);
          if (!acked.ok()) {
            timeline.Stage("req.db");
            respond_error(kReplTimeout, acked.ToString());
            return;
          }
        }
        timeline.Stage("req.db");
        AppendWriteResponse(conn, primary(), op, id, ws,
                            timeline.ResponseContext());
        timeline.Stage("req.encode");
        return;
      }
      // Split per shard: the batch stays atomic within each shard but
      // not across shards (docs/SERVER.md). All touched shards are
      // checked for degradation before anything commits.
      std::vector<std::vector<KVStore::BatchOp>> split(dbs_.size());
      for (KVStore::BatchOp& bop : req.ops) {
        split[router_.ShardOf(bop.key)].push_back(std::move(bop));
      }
      for (uint32_t shard = 0; shard < dbs_.size(); shard++) {
        if (split[shard].empty()) continue;
        shard_requests_[shard]->Increment(split[shard].size());
        if (ShardNotPrimary(shard)) {
          respond_error(kNotPrimary, "shard is a replication follower");
          return;
        }
        if (RejectIfReadOnly(conn, dbs_[shard], op, id,
                             timeline.ResponseContext())) {
          return;
        }
      }
      timeline.Stage("req.route");
      Status first_error;
      DB* failed_db = nullptr;
      for (uint32_t shard = 0; shard < dbs_.size(); shard++) {
        if (split[shard].empty()) continue;
        Status st = dbs_[shard]->ApplyBatch(split[shard]);
        for (const KVStore::BatchOp& bop : split[shard]) {
          InvalidateCache(shard, bop.key);
        }
        if (st.ok() && repl_ != nullptr) {
          Status acked = repl_->WaitCommitAcked(shard);
          if (!acked.ok()) {
            timeline.Stage("req.db");
            respond_error(kReplTimeout, acked.ToString());
            return;
          }
        }
        if (!st.ok() && first_error.ok()) {
          first_error = st;
          failed_db = dbs_[shard];
        }
      }
      timeline.Stage("req.db");
      if (first_error.ok()) {
        respond_ok(Slice());
      } else {
        AppendWriteResponse(conn, failed_db, op, id, first_error,
                            timeline.ResponseContext());
        timeline.Stage("req.encode");
      }
      return;
    }
    case Op::kScan: {
      ScanRequest req;
      Status s = ParseScanRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (req.limit > options_.max_scan_limit) {
        respond_error(kTooLarge, "scan limit exceeds server maximum");
        return;
      }
      timeline.SetKey(req.start);
      timeline.Stage("req.decode");
      // A scan touches every shard; one follower shard poisons the
      // whole merge with potentially-stale entries, so reject.
      for (uint32_t shard = 0; shard < dbs_.size(); shard++) {
        if (ShardNotPrimary(shard)) {
          respond_error(kNotPrimary, "shard is a replication follower");
          return;
        }
      }
      std::shared_ptr<SnapshotEntry> snap;
      if (frame.at_snapshot) {
        snap = FindSnapshot(frame.snapshot_id);
        if (snap == nullptr) {
          respond_error(kSnapshotUnknown,
                        "snapshot id not held (released or expired)");
          return;
        }
      }
      std::vector<std::pair<std::string, std::string>> entries;
      if (dbs_.size() == 1) {
        shard_requests_[0]->Increment();
        s = snap != nullptr
                ? primary()->ScanAt(req.start, req.limit, snap->seqs[0],
                                    &entries)
                : primary()->Scan(req.start, req.limit, &entries);
      } else {
        // Each shard holds an arbitrary slice of the range, so every
        // shard scans up to the full limit and the ordered k-way merge
        // trims the union back down. At a snapshot, each shard scans at
        // its own pinned sequence — together the per-shard cut the
        // SNAPSHOT op froze.
        std::vector<std::vector<std::pair<std::string, std::string>>>
            per_shard(dbs_.size());
        for (uint32_t shard = 0; s.ok() && shard < dbs_.size(); shard++) {
          shard_requests_[shard]->Increment();
          s = snap != nullptr
                  ? dbs_[shard]->ScanAt(req.start, req.limit,
                                        snap->seqs[shard],
                                        &per_shard[shard])
                  : dbs_[shard]->Scan(req.start, req.limit,
                                      &per_shard[shard]);
        }
        if (s.ok()) {
          MergeShardScans(std::move(per_shard), req.limit, &entries);
        }
      }
      timeline.Stage("req.db");
      if (!s.ok()) {
        respond_error(WireCodeOf(s), s.ToString());
        return;
      }
      trace.AddArg("entries", entries.size());
      std::string payload;
      EncodeScanPayload(&payload, entries);
      respond_ok(payload);
      return;
    }
    case Op::kStats: {
      std::string json;
      BuildStatsPayload(&json);
      timeline.Stage("req.db");
      respond_ok(json);
      return;
    }
    case Op::kPing: {
      respond_ok(Slice());
      return;
    }
    case Op::kShardMap: {
      // The image is immutable after Start() — unless replication is
      // on, where epochs/roles move and the image is rebuilt per
      // request; single-DB servers answer a 1-shard identity map.
      if (repl_ != nullptr) {
        std::string image;
        BuildShardMapImage(&image);
        respond_ok(image);
        return;
      }
      respond_ok(shard_map_image_);
      return;
    }
    case Op::kSlowLog: {
      SlowLogRequest req;
      Status s = ParseSlowLogRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      slowlog_queries_->Increment();
      JsonValue entries;
      if (slow_log_ != nullptr) {
        slow_log_->ToJson(&entries, req.limit);
      } else {
        entries = JsonValue::Array();  // capture disabled: empty log
      }
      respond_ok(entries.ToString());
      return;
    }
    case Op::kMetricsProm: {
      std::string text;
      BuildPromPayload(&text);
      timeline.Stage("req.db");
      respond_ok(text);
      return;
    }
    case Op::kReplSubscribe: {
      ReplSubscribeRequest req;
      Status s = ParseReplSubscribeRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (repl_ == nullptr) {
        respond_error(kInvalidArgument, "replication not enabled");
        return;
      }
      if (req.shard >= num_shards()) {
        respond_error(kInvalidArgument, "shard out of range");
        return;
      }
      conn->is_repl = true;
      std::string payload;
      std::string error;
      const uint16_t code = repl_->HandleSubscribe(req, &payload, &error);
      timeline.Stage("req.db");
      if (code == kOk) {
        respond_ok(payload);
      } else {
        respond_error(code, error);
      }
      return;
    }
    case Op::kReplBatch: {
      ReplBatchRequest req;
      Status s = ParseReplBatchRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (repl_ == nullptr) {
        respond_error(kInvalidArgument, "replication not enabled");
        return;
      }
      if (req.shard >= num_shards()) {
        respond_error(kInvalidArgument, "shard out of range");
        return;
      }
      conn->is_repl = true;
      std::string payload;
      std::string error;
      const uint16_t code = repl_->HandleBatch(req, &payload, &error);
      timeline.Stage("req.db");
      if (code == kOk) {
        respond_ok(payload);
      } else {
        respond_error(code, error);
      }
      return;
    }
    case Op::kReplAck: {
      ReplAckRequest req;
      Status s = ParseReplAckRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (repl_ == nullptr) {
        respond_error(kInvalidArgument, "replication not enabled");
        return;
      }
      if (req.shard >= num_shards()) {
        respond_error(kInvalidArgument, "shard out of range");
        return;
      }
      conn->is_repl = true;
      std::string payload;
      std::string error;
      const uint16_t code = repl_->HandleAck(req, &payload, &error);
      timeline.Stage("req.db");
      if (code == kOk) {
        respond_ok(payload);
      } else {
        respond_error(code, error);
      }
      return;
    }
    case Op::kReplSnapshot: {
      ReplSnapshotRequest req;
      Status s = ParseReplSnapshotRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (repl_ == nullptr) {
        respond_error(kInvalidArgument, "replication not enabled");
        return;
      }
      if (req.shard >= num_shards()) {
        respond_error(kInvalidArgument, "shard out of range");
        return;
      }
      conn->is_repl = true;
      std::string payload;
      std::string error;
      const uint16_t code = repl_->HandleSnapshot(req, &payload, &error);
      timeline.Stage("req.db");
      if (code == kOk) {
        respond_ok(payload);
      } else {
        respond_error(code, error);
      }
      return;
    }
    case Op::kPromote: {
      PromoteRequest req;
      Status s = ParsePromoteRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      if (repl_ == nullptr) {
        respond_error(kInvalidArgument, "replication not enabled");
        return;
      }
      if (req.shard >= num_shards()) {
        respond_error(kInvalidArgument, "shard out of range");
        return;
      }
      // An admin op, not a stream op: the connection stays on its
      // worker.
      std::string payload;
      std::string error;
      const uint16_t code = repl_->HandlePromote(req, &payload, &error);
      timeline.Stage("req.db");
      if (code == kOk) {
        respond_ok(payload);
      } else {
        respond_error(code, error);
      }
      return;
    }
    case Op::kSnapshot: {
      SnapshotRequest req;
      Status s = ParseSnapshotRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      timeline.Stage("req.decode");
      // A request may shorten the pin's life but never outlive the
      // server's bound.
      uint32_t ttl_ms = options_.snapshot_ttl_ms;
      if (req.ttl_ms != 0 && req.ttl_ms < ttl_ms) {
        ttl_ms = req.ttl_ms;
      }
      auto entry = std::make_shared<SnapshotEntry>(&dbs_);
      entry->handles.reserve(dbs_.size());
      entry->seqs.reserve(dbs_.size());
      for (DB* db : dbs_) {
        const DB::Snapshot* handle = db->GetSnapshot();
        if (handle == nullptr) {
          // One shard is at its pin cap: the entry's destructor
          // releases the shards pinned so far.
          timeline.Stage("req.db");
          respond_error(kBusy, "snapshot pin cap reached");
          return;
        }
        entry->handles.push_back(handle);
        entry->seqs.push_back(handle->sequence());
      }
      entry->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ttl_ms);
      SnapshotResponse resp;
      resp.shard_seqs = entry->seqs;
      {
        std::lock_guard<std::mutex> lock(snapshots_mu_);
        resp.snapshot_id = next_snapshot_id_++;
        snapshots_.emplace(resp.snapshot_id, std::move(entry));
      }
      snap_active_->Add(1);
      timeline.Stage("req.db");
      std::string payload;
      EncodeSnapshotPayload(&payload, resp);
      respond_ok(payload);
      return;
    }
    case Op::kSnapshotRelease: {
      SnapshotReleaseRequest req;
      Status s = ParseSnapshotReleaseRequest(frame.payload, &req);
      if (!s.ok()) {
        decode_errors_->Increment();
        respond_error(kDecodeError, s.ToString());
        return;
      }
      timeline.Stage("req.decode");
      std::shared_ptr<SnapshotEntry> released;
      {
        std::lock_guard<std::mutex> lock(snapshots_mu_);
        auto it = snapshots_.find(req.snapshot_id);
        if (it != snapshots_.end()) {
          released = std::move(it->second);
          snapshots_.erase(it);
        }
      }
      if (released == nullptr) {
        respond_error(kSnapshotUnknown,
                      "snapshot id not held (released or expired)");
        return;
      }
      snap_active_->Add(-1);
      released.reset();  // unpin outside snapshots_mu_
      timeline.Stage("req.db");
      respond_ok(Slice());
      return;
    }
  }
  respond_error(kUnknownOp, "unknown opcode");
}

void Server::BuildPromPayload(std::string* out) {
  // Per-shard labels come from position: snapshot i renders with
  // shard="i", matching the STATS "shard.<i>" sections.
  std::vector<obs::MetricsSnapshot> snapshots;
  snapshots.reserve(dbs_.size());
  for (DB* db : dbs_) {
    snapshots.push_back(db->GetMetricsSnapshot());
  }
  *out = obs::RenderPrometheus(snapshots);
}

bool Server::FlushOut(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    if (fault::AnyActive() && !fault::Inject("net.write").ok()) {
      return false;  // injected write failure closes the conn
    }
    ssize_t sent =
        ::send(conn->fd, conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (sent > 0) {
      bytes_out_->Increment(static_cast<uint64_t>(sent));
      conn->out_pos += static_cast<size_t>(sent);
    } else if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // poller will signal writability
    } else if (sent < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  conn->out.clear();
  conn->out_pos = 0;
  return true;
}

}  // namespace net
}  // namespace cachekv
