#ifndef CACHEKV_NET_SERVER_H_
#define CACHEKV_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cachekv {

class DB;

namespace net {

/// Tuning knobs of one Server instance (docs/SERVER.md).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Worker event-loop threads; each connection is owned by exactly one
  /// worker, so per-connection state needs no locking.
  int num_workers = 2;
  int listen_backlog = 128;
  /// Frames whose announced body exceeds this are decode errors.
  size_t max_frame_bytes = kDefaultMaxFrameBody;
  /// Server-side cap on one SCAN response.
  uint32_t max_scan_limit = 65536;
  /// Caps on batching consecutive pipelined PUT/DEL requests into one
  /// DB::ApplyBatch commit. max_batch_bytes == 0 derives the bound from
  /// DB::ApproxMultiPutCapacityBytes().
  size_t max_batch_ops = 64;
  size_t max_batch_bytes = 0;
};

/// Server exposes one DB over TCP, speaking the length-prefixed frame
/// protocol of net/protocol.h.
///
/// Threading: one acceptor thread multiplexes the listening socket; N
/// worker threads each run an event loop (epoll on Linux, poll(2)
/// elsewhere) over the connections assigned to them round-robin.
/// Requests on a connection may be pipelined; responses are sent in
/// request order. Runs of consecutive single-key PUT/DEL requests are
/// committed as one atomic DB::ApplyBatch (bounded by the batch caps
/// above) and acknowledged individually.
///
/// Integration: counters and per-op latency histograms go to the DB's
/// MetricsRegistry under "net.*" (so STATS serves one unified dump),
/// request spans to the DB's Tracer, and the accept/read/write/decode
/// paths carry "net.*" fail points (src/fault). When the DB has
/// degraded to read-only, write requests are rejected with the
/// kReadOnly wire code carrying DB::BackgroundError().
///
/// Shutdown ordering: Stop() (or the destructor) quiesces the network
/// layer — stops accepting, closes every connection, joins all threads
/// — and must complete before the DB is destroyed; the DB never learns
/// about the server, it only sees plain concurrent callers.
class Server {
 public:
  Server(DB* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor + worker threads.
  Status Start();

  /// Graceful shutdown; idempotent. Safe to call from a signal-driven
  /// main loop. After Stop() returns no thread of this server touches
  /// the DB again.
  void Stop();

  /// The bound TCP port (the actual one when options.port was 0).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  struct Conn;
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker* worker);
  /// Pulls every complete frame out of the connection's decoder and
  /// writes the responses. Returns false when the connection must
  /// close (decode error, write failure).
  bool ProcessFrames(Conn* conn);
  /// Handles frames[begin..end) where [begin, end) is a maximal run of
  /// single-key PUT/DEL requests: one ApplyBatch commit, one response
  /// per request. Returns the first unconsumed index.
  size_t HandleWriteRun(Conn* conn, const std::vector<Frame>& frames,
                        size_t begin);
  void HandleRequest(Conn* conn, const Frame& frame);
  /// Appends the response for a completed write `s` (shared by the
  /// single-op and batched paths).
  void AppendWriteResponse(Conn* conn, Op op, uint64_t id,
                           const Status& s);
  /// Rejects a write when the store is read-only; true when rejected.
  bool RejectIfReadOnly(Conn* conn, Op op, uint64_t id);
  /// Flushes the connection's write buffer as far as the socket
  /// accepts; false on a fatal socket error.
  bool FlushOut(Conn* conn);
  void CloseConn(Worker* worker, int fd);

  DB* const db_;
  const ServerOptions options_;
  size_t batch_bytes_cap_ = 0;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int accept_wake_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_worker_{0};

  // Cached "net.*" instruments (owned by the DB's registry).
  obs::Counter* accepts_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* batched_writes_ = nullptr;
  obs::Counter* batched_ops_ = nullptr;
  obs::Gauge* connections_ = nullptr;
};

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_SERVER_H_
