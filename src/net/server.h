#ifndef CACHEKV_NET_SERVER_H_
#define CACHEKV_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/hot_key_cache.h"
#include "net/protocol.h"
#include "net/shard_router.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "util/status.h"

namespace cachekv {

class DB;

namespace repl {
class ReplHub;
}  // namespace repl

namespace net {

/// Tuning knobs of one Server instance (docs/SERVER.md).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Worker event-loop threads; each connection is owned by exactly one
  /// worker, so per-connection state needs no locking.
  int num_workers = 2;
  int listen_backlog = 128;
  /// Frames whose announced body exceeds this are decode errors.
  size_t max_frame_bytes = kDefaultMaxFrameBody;
  /// Server-side cap on one SCAN response.
  uint32_t max_scan_limit = 65536;
  /// Caps on batching consecutive pipelined PUT/DEL requests into one
  /// DB::ApplyBatch commit. max_batch_bytes == 0 derives the bound from
  /// DB::ApproxMultiPutCapacityBytes().
  size_t max_batch_ops = 64;
  size_t max_batch_bytes = 0;
  /// Backpressure: when a connection's outbound buffer holds more than
  /// this many unsent bytes (after trying the socket once), further
  /// requests on it are shed with a Busy response instead of buffering
  /// unboundedly. PING still passes so clients can probe liveness.
  /// Counted in net.backpressure_sheds. 0 disables shedding.
  size_t max_conn_write_buffer_bytes = 4u << 20;
  /// Per-shard hot-key read cache in front of DB::Get
  /// (src/cache/hot_key_cache.h); 0 disables caching. Served entries
  /// skip the full memtable->zone->LSM descent; every committed write
  /// invalidates its key before the write is acked, so the cache can
  /// never shadow an acked overwrite.
  size_t hot_key_cache_bytes = 8u << 20;
  /// Count-Min-sketch admission: estimated lookup frequency a key needs
  /// before a read fill is cached (--cache-admit on the daemon).
  uint32_t hot_key_cache_admit = 2;
  /// Slow-request log (docs/OBSERVABILITY.md): any request whose
  /// service time exceeds this threshold is captured in the SlowLog
  /// ring with its stage breakdown (--slow-us on the daemon). 0
  /// disables capture; SLOWLOG then answers an empty log.
  uint32_t slow_request_us = 10'000;
  /// Entries retained in the slow-request ring (--slow-log-cap).
  size_t slow_log_capacity = 128;
  /// Default lifetime of a wire-pinned snapshot (docs/SNAPSHOTS.md);
  /// a SNAPSHOT request may ask for a shorter TTL but never a longer
  /// one. A sweeper releases expired pins so an abandoned client can
  /// only hold back compaction/GC reclamation for this long.
  uint32_t snapshot_ttl_ms = 60'000;
  /// Replication hub (docs/REPLICATION.md); borrowed, may be null.
  /// When set the server rejects keyed ops on follower shards with
  /// kNotPrimary, waits for follower acks after every commit (per the
  /// hub's ack policy; kReplTimeout on expiry), serves the REPL*
  /// wire ops by delegating to the hub, rebuilds the SHARDMAP image
  /// per request (epochs move), and reserves its LAST worker thread
  /// for replication connections so an ack-waiting client worker can
  /// never starve the very acks it waits on (num_workers is raised to
  /// 2 if needed).
  repl::ReplHub* repl = nullptr;
};

/// Server exposes one DB — or N sharded DB instances — over TCP,
/// speaking the length-prefixed frame protocol of net/protocol.h.
///
/// Sharding: the N-shard constructor serves independent DB instances
/// behind one listening socket. Every keyed request is routed through a
/// consistent-hash ShardRouter (net/shard_router.h), so plain clients
/// work unchanged; SHARDMAP hands the encoded ring to sharded clients
/// that want to route on their side. MULTIPUT batches are split per
/// shard (atomic per shard, not across shards) and SCAN is answered as
/// an ordered k-way merge of the per-shard scans. Shard 0 is the
/// "primary": server-wide net.* instruments and trace spans live in its
/// registry; each shard additionally counts the requests routed to it
/// as net.shard.requests in its own registry, and STATS returns one
/// JSON document with every shard's dump under a "shard.<i>" label.
///
/// Threading: one acceptor thread multiplexes the listening socket; N
/// worker threads each run an event loop (epoll on Linux, poll(2)
/// elsewhere) over the connections assigned to them round-robin.
/// Requests on a connection may be pipelined; responses are sent in
/// request order. Runs of consecutive single-key PUT/DEL requests are
/// committed as one atomic DB::ApplyBatch per shard (bounded by the
/// batch caps above) and acknowledged individually.
///
/// Integration: counters and per-op latency histograms go to the
/// primary DB's MetricsRegistry under "net.*" (so STATS serves one
/// unified dump), request spans to its Tracer, and the
/// accept/read/write/decode paths carry "net.*" fail points
/// (src/fault). When a shard has degraded to read-only, write requests
/// routed to it are rejected with the kReadOnly wire code carrying that
/// shard's DB::BackgroundError().
///
/// Telemetry plane (docs/OBSERVABILITY.md): requests arriving as traced
/// frames (flags bit 1; sampled by the client) are tagged stage by
/// stage — net.recv, req.decode, req.route, req.cache, req.db,
/// req.encode, net.send — as spans in the primary's Tracer carrying the
/// request's trace id, and their responses echo the trace context with
/// the measured service time. Independently, any request slower than
/// slow_request_us lands in the SlowLog ring with the same stage
/// breakdown (SLOWLOG op; net.slowlog.* counters), and METRICSPROM
/// serves every shard's registry in Prometheus text format.
///
/// Hot-key cache: with hot_key_cache_bytes > 0 each shard owns a
/// read-through HotKeyCache (src/cache/hot_key_cache.h) consulted by
/// GET before DB::Get; its cache.* instruments live in that shard's
/// registry, so STATS reports per-shard hit ratios. Every write path
/// (PUT, DEL, MULTIPUT, the pipelined write-run batcher) invalidates
/// the touched keys after the DB commit and before the response is
/// appended — the ordering the cache's coherence protocol requires.
///
/// Snapshot plane (docs/SNAPSHOTS.md): SNAPSHOT pins every shard with
/// DB::GetSnapshot and registers the handle vector under a server-issued
/// id with a TTL deadline; GET/SCAN requests carrying the at-snapshot
/// flag resolve the id and read at each shard's own pinned sequence
/// (bypassing the hot-key cache, which only reflects latest state), so
/// a sharded SCAN merges one consistent per-shard cut. RELEASE — or the
/// TTL sweeper, counting snap.expired — unpins; an unknown or expired
/// id answers kSnapshotUnknown.
///
/// Shutdown ordering: Stop() (or the destructor) quiesces the network
/// layer — stops accepting, closes every connection, joins all threads
/// — and must complete before any DB is destroyed; the DBs never learn
/// about the server, they only see plain concurrent callers.
class Server {
 public:
  /// Single-store server (shard count 1, identity routing).
  Server(DB* db, const ServerOptions& options);
  /// Sharded server: `shards` and `router.num_shards()` must agree, and
  /// every pointer must outlive the server. The router is copied.
  Server(std::vector<DB*> shards, const ShardRouter& router,
         const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor + worker threads.
  Status Start();

  /// Graceful shutdown; idempotent. Safe to call from a signal-driven
  /// main loop. After Stop() returns no thread of this server touches
  /// any DB again.
  void Stop();

  /// The bound TCP port (the actual one when options.port was 0).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  uint32_t num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }

  /// The slow-request ring (null when slow_log_capacity == 0). Served
  /// over the wire via SLOWLOG; exposed for tests.
  const obs::SlowLog* slow_log() const { return slow_log_.get(); }

 private:
  struct Conn;
  struct Worker;
  /// Per-request stage clock for the slow log + trace propagation;
  /// defined in server.cc.
  class RequestTimeline;
  /// One wire-pinned snapshot (docs/SNAPSHOTS.md): a DB::GetSnapshot
  /// handle per shard plus its expiry deadline. Held by shared_ptr so
  /// a release or TTL sweep concurrent with an in-flight at-snapshot
  /// read only drops the registry entry; the DB pins stay live until
  /// the last reader finishes. Defined in server.cc.
  struct SnapshotEntry;

  DB* primary() const { return dbs_[0]; }
  /// The shard owning `key`; counts the routing decision in the target
  /// shard's net.shard.requests.
  DB* Route(const Slice& key, uint32_t* shard_out = nullptr);

  void AcceptLoop();
  void WorkerLoop(Worker* worker);
  /// Pulls every complete frame out of the connection's decoder and
  /// writes the responses. Returns false when the connection must
  /// close (decode error, write failure).
  bool ProcessFrames(Worker* worker, Conn* conn);
  /// True when a classified connection sits on the wrong worker (repl
  /// conn off the repl worker, client conn on it) and must migrate.
  bool Misplaced(Worker* worker, Conn* conn) const;
  /// Handles frames[begin..end) where [begin, end) is a maximal run of
  /// single-key PUT/DEL requests: one ApplyBatch commit per touched
  /// shard, one response per request. Returns the first unconsumed
  /// index. `queue_depth` is the number of frames decoded behind
  /// frames[begin] in its round.
  size_t HandleWriteRun(Conn* conn, const std::vector<Frame>& frames,
                        size_t begin, uint32_t queue_depth);
  void HandleRequest(Conn* conn, const Frame& frame,
                     uint32_t queue_depth);
  /// Appends the response for a completed write `s` against `db`
  /// (shared by the single-op and batched paths).
  void AppendWriteResponse(Conn* conn, DB* db, Op op, uint64_t id,
                           const Status& s,
                           const TraceContext& tc = TraceContext());
  /// Rejects a write when `db` is read-only; true when rejected.
  bool RejectIfReadOnly(Conn* conn, DB* db, Op op, uint64_t id,
                        const TraceContext& tc = TraceContext());
  /// The METRICSPROM payload: the Prometheus exposition over every
  /// shard's registry snapshot (per-shard labels).
  void BuildPromPayload(std::string* out);
  /// Invalidates `key` in `shard`'s hot-key cache (no-op when caching
  /// is disabled). Must run after the DB commit, before the ack.
  void InvalidateCache(uint32_t shard, const Slice& key);
  /// Backpressure: true when the connection's outbound backlog exceeds
  /// the cap even after offering it to the socket once — the request
  /// was answered with Busy and must not execute.
  bool ShedForBackpressure(Conn* conn, Op op, uint64_t id);
  /// The STATS payload: the primary's DumpMetrics verbatim for a
  /// single store, or the shard-labelled combined document.
  void BuildStatsPayload(std::string* out);
  /// The SHARDMAP payload with the hub's live epoch/primary/replica
  /// state folded in (v2 image; see net/shard_router.h).
  void BuildShardMapImage(std::string* out);
  /// Resolves a wire snapshot id to its live entry (null when never
  /// pinned, released, or expired — the kSnapshotUnknown cases).
  std::shared_ptr<SnapshotEntry> FindSnapshot(uint64_t id);
  /// Releases every TTL-expired snapshot; runs on the sweeper thread.
  void SweepSnapshots();
  void SnapshotSweeperLoop();
  /// The worker reserved for replication connections (the last one;
  /// null when no hub is attached).
  Worker* repl_worker() const;
  /// True when the hub says `shard` must not serve keyed requests
  /// (this server follows another primary for it).
  bool ShardNotPrimary(uint32_t shard) const;
  /// Flushes the connection's write buffer as far as the socket
  /// accepts; false on a fatal socket error.
  bool FlushOut(Conn* conn);
  void CloseConn(Worker* worker, int fd);

  std::vector<DB*> dbs_;
  ShardRouter router_;
  const ServerOptions options_;
  repl::ReplHub* repl_ = nullptr;  // borrowed; null = no replication
  /// One hot-key cache per shard; empty when caching is disabled.
  std::vector<std::unique_ptr<cache::HotKeyCache>> caches_;
  /// Slow-request ring, shared by all workers (lock-free writers).
  std::unique_ptr<obs::SlowLog> slow_log_;
  /// Wire-pinned snapshot registry (docs/SNAPSHOTS.md) + TTL sweeper.
  std::mutex snapshots_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<SnapshotEntry>> snapshots_;
  uint64_t next_snapshot_id_ = 1;
  std::condition_variable snapshot_sweeper_cv_;
  std::thread snapshot_sweeper_;
  size_t batch_bytes_cap_ = 0;
  /// SHARDMAP response payload, finalized at Start() (endpoints carry
  /// the bound address).
  std::string shard_map_image_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int accept_wake_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_worker_{0};

  // Cached "net.*" instruments (owned by the primary DB's registry).
  obs::Counter* accepts_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* batched_writes_ = nullptr;
  obs::Counter* batched_ops_ = nullptr;
  obs::Counter* backpressure_sheds_ = nullptr;
  obs::Counter* slowlog_captured_ = nullptr;
  obs::Counter* slowlog_dropped_ = nullptr;
  obs::Counter* slowlog_queries_ = nullptr;
  obs::Counter* traced_requests_ = nullptr;
  obs::Counter* snap_expired_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  obs::Gauge* snap_active_ = nullptr;
  // Per-shard routing counters, one in each shard's own registry.
  std::vector<obs::Counter*> shard_requests_;
};

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_SERVER_H_
