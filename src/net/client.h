#ifndef CACHEKV_NET_CLIENT_H_
#define CACHEKV_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "net/shard_router.h"
#include "obs/trace.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {
namespace net {

struct ClientOptions {
  /// recv timeout on the socket; 0 disables (blocks forever).
  uint32_t recv_timeout_ms = 60'000;
  uint32_t connect_timeout_ms = 10'000;
  size_t max_frame_bytes = kDefaultMaxFrameBody;
  /// Trace sampling (docs/OBSERVABILITY.md "Trace-context propagation"):
  /// when > 0, every Nth keyed request (GET/PUT/DEL/MULTIPUT/SCAN) on
  /// the connection is sent as a traced frame carrying a deterministic
  /// 48-bit trace id derived from `trace_seed` and the request ordinal,
  /// so a run is reproducible end to end. 0 disables sampling.
  uint32_t trace_sample_every = 0;
  uint64_t trace_seed = 0;
  /// Optional tracer receiving one "client.<op>" span per sampled
  /// request (tagged with the trace id), so the client-side dump merges
  /// with the server's via tools/trace_merge.py. May be null: traced
  /// frames are still sent and Result::server_ns still fills in.
  obs::Tracer* tracer = nullptr;
  /// ShardedClient failover (docs/REPLICATION.md "Client failover"):
  /// keyed operations that fail on a broken connection or a kNotPrimary
  /// rejection are retried up to this many times, re-fetching the
  /// SHARDMAP from every known endpoint between attempts, with capped
  /// exponential backoff. 0 disables (errors surface immediately).
  /// Plain Client never retries.
  uint32_t max_retries = 2;
  uint32_t retry_backoff_base_ms = 10;
  uint32_t retry_backoff_max_ms = 500;
};

/// Client speaks the CacheKV wire protocol over one TCP connection
/// (docs/SERVER.md).
///
/// Two usage styles share the connection:
///   * synchronous calls (Put/Get/...) — one request, wait for its
///     response;
///   * pipelining — queue many requests with Submit*(), push them out
///     with Flush(), then collect every response with WaitAll(). The
///     server executes pipelined requests in order and may batch
///     consecutive writes into one atomic commit.
///
/// A Client is NOT thread-safe: one connection, one thread (open one
/// Client per thread for concurrency — connections are cheap). Any
/// socket-level failure closes the connection; calls after that return
/// IOError("not connected") until Connect() succeeds again.
class Client {
 public:
  Client() : Client(ClientOptions()) {}
  explicit Client(const ClientOptions& options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Synchronous API. These fail with InvalidArgument while pipelined
  // requests are outstanding (collect them first). ------------------

  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status MultiPut(const std::vector<KVStore::BatchOp>& batch);
  Status Scan(const Slice& start, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);
  /// Server-side metrics dump (the registry JSON; see docs/SERVER.md).
  Status Stats(std::string* json);
  /// Server-side slow-request log as JSON, newest first; `limit` caps
  /// the entries (0 = all retained).
  Status SlowLog(uint32_t limit, std::string* json);
  /// Server metrics in Prometheus text exposition format.
  Status MetricsProm(std::string* text);
  Status Ping();
  /// Fetches and decodes the server's SHARDMAP (a 1-shard identity map
  /// from unsharded servers). ShardedClient uses this to bootstrap.
  Status FetchShardMap(ShardRouter* out);

  // Snapshot API (docs/SNAPSHOTS.md). -------------------------------

  /// Pins a snapshot on the server: *resp receives the server-issued
  /// id and the sequence pinned on each shard the server hosts.
  /// `ttl_ms` bounds the pin's lifetime (0 = server default); the
  /// server may shorten but never extend the requested TTL.
  Status CreateSnapshot(uint32_t ttl_ms, SnapshotResponse* resp);
  /// Unpins `snapshot_id` on the server. NotFound("snapshot_unknown")
  /// when the id was never pinned, already released, or TTL-expired.
  Status ReleaseSnapshot(uint64_t snapshot_id);
  /// GET at a pinned snapshot: sees exactly the versions the pin
  /// froze, bypassing the server's hot-key cache.
  Status GetAt(const Slice& key, uint64_t snapshot_id,
               std::string* value);
  /// SCAN at a pinned snapshot (one consistent cut across the server's
  /// shards).
  Status ScanAt(const Slice& start, uint32_t limit, uint64_t snapshot_id,
                std::vector<std::pair<std::string, std::string>>* out);

  // Replication API (docs/REPLICATION.md): follower-side pull calls
  // used by repl::ReplHub, plus the admin PROMOTE. ------------------

  Status ReplSubscribe(const ReplSubscribeRequest& req,
                       ReplSubscribeResponse* resp);
  Status ReplFetch(const ReplBatchRequest& req, ReplBatchResponse* resp);
  Status ReplAck(const ReplAckRequest& req);
  Status ReplSnapshot(const ReplSnapshotRequest& req,
                      ReplSnapshotResponse* resp);
  /// Bumps the shard's epoch on the receiving server and flips it to
  /// primary; `*new_epoch` receives the epoch it now reigns under.
  Status Promote(uint32_t shard, uint64_t* new_epoch);

  /// Wire code of the last synchronous response (kOk on success, 0
  /// when the call failed before a response arrived). Lets callers
  /// distinguish kNotPrimary / kReplTimeout / ... without parsing
  /// Status text; ShardedClient keys its failover on it.
  uint16_t last_wire_code() const { return last_wire_code_; }

  // Pipelined API. --------------------------------------------------

  /// Queues a request and returns its id (unique per connection).
  /// Nothing is sent until Flush(); WaitAll() returns the responses.
  uint64_t SubmitGet(const Slice& key);
  uint64_t SubmitPut(const Slice& key, const Slice& value);
  uint64_t SubmitDelete(const Slice& key);
  uint64_t SubmitMultiPut(const std::vector<KVStore::BatchOp>& batch);
  uint64_t SubmitScan(const Slice& start, uint32_t limit);
  uint64_t SubmitScanAt(const Slice& start, uint32_t limit,
                        uint64_t snapshot_id);
  uint64_t SubmitPing();

  /// Writes every queued request to the socket.
  Status Flush();

  /// One pipelined response.
  struct Result {
    uint64_t id = 0;
    Op op = Op::kPing;
    Status status;
    /// Wire code of the response frame (kOk on success); failover
    /// logic keys on kNotPrimary without parsing the Status.
    uint16_t wire_code = 0;
    /// GET: the value. SCAN: parse with ParseScanPayload via entries.
    std::string value;
    /// SCAN results (filled only for kScan).
    std::vector<std::pair<std::string, std::string>> entries;
    /// Trace sampling results: set when the request went out traced.
    /// client_ns is the client-observed latency (flush → response);
    /// server_ns the server-reported service time from the response
    /// frame, so client_ns - server_ns bounds network + queue time.
    bool traced = false;
    uint64_t trace_id = 0;
    uint64_t client_ns = 0;
    uint64_t server_ns = 0;
  };

  /// Flushes, then reads responses until every outstanding request is
  /// answered. Responses are appended to *results in arrival (= request)
  /// order. A transport error fails the call and closes the connection;
  /// per-request errors land in each Result::status instead.
  Status WaitAll(std::vector<Result>* results);

  size_t outstanding() const { return outstanding_.size(); }

 private:
  struct PendingOp {
    uint64_t id;
    Op op;
    bool traced = false;
    uint64_t trace_id = 0;
    uint64_t start_ns = 0;  // stamped at Flush (0 until sent)
  };

  uint64_t Enqueue(Op op, std::string encoded,
                   const TraceContext& tc = TraceContext());
  /// Decides whether the next keyed request is sampled and derives its
  /// trace id.
  TraceContext NextTrace();
  uint64_t NowNs() const;
  Status SendAll(const char* data, size_t len);
  /// Reads until one complete frame is decoded into *frame.
  Status ReadFrame(Frame* frame);
  /// Runs one synchronous request end-to-end.
  Status RoundTrip(Op op, const std::string& request, Frame* response,
                   std::string* payload_out);
  Status RequireIdle() const;
  void FailConnection();

  ClientOptions options_;
  int fd_ = -1;
  uint16_t last_wire_code_ = 0;
  uint64_t next_id_ = 1;
  uint64_t keyed_seq_ = 0;  // keyed requests sent; drives sampling
  std::string sendbuf_;
  FrameDecoder decoder_;
  std::deque<PendingOp> outstanding_;
};

/// ShardedClient routes every keyed operation to its owning shard on
/// the client side: Connect() bootstraps off one address, fetches the
/// server's SHARDMAP, and opens one connection per shard (to each
/// shard's advertised endpoint, which today is the bootstrap address —
/// see net/shard_router.h). GET/PUT/DEL go straight to the owning
/// shard's connection; MULTIPUT is split per shard (atomic per shard,
/// not across shards); SCAN fans out to every shard concurrently and
/// returns the ordered k-way merge. Against an unsharded server this
/// degenerates to a plain single-connection client.
///
/// Failover (docs/REPLICATION.md): when a keyed operation fails on a
/// broken connection or a kNotPrimary rejection, the client re-fetches
/// the SHARDMAP from every endpoint it has ever learned (bootstrap
/// address, advertised endpoints, replica sets, AddSeedEndpoint), picks
/// per shard the server claiming primary under the highest epoch,
/// reconnects, and retries — up to ClientOptions::max_retries times
/// with capped exponential backoff. Transient errors that are neither
/// (Busy, NotFound, validation errors) surface immediately.
///
/// Like Client, a ShardedClient is NOT thread-safe — one instance per
/// thread.
class ShardedClient {
 public:
  ShardedClient() : ShardedClient(ClientOptions()) {}
  explicit ShardedClient(const ClientOptions& options);

  ShardedClient(const ShardedClient&) = delete;
  ShardedClient& operator=(const ShardedClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return !conns_.empty(); }

  /// Adds a failover candidate ("host:port") to the known-endpoint set
  /// before or after Connect; RefreshRouting also asks it for the map.
  /// Benchmarks seed the follower here so a dead bootstrap primary
  /// does not strand them (bench/netbench.cc --fallback).
  void AddSeedEndpoint(const std::string& endpoint);

  /// Re-fetches the SHARDMAP from every known endpoint and reconnects
  /// each shard to its best advertised server (primary claim under the
  /// highest epoch wins). Called automatically by the retry path; also
  /// public so tests and tools can force a refresh.
  Status RefreshRouting();

  /// Retry attempts that found a new route (metric for tests/benches).
  uint64_t failovers() const { return failovers_; }

  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  /// Splits the batch per shard; the first failing shard's status is
  /// returned but every shard's sub-batch is attempted.
  Status MultiPut(const std::vector<KVStore::BatchOp>& batch);
  /// Fans the scan out once per distinct server endpoint (a server
  /// already merges across the shards it hosts), then merges the
  /// ordered per-server results down to `limit` entries (0 = no limit).
  Status Scan(const Slice& start, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* out);
  // Snapshot API (docs/SNAPSHOTS.md). -------------------------------

  /// One cross-shard pinned snapshot: a server-issued id per distinct
  /// endpoint plus the per-shard sequence vector — the consistent cut
  /// every ScanAt/GetAt against it observes. Shards are independent
  /// key spaces, so the cut carries no cross-shard write atomicity
  /// (a multi-shard MULTIPUT may be split by it).
  struct ShardedSnapshot {
    /// (endpoint, server snapshot id) per distinct server.
    std::vector<std::pair<std::string, uint64_t>> server_ids;
    /// Pinned sequence per shard (indexed by shard number).
    std::vector<uint64_t> shard_seqs;
  };

  /// Pins every shard: one SNAPSHOT per distinct server endpoint. On
  /// any failure the shards already pinned are released (best effort)
  /// and the error surfaces. Snapshot operations never fail over — a
  /// pin lives on the specific server that took it.
  Status CreateSnapshot(uint32_t ttl_ms, ShardedSnapshot* out);
  /// Releases every per-server pin; the first error surfaces but every
  /// server is attempted.
  Status ReleaseSnapshot(const ShardedSnapshot& snap);
  /// GET at the snapshot, routed to the owning shard.
  Status GetAt(const Slice& key, const ShardedSnapshot& snap,
               std::string* value);
  /// SCAN at the snapshot: fans out per distinct endpoint with that
  /// server's pin and k-way merges — one consistent cut even while
  /// writers race.
  Status ScanAt(const Slice& start, uint32_t limit,
                const ShardedSnapshot& snap,
                std::vector<std::pair<std::string, std::string>>* out);

  /// The server's STATS document (shard-labelled when sharded).
  Status Stats(std::string* json);
  /// The server's slow-request log (all shards; one server process).
  Status SlowLog(uint32_t limit, std::string* json);
  /// The server's Prometheus exposition (per-shard labels).
  Status MetricsProm(std::string* text);
  /// Pings every shard connection.
  Status Ping();

  const ShardRouter& router() const { return router_; }
  uint32_t num_shards() const { return router_.num_shards(); }
  uint32_t ShardOf(const Slice& key) const { return router_.ShardOf(key); }
  /// The connection serving shard `shard`; benchmarks pipeline on it
  /// directly (Submit*/Flush/WaitAll) after routing with ShardOf().
  Client* shard_client(uint32_t shard) { return conns_[shard].get(); }

 private:
  Status RequireConnected() const;
  /// Remembers an endpoint (and its failover candidates) learned from
  /// a fetched map.
  void LearnEndpoints(const ShardMap& map, const std::string& source);
  void RememberEndpoint(const std::string& endpoint);
  /// True when `s` (returned by conns_[shard]) warrants a map refresh
  /// and retry: the connection died, or the server answered
  /// kNotPrimary.
  bool ShouldFailover(uint32_t shard, const Status& s) const;
  /// Runs `op` against conns_[shard] with the retry/refresh loop.
  Status RetryShardOp(uint32_t shard,
                      const std::function<Status(Client*)>& op);
  void Backoff(uint32_t attempt);
  /// One scan fan-out over the current routing; sets *retriable when
  /// the failure warrants a refresh+retry.
  Status ScanAttempt(const Slice& start, uint32_t limit,
                     std::vector<std::pair<std::string, std::string>>* out,
                     bool* retriable);
  /// The per-server snapshot id pinned for `endpoint` (false when the
  /// snapshot holds no pin there — routing moved since the pin).
  static bool SnapshotIdFor(const ShardedSnapshot& snap,
                            const std::string& endpoint, uint64_t* id);

  ClientOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Client>> conns_;  // one per shard
  // Resolved "host:port" per connection; shards co-hosted by one
  // server share the string, which SCAN uses to fan out per server.
  std::vector<std::string> resolved_endpoints_;
  // Every "host:port" ever learned (bootstrap, map endpoints, replica
  // sets, seeds) — the candidate list RefreshRouting polls.
  std::vector<std::string> known_endpoints_;
  std::string bootstrap_host_;
  uint16_t bootstrap_port_ = 0;
  uint64_t failovers_ = 0;
};

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_CLIENT_H_
