#include "net/protocol.h"

#include "util/coding.h"

namespace cachekv {
namespace net {

namespace {

/// Bounds-checked cursor primitives over a payload slice.
bool GetU8(Slice* in, uint8_t* out) {
  if (in->size() < 1) return false;
  *out = static_cast<uint8_t>(in->data()[0]);
  in->remove_prefix(1);
  return true;
}

bool GetU32(Slice* in, uint32_t* out) {
  if (in->size() < 4) return false;
  *out = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

bool GetU64(Slice* in, uint64_t* out) {
  if (in->size() < 8) return false;
  *out = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

bool GetBytes(Slice* in, uint32_t len, Slice* out) {
  if (in->size() < len) return false;
  *out = Slice(in->data(), len);
  in->remove_prefix(len);
  return true;
}

Status DecodeError(const char* what) {
  return Status::InvalidArgument("decode", what);
}

void AppendFrame(std::string* out, Op op, bool response, uint16_t code,
                 uint64_t id, const Slice& payload,
                 const TraceContext& tc = TraceContext(),
                 const SnapshotRef& snap = SnapshotRef()) {
  size_t body = kFrameFixedBody + payload.size() +
                (tc.traced ? kTraceContextBytes : 0) +
                (snap.at_snapshot ? kSnapshotIdBytes : 0);
  PutFixed32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(op));
  uint8_t flags = (response ? kFlagResponse : 0) |
                  (tc.traced ? kFlagTraced : 0) |
                  (snap.at_snapshot ? kFlagAtSnapshot : 0);
  out->push_back(static_cast<char>(flags));
  char code_buf[2];
  code_buf[0] = static_cast<char>(code & 0xff);
  code_buf[1] = static_cast<char>(code >> 8);
  out->append(code_buf, 2);
  PutFixed64(out, id);
  if (tc.traced) {
    PutFixed64(out, tc.trace_id);
    PutFixed64(out, tc.server_ns);
  }
  if (snap.at_snapshot) {
    PutFixed64(out, snap.id);
  }
  out->append(payload.data(), payload.size());
}

void AppendKey(std::string* out, const Slice& key) {
  PutFixed32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

}  // namespace

bool ValidOp(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Op::kGet) &&
         raw <= static_cast<uint8_t>(Op::kSnapshotRelease);
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kDelete: return "del";
    case Op::kMultiPut: return "multiput";
    case Op::kScan: return "scan";
    case Op::kStats: return "stats";
    case Op::kPing: return "ping";
    case Op::kShardMap: return "shardmap";
    case Op::kSlowLog: return "slowlog";
    case Op::kMetricsProm: return "metricsprom";
    case Op::kReplSubscribe: return "replsubscribe";
    case Op::kReplBatch: return "replbatch";
    case Op::kReplAck: return "replack";
    case Op::kReplSnapshot: return "replsnapshot";
    case Op::kPromote: return "promote";
    case Op::kSnapshot: return "snapshot";
    case Op::kSnapshotRelease: return "snapshotrelease";
  }
  return "?";
}

const char* WireCodeName(uint16_t code) {
  switch (code) {
    case kOk: return "ok";
    case kNotFound: return "not_found";
    case kCorruption: return "corruption";
    case kNotSupported: return "not_supported";
    case kInvalidArgument: return "invalid_argument";
    case kIOError: return "io_error";
    case kBusy: return "busy";
    case kOutOfSpace: return "out_of_space";
    case kReadOnly: return "read_only";
    case kDecodeError: return "decode_error";
    case kTooLarge: return "too_large";
    case kUnknownOp: return "unknown_op";
    case kNotPrimary: return "not_primary";
    case kStaleEpoch: return "stale_epoch";
    case kReplLagged: return "repl_lagged";
    case kReplTimeout: return "repl_timeout";
    case kSnapshotUnknown: return "snapshot_unknown";
  }
  return "unknown_code";
}

uint16_t WireCodeOf(const Status& s) {
  if (s.ok()) return kOk;
  if (s.IsNotFound()) return kNotFound;
  if (s.IsCorruption()) return kCorruption;
  if (s.IsNotSupported()) return kNotSupported;
  if (s.IsInvalidArgument()) return kInvalidArgument;
  if (s.IsBusy()) return kBusy;
  if (s.IsOutOfSpace()) return kOutOfSpace;
  return kIOError;
}

Status StatusFromWire(uint16_t code, const Slice& message) {
  switch (code) {
    case kOk: return Status::OK();
    case kNotFound: return Status::NotFound(message);
    case kCorruption: return Status::Corruption(message);
    case kNotSupported: return Status::NotSupported(message);
    case kInvalidArgument: return Status::InvalidArgument(message);
    case kBusy: return Status::Busy(message);
    case kOutOfSpace: return Status::OutOfSpace(message);
    case kReadOnly:
      // Matches the local DB behavior: degraded writes surface as the
      // sticky background IOError with "read-only" in the message.
      return Status::IOError("read-only", message);
    case kDecodeError:
    case kTooLarge:
    case kUnknownOp:
      return Status::InvalidArgument(WireCodeName(code), message);
    case kNotPrimary:
      // Routed away from the primary; ShardedClient re-fetches the map
      // and retries. The context string lets callers distinguish it.
      return Status::IOError("not_primary", message);
    case kStaleEpoch: return Status::InvalidArgument("stale_epoch", message);
    case kReplLagged:
      // from_seq fell behind the truncated log — resync via snapshot.
      return Status::NotFound(message.empty() ? Slice("repl_lagged")
                                              : message);
    case kReplTimeout:
      // Committed on the primary; the ack policy was not met in time.
      return Status::Busy(message.empty() ? Slice("repl_timeout") : message);
    case kSnapshotUnknown:
      // The pin was never taken, was released, or expired past its TTL;
      // the caller re-pins and retries.
      return Status::NotFound(message.empty() ? Slice("snapshot_unknown")
                                              : message);
    default: return Status::IOError(WireCodeName(code), message);
  }
}

FrameDecoder::FrameDecoder(size_t max_frame_body)
    : max_frame_body_(max_frame_body) {}

void FrameDecoder::Feed(const char* data, size_t len) {
  if (failed_) return;
  // Drop the consumed prefix before it grows unbounded.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, len);
}

FrameDecoder::Result FrameDecoder::Next(Frame* out) {
  if (failed_) return Result::kError;
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return Result::kNeedMore;
  const char* base = buf_.data() + pos_;
  const uint32_t body_len = DecodeFixed32(base);
  if (body_len < kFrameFixedBody) {
    failed_ = true;
    error_ = "frame body shorter than fixed header";
    return Result::kError;
  }
  if (body_len > max_frame_body_) {
    failed_ = true;
    error_ = "frame exceeds the maximum frame size";
    return Result::kError;
  }
  // Opcode and flags are validated as soon as they are present, so a
  // garbage stream fails fast instead of stalling on a bogus length.
  if (avail >= 6) {
    const uint8_t raw_op = static_cast<uint8_t>(base[4]);
    const uint8_t flags = static_cast<uint8_t>(base[5]);
    if (!ValidOp(raw_op)) {
      failed_ = true;
      error_ = "unknown opcode";
      return Result::kError;
    }
    if ((flags & ~(kFlagResponse | kFlagTraced | kFlagAtSnapshot)) != 0) {
      failed_ = true;
      error_ = "reserved flag bits set";
      return Result::kError;
    }
    if ((flags & kFlagAtSnapshot) != 0 && (flags & kFlagResponse) != 0) {
      failed_ = true;
      error_ = "at-snapshot flag set on a response";
      return Result::kError;
    }
    const size_t prefix_bytes =
        ((flags & kFlagTraced) != 0 ? kTraceContextBytes : 0) +
        ((flags & kFlagAtSnapshot) != 0 ? kSnapshotIdBytes : 0);
    if (body_len < kFrameFixedBody + prefix_bytes) {
      failed_ = true;
      error_ = "frame too short for its payload prefixes";
      return Result::kError;
    }
  }
  if (avail < 4u + body_len) return Result::kNeedMore;
  const uint8_t flags = static_cast<uint8_t>(base[5]);
  out->op = static_cast<Op>(static_cast<uint8_t>(base[4]));
  out->response = (flags & kFlagResponse) != 0;
  out->traced = (flags & kFlagTraced) != 0;
  out->at_snapshot = (flags & kFlagAtSnapshot) != 0;
  out->code = static_cast<uint16_t>(
      static_cast<uint8_t>(base[6]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(base[7])) << 8));
  out->request_id = DecodeFixed64(base + 8);
  const char* payload = base + kFrameHeaderBytes;
  size_t payload_len = body_len - kFrameFixedBody;
  if (out->traced) {
    out->trace_id = DecodeFixed64(payload);
    out->server_ns = DecodeFixed64(payload + 8);
    payload += kTraceContextBytes;
    payload_len -= kTraceContextBytes;
  } else {
    out->trace_id = 0;
    out->server_ns = 0;
  }
  if (out->at_snapshot) {
    out->snapshot_id = DecodeFixed64(payload);
    payload += kSnapshotIdBytes;
    payload_len -= kSnapshotIdBytes;
  } else {
    out->snapshot_id = 0;
  }
  out->payload = Slice(payload, payload_len);
  pos_ += 4u + body_len;
  return Result::kFrame;
}

bool FrameDecoder::PeekOp(Op* op) const {
  if (failed_) return false;
  const size_t avail = buf_.size() - pos_;
  if (avail < 6) return false;  // length + opcode + flags not in yet
  const char* base = buf_.data() + pos_;
  const uint32_t body_len = DecodeFixed32(base);
  if (body_len < kFrameFixedBody || body_len > max_frame_body_) return false;
  const uint8_t raw_op = static_cast<uint8_t>(base[4]);
  if (!ValidOp(raw_op)) return false;
  *op = static_cast<Op>(raw_op);
  return true;
}

// Request encoders. ---------------------------------------------------

void EncodeGetRequest(std::string* out, uint64_t id, const Slice& key,
                      const TraceContext& tc, const SnapshotRef& snap) {
  std::string payload;
  AppendKey(&payload, key);
  AppendFrame(out, Op::kGet, false, kOk, id, payload, tc, snap);
}

void EncodePutRequest(std::string* out, uint64_t id, const Slice& key,
                      const Slice& value, const TraceContext& tc) {
  std::string payload;
  AppendKey(&payload, key);
  PutFixed32(&payload, static_cast<uint32_t>(value.size()));
  payload.append(value.data(), value.size());
  AppendFrame(out, Op::kPut, false, kOk, id, payload, tc);
}

void EncodeDeleteRequest(std::string* out, uint64_t id, const Slice& key,
                         const TraceContext& tc) {
  std::string payload;
  AppendKey(&payload, key);
  AppendFrame(out, Op::kDelete, false, kOk, id, payload, tc);
}

void EncodeMultiPutRequest(std::string* out, uint64_t id,
                           const std::vector<KVStore::BatchOp>& batch,
                           const TraceContext& tc) {
  std::string payload;
  PutFixed32(&payload, static_cast<uint32_t>(batch.size()));
  for (const KVStore::BatchOp& op : batch) {
    payload.push_back(op.is_delete ? 1 : 0);
    AppendKey(&payload, op.key);
    PutFixed32(&payload, static_cast<uint32_t>(op.value.size()));
    payload.append(op.value);
  }
  AppendFrame(out, Op::kMultiPut, false, kOk, id, payload, tc);
}

void EncodeScanRequest(std::string* out, uint64_t id, const Slice& start,
                       uint32_t limit, const TraceContext& tc,
                       const SnapshotRef& snap) {
  std::string payload;
  AppendKey(&payload, start);
  PutFixed32(&payload, limit);
  AppendFrame(out, Op::kScan, false, kOk, id, payload, tc, snap);
}

void EncodeStatsRequest(std::string* out, uint64_t id) {
  AppendFrame(out, Op::kStats, false, kOk, id, Slice());
}

void EncodePingRequest(std::string* out, uint64_t id) {
  AppendFrame(out, Op::kPing, false, kOk, id, Slice());
}

void EncodeShardMapRequest(std::string* out, uint64_t id) {
  AppendFrame(out, Op::kShardMap, false, kOk, id, Slice());
}

void EncodeSlowLogRequest(std::string* out, uint64_t id, uint32_t limit) {
  std::string payload;
  PutFixed32(&payload, limit);
  AppendFrame(out, Op::kSlowLog, false, kOk, id, payload);
}

void EncodeMetricsPromRequest(std::string* out, uint64_t id) {
  AppendFrame(out, Op::kMetricsProm, false, kOk, id, Slice());
}

void EncodeSnapshotRequest(std::string* out, uint64_t id, uint32_t ttl_ms) {
  std::string payload;
  PutFixed32(&payload, ttl_ms);
  AppendFrame(out, Op::kSnapshot, false, kOk, id, payload);
}

void EncodeSnapshotReleaseRequest(std::string* out, uint64_t id,
                                  uint64_t snapshot_id) {
  std::string payload;
  PutFixed64(&payload, snapshot_id);
  AppendFrame(out, Op::kSnapshotRelease, false, kOk, id, payload);
}

// Response encoders. --------------------------------------------------

void EncodeOkResponse(std::string* out, Op op, uint64_t id,
                      const Slice& payload, const TraceContext& tc) {
  AppendFrame(out, op, true, kOk, id, payload, tc);
}

void EncodeErrorResponse(std::string* out, Op op, uint64_t id,
                         uint16_t code, const Slice& message,
                         const TraceContext& tc) {
  AppendFrame(out, op, true, code, id, message, tc);
}

void EncodeScanPayload(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  PutFixed32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    PutFixed32(out, static_cast<uint32_t>(key.size()));
    out->append(key);
    PutFixed32(out, static_cast<uint32_t>(value.size()));
    out->append(value);
  }
}

// Payload parsers. ----------------------------------------------------

namespace {

Status ParseKey(Slice* in, Slice* key) {
  uint32_t klen = 0;
  if (!GetU32(in, &klen)) return DecodeError("truncated key length");
  if (klen > kMaxKeyBytes) return DecodeError("key too large");
  if (!GetBytes(in, klen, key)) return DecodeError("truncated key");
  return Status::OK();
}

Status ParseValue(Slice* in, Slice* value) {
  uint32_t vlen = 0;
  if (!GetU32(in, &vlen)) return DecodeError("truncated value length");
  if (!GetBytes(in, vlen, value)) return DecodeError("truncated value");
  return Status::OK();
}

Status ExpectEmpty(const Slice& in) {
  if (!in.empty()) return DecodeError("trailing bytes in payload");
  return Status::OK();
}

}  // namespace

Status ParseGetRequest(const Slice& payload, GetRequest* out) {
  Slice in = payload;
  Status s = ParseKey(&in, &out->key);
  if (!s.ok()) return s;
  return ExpectEmpty(in);
}

Status ParsePutRequest(const Slice& payload, PutRequest* out) {
  Slice in = payload;
  Status s = ParseKey(&in, &out->key);
  if (!s.ok()) return s;
  s = ParseValue(&in, &out->value);
  if (!s.ok()) return s;
  return ExpectEmpty(in);
}

Status ParseDeleteRequest(const Slice& payload, DeleteRequest* out) {
  Slice in = payload;
  Status s = ParseKey(&in, &out->key);
  if (!s.ok()) return s;
  return ExpectEmpty(in);
}

Status ParseMultiPutRequest(const Slice& payload, MultiPutRequest* out) {
  Slice in = payload;
  uint32_t count = 0;
  if (!GetU32(&in, &count)) return DecodeError("truncated batch count");
  if (count > kMaxBatchCount) return DecodeError("batch count too large");
  // Each op costs at least 10 bytes on the wire; a count announcing
  // more ops than the payload could hold is rejected before reserving.
  if (static_cast<uint64_t>(count) * 10 > in.size()) {
    return DecodeError("batch count exceeds payload");
  }
  out->ops.clear();
  out->ops.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    KVStore::BatchOp op;
    uint8_t is_delete = 0;
    if (!GetU8(&in, &is_delete)) return DecodeError("truncated batch op");
    if (is_delete > 1) return DecodeError("bad is_delete flag");
    op.is_delete = is_delete != 0;
    Slice key, value;
    Status s = ParseKey(&in, &key);
    if (!s.ok()) return s;
    s = ParseValue(&in, &value);
    if (!s.ok()) return s;
    if (op.is_delete && !value.empty()) {
      return DecodeError("delete op carries a value");
    }
    op.key = key.ToString();
    op.value = value.ToString();
    out->ops.push_back(std::move(op));
  }
  return ExpectEmpty(in);
}

Status ParseScanRequest(const Slice& payload, ScanRequest* out) {
  Slice in = payload;
  Status s = ParseKey(&in, &out->start);
  if (!s.ok()) return s;
  if (!GetU32(&in, &out->limit)) return DecodeError("truncated scan limit");
  return ExpectEmpty(in);
}

Status ParseSlowLogRequest(const Slice& payload, SlowLogRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->limit)) {
    return DecodeError("truncated slowlog limit");
  }
  return ExpectEmpty(in);
}

Status ParseSnapshotRequest(const Slice& payload, SnapshotRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->ttl_ms)) {
    return DecodeError("truncated snapshot ttl");
  }
  return ExpectEmpty(in);
}

Status ParseSnapshotReleaseRequest(const Slice& payload,
                                   SnapshotReleaseRequest* out) {
  Slice in = payload;
  if (!GetU64(&in, &out->snapshot_id)) {
    return DecodeError("truncated snapshot id");
  }
  return ExpectEmpty(in);
}

void EncodeSnapshotPayload(std::string* out, const SnapshotResponse& resp) {
  PutFixed64(out, resp.snapshot_id);
  PutFixed32(out, static_cast<uint32_t>(resp.shard_seqs.size()));
  for (uint64_t seq : resp.shard_seqs) {
    PutFixed64(out, seq);
  }
}

Status ParseSnapshotPayload(const Slice& payload, SnapshotResponse* out) {
  Slice in = payload;
  if (!GetU64(&in, &out->snapshot_id)) {
    return DecodeError("truncated snapshot id");
  }
  uint32_t count = 0;
  if (!GetU32(&in, &count)) return DecodeError("truncated shard count");
  if (static_cast<uint64_t>(count) * 8 > in.size()) {
    return DecodeError("shard count exceeds payload");
  }
  out->shard_seqs.clear();
  out->shard_seqs.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    uint64_t seq = 0;
    if (!GetU64(&in, &seq)) return DecodeError("truncated shard sequence");
    out->shard_seqs.push_back(seq);
  }
  return ExpectEmpty(in);
}

// Replication ops. ----------------------------------------------------

void EncodeReplOps(std::string* out,
                   const std::vector<KVStore::BatchOp>& ops) {
  PutFixed32(out, static_cast<uint32_t>(ops.size()));
  for (const KVStore::BatchOp& op : ops) {
    out->push_back(op.is_delete ? 1 : 0);
    AppendKey(out, op.key);
    PutFixed32(out, static_cast<uint32_t>(op.value.size()));
    out->append(op.value);
  }
}

Status ParseReplOps(const Slice& blob,
                    std::vector<KVStore::BatchOp>* out) {
  // Same body format as MULTIPUT, same validation rules.
  MultiPutRequest req;
  Status s = ParseMultiPutRequest(blob, &req);
  if (!s.ok()) return s;
  *out = std::move(req.ops);
  return Status::OK();
}

void EncodeReplSubscribeRequest(std::string* out, uint64_t id,
                                const ReplSubscribeRequest& req) {
  std::string payload;
  PutFixed32(&payload, req.shard);
  PutFixed64(&payload, req.epoch);
  AppendKey(&payload, req.follower_id);
  AppendFrame(out, Op::kReplSubscribe, false, kOk, id, payload);
}

void EncodeReplBatchRequest(std::string* out, uint64_t id,
                            const ReplBatchRequest& req) {
  std::string payload;
  PutFixed32(&payload, req.shard);
  PutFixed64(&payload, req.epoch);
  PutFixed64(&payload, req.from_seq);
  PutFixed32(&payload, req.max_batches);
  AppendFrame(out, Op::kReplBatch, false, kOk, id, payload);
}

void EncodeReplAckRequest(std::string* out, uint64_t id,
                          const ReplAckRequest& req) {
  std::string payload;
  PutFixed32(&payload, req.shard);
  PutFixed64(&payload, req.epoch);
  AppendKey(&payload, req.follower_id);
  PutFixed64(&payload, req.acked_seq);
  AppendFrame(out, Op::kReplAck, false, kOk, id, payload);
}

void EncodeReplSnapshotRequest(std::string* out, uint64_t id,
                               const ReplSnapshotRequest& req) {
  std::string payload;
  PutFixed32(&payload, req.shard);
  PutFixed64(&payload, req.epoch);
  AppendKey(&payload, req.cursor);
  PutFixed32(&payload, req.max_entries);
  AppendFrame(out, Op::kReplSnapshot, false, kOk, id, payload);
}

void EncodePromoteRequest(std::string* out, uint64_t id, uint32_t shard) {
  std::string payload;
  PutFixed32(&payload, shard);
  AppendFrame(out, Op::kPromote, false, kOk, id, payload);
}

void EncodeReplSubscribePayload(std::string* out,
                                const ReplSubscribeResponse& resp) {
  PutFixed64(out, resp.epoch);
  PutFixed64(out, resp.log_start);
  PutFixed64(out, resp.log_head);
  PutFixed64(out, resp.log_run_id);
}

void EncodeReplBatchPayload(std::string* out,
                            const ReplBatchResponse& resp) {
  PutFixed64(out, resp.epoch);
  PutFixed64(out, resp.log_head);
  PutFixed64(out, resp.log_run_id);
  PutFixed32(out, static_cast<uint32_t>(resp.records.size()));
  for (const ReplRecord& rec : resp.records) {
    PutFixed64(out, rec.log_seq);
    PutFixed64(out, rec.last_db_seq);
    PutFixed32(out, static_cast<uint32_t>(rec.ops_blob.size()));
    out->append(rec.ops_blob);
  }
}

void EncodeReplSnapshotPayload(std::string* out,
                               const ReplSnapshotResponse& resp) {
  PutFixed64(out, resp.epoch);
  PutFixed64(out, resp.log_pos);
  PutFixed64(out, resp.log_run_id);
  out->push_back(resp.done ? 1 : 0);
  EncodeScanPayload(out, resp.entries);
}

void EncodePromotePayload(std::string* out, uint64_t new_epoch) {
  PutFixed64(out, new_epoch);
}

Status ParseReplSubscribeRequest(const Slice& payload,
                                 ReplSubscribeRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->shard)) return DecodeError("truncated shard");
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  Status s = ParseKey(&in, &out->follower_id);
  if (!s.ok()) return s;
  return ExpectEmpty(in);
}

Status ParseReplBatchRequest(const Slice& payload, ReplBatchRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->shard)) return DecodeError("truncated shard");
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  if (!GetU64(&in, &out->from_seq)) {
    return DecodeError("truncated from_seq");
  }
  if (!GetU32(&in, &out->max_batches)) {
    return DecodeError("truncated max_batches");
  }
  return ExpectEmpty(in);
}

Status ParseReplAckRequest(const Slice& payload, ReplAckRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->shard)) return DecodeError("truncated shard");
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  Status s = ParseKey(&in, &out->follower_id);
  if (!s.ok()) return s;
  if (!GetU64(&in, &out->acked_seq)) {
    return DecodeError("truncated acked_seq");
  }
  return ExpectEmpty(in);
}

Status ParseReplSnapshotRequest(const Slice& payload,
                                ReplSnapshotRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->shard)) return DecodeError("truncated shard");
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  Status s = ParseKey(&in, &out->cursor);
  if (!s.ok()) return s;
  if (!GetU32(&in, &out->max_entries)) {
    return DecodeError("truncated max_entries");
  }
  return ExpectEmpty(in);
}

Status ParsePromoteRequest(const Slice& payload, PromoteRequest* out) {
  Slice in = payload;
  if (!GetU32(&in, &out->shard)) return DecodeError("truncated shard");
  return ExpectEmpty(in);
}

Status ParseReplSubscribePayload(const Slice& payload,
                                 ReplSubscribeResponse* out) {
  Slice in = payload;
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  if (!GetU64(&in, &out->log_start)) {
    return DecodeError("truncated log_start");
  }
  if (!GetU64(&in, &out->log_head)) {
    return DecodeError("truncated log_head");
  }
  if (!GetU64(&in, &out->log_run_id)) {
    return DecodeError("truncated log_run_id");
  }
  return ExpectEmpty(in);
}

Status ParseReplBatchPayload(const Slice& payload,
                             ReplBatchResponse* out) {
  Slice in = payload;
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  if (!GetU64(&in, &out->log_head)) {
    return DecodeError("truncated log_head");
  }
  if (!GetU64(&in, &out->log_run_id)) {
    return DecodeError("truncated log_run_id");
  }
  uint32_t count = 0;
  if (!GetU32(&in, &count)) return DecodeError("truncated record count");
  // Each record costs at least 20 bytes on the wire.
  if (static_cast<uint64_t>(count) * 20 > in.size()) {
    return DecodeError("record count exceeds payload");
  }
  out->records.clear();
  out->records.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    ReplRecord rec;
    if (!GetU64(&in, &rec.log_seq)) {
      return DecodeError("truncated log_seq");
    }
    if (!GetU64(&in, &rec.last_db_seq)) {
      return DecodeError("truncated last_db_seq");
    }
    uint32_t blob_len = 0;
    if (!GetU32(&in, &blob_len)) return DecodeError("truncated blob length");
    Slice blob;
    if (!GetBytes(&in, blob_len, &blob)) {
      return DecodeError("truncated ops blob");
    }
    // Validate the blob eagerly so a garbage record fails at the wire
    // boundary, not during apply.
    std::vector<KVStore::BatchOp> ops;
    Status s = ParseReplOps(blob, &ops);
    if (!s.ok()) return s;
    rec.ops_blob = blob.ToString();
    out->records.push_back(std::move(rec));
  }
  return ExpectEmpty(in);
}

Status ParseReplSnapshotPayload(const Slice& payload,
                                ReplSnapshotResponse* out) {
  Slice in = payload;
  if (!GetU64(&in, &out->epoch)) return DecodeError("truncated epoch");
  if (!GetU64(&in, &out->log_pos)) return DecodeError("truncated log_pos");
  if (!GetU64(&in, &out->log_run_id)) {
    return DecodeError("truncated log_run_id");
  }
  uint8_t done = 0;
  if (!GetU8(&in, &done)) return DecodeError("truncated done flag");
  if (done > 1) return DecodeError("bad done flag");
  out->done = done != 0;
  return ParseScanPayload(in, &out->entries);
}

Status ParsePromotePayload(const Slice& payload, uint64_t* new_epoch) {
  Slice in = payload;
  if (!GetU64(&in, new_epoch)) return DecodeError("truncated epoch");
  return ExpectEmpty(in);
}

Status ParseScanPayload(
    const Slice& payload,
    std::vector<std::pair<std::string, std::string>>* out) {
  Slice in = payload;
  uint32_t count = 0;
  if (!GetU32(&in, &count)) return DecodeError("truncated scan count");
  if (static_cast<uint64_t>(count) * 8 > in.size()) {
    return DecodeError("scan count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice key, value;
    Status s = ParseKey(&in, &key);
    if (!s.ok()) return s;
    s = ParseValue(&in, &value);
    if (!s.ok()) return s;
    out->emplace_back(key.ToString(), value.ToString());
  }
  return ExpectEmpty(in);
}

}  // namespace net
}  // namespace cachekv
