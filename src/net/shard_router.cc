#include "net/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "util/coding.h"
#include "util/hash.h"

namespace cachekv {
namespace net {

namespace {

constexpr uint32_t kShardMapMagic = 0x50414d53;  // "SMAP" LE
/// v1: seed/shards/vnodes/endpoints/ring. v2 appends per-shard
/// replication state (epoch, primary flag, replica endpoints). Encode
/// always emits v2; Decode accepts both.
constexpr uint32_t kShardMapVersion = 2;
constexpr uint32_t kShardMapMinVersion = 1;
constexpr uint32_t kMaxReplicas = 64;
/// Safety bound on decoded maps: 4096 shards * 1024 vnodes is far past
/// anything this repo deploys, and keeps hostile images from reserving
/// gigabytes.
constexpr uint32_t kMaxShards = 4096;
constexpr uint32_t kMaxVnodes = 1024;
constexpr size_t kMaxEndpointBytes = 256;

/// Ring point for (seed, shard, vnode): one well-mixed 64-bit value.
/// Mix twice so shard/vnode structure cannot survive into the ring.
uint64_t RingPoint(uint64_t seed, uint32_t shard, uint32_t vnode) {
  return Mix64(seed ^ Mix64((static_cast<uint64_t>(shard) << 32) |
                            static_cast<uint64_t>(vnode)));
}

Status DecodeError(const char* what) {
  return Status::Corruption("shard map", what);
}

bool GetU32(Slice* in, uint32_t* out) {
  if (in->size() < 4) return false;
  *out = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

bool GetU64(Slice* in, uint64_t* out) {
  if (in->size() < 8) return false;
  *out = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

}  // namespace

ShardRouter::ShardRouter() {
  map_.num_shards = 1;
  // One point suffices for identity routing, and keeping
  // vnodes_per_shard consistent with the ring keeps the Encode image
  // round-trippable through Decode's count validation.
  map_.vnodes_per_shard = 1;
  ring_.push_back({0, 0});
}

Status ShardRouter::Build(const ShardMap& map, ShardRouter* out) {
  if (map.num_shards < 1 || map.num_shards > kMaxShards) {
    return Status::InvalidArgument("shard map", "bad num_shards");
  }
  if (map.vnodes_per_shard < 1 || map.vnodes_per_shard > kMaxVnodes) {
    return Status::InvalidArgument("shard map", "bad vnodes_per_shard");
  }
  if (!map.endpoints.empty() &&
      map.endpoints.size() != map.num_shards) {
    return Status::InvalidArgument("shard map",
                                   "endpoints must match num_shards");
  }
  if ((!map.epochs.empty() && map.epochs.size() != map.num_shards) ||
      (!map.primaries.empty() &&
       map.primaries.size() != map.num_shards) ||
      (!map.replicas.empty() && map.replicas.size() != map.num_shards)) {
    return Status::InvalidArgument(
        "shard map", "replication vectors must match num_shards");
  }
  out->map_ = map;
  out->ring_.clear();
  out->ring_.reserve(static_cast<size_t>(map.num_shards) *
                     map.vnodes_per_shard);
  for (uint32_t shard = 0; shard < map.num_shards; shard++) {
    for (uint32_t v = 0; v < map.vnodes_per_shard; v++) {
      out->ring_.push_back({RingPoint(map.seed, shard, v), shard});
    }
  }
  std::sort(out->ring_.begin(), out->ring_.end(),
            [](const Point& a, const Point& b) {
              return a.hash < b.hash ||
                     (a.hash == b.hash && a.shard < b.shard);
            });
  // 64-bit point collisions are ~impossible at these ring sizes, but a
  // duplicate would make ShardOf depend on sort stability; break the
  // tie deterministically by nudging the later point.
  for (size_t i = 1; i < out->ring_.size(); i++) {
    if (out->ring_[i].hash <= out->ring_[i - 1].hash) {
      out->ring_[i].hash = out->ring_[i - 1].hash + 1;
    }
  }
  return Status::OK();
}

Status ShardRouter::SetEndpoints(std::vector<std::string> endpoints) {
  if (!endpoints.empty() && endpoints.size() != map_.num_shards) {
    return Status::InvalidArgument("shard map",
                                   "endpoints must match num_shards");
  }
  map_.endpoints = std::move(endpoints);
  return Status::OK();
}

Status ShardRouter::SetReplication(
    std::vector<uint64_t> epochs, std::vector<uint8_t> primaries,
    std::vector<std::vector<std::string>> replicas) {
  if ((!epochs.empty() && epochs.size() != map_.num_shards) ||
      (!primaries.empty() && primaries.size() != map_.num_shards) ||
      (!replicas.empty() && replicas.size() != map_.num_shards)) {
    return Status::InvalidArgument(
        "shard map", "replication vectors must match num_shards");
  }
  map_.epochs = std::move(epochs);
  map_.primaries = std::move(primaries);
  map_.replicas = std::move(replicas);
  return Status::OK();
}

uint32_t ShardRouter::ShardOf(const Slice& key) const {
  if (ring_.size() == 1) return ring_[0].shard;
  const uint64_t h =
      Hash64(key.data(), key.size(), map_.seed ^ 0x9e3779b97f4a7c15ULL);
  // Owner = first point clockwise at or after the key's hash.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->shard;
}

void ShardRouter::Encode(std::string* out) const {
  PutFixed32(out, kShardMapMagic);
  PutFixed32(out, kShardMapVersion);
  PutFixed64(out, map_.seed);
  PutFixed32(out, map_.num_shards);
  PutFixed32(out, map_.vnodes_per_shard);
  PutFixed32(out, static_cast<uint32_t>(map_.endpoints.size()));
  for (const std::string& ep : map_.endpoints) {
    PutFixed32(out, static_cast<uint32_t>(ep.size()));
    out->append(ep);
  }
  PutFixed32(out, static_cast<uint32_t>(ring_.size()));
  for (const Point& p : ring_) {
    PutFixed64(out, p.hash);
    PutFixed32(out, p.shard);
  }
  // v2 replication section: one row per shard, with v1-equivalent
  // defaults (epoch 0, primary here, no replicas) when the vectors are
  // empty.
  for (uint32_t s = 0; s < map_.num_shards; s++) {
    PutFixed64(out, s < map_.epochs.size() ? map_.epochs[s] : 0);
    out->push_back(map_.primaries.empty()
                       ? 1
                       : static_cast<char>(map_.primaries[s] ? 1 : 0));
    const size_t nrep =
        s < map_.replicas.size() ? map_.replicas[s].size() : 0;
    PutFixed32(out, static_cast<uint32_t>(nrep));
    for (size_t r = 0; r < nrep; r++) {
      const std::string& ep = map_.replicas[s][r];
      PutFixed32(out, static_cast<uint32_t>(ep.size()));
      out->append(ep);
    }
  }
}

Status ShardRouter::Decode(const Slice& in, ShardRouter* out) {
  Slice cursor = in;
  uint32_t magic = 0, version = 0;
  if (!GetU32(&cursor, &magic) || magic != kShardMapMagic) {
    return DecodeError("bad magic");
  }
  if (!GetU32(&cursor, &version) || version < kShardMapMinVersion ||
      version > kShardMapVersion) {
    return DecodeError("unsupported version");
  }
  ShardMap map;
  uint32_t endpoint_count = 0;
  if (!GetU64(&cursor, &map.seed) ||
      !GetU32(&cursor, &map.num_shards) ||
      !GetU32(&cursor, &map.vnodes_per_shard) ||
      !GetU32(&cursor, &endpoint_count)) {
    return DecodeError("truncated header");
  }
  if (map.num_shards < 1 || map.num_shards > kMaxShards) {
    return DecodeError("bad num_shards");
  }
  if (map.vnodes_per_shard < 1 || map.vnodes_per_shard > kMaxVnodes) {
    return DecodeError("bad vnodes_per_shard");
  }
  if (endpoint_count != 0 && endpoint_count != map.num_shards) {
    return DecodeError("endpoint count mismatch");
  }
  map.endpoints.reserve(endpoint_count);
  for (uint32_t i = 0; i < endpoint_count; i++) {
    uint32_t len = 0;
    if (!GetU32(&cursor, &len) || len > kMaxEndpointBytes ||
        cursor.size() < len) {
      return DecodeError("truncated endpoint");
    }
    map.endpoints.emplace_back(cursor.data(), len);
    cursor.remove_prefix(len);
  }
  uint32_t ring_count = 0;
  if (!GetU32(&cursor, &ring_count)) {
    return DecodeError("truncated ring count");
  }
  if (ring_count !=
      static_cast<uint64_t>(map.num_shards) * map.vnodes_per_shard) {
    return DecodeError("ring count mismatch");
  }
  std::vector<Point> ring;
  ring.reserve(ring_count);
  std::vector<uint32_t> per_shard(map.num_shards, 0);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < ring_count; i++) {
    Point p;
    if (!GetU64(&cursor, &p.hash) || !GetU32(&cursor, &p.shard)) {
      return DecodeError("truncated ring point");
    }
    if (p.shard >= map.num_shards) return DecodeError("point shard OOB");
    if (i > 0 && p.hash <= prev) {
      return DecodeError("ring points not strictly sorted");
    }
    prev = p.hash;
    per_shard[p.shard]++;
    ring.push_back(p);
  }
  if (version >= 2) {
    map.epochs.reserve(map.num_shards);
    map.primaries.reserve(map.num_shards);
    map.replicas.reserve(map.num_shards);
    for (uint32_t s = 0; s < map.num_shards; s++) {
      uint64_t epoch = 0;
      if (!GetU64(&cursor, &epoch)) {
        return DecodeError("truncated repl epoch");
      }
      if (cursor.empty()) return DecodeError("truncated primary flag");
      const uint8_t primary = static_cast<uint8_t>(cursor.data()[0]);
      cursor.remove_prefix(1);
      if (primary > 1) return DecodeError("bad primary flag");
      uint32_t nrep = 0;
      if (!GetU32(&cursor, &nrep) || nrep > kMaxReplicas) {
        return DecodeError("bad replica count");
      }
      std::vector<std::string> reps;
      reps.reserve(nrep);
      for (uint32_t r = 0; r < nrep; r++) {
        uint32_t len = 0;
        if (!GetU32(&cursor, &len) || len > kMaxEndpointBytes ||
            cursor.size() < len) {
          return DecodeError("truncated replica endpoint");
        }
        reps.emplace_back(cursor.data(), len);
        cursor.remove_prefix(len);
      }
      map.epochs.push_back(epoch);
      map.primaries.push_back(primary);
      map.replicas.push_back(std::move(reps));
    }
  }
  if (!cursor.empty()) return DecodeError("trailing bytes");
  for (uint32_t s = 0; s < map.num_shards; s++) {
    if (per_shard[s] == 0) return DecodeError("shard owns no ring point");
  }
  out->map_ = std::move(map);
  out->ring_ = std::move(ring);
  return Status::OK();
}

Status ShardRouter::SaveToFile(const std::string& path) const {
  std::string image;
  Encode(&image);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("shard map open for write", path);
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != image.size() || !flushed) {
    return Status::IOError("shard map write", path);
  }
  return Status::OK();
}

Status ShardRouter::LoadFromFile(const std::string& path,
                                 ShardRouter* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("shard map", path);
  }
  std::string image;
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.append(buf, got);
  }
  std::fclose(f);
  return Decode(image, out);
}

void MergeShardScans(
    std::vector<std::vector<std::pair<std::string, std::string>>>&&
        per_shard,
    size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Heap of (shard, next index), ordered by the entry key.
  struct Cursor {
    size_t shard;
    size_t index;
  };
  auto key_at = [&per_shard](const Cursor& c) -> const std::string& {
    return per_shard[c.shard][c.index].first;
  };
  auto greater = [&key_at](const Cursor& a, const Cursor& b) {
    return key_at(a) > key_at(b);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)>
      heap(greater);
  for (size_t s = 0; s < per_shard.size(); s++) {
    if (!per_shard[s].empty()) heap.push({s, 0});
  }
  while (!heap.empty() && (limit == 0 || out->size() < limit)) {
    Cursor c = heap.top();
    heap.pop();
    out->push_back(std::move(per_shard[c.shard][c.index]));
    if (++c.index < per_shard[c.shard].size()) heap.push(c);
  }
}

}  // namespace net
}  // namespace cachekv
