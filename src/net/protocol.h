#ifndef CACHEKV_NET_PROTOCOL_H_
#define CACHEKV_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/kvstore.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {
namespace net {

/// Wire protocol of the CacheKV network service (docs/SERVER.md).
///
/// Every message — request or response — is one length-prefixed frame:
///
///   offset  size  field
///   0       4     body_len   (u32 LE; bytes after this field, >= 12)
///   4       1     opcode     (Op below)
///   5       1     flags      (bit 0: response; bit 1: traced)
///   6       2     code       (u16 LE; WireCode; 0 in requests)
///   8       8     request_id (u64 LE; echoed verbatim in the response)
///   16      ...   payload    (body_len - 12 bytes, op-specific)
///
/// All integers are little-endian fixed width. Requests on one
/// connection may be pipelined: the server replies to every request,
/// in request order, carrying the request's id.
///
/// Traced frames (docs/OBSERVABILITY.md "Trace-context propagation"):
/// when flags bit 1 is set, the payload begins with a 16-byte trace
/// context — u64 trace_id, then u64 aux — and the op-specific payload
/// follows. `aux` is 0 in requests; in responses it carries the
/// server-side service time of the request in nanoseconds, so clients
/// can split client-observed latency into server time + network/queue
/// time. FrameDecoder strips the context into Frame::trace_id /
/// Frame::server_ns, so payload parsers see the same bytes either way
/// and traced frames pipeline like any other. A traced frame whose
/// body cannot hold the context is a decode error; flag bits above
/// bit 1 remain reserved (decode error when set).
///
/// Payload layouts (after the optional trace context):
///
///   GET  req:  u32 klen, key            resp: value bytes
///   PUT  req:  u32 klen, key, u32 vlen, value
///   DEL  req:  u32 klen, key
///   MPUT req:  u32 count, count * { u8 is_delete, u32 klen, key,
///                                   u32 vlen, value }
///   SCAN req:  u32 start_klen, start key, u32 limit
///        resp: u32 count, count * { u32 klen, key, u32 vlen, value }
///   STATS req: empty                    resp: metrics JSON (UTF-8)
///   PING req:  empty                    resp: empty
///   SHARDMAP req: empty                 resp: ShardRouter::Encode image
///        (net/shard_router.h; single-DB servers answer a 1-shard map)
///   SLOWLOG req: u32 limit (0 = all)    resp: slow-log JSON (UTF-8)
///   METRICSPROM req: empty              resp: Prometheus text (UTF-8)
///
/// Error responses (code != kOk) carry a human-readable message as the
/// payload regardless of opcode.

enum class Op : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kMultiPut = 4,
  kScan = 5,
  kStats = 6,
  kPing = 7,
  kShardMap = 8,
  kSlowLog = 9,
  kMetricsProm = 10,
};

/// Frame flag bits. Anything else is reserved and rejected.
constexpr uint8_t kFlagResponse = 0x01;
constexpr uint8_t kFlagTraced = 0x02;

/// True when `raw` is a defined opcode.
bool ValidOp(uint8_t raw);
const char* OpName(Op op);

/// Response status codes. 0-7 mirror Status codes so either side can
/// translate losslessly; 100+ are protocol-level conditions with no
/// Status equivalent.
enum WireCode : uint16_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kBusy = 6,
  kOutOfSpace = 7,
  /// The store degraded to read-only after a background failure
  /// (docs/ROBUSTNESS.md); writes are rejected until the DB reopens.
  kReadOnly = 100,
  /// The request frame or payload failed to parse; the server closes
  /// the connection after sending this.
  kDecodeError = 101,
  /// The request exceeded a server limit (frame size, scan limit).
  kTooLarge = 102,
  /// Valid frame, unknown opcode (client newer than server).
  kUnknownOp = 103,
};

const char* WireCodeName(uint16_t code);

/// Response code for `s` (OK => kOk, NotFound => kNotFound, ...).
uint16_t WireCodeOf(const Status& s);

/// Reconstructs a Status from a response code + message. kReadOnly maps
/// to IOError (matching what DB::Put returns locally when degraded);
/// kDecodeError/kTooLarge/kUnknownOp map to InvalidArgument.
Status StatusFromWire(uint16_t code, const Slice& message);

/// Fixed sizes of the frame layout above.
constexpr size_t kFrameHeaderBytes = 16;  // length field + fixed body
constexpr size_t kFrameFixedBody = 12;    // opcode..request_id
/// Bytes of the trace context prefixed to a traced frame's payload.
constexpr size_t kTraceContextBytes = 16;  // trace_id + aux
/// Default cap on body_len; a peer announcing more is a decode error
/// (rejected before any allocation).
constexpr size_t kDefaultMaxFrameBody = 16u << 20;
/// Individual field caps, enforced by the payload parsers.
constexpr size_t kMaxKeyBytes = 64u << 10;
constexpr uint32_t kMaxBatchCount = 1u << 20;
constexpr uint32_t kMaxScanLimit = 1u << 20;

/// One decoded frame. `payload` points into the decoder's buffer and is
/// valid until the next Feed call. For traced frames the trace context
/// has already been stripped: `payload` is the op-specific bytes and
/// trace_id/server_ns hold the context fields.
struct Frame {
  Op op = Op::kPing;
  bool response = false;
  bool traced = false;
  uint16_t code = kOk;
  uint64_t request_id = 0;
  uint64_t trace_id = 0;   // valid when traced
  uint64_t server_ns = 0;  // aux field; service time in responses
  Slice payload;
};

/// Trace context attached to an encoded frame. Inert by default so
/// existing call sites encode untraced frames unchanged.
struct TraceContext {
  bool traced = false;
  uint64_t trace_id = 0;
  /// Response aux: server-side service time in nanoseconds (0 in
  /// requests).
  uint64_t server_ns = 0;
};

/// Incremental frame decoder: feed bytes in arbitrary chunks (a single
/// byte at a time is fine), pull complete frames out. Malformed input —
/// undersized/oversized body_len, unknown opcode — latches a permanent
/// error; the caller should close the connection. The decoder never
/// reads past the bytes it was fed and never allocates proportionally
/// to a hostile length announcement.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_body = kDefaultMaxFrameBody);

  /// Appends raw bytes from the peer.
  void Feed(const char* data, size_t len);
  void Feed(const Slice& data) { Feed(data.data(), data.size()); }

  enum class Result { kFrame, kNeedMore, kError };

  /// Extracts the next complete frame. kFrame: *out stays valid until
  /// the next Feed call (Next never moves the buffer, so a batch of
  /// frames can be pulled and processed together). kNeedMore: feed
  /// more bytes. kError: the stream is corrupt (error() says why);
  /// every later call returns kError too.
  Result Next(Frame* out);

  const std::string& error() const { return error_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_body_;  // non-const so decoders are re-assignable
  std::string buf_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

// Request encoding (client side). Keyed ops accept an optional trace
// context (sampled requests). -----------------------------------------

void EncodeGetRequest(std::string* out, uint64_t id, const Slice& key,
                      const TraceContext& tc = TraceContext());
void EncodePutRequest(std::string* out, uint64_t id, const Slice& key,
                      const Slice& value,
                      const TraceContext& tc = TraceContext());
void EncodeDeleteRequest(std::string* out, uint64_t id, const Slice& key,
                         const TraceContext& tc = TraceContext());
void EncodeMultiPutRequest(std::string* out, uint64_t id,
                           const std::vector<KVStore::BatchOp>& batch,
                           const TraceContext& tc = TraceContext());
void EncodeScanRequest(std::string* out, uint64_t id, const Slice& start,
                       uint32_t limit,
                       const TraceContext& tc = TraceContext());
void EncodeStatsRequest(std::string* out, uint64_t id);
void EncodePingRequest(std::string* out, uint64_t id);
void EncodeShardMapRequest(std::string* out, uint64_t id);
/// SLOWLOG request; `limit` caps the returned entries (0 = all).
void EncodeSlowLogRequest(std::string* out, uint64_t id, uint32_t limit);
void EncodeMetricsPromRequest(std::string* out, uint64_t id);

// Response encoding (server side). -----------------------------------

/// Success response with an op-specific payload (empty for writes).
/// Responses to traced requests echo the trace context with the
/// service time in `tc.server_ns`.
void EncodeOkResponse(std::string* out, Op op, uint64_t id,
                      const Slice& payload = Slice(),
                      const TraceContext& tc = TraceContext());
/// Error response; `message` becomes the payload.
void EncodeErrorResponse(std::string* out, Op op, uint64_t id,
                         uint16_t code, const Slice& message,
                         const TraceContext& tc = TraceContext());
/// Encodes the SCAN success payload.
void EncodeScanPayload(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& entries);

// Request payload parsing (server side). All parsers are bounds-checked
// against the payload slice; they never read outside it. -------------

struct GetRequest {
  Slice key;
};
struct PutRequest {
  Slice key;
  Slice value;
};
struct DeleteRequest {
  Slice key;
};
struct MultiPutRequest {
  std::vector<KVStore::BatchOp> ops;
};
struct ScanRequest {
  Slice start;
  uint32_t limit = 0;
};
struct SlowLogRequest {
  uint32_t limit = 0;  // 0 = all retained entries
};

Status ParseGetRequest(const Slice& payload, GetRequest* out);
Status ParsePutRequest(const Slice& payload, PutRequest* out);
Status ParseDeleteRequest(const Slice& payload, DeleteRequest* out);
Status ParseMultiPutRequest(const Slice& payload, MultiPutRequest* out);
Status ParseScanRequest(const Slice& payload, ScanRequest* out);
Status ParseSlowLogRequest(const Slice& payload, SlowLogRequest* out);

/// Parses a SCAN success payload (client side).
Status ParseScanPayload(
    const Slice& payload,
    std::vector<std::pair<std::string, std::string>>* out);

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_PROTOCOL_H_
