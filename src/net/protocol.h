#ifndef CACHEKV_NET_PROTOCOL_H_
#define CACHEKV_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/kvstore.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {
namespace net {

/// Wire protocol of the CacheKV network service (docs/SERVER.md).
///
/// Every message — request or response — is one length-prefixed frame:
///
///   offset  size  field
///   0       4     body_len   (u32 LE; bytes after this field, >= 12)
///   4       1     opcode     (Op below)
///   5       1     flags      (bit 0: response; bit 1: traced;
///                             bit 2: at-snapshot, requests only)
///   6       2     code       (u16 LE; WireCode; 0 in requests)
///   8       8     request_id (u64 LE; echoed verbatim in the response)
///   16      ...   payload    (body_len - 12 bytes, op-specific)
///
/// All integers are little-endian fixed width. Requests on one
/// connection may be pipelined: the server replies to every request,
/// in request order, carrying the request's id.
///
/// Traced frames (docs/OBSERVABILITY.md "Trace-context propagation"):
/// when flags bit 1 is set, the payload begins with a 16-byte trace
/// context — u64 trace_id, then u64 aux — and the op-specific payload
/// follows. `aux` is 0 in requests; in responses it carries the
/// server-side service time of the request in nanoseconds, so clients
/// can split client-observed latency into server time + network/queue
/// time. FrameDecoder strips the context into Frame::trace_id /
/// Frame::server_ns, so payload parsers see the same bytes either way
/// and traced frames pipeline like any other. A traced frame whose
/// body cannot hold the context is a decode error.
///
/// Payload layouts (after the optional trace context):
///
/// At-snapshot frames (docs/SNAPSHOTS.md): when flags bit 2 is set on a
/// request, the payload begins with a u64 snapshot id — AFTER the trace
/// context when bit 1 is also set — and the op-specific payload
/// follows. The id names a server-side pinned snapshot (SNAPSHOT op
/// below); GET and SCAN then read at the pinned sequence numbers
/// instead of the latest committed state. FrameDecoder strips the id
/// into Frame::snapshot_id, so payload parsers see the same bytes
/// either way. Bit 2 on a response is a decode error (responses never
/// carry the prefix), as is a body too short to hold it; flag bits
/// above bit 2 remain reserved (decode error when set).
///
/// Payload layouts (after the optional trace context / snapshot id):
///
///   GET  req:  u32 klen, key            resp: value bytes
///   PUT  req:  u32 klen, key, u32 vlen, value
///   DEL  req:  u32 klen, key
///   MPUT req:  u32 count, count * { u8 is_delete, u32 klen, key,
///                                   u32 vlen, value }
///   SCAN req:  u32 start_klen, start key, u32 limit
///        resp: u32 count, count * { u32 klen, key, u32 vlen, value }
///   STATS req: empty                    resp: metrics JSON (UTF-8)
///   PING req:  empty                    resp: empty
///   SHARDMAP req: empty                 resp: ShardRouter::Encode image
///        (net/shard_router.h; single-DB servers answer a 1-shard map)
///   SLOWLOG req: u32 limit (0 = all)    resp: slow-log JSON (UTF-8)
///   METRICSPROM req: empty              resp: Prometheus text (UTF-8)
///   SNAPSHOT req: u32 ttl_ms (0 = server default)
///        resp: u64 snapshot_id, u32 shard_count,
///              shard_count * u64 pinned sequence (by shard index)
///   SNAPSHOTRELEASE req: u64 snapshot_id   resp: empty
///
/// Replication ops (docs/REPLICATION.md). All repl requests flow from
/// the follower (or an admin client, for PROMOTE) to the server; the
/// stream is follower-initiated pull, so the pipelined request/response
/// discipline above is preserved. Every repl request carries the
/// sender's (shard, epoch) pair for fencing:
///
///   REPLSUBSCRIBE req: u32 shard, u64 epoch, u32 idlen, follower id
///        resp: u64 epoch, u64 log_start, u64 log_head, u64 log_run_id
///   REPLBATCH req:  u32 shard, u64 epoch, u64 from_seq, u32 max_batches
///        resp: u64 epoch, u64 log_head, u64 log_run_id, u32 count,
///              count * {
///              u64 log_seq, u64 last_db_seq, u32 blob_len,
///              blob = { u32 op_count, op_count * { u8 is_delete,
///                       u32 klen, key, u32 vlen, value } } }
///   REPLACK req:  u32 shard, u64 epoch, u32 idlen, follower id,
///                 u64 acked_seq           resp: empty
///   REPLSNAPSHOT req: u32 shard, u64 epoch, u32 cursor_klen, cursor,
///                     u32 max_entries
///        resp: u64 epoch, u64 log_pos, u64 log_run_id, u8 done,
///              u32 count, count * { u32 klen, key, u32 vlen, value }
///   PROMOTE req:  u32 shard              resp: u64 new_epoch
///
/// `log_run_id` identifies one lifetime of the serving log's numbering
/// (redrawn on restart and on promotion): a follower holding a cursor
/// from a different run id must snapshot-bootstrap, because the seqs it
/// remembers address records that no longer exist.
///
/// Error responses (code != kOk) carry a human-readable message as the
/// payload regardless of opcode.

enum class Op : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kMultiPut = 4,
  kScan = 5,
  kStats = 6,
  kPing = 7,
  kShardMap = 8,
  kSlowLog = 9,
  kMetricsProm = 10,
  kReplSubscribe = 11,
  kReplBatch = 12,
  kReplAck = 13,
  kReplSnapshot = 14,
  kPromote = 15,
  kSnapshot = 16,
  kSnapshotRelease = 17,
};

/// Frame flag bits. Anything else is reserved and rejected.
constexpr uint8_t kFlagResponse = 0x01;
constexpr uint8_t kFlagTraced = 0x02;
/// Request-only: the payload carries a u64 snapshot-id prefix (after
/// the trace context, when both flags are set) and the read executes
/// at that pinned snapshot (docs/SNAPSHOTS.md).
constexpr uint8_t kFlagAtSnapshot = 0x04;

/// True when `raw` is a defined opcode.
bool ValidOp(uint8_t raw);
const char* OpName(Op op);

/// Response status codes. 0-7 mirror Status codes so either side can
/// translate losslessly; 100+ are protocol-level conditions with no
/// Status equivalent.
enum WireCode : uint16_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIOError = 5,
  kBusy = 6,
  kOutOfSpace = 7,
  /// The store degraded to read-only after a background failure
  /// (docs/ROBUSTNESS.md); writes are rejected until the DB reopens.
  kReadOnly = 100,
  /// The request frame or payload failed to parse; the server closes
  /// the connection after sending this.
  kDecodeError = 101,
  /// The request exceeded a server limit (frame size, scan limit).
  kTooLarge = 102,
  /// Valid frame, unknown opcode (client newer than server).
  kUnknownOp = 103,
  /// The shard this keyed request routed to is served by a follower
  /// (docs/REPLICATION.md); clients re-fetch the SHARDMAP and retry
  /// against the shard's current primary.
  kNotPrimary = 104,
  /// A replication request carried an epoch older than the receiver's:
  /// the sender was deposed by a promotion it has not observed yet.
  kStaleEpoch = 105,
  /// The follower's requested log position fell behind the primary's
  /// truncated replication log; it must bootstrap via REPLSNAPSHOT.
  kReplLagged = 106,
  /// The write committed locally but the acknowledgement policy
  /// (--repl-ack) was not satisfied within the timeout; the client must
  /// treat the write's durability as unknown and may retry.
  kReplTimeout = 107,
  /// An at-snapshot read (or a SNAPSHOTRELEASE) named a snapshot id the
  /// server does not hold — never pinned, already released, or expired
  /// past its TTL. Clients re-pin and retry (docs/SNAPSHOTS.md).
  kSnapshotUnknown = 108,
};

const char* WireCodeName(uint16_t code);

/// Response code for `s` (OK => kOk, NotFound => kNotFound, ...).
uint16_t WireCodeOf(const Status& s);

/// Reconstructs a Status from a response code + message. kReadOnly maps
/// to IOError (matching what DB::Put returns locally when degraded);
/// kDecodeError/kTooLarge/kUnknownOp map to InvalidArgument.
Status StatusFromWire(uint16_t code, const Slice& message);

/// Fixed sizes of the frame layout above.
constexpr size_t kFrameHeaderBytes = 16;  // length field + fixed body
constexpr size_t kFrameFixedBody = 12;    // opcode..request_id
/// Bytes of the trace context prefixed to a traced frame's payload.
constexpr size_t kTraceContextBytes = 16;  // trace_id + aux
/// Bytes of the snapshot-id prefix on an at-snapshot request.
constexpr size_t kSnapshotIdBytes = 8;
/// Default cap on body_len; a peer announcing more is a decode error
/// (rejected before any allocation).
constexpr size_t kDefaultMaxFrameBody = 16u << 20;
/// Individual field caps, enforced by the payload parsers.
constexpr size_t kMaxKeyBytes = 64u << 10;
constexpr uint32_t kMaxBatchCount = 1u << 20;
constexpr uint32_t kMaxScanLimit = 1u << 20;

/// One decoded frame. `payload` points into the decoder's buffer and is
/// valid until the next Feed call. For traced frames the trace context
/// has already been stripped: `payload` is the op-specific bytes and
/// trace_id/server_ns hold the context fields. Likewise for at-snapshot
/// requests the u64 snapshot id has been stripped into snapshot_id.
struct Frame {
  Op op = Op::kPing;
  bool response = false;
  bool traced = false;
  bool at_snapshot = false;
  uint16_t code = kOk;
  uint64_t request_id = 0;
  uint64_t trace_id = 0;     // valid when traced
  uint64_t server_ns = 0;    // aux field; service time in responses
  uint64_t snapshot_id = 0;  // valid when at_snapshot
  Slice payload;
};

/// Trace context attached to an encoded frame. Inert by default so
/// existing call sites encode untraced frames unchanged.
struct TraceContext {
  bool traced = false;
  uint64_t trace_id = 0;
  /// Response aux: server-side service time in nanoseconds (0 in
  /// requests).
  uint64_t server_ns = 0;
};

/// Snapshot reference attached to an encoded GET/SCAN request
/// (docs/SNAPSHOTS.md). Inert by default so existing call sites encode
/// latest-reads unchanged.
struct SnapshotRef {
  bool at_snapshot = false;
  /// Server-issued snapshot id (SNAPSHOT response).
  uint64_t id = 0;
};

/// Incremental frame decoder: feed bytes in arbitrary chunks (a single
/// byte at a time is fine), pull complete frames out. Malformed input —
/// undersized/oversized body_len, unknown opcode — latches a permanent
/// error; the caller should close the connection. The decoder never
/// reads past the bytes it was fed and never allocates proportionally
/// to a hostile length announcement.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_body = kDefaultMaxFrameBody);

  /// Appends raw bytes from the peer.
  void Feed(const char* data, size_t len);
  void Feed(const Slice& data) { Feed(data.data(), data.size()); }

  enum class Result { kFrame, kNeedMore, kError };

  /// Extracts the next complete frame. kFrame: *out stays valid until
  /// the next Feed call (Next never moves the buffer, so a batch of
  /// frames can be pulled and processed together). kNeedMore: feed
  /// more bytes. kError: the stream is corrupt (error() says why);
  /// every later call returns kError too.
  Result Next(Frame* out);

  /// Non-consuming look at the next frame's opcode: true once the
  /// frame header (length + opcode + flags) is buffered and
  /// well-formed, even if the body is still in flight. Malformed input
  /// returns false and is left for Next to latch. Lets the server
  /// decide which worker should own a connection before any frame is
  /// consumed (docs/REPLICATION.md "Threading").
  bool PeekOp(Op* op) const;

  const std::string& error() const { return error_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_body_;  // non-const so decoders are re-assignable
  std::string buf_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

// Request encoding (client side). Keyed ops accept an optional trace
// context (sampled requests). -----------------------------------------

void EncodeGetRequest(std::string* out, uint64_t id, const Slice& key,
                      const TraceContext& tc = TraceContext(),
                      const SnapshotRef& snap = SnapshotRef());
void EncodePutRequest(std::string* out, uint64_t id, const Slice& key,
                      const Slice& value,
                      const TraceContext& tc = TraceContext());
void EncodeDeleteRequest(std::string* out, uint64_t id, const Slice& key,
                         const TraceContext& tc = TraceContext());
void EncodeMultiPutRequest(std::string* out, uint64_t id,
                           const std::vector<KVStore::BatchOp>& batch,
                           const TraceContext& tc = TraceContext());
void EncodeScanRequest(std::string* out, uint64_t id, const Slice& start,
                       uint32_t limit,
                       const TraceContext& tc = TraceContext(),
                       const SnapshotRef& snap = SnapshotRef());
void EncodeStatsRequest(std::string* out, uint64_t id);
void EncodePingRequest(std::string* out, uint64_t id);
void EncodeShardMapRequest(std::string* out, uint64_t id);
/// SLOWLOG request; `limit` caps the returned entries (0 = all).
void EncodeSlowLogRequest(std::string* out, uint64_t id, uint32_t limit);
void EncodeMetricsPromRequest(std::string* out, uint64_t id);
/// SNAPSHOT request; `ttl_ms` bounds the pin's lifetime on the server
/// (0 = server default).
void EncodeSnapshotRequest(std::string* out, uint64_t id, uint32_t ttl_ms);
void EncodeSnapshotReleaseRequest(std::string* out, uint64_t id,
                                  uint64_t snapshot_id);

// Replication wire structures (docs/REPLICATION.md). -----------------

/// One replication-log record as it travels on the wire (and as the
/// ReplLog stores it): the log position, the DB sequence number of the
/// last op in the batch, and the batch itself as an EncodeReplOps blob.
struct ReplRecord {
  uint64_t log_seq = 0;
  uint64_t last_db_seq = 0;
  std::string ops_blob;
};

/// Encodes a committed batch as a replication blob (u32 op_count, then
/// per op: u8 is_delete, u32 klen, key, u32 vlen, value — the MULTIPUT
/// body format).
void EncodeReplOps(std::string* out,
                   const std::vector<KVStore::BatchOp>& ops);
/// Decodes an EncodeReplOps blob; rejects truncation, trailing bytes,
/// oversized counts, and deletes carrying values.
Status ParseReplOps(const Slice& blob,
                    std::vector<KVStore::BatchOp>* out);

struct ReplSubscribeRequest {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  Slice follower_id;
};
struct ReplSubscribeResponse {
  uint64_t epoch = 0;
  uint64_t log_start = 0;
  uint64_t log_head = 0;
  /// Lifetime token of the serving log (ReplLog::run_id).
  uint64_t log_run_id = 0;
};
struct ReplBatchRequest {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  /// First log_seq wanted (exclusive fetches use last_applied + 1).
  uint64_t from_seq = 0;
  uint32_t max_batches = 0;
};
struct ReplBatchResponse {
  uint64_t epoch = 0;
  uint64_t log_head = 0;
  /// Lifetime token of the serving log: a change since the last fetch
  /// (or log_head behind the follower's cursor) means the numbering
  /// restarted and the follower must snapshot-bootstrap.
  uint64_t log_run_id = 0;
  std::vector<ReplRecord> records;
};
struct ReplAckRequest {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  Slice follower_id;
  uint64_t acked_seq = 0;
};
struct ReplSnapshotRequest {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  /// Resume strictly after this key; empty starts the snapshot.
  Slice cursor;
  uint32_t max_entries = 0;
};
struct ReplSnapshotResponse {
  uint64_t epoch = 0;
  /// Replication-log position captured before this page's scan began;
  /// the follower replays the log from the FIRST page's log_pos + 1.
  uint64_t log_pos = 0;
  /// Lifetime token of the log `log_pos` addresses: a bootstrap whose
  /// pages span a run-id change must restart (its captured log_pos is
  /// meaningless in the new numbering).
  uint64_t log_run_id = 0;
  bool done = false;
  std::vector<std::pair<std::string, std::string>> entries;
};
struct PromoteRequest {
  uint32_t shard = 0;
};

void EncodeReplSubscribeRequest(std::string* out, uint64_t id,
                                const ReplSubscribeRequest& req);
void EncodeReplBatchRequest(std::string* out, uint64_t id,
                            const ReplBatchRequest& req);
void EncodeReplAckRequest(std::string* out, uint64_t id,
                          const ReplAckRequest& req);
void EncodeReplSnapshotRequest(std::string* out, uint64_t id,
                               const ReplSnapshotRequest& req);
void EncodePromoteRequest(std::string* out, uint64_t id, uint32_t shard);

/// Success-response payload builders (server side).
void EncodeReplSubscribePayload(std::string* out,
                                const ReplSubscribeResponse& resp);
void EncodeReplBatchPayload(std::string* out,
                            const ReplBatchResponse& resp);
void EncodeReplSnapshotPayload(std::string* out,
                               const ReplSnapshotResponse& resp);
void EncodePromotePayload(std::string* out, uint64_t new_epoch);

Status ParseReplSubscribeRequest(const Slice& payload,
                                 ReplSubscribeRequest* out);
Status ParseReplBatchRequest(const Slice& payload, ReplBatchRequest* out);
Status ParseReplAckRequest(const Slice& payload, ReplAckRequest* out);
Status ParseReplSnapshotRequest(const Slice& payload,
                                ReplSnapshotRequest* out);
Status ParsePromoteRequest(const Slice& payload, PromoteRequest* out);

/// Success-response payload parsers (follower / admin side).
Status ParseReplSubscribePayload(const Slice& payload,
                                 ReplSubscribeResponse* out);
Status ParseReplBatchPayload(const Slice& payload,
                             ReplBatchResponse* out);
Status ParseReplSnapshotPayload(const Slice& payload,
                                ReplSnapshotResponse* out);
Status ParsePromotePayload(const Slice& payload, uint64_t* new_epoch);

// Response encoding (server side). -----------------------------------

/// Success response with an op-specific payload (empty for writes).
/// Responses to traced requests echo the trace context with the
/// service time in `tc.server_ns`.
void EncodeOkResponse(std::string* out, Op op, uint64_t id,
                      const Slice& payload = Slice(),
                      const TraceContext& tc = TraceContext());
/// Error response; `message` becomes the payload.
void EncodeErrorResponse(std::string* out, Op op, uint64_t id,
                         uint16_t code, const Slice& message,
                         const TraceContext& tc = TraceContext());
/// Encodes the SCAN success payload.
void EncodeScanPayload(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& entries);

// Request payload parsing (server side). All parsers are bounds-checked
// against the payload slice; they never read outside it. -------------

struct GetRequest {
  Slice key;
};
struct PutRequest {
  Slice key;
  Slice value;
};
struct DeleteRequest {
  Slice key;
};
struct MultiPutRequest {
  std::vector<KVStore::BatchOp> ops;
};
struct ScanRequest {
  Slice start;
  uint32_t limit = 0;
};
struct SlowLogRequest {
  uint32_t limit = 0;  // 0 = all retained entries
};
struct SnapshotRequest {
  uint32_t ttl_ms = 0;  // 0 = server default TTL
};
struct SnapshotReleaseRequest {
  uint64_t snapshot_id = 0;
};
/// SNAPSHOT success response: the server-issued id plus the sequence
/// number pinned on each shard (indexed by shard number).
struct SnapshotResponse {
  uint64_t snapshot_id = 0;
  std::vector<uint64_t> shard_seqs;
};

Status ParseGetRequest(const Slice& payload, GetRequest* out);
Status ParsePutRequest(const Slice& payload, PutRequest* out);
Status ParseDeleteRequest(const Slice& payload, DeleteRequest* out);
Status ParseMultiPutRequest(const Slice& payload, MultiPutRequest* out);
Status ParseScanRequest(const Slice& payload, ScanRequest* out);
Status ParseSlowLogRequest(const Slice& payload, SlowLogRequest* out);
Status ParseSnapshotRequest(const Slice& payload, SnapshotRequest* out);
Status ParseSnapshotReleaseRequest(const Slice& payload,
                                   SnapshotReleaseRequest* out);

/// Encodes / parses the SNAPSHOT success payload.
void EncodeSnapshotPayload(std::string* out, const SnapshotResponse& resp);
Status ParseSnapshotPayload(const Slice& payload, SnapshotResponse* out);

/// Parses a SCAN success payload (client side).
Status ParseScanPayload(
    const Slice& payload,
    std::vector<std::pair<std::string, std::string>>* out);

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_PROTOCOL_H_
