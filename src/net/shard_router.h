#ifndef CACHEKV_NET_SHARD_ROUTER_H_
#define CACHEKV_NET_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace cachekv {
namespace net {

/// Parameters of one key->shard assignment (docs/SERVER.md, "Sharding").
/// The assignment itself is a consistent-hash ring of virtual nodes
/// derived deterministically from these parameters, so two processes
/// given the same ShardMap agree on every key without communicating.
struct ShardMap {
  /// Seeds both the ring-point derivation and the key hash; changing it
  /// reshuffles every assignment, so it is fixed per deployment and
  /// persisted with the map.
  uint64_t seed = 0xcac4e005eedULL;  // "cachekv, seed 0"
  uint32_t num_shards = 1;
  /// Virtual nodes per shard. More vnodes -> more uniform key split
  /// (the shard_router_test asserts +/-15% over 1M keys at the
  /// default) at the cost of a larger ring; lookups stay O(log ring).
  uint32_t vnodes_per_shard = 128;
  /// Optional per-shard endpoint ("host:port"). Today every shard of a
  /// `cachekv_server --shards=N` lives behind one address, so all
  /// entries match the serving socket; a future proxy/placement tier
  /// fills in distinct addresses and clients route without changes.
  std::vector<std::string> endpoints;
  /// Replication state per shard (docs/REPLICATION.md), carried by v2
  /// map images. Each vector is either empty (v1 image, or a server
  /// without replication: epoch 0, the advertising server is primary,
  /// no replicas) or sized num_shards.
  std::vector<uint64_t> epochs;
  /// 1 when the server advertising this map is the shard's primary.
  std::vector<uint8_t> primaries;
  /// Replica endpoints ("host:port") per shard, excluding the
  /// advertising server itself. Clients use these as failover
  /// candidates when the mapped endpoint stops answering.
  std::vector<std::vector<std::string>> replicas;
};

/// ShardRouter owns the consistent-hash ring for one ShardMap and
/// answers ShardOf(key) lookups. The ring is a sorted array of
/// (point, shard) pairs: vnodes_per_shard points per shard, each the
/// 64-bit mix of (seed, shard, vnode). A key routes to the owner of the
/// first ring point at or after Hash64(key, seed), wrapping at the top.
///
/// Stability contract: the ring depends only on the ShardMap parameters
/// and the fixed derivation below — never on insertion order, process
/// layout, or time — so it is identical across restarts and across
/// machines. Encode()/Decode() additionally carry the explicit ring
/// points, so a decoded router keeps routing identically even if a
/// future build changed the derivation (the decoder trusts the encoded
/// points over re-derivation).
class ShardRouter {
 public:
  /// Single-shard identity router (everything maps to shard 0).
  ShardRouter();

  /// Builds the ring for `map`. num_shards and vnodes_per_shard must be
  /// >= 1; endpoints, when non-empty, must have one entry per shard.
  static Status Build(const ShardMap& map, ShardRouter* out);

  uint32_t ShardOf(const Slice& key) const;

  uint32_t num_shards() const { return map_.num_shards; }
  const ShardMap& map() const { return map_; }
  /// Replaces the advertised endpoints (one per shard, or empty) without
  /// touching the ring; the server calls this once it knows its bound
  /// address. InvalidArgument on a size mismatch.
  Status SetEndpoints(std::vector<std::string> endpoints);
  /// Replaces the per-shard replication state (each vector empty or
  /// sized num_shards) without touching the ring. The server refreshes
  /// this before encoding a SHARDMAP response so clients always see
  /// current epochs/roles. InvalidArgument on a size mismatch.
  Status SetReplication(std::vector<uint64_t> epochs,
                        std::vector<uint8_t> primaries,
                        std::vector<std::vector<std::string>> replicas);
  /// Ring size (num_shards * vnodes_per_shard). Test hook.
  size_t ring_points() const { return ring_.size(); }

  /// Serializes the map parameters plus the explicit ring (the SHARDMAP
  /// response payload and the on-disk shard-map format; docs/SERVER.md
  /// documents the layout).
  void Encode(std::string* out) const;
  /// Parses an Encode() image. Validates the magic/version, the point
  /// count, that every shard owns at least one point, and that points
  /// are strictly sorted (so lookups stay well-defined).
  static Status Decode(const Slice& in, ShardRouter* out);

  /// Persists/loads the Encode() image as a small file, so a restarted
  /// server reuses the exact assignment it served before.
  Status SaveToFile(const std::string& path) const;
  static Status LoadFromFile(const std::string& path, ShardRouter* out);

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  ShardMap map_;
  std::vector<Point> ring_;  // sorted by hash, strictly increasing
};

/// Merges per-shard ordered scan results into one globally ordered
/// result of at most `limit` entries (0 = no limit). Shards partition
/// the key space, so inputs are disjoint and no deduplication is
/// needed; each input must already be key-ordered (as DB::Scan and the
/// SCAN op return). Used by both the sharded server and ShardedClient.
void MergeShardScans(
    std::vector<std::vector<std::pair<std::string, std::string>>>&&
        per_shard,
    size_t limit,
    std::vector<std::pair<std::string, std::string>>* out);

}  // namespace net
}  // namespace cachekv

#endif  // CACHEKV_NET_SHARD_ROUTER_H_
