#ifndef CACHEKV_SIM_LATENCY_MODEL_H_
#define CACHEKV_SIM_LATENCY_MODEL_H_

#include <atomic>
#include <cstdint>

namespace cachekv {

/// Device-latency cost table, in nanoseconds, for the simulated hardware.
/// Values follow the published Optane PMem characterizations (Yang et al.,
/// FAST'20; Xiang et al., EuroSys'22): media reads ~2-3x DRAM latency,
/// media writes limited by ~2.3 GB/s per DIMM, clwb ~tens of ns plus fence
/// stalls. `scale` multiplies every cost; scale 0 disables latency
/// injection entirely (useful for unit tests).
struct LatencyCosts {
  double scale = 1.0;
  /// Writing one 256 B XPLine to the 3D-XPoint media.
  uint64_t media_write_xpline_ns = 110;
  /// Reading one 256 B XPLine from the media (XPBuffer miss / RMW read).
  uint64_t media_read_xpline_ns = 300;
  /// Cost of executing one clwb/clflush instruction on the core.
  uint64_t clwb_ns = 40;
  /// Additional stall of an ordering fence that must drain writes to the
  /// ADR domain. Free under eADR reasoning but the instruction itself is
  /// modeled when issued.
  uint64_t sfence_ns = 90;
  /// DRAM-side access penalty for a cache miss that is served from the
  /// simulated PMem space (load path).
  uint64_t cache_miss_load_ns = 170;
  /// Per-64B-line cost of a non-temporal store reaching the iMC.
  uint64_t nt_store_line_ns = 25;
};

/// LatencyModel injects simulated device time into the calling thread by
/// calibrated busy-waiting. It also accumulates the total injected time so
/// harnesses can report how much of the wall clock was device time.
class LatencyModel {
 public:
  explicit LatencyModel(const LatencyCosts& costs = LatencyCosts());

  /// Busy-waits for approximately ns * scale nanoseconds.
  void Charge(uint64_t ns);

  void ChargeMediaWrite(uint64_t xplines) {
    Charge(xplines * costs_.media_write_xpline_ns);
  }
  void ChargeMediaRead(uint64_t xplines) {
    Charge(xplines * costs_.media_read_xpline_ns);
  }
  void ChargeClwb() { Charge(costs_.clwb_ns); }
  void ChargeSfence() { Charge(costs_.sfence_ns); }
  void ChargeCacheMissLoad() { Charge(costs_.cache_miss_load_ns); }
  void ChargeNtStore(uint64_t lines) {
    Charge(lines * costs_.nt_store_line_ns);
  }

  const LatencyCosts& costs() const { return costs_; }
  bool enabled() const { return costs_.scale > 0; }

  /// Total nanoseconds injected across all threads since construction.
  uint64_t total_injected_ns() const {
    return total_injected_ns_.load(std::memory_order_relaxed);
  }

  /// Busy-waits the calling thread for ~ns nanoseconds (unscaled).
  /// Exposed for calibration tests.
  static void SpinFor(uint64_t ns);

 private:
  LatencyCosts costs_;
  std::atomic<uint64_t> total_injected_ns_;
};

}  // namespace cachekv

#endif  // CACHEKV_SIM_LATENCY_MODEL_H_
