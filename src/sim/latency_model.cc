#include "sim/latency_model.h"

#include <chrono>

namespace cachekv {

LatencyModel::LatencyModel(const LatencyCosts& costs)
    : costs_(costs), total_injected_ns_(0) {}

void LatencyModel::SpinFor(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::nanoseconds(ns);
  // A pause-based spin keeps the wait precise at nanosecond scales without
  // involving the scheduler; device latencies here are well below the
  // granularity at which sleeping would make sense.
  while (std::chrono::steady_clock::now() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

void LatencyModel::Charge(uint64_t ns) {
  if (costs_.scale <= 0 || ns == 0) {
    return;
  }
  uint64_t scaled = static_cast<uint64_t>(static_cast<double>(ns) *
                                          costs_.scale);
  if (scaled == 0) {
    return;
  }
  total_injected_ns_.fetch_add(scaled, std::memory_order_relaxed);
  SpinFor(scaled);
}

}  // namespace cachekv
