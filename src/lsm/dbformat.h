#ifndef CACHEKV_LSM_DBFORMAT_H_
#define CACHEKV_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace cachekv {

/// Monotonically increasing per-store sequence number, assigned to every
/// write so that concurrent structures can order updates to the same key.
typedef uint64_t SequenceNumber;

/// Value types encoded as the low byte of the internal key trailer.
/// The trailer packs (seq << 8 | type), and internal keys with equal user
/// keys order by decreasing trailer, so for the same sequence higher type
/// values are seen first; sequences are unique per store so this tie
/// never occurs in practice.
///
/// kTypeValuePointer marks a key–value-separated record: the record's
/// value slot holds an encoded ValuePointer (src/vlog/value_pointer.h)
/// into the append-only value log instead of the user value. Pointer
/// entries behave like values for visibility (they are "not a deletion");
/// only the final read path resolves them.
enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
  kTypeValuePointer = 0x2,
};

/// Highest valid ValueType; parsers reject anything above it.
static constexpr ValueType kMaxValueType = kTypeValuePointer;

/// kValueTypeForSeek is the highest type value, used when constructing
/// seek targets so that all entries of the target sequence are visible.
static constexpr ValueType kValueTypeForSeek = kMaxValueType;

/// We leave eight bits free for the type tag.
static constexpr SequenceNumber kMaxSequenceNumber =
    ((0x1ull << 56) - 1);

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline void UnpackSequenceAndType(uint64_t packed, SequenceNumber* seq,
                                  ValueType* t) {
  *seq = packed >> 8;
  *t = static_cast<ValueType>(packed & 0xff);
}

/// An internal key is `user_key . fixed64(seq << 8 | type)`. Internal keys
/// order by user key ascending, then by sequence descending (freshest
/// first), then by type descending.
void AppendInternalKey(std::string* result, const Slice& user_key,
                       SequenceNumber seq, ValueType t);

/// Returns the user-key prefix of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Returns the packed (seq, type) trailer of an internal key.
inline uint64_t ExtractTrailer(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

/// Parsed form of an internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

/// Parses an internal key; returns false if malformed (too short).
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// Comparator over internal keys: user key ascending (bytewise), then
/// trailer (sequence/type) descending.
class InternalKeyComparator {
 public:
  /// Three-way compare of two internal keys.
  int Compare(const Slice& a, const Slice& b) const;

  int operator()(const Slice& a, const Slice& b) const {
    return Compare(a, b);
  }
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_DBFORMAT_H_
