#include "lsm/dbformat.h"

namespace cachekv {

void AppendInternalKey(std::string* result, const Slice& user_key,
                       SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

bool ParseInternalKey(const Slice& internal_key,
                      ParsedInternalKey* result) {
  if (internal_key.size() < 8) {
    return false;
  }
  uint64_t packed = ExtractTrailer(internal_key);
  uint8_t c = packed & 0xff;
  result->sequence = packed >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = ExtractUserKey(internal_key);
  return c <= kMaxValueType;
}

int InternalKeyComparator::Compare(const Slice& a, const Slice& b) const {
  int r = ExtractUserKey(a).compare(ExtractUserKey(b));
  if (r == 0) {
    const uint64_t at = ExtractTrailer(a);
    const uint64_t bt = ExtractTrailer(b);
    if (at > bt) {
      r = -1;
    } else if (at < bt) {
      r = +1;
    }
  }
  return r;
}

}  // namespace cachekv
