#ifndef CACHEKV_LSM_BLOOM_H_
#define CACHEKV_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace cachekv {

/// Bloom filter over user keys, one per SSTable (LevelDB-style double
/// hashing). bits_per_key 10 gives ~1% false positives.
class BloomFilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key = 10);

  /// Appends a filter summarizing keys[0, n) to *dst.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  /// Returns false only if key is definitely not in the filtered set.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

 private:
  int bits_per_key_;
  int k_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_BLOOM_H_
