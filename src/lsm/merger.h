#ifndef CACHEKV_LSM_MERGER_H_
#define CACHEKV_LSM_MERGER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"

namespace cachekv {

/// Notified with the internal key and raw stored bytes of every entry a
/// deduping stream discards as superseded. The value-separation layer
/// uses this to credit dead bytes back to vlog segments.
using DroppedEntryFn =
    std::function<void(const Slice& internal_key, const Slice& value)>;

/// Buffered (internal key, raw stored bytes) copies of dropped entries.
/// Flush/compaction passes collect drops here and deliver them to the
/// observer only once the pass commits, so a retried pass cannot credit
/// the same dead bytes twice.
using DroppedEntryLog = std::vector<std::pair<std::string, std::string>>;

/// Resolves the raw stored bytes of a kTypeValuePointer entry into the
/// user value (DB wires this to ValueLog::Read for scans).
using ValueResolverFn = std::function<Status(
    const Slice& internal_key, const Slice& raw_value, std::string* value)>;

/// Returns an iterator yielding the union of the children's entries in
/// internal-key order. Ties (identical internal keys cannot occur; equal
/// user keys with different sequences can) break towards the
/// earlier-listed child, so callers should list fresher sources first.
/// Takes ownership of the children.
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children);

/// Wraps a sorted internal-key stream, dropping all but the first
/// (freshest) entry of every user key. `on_drop` (optional) observes
/// each discarded entry. Takes ownership of base.
///
/// `snapshots` (sorted ascending) is the list of pinned snapshot
/// sequence numbers (docs/SNAPSHOTS.md): besides the freshest version,
/// an older version with sequence s survives iff some pinned snapshot p
/// satisfies s <= p < prev_s, where prev_s is the sequence of the
/// immediately-newer version of the same user key — that snapshot still
/// resolves s, so dropping it would change a pinned read. `on_retain`
/// (optional) observes every such extra retained version (the
/// snapshot-induced space amplification, credited to
/// snap.retained_bytes).
Iterator* NewDedupingIterator(Iterator* base,
                              DroppedEntryFn on_drop = nullptr,
                              std::vector<SequenceNumber> snapshots = {},
                              DroppedEntryFn on_retain = nullptr);

/// True when some pinned snapshot in `snapshots` (sorted ascending)
/// lies in [seq, prev_seq): the version with sequence `seq` is still
/// the visible answer at that snapshot and must be retained. `prev_seq`
/// is the sequence of the immediately-newer version of the same user
/// key (kMaxSequenceNumber for the first). Shared by the deduping
/// iterator and the LSM compaction's inline dedup loop.
bool SnapshotInStratum(const std::vector<SequenceNumber>& snapshots,
                       SequenceNumber seq, SequenceNumber prev_seq);

/// Wraps a sorted internal-key stream, dropping every entry whose
/// sequence exceeds `snapshot` — the bounded-read prefilter of a
/// scan-at-snapshot (versions committed after the pin are invisible).
/// Feed its output to NewDedupingIterator to keep the freshest visible
/// version per user key. Takes ownership of base.
Iterator* NewSnapshotFilterIterator(Iterator* base,
                                    SequenceNumber snapshot);

/// Wraps a deduped internal-key stream as a user-facing iterator:
/// tombstoned keys are skipped, key() yields the user key, and pointer
/// entries are resolved through `resolver` (without one their raw
/// pointer bytes pass through, which internal flush/compaction streams
/// rely on). A failed resolution invalidates the iterator and surfaces
/// through status(). Takes ownership of base.
Iterator* NewUserKeyIterator(Iterator* base,
                             ValueResolverFn resolver = nullptr);

}  // namespace cachekv

#endif  // CACHEKV_LSM_MERGER_H_
