#ifndef CACHEKV_LSM_MERGER_H_
#define CACHEKV_LSM_MERGER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"

namespace cachekv {

/// Notified with the internal key and raw stored bytes of every entry a
/// deduping stream discards as superseded. The value-separation layer
/// uses this to credit dead bytes back to vlog segments.
using DroppedEntryFn =
    std::function<void(const Slice& internal_key, const Slice& value)>;

/// Buffered (internal key, raw stored bytes) copies of dropped entries.
/// Flush/compaction passes collect drops here and deliver them to the
/// observer only once the pass commits, so a retried pass cannot credit
/// the same dead bytes twice.
using DroppedEntryLog = std::vector<std::pair<std::string, std::string>>;

/// Resolves the raw stored bytes of a kTypeValuePointer entry into the
/// user value (DB wires this to ValueLog::Read for scans).
using ValueResolverFn = std::function<Status(
    const Slice& internal_key, const Slice& raw_value, std::string* value)>;

/// Returns an iterator yielding the union of the children's entries in
/// internal-key order. Ties (identical internal keys cannot occur; equal
/// user keys with different sequences can) break towards the
/// earlier-listed child, so callers should list fresher sources first.
/// Takes ownership of the children.
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children);

/// Wraps a sorted internal-key stream, dropping all but the first
/// (freshest) entry of every user key. `on_drop` (optional) observes
/// each discarded entry. Takes ownership of base.
Iterator* NewDedupingIterator(Iterator* base,
                              DroppedEntryFn on_drop = nullptr);

/// Wraps a deduped internal-key stream as a user-facing iterator:
/// tombstoned keys are skipped, key() yields the user key, and pointer
/// entries are resolved through `resolver` (without one their raw
/// pointer bytes pass through, which internal flush/compaction streams
/// rely on). A failed resolution invalidates the iterator and surfaces
/// through status(). Takes ownership of base.
Iterator* NewUserKeyIterator(Iterator* base,
                             ValueResolverFn resolver = nullptr);

}  // namespace cachekv

#endif  // CACHEKV_LSM_MERGER_H_
