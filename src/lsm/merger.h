#ifndef CACHEKV_LSM_MERGER_H_
#define CACHEKV_LSM_MERGER_H_

#include <memory>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"

namespace cachekv {

/// Returns an iterator yielding the union of the children's entries in
/// internal-key order. Ties (identical internal keys cannot occur; equal
/// user keys with different sequences can) break towards the
/// earlier-listed child, so callers should list fresher sources first.
/// Takes ownership of the children.
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children);

/// Wraps a sorted internal-key stream, dropping all but the first
/// (freshest) entry of every user key. Takes ownership of base.
Iterator* NewDedupingIterator(Iterator* base);

/// Wraps a deduped internal-key stream as a user-facing iterator:
/// tombstoned keys are skipped, key() yields the user key. Takes
/// ownership of base.
Iterator* NewUserKeyIterator(Iterator* base);

}  // namespace cachekv

#endif  // CACHEKV_LSM_MERGER_H_
