#include "lsm/lsm_kv.h"

#include "lsm/merger.h"
#include "pmem/meta_layout.h"
#include "util/coding.h"

namespace cachekv {

namespace {

constexpr uint32_t kRootMagic = 0x4c534d4b;  // "LSMK"

// Root block: magic, wal_offset, wal_size (all fixed-width), crc.
void WriteRoot(PmemEnv* env, uint64_t wal_offset, uint64_t wal_size) {
  std::string root;
  PutFixed32(&root, kRootMagic);
  PutFixed64(&root, wal_offset);
  PutFixed64(&root, wal_size);
  PutFixed32(&root, WalCrc(root.data(), root.size()));
  env->NtStore(MetaLayout::BaselineRootBase(env), root.data(), root.size());
  env->Sfence();
}

bool ReadRoot(PmemEnv* env, uint64_t* wal_offset, uint64_t* wal_size) {
  char buf[24];
  env->Load(MetaLayout::BaselineRootBase(env), buf, sizeof(buf));
  if (DecodeFixed32(buf) != kRootMagic) {
    return false;
  }
  if (WalCrc(buf, 20) != DecodeFixed32(buf + 20)) {
    return false;
  }
  *wal_offset = DecodeFixed64(buf + 4);
  *wal_size = DecodeFixed64(buf + 12);
  return true;
}

// WAL payload: type(1) seq(8) varint-klen key varint-vlen value.
void EncodeWalRecord(std::string* out, ValueType type, SequenceNumber seq,
                     const Slice& key, const Slice& value) {
  out->clear();
  out->push_back(static_cast<char>(type));
  PutFixed64(out, seq);
  PutLengthPrefixedSlice(out, key);
  PutLengthPrefixedSlice(out, value);
}

bool DecodeWalRecord(const Slice& record, ValueType* type,
                     SequenceNumber* seq, Slice* key, Slice* value) {
  Slice in = record;
  if (in.size() < 9) return false;
  uint8_t t = static_cast<uint8_t>(in[0]);
  if (t > kMaxValueType) return false;
  *type = static_cast<ValueType>(t);
  in.remove_prefix(1);
  *seq = DecodeFixed64(in.data());
  in.remove_prefix(8);
  return GetLengthPrefixedSlice(&in, key) &&
         GetLengthPrefixedSlice(&in, value);
}

}  // namespace

LsmKv::LsmKv(PmemEnv* env, const LsmKvOptions& options)
    : env_(env),
      options_(options),
      engine_(std::make_unique<LsmEngine>(env, options.lsm,
                                          MetaLayout::ManifestBase(env))),
      mem_(std::make_unique<MemTable>()) {}

Status LsmKv::Open(PmemEnv* env, const LsmKvOptions& options, bool recover,
                   std::unique_ptr<LsmKv>* db) {
  std::unique_ptr<LsmKv> kv(new LsmKv(env, options));
  Status s = kv->engine_->Open(recover);
  if (!s.ok()) {
    return s;
  }
  kv->sequence_.store(kv->engine_->LastSequence(),
                      std::memory_order_release);

  if (recover && ReadRoot(env, &kv->wal_offset_, &kv->wal_size_)) {
    s = env->allocator()->Reserve(kv->wal_offset_, kv->wal_size_);
    if (!s.ok()) {
      return s;
    }
    s = kv->RecoverWal();
    if (!s.ok()) {
      return s;
    }
  } else {
    kv->wal_size_ = AlignUp(2 * options.write_buffer_size, kXPLineSize);
    s = env->allocator()->Allocate(kv->wal_size_, &kv->wal_offset_);
    if (!s.ok()) {
      return s;
    }
    WriteRoot(env, kv->wal_offset_, kv->wal_size_);
    kv->wal_ = std::make_unique<WalWriter>(env, kv->wal_offset_,
                                           kv->wal_size_,
                                           options.use_flush_instructions);
    kv->wal_->Reset();
  }
  *db = std::move(kv);
  return Status::OK();
}

LsmKv::~LsmKv() = default;

Status LsmKv::RecoverWal() {
  wal_ = std::make_unique<WalWriter>(env_, wal_offset_, wal_size_,
                                     options_.use_flush_instructions);
  WalReader reader(env_, wal_offset_, wal_size_);
  std::string record;
  uint64_t max_seq = sequence_.load(std::memory_order_relaxed);
  while (reader.ReadRecord(&record)) {
    ValueType type;
    SequenceNumber seq;
    Slice key, value;
    if (!DecodeWalRecord(Slice(record), &type, &seq, &key, &value)) {
      break;  // torn tail
    }
    // Records already flushed into tables are superseded by equal-seq
    // table entries; re-adding them is harmless (same seq, same data).
    mem_->Add(seq, type, key, value);
    if (seq > max_seq) max_seq = seq;
  }
  // Re-append the surviving records so the writer cursor lands after
  // them. Simpler: rebuild the log from the recovered memtable.
  wal_->Reset();
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  std::string rec;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("bad key rebuilding wal");
    }
    EncodeWalRecord(&rec, parsed.type, parsed.sequence, parsed.user_key,
                    iter->value());
    Status s = wal_->AddRecord(Slice(rec));
    if (!s.ok()) {
      return s;
    }
  }
  sequence_.store(max_seq, std::memory_order_release);
  engine_->EnsureLastSequenceAtLeast(max_seq);
  return Status::OK();
}

Status LsmKv::Write(ValueType type, const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber seq =
      sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::string record;
  EncodeWalRecord(&record, type, seq, key, value);
  Status s = wal_->AddRecord(Slice(record));
  if (s.IsOutOfSpace()) {
    s = FlushMemTableLocked();
    if (s.ok()) {
      s = wal_->AddRecord(Slice(record));
      if (s.IsOutOfSpace()) {
        // The record alone exceeds the log region: make it durable by
        // flushing it straight to L0 instead of logging it.
        mem_->Add(seq, type, key, value);
        return FlushMemTableLocked();
      }
    }
  }
  if (!s.ok()) {
    return s;
  }
  mem_->Add(seq, type, key, value);
  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
    s = FlushMemTableLocked();
  }
  return s;
}

Status LsmKv::FlushMemTableLocked() {
  if (mem_->NumEntries() == 0) {
    return Status::OK();
  }
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  Status s = engine_->WriteL0Tables(iter.get());
  if (!s.ok()) {
    return s;
  }
  mem_ = std::make_unique<MemTable>();
  wal_->Reset();
  return Status::OK();
}

Status LsmKv::Put(const Slice& key, const Slice& value) {
  return Write(kTypeValue, key, value);
}

Status LsmKv::Delete(const Slice& key) {
  return Write(kTypeDeletion, key, Slice());
}

Status LsmKv::Get(const Slice& key, std::string* value) {
  // Reads return the freshest committed version. A bounded snapshot would
  // race with compaction dropping shadowed versions (we keep no snapshot
  // registry; the paper's stores expose read-latest semantics only).
  const SequenceNumber snapshot = kMaxSequenceNumber;
  // The memtable pointer may be swapped by a concurrent flush; hold the
  // lock briefly to pin it. (The reference engine intentionally keeps the
  // single-memtable locking discipline of LevelDB.)
  MemTable* mem;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mem = mem_.get();
    MemTable::GetResult r = mem->Get(key, snapshot, value);
    if (r == MemTable::GetResult::kFound) {
      return Status::OK();
    }
    if (r == MemTable::GetResult::kDeleted) {
      return Status::NotFound("deleted");
    }
  }
  bool deleted = false;
  return engine_->Get(key, snapshot, value, &deleted);
}

Status LsmKv::WaitIdle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = FlushMemTableLocked();
    if (!s.ok()) {
      return s;
    }
  }
  return engine_->WaitForCompactions();
}

Iterator* LsmKv::NewInternalIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Iterator*> children;
  children.push_back(mem_->NewIterator());
  children.push_back(engine_->NewIterator());
  static InternalKeyComparator icmp;
  return NewMergingIterator(&icmp, std::move(children));
}

Status LsmKv::Scan(const Slice& start, size_t limit,
                   std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // The DRAM memtable is not safe to iterate under concurrent inserts,
  // so the scan holds the write lock end to end.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Iterator*> children;
  children.push_back(mem_->NewIterator());
  children.push_back(engine_->NewIterator());
  static InternalKeyComparator icmp;
  std::unique_ptr<Iterator> it(NewUserKeyIterator(
      NewDedupingIterator(NewMergingIterator(&icmp, std::move(children)))));
  if (start.empty()) {
    it->SeekToFirst();
  } else {
    it->Seek(start);
  }
  while (it->Valid() && out->size() < limit) {
    out->emplace_back(it->key().ToString(), it->value().ToString());
    it->Next();
  }
  return it->status();
}

}  // namespace cachekv
