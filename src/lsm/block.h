#ifndef CACHEKV_LSM_BLOCK_H_
#define CACHEKV_LSM_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "util/slice.h"

namespace cachekv {

/// BlockBuilder produces one SSTable block: a sequence of
/// prefix-compressed entries followed by a restart-point array.
///
/// Entry layout:
///   shared_key_len:   varint32  (bytes shared with the previous key)
///   unshared_key_len: varint32
///   value_len:        varint32
///   key_delta:        unshared_key_len bytes
///   value:            value_len bytes
///
/// Every `restart_interval` entries the key is stored uncompressed and its
/// offset recorded in the restart array, enabling binary search.
/// Trailer: fixed32 restart offsets, then fixed32 restart count.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Resets to an empty block.
  void Reset();

  /// Appends key/value. Requires: key is greater than any previously
  /// added key (internal-key order), and Finish() has not been called.
  void Add(const Slice& key, const Slice& value);

  /// Finishes the block and returns a slice referring to its contents,
  /// valid until Reset().
  Slice Finish();

  /// Uncompressed size estimate of the block being built.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;
  bool finished_;
  std::string last_key_;
};

/// Block wraps the contents of one built block and provides iteration.
/// The data is owned by the Block (copied out of the simulated PMem).
class Block {
 public:
  /// Takes ownership of `contents`.
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  /// Returns a new iterator over the block's entries. The Block must
  /// outlive the iterator.
  Iterator* NewIterator(const InternalKeyComparator* comparator) const;

 private:
  class Iter;

  std::string data_;
  uint32_t restart_offset_;  // offset of restart array in data_
  uint32_t num_restarts_;
  bool malformed_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_BLOCK_H_
