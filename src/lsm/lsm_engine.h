#ifndef CACHEKV_LSM_LSM_ENGINE_H_
#define CACHEKV_LSM_LSM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/merger.h"
#include "lsm/version.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pmem/pmem_env.h"
#include "util/status.h"

namespace cachekv {

/// Tuning knobs of the LSM storage component.
struct LsmOptions {
  int num_levels = 5;
  /// L0 file count that triggers an L0 -> L1 compaction.
  int l0_compaction_trigger = 4;
  /// Size limit of L1; each deeper level is `level_size_multiplier`
  /// larger (the 10x growth of LevelDB).
  uint64_t base_level_bytes = 8ull << 20;
  int level_size_multiplier = 10;
  /// Target size of compaction output files.
  uint64_t target_file_size = 2ull << 20;
  SSTableOptions table_options;
  /// Run compactions on a background thread. When false, compactions run
  /// inline in WriteL0Tables (deterministic mode for tests).
  bool background_compaction = true;
  /// Transient background-compaction failures are retried up to this many
  /// times with capped exponential backoff (lsm.bg_retries counts them)
  /// before the error parks in BackgroundError().
  int max_bg_retries = 5;
  uint32_t bg_backoff_base_ms = 1;
  uint32_t bg_backoff_max_ms = 100;
};

/// LsmEngine is the storage component of Figure 2 in the paper: SSTables
/// organized in n+1 levels in (simulated) PMem, with L0 partially sorted
/// (overlapping files, newest first) and L1+ fully sorted, plus leveled
/// background compaction. It has no memory component of its own: callers
/// feed it sorted runs (CacheKV feeds compacted sub-skiplist zones, the
/// baselines feed sealed memtables).
///
/// Thread-safe.
class LsmEngine {
 public:
  /// `manifest_base` names 2 x MetaLayout::kManifestSlotSize bytes of PMem
  /// for the A/B manifest slots. When `metrics` is non-null the engine
  /// records "lsm.write_l0" / "lsm.compact" spans, compaction counters,
  /// and bloom-filter counters into it; when `trace` is non-null it also
  /// emits L0-write and compaction trace events. Null disables
  /// instrumentation (standalone tests).
  LsmEngine(PmemEnv* env, const LsmOptions& options, uint64_t manifest_base,
            obs::MetricsRegistry* metrics = nullptr,
            obs::Tracer* trace = nullptr);
  ~LsmEngine();

  LsmEngine(const LsmEngine&) = delete;
  LsmEngine& operator=(const LsmEngine&) = delete;

  /// Initializes a fresh store (clearing any manifest) or recovers the
  /// table tree from the manifest when `recover` is set.
  Status Open(bool recover);

  /// Builds one or more L0 SSTables from the sorted run `iter` (internal
  /// keys) and installs them atomically. May trigger compactions.
  Status WriteL0Tables(Iterator* iter);

  /// Point lookup at `snapshot`. On a visible value: OK. On a visible
  /// tombstone or no entry: NotFound (with *deleted distinguishing the
  /// two so upper layers can stop searching). When seq_out is non-null it
  /// receives the sequence of the entry that answered (value or
  /// tombstone), letting callers order answers across components. When
  /// type_out is non-null it receives the answering entry's type, so
  /// callers can tell an inline value from a value-log pointer (whose
  /// raw bytes land in *value).
  Status Get(const Slice& user_key, SequenceNumber snapshot,
             std::string* value, bool* deleted,
             SequenceNumber* seq_out = nullptr,
             ValueType* type_out = nullptr);

  /// Observer for entries compaction discards as superseded; the
  /// value-separation layer credits dropped pointers back to vlog
  /// segments as dead bytes. Set once before any compaction runs.
  /// Drops are buffered per compaction pass and delivered only after the
  /// pass's version installs, so the background retry of a failed pass
  /// cannot report the same drops twice.
  void SetDroppedEntryObserver(DroppedEntryFn observer) {
    on_drop_ = std::move(observer);
  }

  /// Supplier of the pinned snapshot sequence numbers, sorted ascending
  /// (DB wires this to its snapshot registry). Each compaction pass
  /// captures the list once at pass start; versions a pinned snapshot
  /// still resolves survive the merge dedup (docs/SNAPSHOTS.md), and a
  /// base-level tombstone is only dropped when it predates the oldest
  /// pin. Set once before any compaction runs.
  using SnapshotProviderFn = std::function<std::vector<SequenceNumber>()>;
  void SetSnapshotProvider(SnapshotProviderFn provider) {
    snapshot_provider_ = std::move(provider);
  }

  /// Iterator over all tables (internal-key order, duplicates possible
  /// across levels; fresher levels yield first for equal user keys).
  Iterator* NewIterator();

  /// Sequence-number bookkeeping, persisted with each manifest write.
  SequenceNumber LastSequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  void EnsureLastSequenceAtLeast(SequenceNumber seq);

  /// Blocks until no compaction is running or pending.
  Status WaitForCompactions();

  /// The parked background-compaction error (OK while healthy). Set once
  /// the retry budget for a transient failure is exhausted or a hard
  /// (corruption-class) failure occurs.
  Status BackgroundError() const {
    std::unique_lock<std::mutex> lock(mu_);
    return bg_error_;
  }

  int NumFiles(int level) const;
  uint64_t TotalTableBytes() const;
  VersionRef CurrentVersion() const;

 private:
  uint64_t MaxBytesForLevel(int level) const;
  Status InstallVersion(std::shared_ptr<Version> next,
                        std::unique_lock<std::mutex>* lock);
  Status BuildTables(Iterator* iter, std::vector<TableRef>* outputs,
                     bool is_compaction, int output_level,
                     const Version* base_version,
                     DroppedEntryLog* dropped = nullptr,
                     const std::vector<SequenceNumber>& snapshots = {});
  Status OpenTable(const FileMeta& meta, TableRef* out);

  // Compaction machinery.
  void BackgroundWork();
  bool NeedsCompaction(const Version& v, int* level) const;
  Status CompactLevel(int level);
  bool IsBaseLevelForKey(const Version& v, int output_level,
                         const Slice& user_key) const;
  void MaybeScheduleCompaction();

  PmemEnv* env_;
  LsmOptions options_;
  obs::MetricsRegistry* metrics_;  // may be null
  obs::Tracer* trace_;             // may be null
  // Bloom-filter effectiveness counters, cached from the registry (null
  // when metrics_ is null): checks = table probes that reached the
  // filter, negatives = probes the filter rejected, false positives =
  // probes the filter passed but the table did not contain.
  obs::Counter* bloom_checks_ = nullptr;
  obs::Counter* bloom_negatives_ = nullptr;
  obs::Counter* bloom_false_positives_ = nullptr;
  InternalKeyComparator icmp_;
  ManifestWriter manifest_;
  DroppedEntryFn on_drop_;  // may be empty
  SnapshotProviderFn snapshot_provider_;  // may be empty
  // Cumulative bytes of superseded versions carried through compaction
  // for pinned snapshots (null when metrics_ is null).
  obs::Counter* snap_retained_bytes_ = nullptr;

  mutable std::mutex mu_;
  std::shared_ptr<const Version> current_;
  uint64_t next_file_number_ = 1;
  std::atomic<uint64_t> last_sequence_{0};
  std::vector<uint64_t> compact_cursor_;
  uint64_t manifest_epoch_ = 0;

  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::thread bg_thread_;
  bool compaction_pending_ = false;
  bool compaction_running_ = false;
  bool shutting_down_ = false;
  Status bg_error_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_LSM_ENGINE_H_
