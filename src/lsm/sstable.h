#ifndef CACHEKV_LSM_SSTABLE_H_
#define CACHEKV_LSM_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "pmem/pmem_env.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Locates a block within an SSTable.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  /// Maximum encoded length of a BlockHandle.
  static constexpr size_t kMaxEncodedLength = 20;
};

/// Footer at the tail of every SSTable: filter handle, index handle,
/// padding, magic. Fixed length so it can be located from the table size.
struct Footer {
  BlockHandle filter_handle;
  BlockHandle index_handle;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;
  static constexpr uint64_t kMagic = 0xcac8ec5db10c5ull;
};

/// Build-time knobs for SSTables.
struct SSTableOptions {
  size_t block_size = 4096;
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
};

/// SSTableBuilder accumulates sorted (internal key, value) entries and
/// produces the serialized table: data blocks, one whole-table bloom
/// filter over user keys, an index block mapping last-key -> block
/// handle, and a footer. The serialized bytes are buffered in DRAM; the
/// caller writes them to PMem in one large non-temporal copy, which is
/// how the storage component avoids the XPLine write amplification.
class SSTableBuilder {
 public:
  explicit SSTableBuilder(const SSTableOptions& options = SSTableOptions());

  SSTableBuilder(const SSTableBuilder&) = delete;
  SSTableBuilder& operator=(const SSTableBuilder&) = delete;

  /// Adds an entry. Requires: internal keys added in strictly increasing
  /// order; Finish() not yet called.
  void Add(const Slice& internal_key, const Slice& value);

  /// Finalizes the table. No further Add() calls are allowed.
  Status Finish();

  /// Serialized table contents; valid after Finish().
  const std::string& contents() const { return buffer_; }

  uint64_t NumEntries() const { return num_entries_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }

  /// Bytes the serialized table would occupy if finished now (estimate).
  uint64_t CurrentSizeEstimate() const;

 private:
  void FlushDataBlock();

  SSTableOptions options_;
  BloomFilterPolicy bloom_;
  std::string buffer_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::vector<std::string> user_keys_;  // for the bloom filter
  std::string smallest_key_;
  std::string largest_key_;
  std::string pending_index_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// SSTableReader reads a table resident in the simulated PMem. The index
/// block and bloom filter are cached in DRAM at open (as LevelDB caches
/// index/filter blocks); data blocks are fetched through the simulated
/// CPU cache on demand.
class SSTableReader {
 public:
  /// Opens the table stored at [region_offset, region_offset + size).
  static Status Open(PmemEnv* env, uint64_t region_offset, uint64_t size,
                     std::unique_ptr<SSTableReader>* reader);

  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  /// Looks up `internal_key`. On a user-key match with sequence <= the
  /// key's sequence, fills *parsed (pointing into *value_storage for the
  /// user key) and *value and returns OK; otherwise NotFound. When
  /// `bloom_negative` is non-null it is set to whether the bloom filter
  /// rejected the key (so callers can tally filter effectiveness).
  Status InternalGet(const Slice& internal_key, ParsedInternalKey* parsed,
                     std::string* key_storage, std::string* value,
                     bool* bloom_negative = nullptr);

  /// Returns a new iterator over the table (internal-key order). The
  /// reader must outlive the iterator.
  Iterator* NewIterator() const;

  uint64_t region_offset() const { return region_offset_; }
  uint64_t size() const { return size_; }

 private:
  SSTableReader(PmemEnv* env, uint64_t region_offset, uint64_t size);

  Status ReadBlockContents(const BlockHandle& handle,
                           std::string* contents) const;

  class TableIterator;

  PmemEnv* env_;
  uint64_t region_offset_;
  uint64_t size_;
  InternalKeyComparator comparator_;
  BloomFilterPolicy bloom_;
  std::unique_ptr<Block> index_block_;
  std::string filter_data_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_SSTABLE_H_
