#ifndef CACHEKV_LSM_WAL_H_
#define CACHEKV_LSM_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/pmem_env.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Write-ahead log over a fixed PMem region, used by the reference LSM
/// store (the "traditional LevelDB on PMem" configuration in Figure 2 of
/// the paper). Record layout:
///
///   fixed32 crc   (of the payload, seeded)
///   fixed32 len   (> 0; a zero len terminates the log)
///   payload
///
/// Records are padded so a record header never straddles the region end.
/// When `use_flush_instructions` is set (ADR platforms), every record is
/// clwb'd and fenced; under eADR the stores alone are durable.
class WalWriter {
 public:
  WalWriter(PmemEnv* env, uint64_t region_offset, uint64_t region_size,
            bool use_flush_instructions);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; fails with OutOfSpace when the region is full.
  Status AddRecord(const Slice& record);

  /// Logically truncates the log (writes an end marker at the head).
  void Reset();

  uint64_t BytesUsed() const { return cursor_ - region_offset_; }

 private:
  PmemEnv* env_;
  uint64_t region_offset_;
  uint64_t region_size_;
  uint64_t cursor_;
  bool use_flush_;
};

/// Reads back all complete records of a WAL region, in append order.
class WalReader {
 public:
  WalReader(PmemEnv* env, uint64_t region_offset, uint64_t region_size);

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// Reads the next record into *record. Returns false at end of log
  /// (end marker, corrupt record, or region exhausted).
  bool ReadRecord(std::string* record);

 private:
  PmemEnv* env_;
  uint64_t region_offset_;
  uint64_t region_size_;
  uint64_t cursor_;
};

/// Checksum used by the WAL and the manifest blocks.
uint32_t WalCrc(const char* data, size_t len);

}  // namespace cachekv

#endif  // CACHEKV_LSM_WAL_H_
