#include "lsm/lsm_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "fault/fail_point.h"
#include "lsm/merger.h"
#include "pmem/meta_layout.h"

namespace cachekv {

LsmEngine::LsmEngine(PmemEnv* env, const LsmOptions& options,
                     uint64_t manifest_base, obs::MetricsRegistry* metrics,
                     obs::Tracer* trace)
    : env_(env),
      options_(options),
      metrics_(metrics),
      trace_(trace),
      manifest_(env, manifest_base, MetaLayout::kManifestSlotSize),
      compact_cursor_(options.num_levels, 0) {
  if (metrics_ != nullptr) {
    bloom_checks_ = metrics_->GetCounter("lsm.bloom_checks");
    bloom_negatives_ = metrics_->GetCounter("lsm.bloom_negatives");
    bloom_false_positives_ =
        metrics_->GetCounter("lsm.bloom_false_positives");
    snap_retained_bytes_ = metrics_->GetCounter("snap.retained_bytes");
  }
  auto v = std::make_shared<Version>();
  v->levels.resize(options_.num_levels);
  current_ = v;
}

LsmEngine::~LsmEngine() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    work_cv_.notify_all();
  }
  if (bg_thread_.joinable()) {
    bg_thread_.join();
  }
}

Status LsmEngine::Open(bool recover) {
  if (recover) {
    ManifestState state;
    Status s = manifest_.Recover(&state);
    if (s.ok()) {
      auto v = std::make_shared<Version>();
      v->levels.resize(options_.num_levels);
      if (static_cast<int>(state.levels.size()) > options_.num_levels) {
        return Status::Corruption("manifest has more levels than engine");
      }
      for (size_t l = 0; l < state.levels.size(); l++) {
        for (const FileMeta& meta : state.levels[l]) {
          Status rs = env_->allocator()->Reserve(meta.region_offset,
                                                 meta.region_size);
          if (!rs.ok()) {
            return rs;
          }
          TableRef table;
          rs = OpenTable(meta, &table);
          if (!rs.ok()) {
            return rs;
          }
          v->levels[l].push_back(std::move(table));
        }
      }
      // Restore L0 newest-first and L1+ sorted-by-smallest invariants.
      std::sort(v->levels[0].begin(), v->levels[0].end(),
                [](const TableRef& a, const TableRef& b) {
                  return a->meta.number > b->meta.number;
                });
      for (int l = 1; l < options_.num_levels; l++) {
        std::sort(v->levels[l].begin(), v->levels[l].end(),
                  [this](const TableRef& a, const TableRef& b) {
                    return icmp_.Compare(Slice(a->meta.smallest),
                                         Slice(b->meta.smallest)) < 0;
                  });
      }
      std::unique_lock<std::mutex> lock(mu_);
      current_ = v;
      next_file_number_ = state.next_file_number;
      manifest_epoch_ = state.epoch;
      last_sequence_.store(state.last_sequence,
                           std::memory_order_release);
    } else if (!s.IsNotFound()) {
      return s;
    }
  } else {
    manifest_.Clear();
  }
  if (options_.background_compaction && !bg_thread_.joinable()) {
    bg_thread_ = std::thread(&LsmEngine::BackgroundWork, this);
  }
  return Status::OK();
}

uint64_t LsmEngine::MaxBytesForLevel(int level) const {
  uint64_t limit = options_.base_level_bytes;
  for (int l = 1; l < level; l++) {
    limit *= static_cast<uint64_t>(options_.level_size_multiplier);
  }
  return limit;
}

void LsmEngine::EnsureLastSequenceAtLeast(SequenceNumber seq) {
  uint64_t cur = last_sequence_.load(std::memory_order_relaxed);
  while (seq > cur && !last_sequence_.compare_exchange_weak(
                          cur, seq, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

Status LsmEngine::OpenTable(const FileMeta& meta, TableRef* out) {
  std::unique_ptr<SSTableReader> reader;
  Status s = SSTableReader::Open(env_, meta.region_offset, meta.file_size,
                                 &reader);
  if (!s.ok()) {
    return s;
  }
  *out = std::make_shared<TableHandle>(env_, meta, std::move(reader));
  return Status::OK();
}

Status LsmEngine::BuildTables(Iterator* iter, std::vector<TableRef>* outputs,
                              bool is_compaction, int output_level,
                              const Version* base_version,
                              DroppedEntryLog* dropped,
                              const std::vector<SequenceNumber>& snapshots) {
  std::unique_ptr<SSTableBuilder> builder;
  std::string last_user_key;
  bool has_last_user_key = false;
  // Sequence of the immediately-newer version of the current user key,
  // kept or dropped (the stratum bound of SnapshotInStratum).
  SequenceNumber prev_seq = kMaxSequenceNumber;
  // A base-level tombstone may only be dropped when every pinned
  // snapshot postdates it; otherwise a snapshot-retained older version
  // below would resurface for latest reads.
  const SequenceNumber oldest_snapshot =
      snapshots.empty() ? kMaxSequenceNumber : snapshots.front();

  auto finish_current = [&]() -> Status {
    if (builder == nullptr || builder->NumEntries() == 0) {
      builder.reset();
      return Status::OK();
    }
    Status s = builder->Finish();
    if (!s.ok()) {
      return s;
    }
    const std::string& contents = builder->contents();
    uint64_t region_size = AlignUp(contents.size(), kXPLineSize);
    uint64_t region_offset = 0;
    s = env_->allocator()->Allocate(region_size, &region_offset);
    if (!s.ok()) {
      return s;
    }
    // Copy-out to PMem in one large non-temporal write: the whole table
    // streams through the XPBuffer with no write amplification.
    env_->NtStore(region_offset, contents.data(), contents.size());
    env_->Sfence();

    FileMeta meta;
    {
      std::unique_lock<std::mutex> lock(mu_);
      meta.number = next_file_number_++;
    }
    meta.region_offset = region_offset;
    meta.file_size = contents.size();
    meta.region_size = region_size;
    meta.smallest = builder->smallest_key();
    meta.largest = builder->largest_key();
    builder.reset();
    TableRef table;
    s = OpenTable(meta, &table);
    if (!s.ok()) {
      env_->allocator()->Free(region_offset, region_size);
      return s;
    }
    outputs->push_back(std::move(table));
    return Status::OK();
  };

  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("bad internal key in flush stream");
    }
    EnsureLastSequenceAtLeast(parsed.sequence);

    if (is_compaction) {
      // The freshest version of a user key shadows everything older; the
      // merge stream yields equal user keys newest-first, so only the
      // first occurrence survives — unless a pinned snapshot falls
      // between an older version and its immediately-newer one, in which
      // case that snapshot still resolves the older version and it must
      // ride along (docs/SNAPSHOTS.md).
      if (has_last_user_key &&
          Slice(last_user_key) == parsed.user_key) {
        const bool retain =
            SnapshotInStratum(snapshots, parsed.sequence, prev_seq);
        prev_seq = parsed.sequence;
        if (!retain) {
          // Buffered, not reported: the caller delivers the drops to the
          // observer only once this pass's outputs commit, so a retried
          // pass cannot credit the same dead bytes twice.
          if (dropped != nullptr) {
            dropped->emplace_back(iter->key().ToString(),
                                  iter->value().ToString());
          }
          continue;
        }
        if (snap_retained_bytes_ != nullptr) {
          snap_retained_bytes_->fetch_add(iter->key().size() +
                                          iter->value().size());
        }
      } else {
        last_user_key.assign(parsed.user_key.data(),
                             parsed.user_key.size());
        has_last_user_key = true;
        prev_seq = parsed.sequence;
        if (parsed.type == kTypeDeletion &&
            parsed.sequence <= oldest_snapshot &&
            IsBaseLevelForKey(*base_version, output_level,
                              parsed.user_key)) {
          // The tombstone shadows nothing below the output level and no
          // pinned snapshot predates it: drop it.
          continue;
        }
      }
    }

    // Never split two versions of the same user key across files: an L0
    // point lookup probes files newest-number-first and must be able to
    // trust the first user-key hit.
    if (builder != nullptr &&
        builder->CurrentSizeEstimate() >= options_.target_file_size &&
        ExtractUserKey(Slice(builder->largest_key()))
                .compare(parsed.user_key) != 0) {
      Status s = finish_current();
      if (!s.ok()) {
        return s;
      }
    }
    if (builder == nullptr) {
      builder = std::make_unique<SSTableBuilder>(options_.table_options);
    }
    builder->Add(iter->key(), iter->value());
  }
  Status s = iter->status();
  if (!s.ok()) {
    return s;
  }
  return finish_current();
}

Status LsmEngine::InstallVersion(std::shared_ptr<Version> next,
                                 std::unique_lock<std::mutex>* lock) {
  assert(lock->owns_lock());
  (void)lock;
  ManifestState state;
  state.epoch = manifest_epoch_;
  state.next_file_number = next_file_number_;
  state.last_sequence = last_sequence_.load(std::memory_order_acquire);
  state.levels.resize(next->levels.size());
  for (size_t l = 0; l < next->levels.size(); l++) {
    for (const TableRef& t : next->levels[l]) {
      state.levels[l].push_back(t->meta);
    }
  }
  Status s = manifest_.Write(&state);
  if (!s.ok()) {
    return s;
  }
  manifest_epoch_ = state.epoch;
  current_ = std::move(next);
  return Status::OK();
}

Status LsmEngine::WriteL0Tables(Iterator* iter) {
  OBS_SPAN(metrics_, "lsm.write_l0");
  obs::TraceScope trace(trace_, "lsm.write_l0");
  CACHEKV_FAIL_POINT("lsm.write_l0");
  // Failure paths below drop `outputs`; TableHandle's destructor frees
  // the backing regions, so nothing not yet installed in a version leaks.
  std::vector<TableRef> outputs;
  Status s = BuildTables(iter, &outputs, /*is_compaction=*/false, 0,
                         nullptr);
  if (!s.ok()) {
    return s;
  }
  if (outputs.empty()) {
    return Status::OK();
  }
  uint64_t output_bytes = 0;
  for (const TableRef& t : outputs) {
    output_bytes += t->meta.file_size;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("lsm.l0_bytes_written")->fetch_add(output_bytes);
  }
  trace.AddArg("tables", outputs.size());
  trace.AddArg("bytes", output_bytes);
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto next = std::make_shared<Version>(*current_);
    // Newest first: the files we just built carry the freshest data.
    std::sort(outputs.begin(), outputs.end(),
              [](const TableRef& a, const TableRef& b) {
                return a->meta.number > b->meta.number;
              });
    next->levels[0].insert(next->levels[0].begin(), outputs.begin(),
                           outputs.end());
    s = InstallVersion(std::move(next), &lock);
    if (!s.ok()) {
      return s;
    }
  }
  if (options_.background_compaction) {
    MaybeScheduleCompaction();
  } else {
    int level;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!NeedsCompaction(*current_, &level)) {
          break;
        }
      }
      s = CompactLevel(level);
      if (!s.ok()) {
        return s;
      }
    }
  }
  return Status::OK();
}

bool LsmEngine::NeedsCompaction(const Version& v, int* level) const {
  if (v.NumFiles(0) >= options_.l0_compaction_trigger) {
    *level = 0;
    return true;
  }
  for (int l = 1; l < options_.num_levels - 1; l++) {
    if (v.LevelBytes(l) > MaxBytesForLevel(l)) {
      *level = l;
      return true;
    }
  }
  return false;
}

void LsmEngine::MaybeScheduleCompaction() {
  std::unique_lock<std::mutex> lock(mu_);
  int level;
  if (!compaction_pending_ && NeedsCompaction(*current_, &level)) {
    compaction_pending_ = true;
    work_cv_.notify_one();
  }
}

void LsmEngine::BackgroundWork() {
  if (trace_ != nullptr) {
    trace_->SetThreadName("lsm-compaction");
  }
  std::unique_lock<std::mutex> lock(mu_);
  int attempt = 0;
  while (true) {
    while (!shutting_down_ && !compaction_pending_) {
      work_cv_.wait(lock);
    }
    if (shutting_down_) {
      return;
    }
    int level;
    if (!NeedsCompaction(*current_, &level)) {
      compaction_pending_ = false;
      attempt = 0;
      idle_cv_.notify_all();
      continue;
    }
    compaction_running_ = true;
    lock.unlock();
    Status s = CompactLevel(level);
    lock.lock();
    compaction_running_ = false;
    if (!s.ok()) {
      // Transient failures (I/O, allocator pressure) are retried with
      // capped exponential backoff; corruption-class failures and an
      // exhausted budget park the error for WaitForCompactions() /
      // BackgroundError().
      const bool transient = !s.IsCorruption() && !s.IsInvalidArgument() &&
                             !s.IsNotSupported();
      if (transient && attempt < options_.max_bg_retries) {
        if (metrics_ != nullptr) {
          metrics_->GetCounter("lsm.bg_retries")->Increment();
        }
        uint64_t ms = options_.bg_backoff_base_ms;
        for (int i = 0; i < attempt && ms < options_.bg_backoff_max_ms;
             i++) {
          ms *= 2;
        }
        if (ms > options_.bg_backoff_max_ms) ms = options_.bg_backoff_max_ms;
        attempt++;
        work_cv_.wait_for(lock, std::chrono::milliseconds(ms == 0 ? 1 : ms),
                          [this] { return shutting_down_; });
        continue;  // compaction_pending_ is still set
      }
      bg_error_ = s;
      compaction_pending_ = false;
      attempt = 0;
      idle_cv_.notify_all();
      continue;
    }
    attempt = 0;
    int next_level;
    compaction_pending_ = NeedsCompaction(*current_, &next_level);
    if (!compaction_pending_) {
      idle_cv_.notify_all();
    }
  }
}

Status LsmEngine::WaitForCompactions() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!options_.background_compaction) {
    return bg_error_;
  }
  // Kick the worker in case state changed without a schedule call.
  int level;
  if (NeedsCompaction(*current_, &level)) {
    compaction_pending_ = true;
    work_cv_.notify_one();
  }
  while (compaction_pending_ || compaction_running_) {
    idle_cv_.wait(lock);
  }
  return bg_error_;
}

bool LsmEngine::IsBaseLevelForKey(const Version& v, int output_level,
                                  const Slice& user_key) const {
  for (size_t l = output_level + 1; l < v.levels.size(); l++) {
    for (const TableRef& t : v.levels[l]) {
      if (ExtractUserKey(Slice(t->meta.smallest)).compare(user_key) <= 0 &&
          ExtractUserKey(Slice(t->meta.largest)).compare(user_key) >= 0) {
        return false;
      }
    }
  }
  return true;
}

Status LsmEngine::CompactLevel(int level) {
  OBS_SPAN(metrics_, "lsm.compact");
  obs::TraceScope trace(trace_, "lsm.compact");
  CACHEKV_FAIL_POINT("lsm.compact");
  trace.AddArg("level", static_cast<uint64_t>(level));
  if (metrics_ != nullptr) {
    metrics_->GetCounter("lsm.compactions")->Increment();
  }
  // Pinned snapshots, captured once at pass start. Safe against racing
  // pins: a snapshot taken after this point has a sequence >= the
  // engine's LastSequence(), which is >= every entry in the inputs, so
  // it sees the freshest version of each key — which the dedup keeps
  // unconditionally.
  std::vector<SequenceNumber> snapshots;
  if (snapshot_provider_) {
    snapshots = snapshot_provider_();
  }
  // Phase 1 (under lock): pick inputs from the current version.
  std::vector<TableRef> inputs_this, inputs_next;
  VersionRef base;
  {
    std::unique_lock<std::mutex> lock(mu_);
    base = current_;
    const auto& files = base->levels[level];
    if (files.empty()) {
      return Status::OK();
    }
    if (level == 0) {
      // All L0 files participate (they may mutually overlap).
      inputs_this = files;
    } else {
      // Round-robin pick one file.
      uint64_t idx = compact_cursor_[level] % files.size();
      compact_cursor_[level]++;
      inputs_this.push_back(files[idx]);
    }
    // Key range of the inputs (user keys).
    Slice smallest = ExtractUserKey(Slice(inputs_this[0]->meta.smallest));
    Slice largest = ExtractUserKey(Slice(inputs_this[0]->meta.largest));
    for (const TableRef& t : inputs_this) {
      Slice s = ExtractUserKey(Slice(t->meta.smallest));
      Slice l = ExtractUserKey(Slice(t->meta.largest));
      if (s.compare(smallest) < 0) smallest = s;
      if (l.compare(largest) > 0) largest = l;
    }
    if (level + 1 < options_.num_levels) {
      for (const TableRef& t : base->levels[level + 1]) {
        Slice s = ExtractUserKey(Slice(t->meta.smallest));
        Slice l = ExtractUserKey(Slice(t->meta.largest));
        if (l.compare(smallest) >= 0 && s.compare(largest) <= 0) {
          inputs_next.push_back(t);
        }
      }
    }
  }
  const int output_level = std::min(level + 1, options_.num_levels - 1);
  trace.AddArg("tables", inputs_this.size() + inputs_next.size());

  // Phase 2 (no lock): merge and write the outputs. Fresher sources
  // first: L0 files are newest-first already; the next level is older
  // than this level.
  std::vector<Iterator*> children;
  for (const TableRef& t : inputs_this) {
    children.push_back(t->reader->NewIterator());
  }
  for (const TableRef& t : inputs_next) {
    children.push_back(t->reader->NewIterator());
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp_, std::move(children)));
  std::vector<TableRef> outputs;
  DroppedEntryLog dropped;
  Status s = BuildTables(merged.get(), &outputs, /*is_compaction=*/true,
                         output_level, base.get(),
                         on_drop_ != nullptr ? &dropped : nullptr,
                         snapshots);
  if (!s.ok()) {
    return s;  // buffered drops discarded: the retry re-collects them
  }
  if (metrics_ != nullptr) {
    uint64_t compact_bytes = 0;
    for (const TableRef& t : outputs) {
      compact_bytes += t->meta.file_size;
    }
    metrics_->GetCounter("lsm.compact_bytes_written")
        ->fetch_add(compact_bytes);
  }

  // Phase 3 (under lock): splice the tree. The current version may have
  // gained new L0 files meanwhile; remove exactly the inputs by number.
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto next = std::make_shared<Version>(*current_);
    auto remove_inputs = [](std::vector<TableRef>* files,
                            const std::vector<TableRef>& inputs) {
      files->erase(
          std::remove_if(files->begin(), files->end(),
                         [&](const TableRef& t) {
                           for (const TableRef& in : inputs) {
                             if (in->meta.number == t->meta.number) {
                               return true;
                             }
                           }
                           return false;
                         }),
          files->end());
    };
    remove_inputs(&next->levels[level], inputs_this);
    remove_inputs(&next->levels[output_level], inputs_next);
    auto& out_files = next->levels[output_level];
    out_files.insert(out_files.end(), outputs.begin(), outputs.end());
    std::sort(out_files.begin(), out_files.end(),
              [this](const TableRef& a, const TableRef& b) {
                return icmp_.Compare(Slice(a->meta.smallest),
                                     Slice(b->meta.smallest)) < 0;
              });
    s = InstallVersion(std::move(next), &lock);
  }
  if (s.ok() && on_drop_ != nullptr) {
    // The new version is installed and durable in the manifest: only now
    // do the deduped entries become dead vlog bytes.
    for (const auto& [internal_key, value] : dropped) {
      on_drop_(Slice(internal_key), Slice(value));
    }
  }
  return s;
}

Status LsmEngine::Get(const Slice& user_key, SequenceNumber snapshot,
                      std::string* value, bool* deleted,
                      SequenceNumber* seq_out, ValueType* type_out) {
  *deleted = false;
  VersionRef v = CurrentVersion();
  std::string target;
  AppendInternalKey(&target, user_key, snapshot, kValueTypeForSeek);

  auto check_table = [&](const TableRef& t, bool* done) -> Status {
    // Range pre-filter on user keys.
    if (user_key.compare(ExtractUserKey(Slice(t->meta.smallest))) < 0 ||
        user_key.compare(ExtractUserKey(Slice(t->meta.largest))) > 0) {
      return Status::OK();
    }
    ParsedInternalKey parsed;
    std::string key_storage;
    bool bloom_negative = false;
    Status s = t->reader->InternalGet(Slice(target), &parsed, &key_storage,
                                      value, &bloom_negative);
    if (bloom_checks_ != nullptr) {
      bloom_checks_->Increment();
      if (bloom_negative) {
        bloom_negatives_->Increment();
      } else if (s.IsNotFound()) {
        // The filter admitted the key but the table does not hold it.
        bloom_false_positives_->Increment();
      }
    }
    if (s.ok()) {
      *done = true;
      if (seq_out != nullptr) {
        *seq_out = parsed.sequence;
      }
      if (parsed.type == kTypeDeletion) {
        *deleted = true;
        return Status::NotFound("tombstone");
      }
      if (type_out != nullptr) {
        *type_out = parsed.type;
      }
      return Status::OK();
    }
    if (!s.IsNotFound()) {
      *done = true;
      return s;
    }
    return Status::OK();
  };

  // L0: newest file first.
  for (const TableRef& t : v->levels[0]) {
    bool done = false;
    Status s = check_table(t, &done);
    if (done) {
      return s;
    }
  }
  // L1+: files are disjoint; binary search by range.
  for (size_t l = 1; l < v->levels.size(); l++) {
    const auto& files = v->levels[l];
    if (files.empty()) continue;
    // First file whose largest user key >= user_key.
    size_t lo = 0, hi = files.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ExtractUserKey(Slice(files[mid]->meta.largest))
              .compare(user_key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < files.size()) {
      bool done = false;
      Status s = check_table(files[lo], &done);
      if (done) {
        return s;
      }
    }
  }
  return Status::NotFound("not in any table");
}

Iterator* LsmEngine::NewIterator() {
  VersionRef v = CurrentVersion();
  std::vector<Iterator*> children;
  for (const auto& level : v->levels) {
    for (const TableRef& t : level) {
      children.push_back(t->reader->NewIterator());
    }
  }
  // Keep the version alive as long as the iterator: wrap via a small
  // holder iterator.
  class VersionPinningIterator : public Iterator {
   public:
    VersionPinningIterator(Iterator* base, VersionRef version)
        : base_(base), version_(std::move(version)) {}
    bool Valid() const override { return base_->Valid(); }
    void SeekToFirst() override { base_->SeekToFirst(); }
    void Seek(const Slice& target) override { base_->Seek(target); }
    void Next() override { base_->Next(); }
    Slice key() const override { return base_->key(); }
    Slice value() const override { return base_->value(); }
    Status status() const override { return base_->status(); }

   private:
    std::unique_ptr<Iterator> base_;
    VersionRef version_;
  };
  return new VersionPinningIterator(
      NewMergingIterator(&icmp_, std::move(children)), v);
}

int LsmEngine::NumFiles(int level) const {
  VersionRef v = CurrentVersion();
  return v->NumFiles(level);
}

uint64_t LsmEngine::TotalTableBytes() const {
  VersionRef v = CurrentVersion();
  uint64_t total = 0;
  for (size_t l = 0; l < v->levels.size(); l++) {
    total += v->LevelBytes(static_cast<int>(l));
  }
  return total;
}

VersionRef LsmEngine::CurrentVersion() const {
  std::unique_lock<std::mutex> lock(mu_);
  return current_;
}

}  // namespace cachekv
