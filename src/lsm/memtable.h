#ifndef CACHEKV_LSM_MEMTABLE_H_
#define CACHEKV_LSM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "index/skiplist.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "util/arena.h"
#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// DRAM-resident MemTable in the LevelDB style: an arena-backed skiplist
/// of encoded entries. Used by the reference LSM store (LsmKv) and by the
/// NoveLSM baseline's DRAM level.
///
/// Thread-safety: one writer at a time (external synchronization), any
/// number of concurrent readers.
class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts an entry tagged (seq, type).
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Result of a point lookup against a memory component.
  enum class GetResult {
    kFound,     // *value filled
    kDeleted,   // freshest visible entry is a tombstone
    kNotFound,  // no visible entry
  };

  /// Looks up the freshest entry for user_key with sequence <= snapshot.
  GetResult Get(const Slice& user_key, SequenceNumber snapshot,
                std::string* value) const;

  /// Returns an iterator over the memtable (internal keys). The memtable
  /// must outlive the iterator.
  Iterator* NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_acquire);
  }

 private:
  struct KeyComparator {
    InternalKeyComparator comparator;
    // Entries are length-prefixed internal keys followed by
    // length-prefixed values.
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  class MemTableIterator;

  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_MEMTABLE_H_
