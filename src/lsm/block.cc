#include "lsm/block.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace cachekv {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval), counter_(0), finished_(false) {
  assert(restart_interval_ >= 1);
  restarts_.push_back(0);  // First restart point is at offset 0
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  assert(counter_ <= restart_interval_);
  Slice last_key_piece(last_key_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // See how much sharing to do with previous key.
    const size_t min_length = std::min(last_key_piece.size(), key.size());
    while ((shared < min_length) && (last_key_piece[shared] == key[shared])) {
      shared++;
    }
  } else {
    // Restart compression.
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));

  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  assert(Slice(last_key_) == key);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

Block::Block(std::string contents)
    : data_(std::move(contents)),
      restart_offset_(0),
      num_restarts_(0),
      malformed_(false) {
  if (data_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  num_restarts_ = DecodeFixed32(data_.data() + data_.size() -
                                sizeof(uint32_t));
  const size_t max_restarts =
      (data_.size() - sizeof(uint32_t)) / sizeof(uint32_t);
  if (num_restarts_ > max_restarts) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(
      data_.size() - (1 + num_restarts_) * sizeof(uint32_t));
}

/// Decodes the three length prefixes of the entry starting at p.
/// Returns nullptr on any malformation.
static inline const char* DecodeEntry(const char* p, const char* limit,
                                      uint32_t* shared,
                                      uint32_t* non_shared,
                                      uint32_t* value_length) {
  if (limit - p < 3) return nullptr;
  *shared = static_cast<uint8_t>(p[0]);
  *non_shared = static_cast<uint8_t>(p[1]);
  *value_length = static_cast<uint8_t>(p[2]);
  if ((*shared | *non_shared | *value_length) < 128) {
    // Fast path: all three values are encoded in one byte each.
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) {
      return nullptr;
    }
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) {
      return nullptr;
    }
  }
  if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
    return nullptr;
  }
  return p;
}

class Block::Iter : public Iterator {
 public:
  Iter(const InternalKeyComparator* comparator, const char* data,
       uint32_t restarts, uint32_t num_restarts, bool malformed)
      : comparator_(comparator),
        data_(data),
        restarts_(restarts),
        num_restarts_(num_restarts),
        current_(restarts),
        restart_index_(num_restarts) {
    if (malformed) {
      status_ = Status::Corruption("malformed block");
    }
  }

  bool Valid() const override { return current_ < restarts_; }

  void SeekToFirst() override {
    if (!status_.ok()) return;
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void Seek(const Slice& target) override {
    if (!status_.ok()) return;
    // Binary search in restart array to find the last restart point with
    // a key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || (shared != 0)) {
        CorruptionError();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (comparator_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }

    // Linear scan within the restart region.
    SeekToRestartPoint(left);
    while (true) {
      if (!ParseNextKey()) {
        return;
      }
      if (comparator_->Compare(Slice(key_), target) >= 0) {
        return;
      }
    }
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  Slice key() const override {
    assert(Valid());
    return Slice(key_);
  }

  Slice value() const override {
    assert(Valid());
    return value_;
  }

  Status status() const override { return status_; }

 private:
  uint32_t GetRestartPoint(uint32_t index) const {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    // current_ will be fixed by ParseNextKey(): value_ points just before
    // the entry to parse.
    uint32_t offset = GetRestartPoint(index);
    value_ = Slice(data_ + offset, 0);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_ = Slice();
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    if (p >= limit) {
      // No more entries; mark as invalid.
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }

    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }

  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  const InternalKeyComparator* comparator_;
  const char* data_;
  uint32_t restarts_;
  uint32_t num_restarts_;

  uint32_t current_;  // offset of current entry, >= restarts_ if !Valid
  uint32_t restart_index_;
  std::string key_;
  Slice value_;
  Status status_;
};

Iterator* Block::NewIterator(const InternalKeyComparator* comparator) const {
  if (malformed_) {
    return NewEmptyIterator(Status::Corruption("malformed block"));
  }
  if (restart_offset_ == 0 || num_restarts_ == 0) {
    return NewEmptyIterator();
  }
  return new Iter(comparator, data_.data(), restart_offset_, num_restarts_,
                  false);
}

}  // namespace cachekv
