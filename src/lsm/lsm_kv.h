#ifndef CACHEKV_LSM_LSM_KV_H_
#define CACHEKV_LSM_LSM_KV_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "baselines/kvstore.h"
#include "lsm/lsm_engine.h"
#include "lsm/memtable.h"
#include "lsm/wal.h"
#include "pmem/pmem_env.h"

namespace cachekv {

/// Options of the reference LSM store.
struct LsmKvOptions {
  /// MemTable size that triggers a flush to L0.
  uint64_t write_buffer_size = 4ull << 20;
  /// Use clwb+sfence to persist WAL records (ADR platforms). Under eADR
  /// this can be false: stores alone are durable.
  bool use_flush_instructions = true;
  LsmOptions lsm;
};

/// LsmKv is the traditional LSM-tree KV store of Figure 2, ported to
/// PMem: a DRAM MemTable in front, a PMem write-ahead log for crash
/// consistency (paper step 2), and the leveled SSTable storage component.
/// It serves as the well-understood reference engine the redesigned
/// systems are contrasted against, and exercises the full substrate.
class LsmKv : public KVStore {
 public:
  /// Creates or recovers a store on `env`. `recover` replays the WAL and
  /// manifest left by a previous (possibly crashed) incarnation.
  static Status Open(PmemEnv* env, const LsmKvOptions& options,
                     bool recover, std::unique_ptr<LsmKv>* db);

  ~LsmKv() override;

  Status Put(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  std::string Name() const override { return "LsmKv"; }
  Status WaitIdle() override;

  /// Ordered forward scan over memtable + tables. Holds the write lock
  /// for the duration (single-memtable locking discipline).
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override;

  /// Iterator over the live contents (freshest user-key versions;
  /// internal keys exposed). Testing hook.
  Iterator* NewInternalIterator();

  LsmEngine* engine() { return engine_.get(); }

 private:
  LsmKv(PmemEnv* env, const LsmKvOptions& options);

  Status Write(ValueType type, const Slice& key, const Slice& value);
  Status FlushMemTableLocked();
  Status RecoverWal();

  PmemEnv* env_;
  LsmKvOptions options_;
  std::unique_ptr<LsmEngine> engine_;

  std::mutex mu_;  // guards the write path & memtable swap
  std::unique_ptr<MemTable> mem_;
  uint64_t wal_offset_ = 0;
  uint64_t wal_size_ = 0;
  std::unique_ptr<WalWriter> wal_;
  std::atomic<uint64_t> sequence_{0};
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_LSM_KV_H_
