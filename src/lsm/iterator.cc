#include "lsm/iterator.h"

namespace cachekv {

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(Status s) : status_(std::move(s)) {}

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator(Status status) {
  return new EmptyIterator(std::move(status));
}

}  // namespace cachekv
