#include "lsm/merger.h"

#include <algorithm>

namespace cachekv {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator,
                  std::vector<Iterator*> children)
      : comparator_(comparator), current_(nullptr) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
};

class DedupingIterator : public Iterator {
 public:
  DedupingIterator(Iterator* base, DroppedEntryFn on_drop,
                   std::vector<SequenceNumber> snapshots,
                   DroppedEntryFn on_retain)
      : base_(base),
        on_drop_(std::move(on_drop)),
        snapshots_(std::move(snapshots)),
        on_retain_(std::move(on_retain)) {}

  bool Valid() const override { return base_->Valid(); }

  void SeekToFirst() override {
    base_->SeekToFirst();
    has_last_ = false;
    RememberCurrent();
  }

  void Seek(const Slice& target) override {
    base_->Seek(target);
    has_last_ = false;
    RememberCurrent();
  }

  void Next() override {
    while (true) {
      base_->Next();
      if (!base_->Valid()) {
        return;
      }
      Slice user_key = ExtractUserKey(base_->key());
      if (!has_last_ || Slice(last_user_key_) != user_key) {
        RememberCurrent();
        return;
      }
      // A superseded version survives when a pinned snapshot falls
      // between it and the immediately-newer version: that snapshot
      // still resolves this entry. prev_seq_ tracks the newer version
      // whether or not it was retained (dropping it proved no snapshot
      // lies in its stratum, so the visibility windows stay exact).
      SequenceNumber seq = ExtractTrailer(base_->key()) >> 8;
      bool retain = SnapshotInStratum(snapshots_, seq, prev_seq_);
      prev_seq_ = seq;
      if (retain) {
        if (on_retain_ != nullptr) {
          on_retain_(base_->key(), base_->value());
        }
        return;
      }
      if (on_drop_ != nullptr) {
        on_drop_(base_->key(), base_->value());
      }
    }
  }

  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void RememberCurrent() {
    if (base_->Valid()) {
      Slice user_key = ExtractUserKey(base_->key());
      last_user_key_.assign(user_key.data(), user_key.size());
      prev_seq_ = ExtractTrailer(base_->key()) >> 8;
      has_last_ = true;
    }
  }

  std::unique_ptr<Iterator> base_;
  DroppedEntryFn on_drop_;
  std::vector<SequenceNumber> snapshots_;  // sorted ascending
  DroppedEntryFn on_retain_;
  std::string last_user_key_;
  SequenceNumber prev_seq_ = kMaxSequenceNumber;
  bool has_last_ = false;
};

class SnapshotFilterIterator : public Iterator {
 public:
  SnapshotFilterIterator(Iterator* base, SequenceNumber snapshot)
      : base_(base), snapshot_(snapshot) {}

  bool Valid() const override { return base_->Valid(); }

  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipInvisible();
  }

  void Seek(const Slice& target) override {
    base_->Seek(target);
    SkipInvisible();
  }

  void Next() override {
    base_->Next();
    SkipInvisible();
  }

  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void SkipInvisible() {
    while (base_->Valid() &&
           (ExtractTrailer(base_->key()) >> 8) > snapshot_) {
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
  const SequenceNumber snapshot_;
};

class UserKeyIterator : public Iterator {
 public:
  UserKeyIterator(Iterator* base, ValueResolverFn resolver)
      : base_(base), resolver_(std::move(resolver)) {}

  bool Valid() const override {
    return resolve_status_.ok() && base_->Valid();
  }

  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipTombstones();
  }

  void Seek(const Slice& user_key) override {
    std::string target;
    AppendInternalKey(&target, user_key, kMaxSequenceNumber,
                      kValueTypeForSeek);
    base_->Seek(Slice(target));
    SkipTombstones();
  }

  void Next() override {
    base_->Next();
    SkipTombstones();
  }

  Slice key() const override { return ExtractUserKey(base_->key()); }
  Slice value() const override {
    return resolved_ ? Slice(resolved_value_) : base_->value();
  }
  Status status() const override {
    return resolve_status_.ok() ? base_->status() : resolve_status_;
  }

 private:
  void SkipTombstones() {
    resolved_ = false;
    while (base_->Valid()) {
      ParsedInternalKey parsed;
      if (ParseInternalKey(base_->key(), &parsed) &&
          parsed.type != kTypeDeletion) {
        if (parsed.type == kTypeValuePointer && resolver_ != nullptr) {
          resolve_status_ = resolver_(base_->key(), base_->value(),
                                      &resolved_value_);
          resolved_ = resolve_status_.ok();
        }
        return;
      }
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
  ValueResolverFn resolver_;
  std::string resolved_value_;
  bool resolved_ = false;
  Status resolve_status_;
};

}  // namespace

bool SnapshotInStratum(const std::vector<SequenceNumber>& snapshots,
                       SequenceNumber seq, SequenceNumber prev_seq) {
  // First pinned snapshot at or above this version's sequence; it pins
  // the version iff it also predates the immediately-newer version.
  auto it = std::lower_bound(snapshots.begin(), snapshots.end(), seq);
  return it != snapshots.end() && *it < prev_seq;
}

Iterator* NewDedupingIterator(Iterator* base, DroppedEntryFn on_drop,
                              std::vector<SequenceNumber> snapshots,
                              DroppedEntryFn on_retain) {
  return new DedupingIterator(base, std::move(on_drop),
                              std::move(snapshots), std::move(on_retain));
}

Iterator* NewSnapshotFilterIterator(Iterator* base,
                                    SequenceNumber snapshot) {
  return new SnapshotFilterIterator(base, snapshot);
}

Iterator* NewUserKeyIterator(Iterator* base, ValueResolverFn resolver) {
  return new UserKeyIterator(base, std::move(resolver));
}

Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  if (children.size() == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, std::move(children));
}

}  // namespace cachekv
