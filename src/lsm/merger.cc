#include "lsm/merger.h"

namespace cachekv {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator,
                  std::vector<Iterator*> children)
      : comparator_(comparator), current_(nullptr) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
};

class DedupingIterator : public Iterator {
 public:
  explicit DedupingIterator(Iterator* base) : base_(base) {}

  bool Valid() const override { return base_->Valid(); }

  void SeekToFirst() override {
    base_->SeekToFirst();
    has_last_ = false;
    RememberCurrent();
  }

  void Seek(const Slice& target) override {
    base_->Seek(target);
    has_last_ = false;
    RememberCurrent();
  }

  void Next() override {
    while (true) {
      base_->Next();
      if (!base_->Valid()) {
        return;
      }
      Slice user_key = ExtractUserKey(base_->key());
      if (!has_last_ || Slice(last_user_key_) != user_key) {
        RememberCurrent();
        return;
      }
    }
  }

  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void RememberCurrent() {
    if (base_->Valid()) {
      Slice user_key = ExtractUserKey(base_->key());
      last_user_key_.assign(user_key.data(), user_key.size());
      has_last_ = true;
    }
  }

  std::unique_ptr<Iterator> base_;
  std::string last_user_key_;
  bool has_last_ = false;
};

class UserKeyIterator : public Iterator {
 public:
  explicit UserKeyIterator(Iterator* base) : base_(base) {}

  bool Valid() const override { return base_->Valid(); }

  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipTombstones();
  }

  void Seek(const Slice& user_key) override {
    std::string target;
    AppendInternalKey(&target, user_key, kMaxSequenceNumber,
                      kValueTypeForSeek);
    base_->Seek(Slice(target));
    SkipTombstones();
  }

  void Next() override {
    base_->Next();
    SkipTombstones();
  }

  Slice key() const override { return ExtractUserKey(base_->key()); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void SkipTombstones() {
    while (base_->Valid()) {
      ParsedInternalKey parsed;
      if (ParseInternalKey(base_->key(), &parsed) &&
          parsed.type != kTypeDeletion) {
        return;
      }
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
};

}  // namespace

Iterator* NewDedupingIterator(Iterator* base) {
  return new DedupingIterator(base);
}

Iterator* NewUserKeyIterator(Iterator* base) {
  return new UserKeyIterator(base);
}

Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  if (children.size() == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, std::move(children));
}

}  // namespace cachekv
