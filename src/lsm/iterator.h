#ifndef CACHEKV_LSM_ITERATOR_H_
#define CACHEKV_LSM_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace cachekv {

/// Forward iterator over sorted (internal key, value) pairs, in the
/// LevelDB style. Keys yielded are internal keys unless a wrapper states
/// otherwise. Iterators are not thread-safe.
///
/// Reverse iteration (Prev) is intentionally not part of this interface:
/// none of the paper's workloads scan backwards, and omitting it keeps
/// the merging iterator simple.
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  /// True iff the iterator is positioned at a valid entry.
  virtual bool Valid() const = 0;

  /// Positions at the first entry; Valid() iff the source is non-empty.
  virtual void SeekToFirst() = 0;

  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;

  /// Moves to the next entry. Requires: Valid().
  virtual void Next() = 0;

  /// Current key. Requires: Valid(). The returned slice is valid until
  /// the next mutation of the iterator.
  virtual Slice key() const = 0;

  /// Current value. Requires: Valid(). Same lifetime as key().
  virtual Slice value() const = 0;

  /// Non-ok if an error was encountered.
  virtual Status status() const = 0;
};

/// Returns an iterator yielding nothing, with the given status.
Iterator* NewEmptyIterator(Status status = Status::OK());

}  // namespace cachekv

#endif  // CACHEKV_LSM_ITERATOR_H_
