#include "lsm/sstable.h"

#include <cassert>

#include "lsm/wal.h"
#include "util/coding.h"

namespace cachekv {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);
  PutFixed64(dst, kMagic);
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint64_t magic = DecodeFixed64(magic_ptr);
  if (magic != kMagic) {
    return Status::Corruption("bad table magic number");
  }
  Slice handles(input->data(), kEncodedLength - 8);
  Status s = filter_handle.DecodeFrom(&handles);
  if (s.ok()) {
    s = index_handle.DecodeFrom(&handles);
  }
  return s;
}

SSTableBuilder::SSTableBuilder(const SSTableOptions& options)
    : options_(options),
      bloom_(options.bloom_bits_per_key),
      data_block_(options.restart_interval),
      index_block_(1) {}

void SSTableBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  if (num_entries_ == 0) {
    smallest_key_.assign(internal_key.data(), internal_key.size());
  }
  largest_key_.assign(internal_key.data(), internal_key.size());

  if (pending_index_entry_) {
    // First key of a new block: emit the previous block's index entry.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(pending_index_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  user_keys_.push_back(ExtractUserKey(internal_key).ToString());
  data_block_.Add(internal_key, value);
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void SSTableBuilder::FlushDataBlock() {
  if (data_block_.empty()) {
    return;
  }
  Slice raw = data_block_.Finish();
  pending_handle_.offset = buffer_.size();
  pending_handle_.size = raw.size();
  buffer_.append(raw.data(), raw.size());
  // Per-block checksum, verified on every read.
  PutFixed32(&buffer_, WalCrc(raw.data(), raw.size()));
  data_block_.Reset();
  pending_index_key_ = largest_key_;
  pending_index_entry_ = true;
}

Status SSTableBuilder::Finish() {
  assert(!finished_);
  FlushDataBlock();
  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(pending_index_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }
  finished_ = true;

  Footer footer;

  // Bloom filter over all user keys.
  {
    std::vector<Slice> key_slices;
    key_slices.reserve(user_keys_.size());
    for (const auto& k : user_keys_) {
      key_slices.emplace_back(k);
    }
    std::string filter;
    bloom_.CreateFilter(key_slices, &filter);
    footer.filter_handle.offset = buffer_.size();
    footer.filter_handle.size = filter.size();
    buffer_.append(filter);
    PutFixed32(&buffer_, WalCrc(filter.data(), filter.size()));
  }

  // Index block.
  {
    Slice raw = index_block_.Finish();
    footer.index_handle.offset = buffer_.size();
    footer.index_handle.size = raw.size();
    buffer_.append(raw.data(), raw.size());
    PutFixed32(&buffer_, WalCrc(raw.data(), raw.size()));
  }

  footer.EncodeTo(&buffer_);
  return Status::OK();
}

uint64_t SSTableBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + data_block_.CurrentSizeEstimate() +
         index_block_.CurrentSizeEstimate() + user_keys_.size() * 2 +
         Footer::kEncodedLength;
}

SSTableReader::SSTableReader(PmemEnv* env, uint64_t region_offset,
                             uint64_t size)
    : env_(env), region_offset_(region_offset), size_(size), bloom_(10) {}

Status SSTableReader::ReadBlockContents(const BlockHandle& handle,
                                        std::string* contents) const {
  if (handle.offset + handle.size + 4 > size_) {
    return Status::Corruption("block handle out of table bounds");
  }
  contents->resize(handle.size);
  env_->Load(region_offset_ + handle.offset, contents->data(), handle.size);
  char crc_buf[4];
  env_->Load(region_offset_ + handle.offset + handle.size, crc_buf, 4);
  if (WalCrc(contents->data(), contents->size()) !=
      DecodeFixed32(crc_buf)) {
    return Status::Corruption("block checksum mismatch");
  }
  return Status::OK();
}

Status SSTableReader::Open(PmemEnv* env, uint64_t region_offset,
                           uint64_t size,
                           std::unique_ptr<SSTableReader>* reader) {
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("table too short for footer");
  }
  std::unique_ptr<SSTableReader> t(
      new SSTableReader(env, region_offset, size));

  std::string footer_bytes(Footer::kEncodedLength, '\0');
  env->Load(region_offset + size - Footer::kEncodedLength,
            footer_bytes.data(), Footer::kEncodedLength);
  Slice footer_input(footer_bytes);
  Footer footer;
  Status s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  std::string index_contents;
  s = t->ReadBlockContents(footer.index_handle, &index_contents);
  if (!s.ok()) {
    return s;
  }
  t->index_block_ = std::make_unique<Block>(std::move(index_contents));

  s = t->ReadBlockContents(footer.filter_handle, &t->filter_data_);
  if (!s.ok()) {
    return s;
  }

  *reader = std::move(t);
  return Status::OK();
}

Status SSTableReader::InternalGet(const Slice& internal_key,
                                  ParsedInternalKey* parsed,
                                  std::string* key_storage,
                                  std::string* value,
                                  bool* bloom_negative) {
  if (bloom_negative != nullptr) {
    *bloom_negative = false;
  }
  const Slice user_key = ExtractUserKey(internal_key);
  if (!bloom_.KeyMayMatch(user_key, Slice(filter_data_))) {
    if (bloom_negative != nullptr) {
      *bloom_negative = true;
    }
    return Status::NotFound("bloom miss");
  }

  std::unique_ptr<Iterator> index_iter(
      index_block_->NewIterator(&comparator_));
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) {
    return Status::NotFound("past last block");
  }
  BlockHandle handle;
  Slice handle_value = index_iter->value();
  Status s = handle.DecodeFrom(&handle_value);
  if (!s.ok()) {
    return s;
  }
  std::string block_contents;
  s = ReadBlockContents(handle, &block_contents);
  if (!s.ok()) {
    return s;
  }
  Block block(std::move(block_contents));
  std::unique_ptr<Iterator> block_iter(block.NewIterator(&comparator_));
  block_iter->Seek(internal_key);
  if (!block_iter->Valid()) {
    return Status::NotFound("not in block");
  }
  ParsedInternalKey found;
  if (!ParseInternalKey(block_iter->key(), &found)) {
    return Status::Corruption("bad internal key in table");
  }
  if (found.user_key != user_key) {
    return Status::NotFound("different user key");
  }
  key_storage->assign(block_iter->key().data(), block_iter->key().size());
  if (!ParseInternalKey(Slice(*key_storage), parsed)) {
    return Status::Corruption("bad internal key in table");
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  return Status::OK();
}

// Two-level iterator: walks the index block and lazily opens data blocks.
class SSTableReader::TableIterator : public Iterator {
 public:
  explicit TableIterator(const SSTableReader* table)
      : table_(table),
        index_iter_(table->index_block_->NewIterator(&table->comparator_)) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_ != nullptr) {
      block_iter_->SeekToFirst();
    }
    SkipEmptyBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_ != nullptr) {
      block_iter_->Seek(target);
    }
    SkipEmptyBlocksForward();
  }

  void Next() override {
    assert(Valid());
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr && !block_iter_->status().ok()) {
      return block_iter_->status();
    }
    return Status::OK();
  }

 private:
  void InitDataBlock() {
    block_.reset();
    block_iter_.reset();
    if (!index_iter_->Valid()) {
      return;
    }
    BlockHandle handle;
    Slice handle_value = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    std::string contents;
    s = table_->ReadBlockContents(handle, &contents);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_ = std::make_unique<Block>(std::move(contents));
    block_iter_.reset(block_->NewIterator(&table_->comparator_));
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_.reset();
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_ != nullptr) {
        block_iter_->SeekToFirst();
      }
    }
  }

  const SSTableReader* table_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

Iterator* SSTableReader::NewIterator() const {
  return new TableIterator(this);
}

}  // namespace cachekv
