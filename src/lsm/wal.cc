#include "lsm/wal.h"

#include "util/coding.h"
#include "util/hash.h"

namespace cachekv {

namespace {
constexpr uint32_t kCrcSeed = 0xdb97531;
constexpr size_t kHeaderSize = 8;  // crc + len
}  // namespace

uint32_t WalCrc(const char* data, size_t len) {
  return Hash(data, len, kCrcSeed);
}

WalWriter::WalWriter(PmemEnv* env, uint64_t region_offset,
                     uint64_t region_size, bool use_flush_instructions)
    : env_(env),
      region_offset_(region_offset),
      region_size_(region_size),
      cursor_(region_offset),
      use_flush_(use_flush_instructions) {}

Status WalWriter::AddRecord(const Slice& record) {
  const uint64_t needed = kHeaderSize + record.size();
  // Keep room for the trailing end marker.
  if (cursor_ + needed + kHeaderSize >
      region_offset_ + region_size_) {
    return Status::OutOfSpace("wal region full");
  }
  char header[kHeaderSize];
  EncodeFixed32(header, WalCrc(record.data(), record.size()));
  EncodeFixed32(header + 4, static_cast<uint32_t>(record.size()));
  env_->Store(cursor_, header, kHeaderSize);
  env_->Store(cursor_ + kHeaderSize, record.data(), record.size());
  if (use_flush_) {
    env_->Clwb(cursor_, needed);
    env_->Sfence();
  }
  cursor_ += needed;
  // End marker (len == 0) after the last record; overwritten by the next
  // append.
  char zero[kHeaderSize] = {0};
  env_->Store(cursor_, zero, kHeaderSize);
  if (use_flush_) {
    env_->Clwb(cursor_, kHeaderSize);
    env_->Sfence();
  }
  return Status::OK();
}

void WalWriter::Reset() {
  char zero[kHeaderSize] = {0};
  env_->Store(region_offset_, zero, kHeaderSize);
  if (use_flush_) {
    env_->Clwb(region_offset_, kHeaderSize);
    env_->Sfence();
  }
  cursor_ = region_offset_;
}

WalReader::WalReader(PmemEnv* env, uint64_t region_offset,
                     uint64_t region_size)
    : env_(env),
      region_offset_(region_offset),
      region_size_(region_size),
      cursor_(region_offset) {}

bool WalReader::ReadRecord(std::string* record) {
  if (cursor_ + kHeaderSize > region_offset_ + region_size_) {
    return false;
  }
  char header[kHeaderSize];
  env_->Load(cursor_, header, kHeaderSize);
  const uint32_t crc = DecodeFixed32(header);
  const uint32_t len = DecodeFixed32(header + 4);
  if (len == 0) {
    return false;  // end marker
  }
  if (cursor_ + kHeaderSize + len > region_offset_ + region_size_) {
    return false;  // would run off the region: treat as corrupt tail
  }
  record->resize(len);
  env_->Load(cursor_ + kHeaderSize, record->data(), len);
  if (WalCrc(record->data(), len) != crc) {
    return false;  // torn or corrupt record
  }
  cursor_ += kHeaderSize + len;
  return true;
}

}  // namespace cachekv
