#include "lsm/version.h"

#include "fault/fail_point.h"
#include "lsm/wal.h"
#include "util/coding.h"

namespace cachekv {

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& t : levels[level]) {
    total += t->meta.file_size;
  }
  return total;
}

ManifestWriter::ManifestWriter(PmemEnv* env, uint64_t base,
                               uint64_t slot_size)
    : env_(env), base_(base), slot_size_(slot_size) {}

void ManifestWriter::Encode(const ManifestState& state, std::string* out) {
  std::string body;
  PutFixed64(&body, state.epoch);
  PutFixed64(&body, state.next_file_number);
  PutFixed64(&body, state.last_sequence);
  PutFixed32(&body, static_cast<uint32_t>(state.levels.size()));
  for (const auto& level : state.levels) {
    PutFixed32(&body, static_cast<uint32_t>(level.size()));
    for (const FileMeta& f : level) {
      PutFixed64(&body, f.number);
      PutFixed64(&body, f.region_offset);
      PutFixed64(&body, f.file_size);
      PutFixed64(&body, f.region_size);
      PutLengthPrefixedSlice(&body, Slice(f.smallest));
      PutLengthPrefixedSlice(&body, Slice(f.largest));
    }
  }
  // Slot layout: fixed32 body_len, fixed32 crc, body.
  out->clear();
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed32(out, WalCrc(body.data(), body.size()));
  out->append(body);
}

Status ManifestWriter::Decode(const Slice& input, ManifestState* state) {
  Slice in = input;
  uint64_t num_levels32;
  if (in.size() < 28) {
    return Status::Corruption("manifest too short");
  }
  state->epoch = DecodeFixed64(in.data());
  state->next_file_number = DecodeFixed64(in.data() + 8);
  state->last_sequence = DecodeFixed64(in.data() + 16);
  num_levels32 = DecodeFixed32(in.data() + 24);
  in.remove_prefix(28);
  if (num_levels32 > 64) {
    return Status::Corruption("manifest: implausible level count");
  }
  state->levels.clear();
  state->levels.resize(num_levels32);
  for (uint64_t l = 0; l < num_levels32; l++) {
    if (in.size() < 4) {
      return Status::Corruption("manifest: truncated level header");
    }
    uint32_t count = DecodeFixed32(in.data());
    in.remove_prefix(4);
    for (uint32_t i = 0; i < count; i++) {
      if (in.size() < 32) {
        return Status::Corruption("manifest: truncated file record");
      }
      FileMeta f;
      f.number = DecodeFixed64(in.data());
      f.region_offset = DecodeFixed64(in.data() + 8);
      f.file_size = DecodeFixed64(in.data() + 16);
      f.region_size = DecodeFixed64(in.data() + 24);
      in.remove_prefix(32);
      Slice smallest, largest;
      if (!GetLengthPrefixedSlice(&in, &smallest) ||
          !GetLengthPrefixedSlice(&in, &largest)) {
        return Status::Corruption("manifest: truncated file keys");
      }
      f.smallest = smallest.ToString();
      f.largest = largest.ToString();
      state->levels[l].push_back(std::move(f));
    }
  }
  return Status::OK();
}

Status ManifestWriter::Write(ManifestState* state) {
  state->epoch++;
  std::string encoded;
  Encode(*state, &encoded);
  if (encoded.size() > slot_size_) {
    state->epoch--;
    return Status::OutOfSpace("manifest exceeds slot size");
  }
  const uint64_t slot_base = base_ + (state->epoch % 2) * slot_size_;
  if (fault::AnyActive()) {
    fault::InjectResult inj = fault::Evaluate("lsm.manifest");
    if (inj.torn) {
      // Torn A/B slot write: persist only an XPLine-aligned prefix, then
      // report the failure. The epoch rolls back so a retry (or the next
      // install) rewrites this same slot and never overwrites the last
      // fully-written one; recovery falls back to that older slot.
      uint64_t keep = (encoded.size() * (inj.rand % fault::kTearDenom)) /
                      fault::kTearDenom;
      keep -= keep % kXPLineSize;
      if (keep > 0) {
        env_->NtStore(slot_base, encoded.data(), keep);
        env_->Sfence();
      }
      state->epoch--;
      return inj.status;
    }
    if (!inj.status.ok()) {
      state->epoch--;
      return inj.status;
    }
  }
  env_->NtStore(slot_base, encoded.data(), encoded.size());
  env_->Sfence();
  return Status::OK();
}

Status ManifestWriter::ReadSlot(int slot, ManifestState* state) {
  const uint64_t slot_base = base_ + static_cast<uint64_t>(slot) *
                                          slot_size_;
  char header[8];
  env_->Load(slot_base, header, sizeof(header));
  const uint32_t body_len = DecodeFixed32(header);
  const uint32_t crc = DecodeFixed32(header + 4);
  if (body_len == 0 || body_len > slot_size_ - 8) {
    return Status::NotFound("empty manifest slot");
  }
  std::string body(body_len, '\0');
  env_->Load(slot_base + 8, body.data(), body_len);
  if (WalCrc(body.data(), body.size()) != crc) {
    return Status::Corruption("manifest slot crc mismatch");
  }
  return Decode(Slice(body), state);
}

Status ManifestWriter::Recover(ManifestState* state) {
  ManifestState a, b;
  Status sa = ReadSlot(0, &a);
  Status sb = ReadSlot(1, &b);
  if (!sa.ok() && !sb.ok()) {
    return Status::NotFound("no valid manifest");
  }
  if (sa.ok() && (!sb.ok() || a.epoch > b.epoch)) {
    *state = std::move(a);
  } else {
    *state = std::move(b);
  }
  return Status::OK();
}

void ManifestWriter::Clear() {
  char zero[8] = {0};
  env_->NtStore(base_, zero, sizeof(zero));
  env_->NtStore(base_ + slot_size_, zero, sizeof(zero));
  env_->Sfence();
}

}  // namespace cachekv
