#include "lsm/memtable.h"

#include <cassert>

#include "util/coding.h"

namespace cachekv {

namespace {

Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: max varint32 length
  return Slice(p, len);
}

// Encodes a seek target entry (internal key only) into *scratch and
// returns a pointer usable as a Table key for Seek.
const char* EncodeKey(std::string* scratch, const Slice& internal_key) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(internal_key.size()));
  scratch->append(internal_key.data(), internal_key.size());
  return scratch->data();
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a,
                                        const char* b) const {
  Slice ak = GetLengthPrefixedSliceAt(a);
  Slice bk = GetLengthPrefixedSliceAt(b);
  return comparator.Compare(ak, bk);
}

MemTable::MemTable()
    : table_(comparator_, &arena_), num_entries_(0) {}

void MemTable::Add(SequenceNumber seq, ValueType type,
                   const Slice& user_key, const Slice& value) {
  // Entry format:
  //   varint32 internal_key_size
  //   char[internal_key_size]  (user_key + fixed64 tag)
  //   varint32 value_size
  //   char[value_size]
  const size_t internal_key_size = user_key.size() + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size +
                             VarintLength(value.size()) + value.size();
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, user_key.data(), user_key.size());
  p += user_key.size();
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(value.size()));
  memcpy(p, value.data(), value.size());
  assert(p + value.size() == buf + encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_release);
}

MemTable::GetResult MemTable::Get(const Slice& user_key,
                                  SequenceNumber snapshot,
                                  std::string* value) const {
  std::string target_key;
  AppendInternalKey(&target_key, user_key, snapshot, kValueTypeForSeek);
  std::string scratch;
  Table::Iterator iter(&table_);
  iter.Seek(EncodeKey(&scratch, Slice(target_key)));
  if (iter.Valid()) {
    const char* entry = iter.key();
    Slice internal_key = GetLengthPrefixedSliceAt(entry);
    ParsedInternalKey parsed;
    if (ParseInternalKey(internal_key, &parsed) &&
        parsed.user_key == user_key) {
      if (parsed.type == kTypeDeletion) {
        return GetResult::kDeleted;
      }
      const char* value_pos =
          internal_key.data() + internal_key.size();
      Slice v = GetLengthPrefixedSliceAt(value_pos);
      value->assign(v.data(), v.size());
      return GetResult::kFound;
    }
  }
  return GetResult::kNotFound;
}

class MemTable::MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(const Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }

  void SeekToFirst() override { iter_.SeekToFirst(); }

  void Seek(const Slice& internal_key) override {
    iter_.Seek(EncodeKey(&scratch_, internal_key));
  }

  void Next() override { iter_.Next(); }

  Slice key() const override {
    return GetLengthPrefixedSliceAt(iter_.key());
  }

  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  Table::Iterator iter_;
  std::string scratch_;
};

Iterator* MemTable::NewIterator() const {
  return new MemTableIterator(&table_);
}

}  // namespace cachekv
