#ifndef CACHEKV_LSM_VERSION_H_
#define CACHEKV_LSM_VERSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/sstable.h"
#include "pmem/pmem_env.h"
#include "util/status.h"

namespace cachekv {

/// Metadata of one SSTable file (a PMem region).
struct FileMeta {
  uint64_t number = 0;
  uint64_t region_offset = 0;
  uint64_t file_size = 0;    // bytes of serialized table
  uint64_t region_size = 0;  // allocated region (XPLine aligned)
  std::string smallest;      // internal keys
  std::string largest;
};

/// Refcounted open table. The PMem region backing the table is freed when
/// the last reference drops (i.e., when no Version and no in-flight read
/// uses it anymore).
class TableHandle {
 public:
  TableHandle(PmemEnv* env, FileMeta meta,
              std::unique_ptr<SSTableReader> reader)
      : meta(std::move(meta)), reader(std::move(reader)), env_(env) {}

  ~TableHandle() {
    if (env_ != nullptr) {
      env_->allocator()->Free(meta.region_offset, meta.region_size);
    }
  }

  TableHandle(const TableHandle&) = delete;
  TableHandle& operator=(const TableHandle&) = delete;

  const FileMeta meta;
  const std::unique_ptr<SSTableReader> reader;

 private:
  PmemEnv* env_;
};

typedef std::shared_ptr<TableHandle> TableRef;

/// An immutable snapshot of the table tree: one vector of tables per
/// level. L0 tables may overlap and are ordered newest-first (descending
/// file number); L1+ tables are disjoint and sorted by smallest key.
struct Version {
  std::vector<std::vector<TableRef>> levels;

  uint64_t LevelBytes(int level) const;
  int NumFiles(int level) const {
    return static_cast<int>(levels[level].size());
  }
};

typedef std::shared_ptr<const Version> VersionRef;

/// Serialized manifest state beyond the file tree.
struct ManifestState {
  uint64_t epoch = 0;
  uint64_t next_file_number = 1;
  uint64_t last_sequence = 0;
  /// File metadata per level (readers are reopened from this at
  /// recovery).
  std::vector<std::vector<FileMeta>> levels;
};

/// ManifestWriter persists the complete version state into one of two
/// fixed-offset PMem slots (A/B alternation keyed by epoch parity), each
/// write via a single non-temporal copy plus fence. Recovery picks the
/// valid slot with the highest epoch, so a crash mid-write is harmless.
class ManifestWriter {
 public:
  /// Uses [base, base + 2 * slot_size) of PMem space.
  ManifestWriter(PmemEnv* env, uint64_t base, uint64_t slot_size);

  /// Serializes and persists the state under the next epoch. Updates
  /// state->epoch on success.
  Status Write(ManifestState* state);

  /// Reads the freshest valid manifest into *state. Returns NotFound if
  /// neither slot holds a valid manifest (fresh database).
  Status Recover(ManifestState* state);

  /// Erases both slots (fresh database initialization).
  void Clear();

 private:
  static void Encode(const ManifestState& state, std::string* out);
  static Status Decode(const Slice& input, ManifestState* state);
  Status ReadSlot(int slot, ManifestState* state);

  PmemEnv* env_;
  uint64_t base_;
  uint64_t slot_size_;
};

}  // namespace cachekv

#endif  // CACHEKV_LSM_VERSION_H_
