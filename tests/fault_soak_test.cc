// Randomized fault-schedule soak: several writer threads run against a
// store whose background stages fail probabilistically (seeded, so every
// run of this binary sees the same schedule). After the storm, crash and
// recover, then verify that no acknowledged write was lost — the core
// durability contract of docs/ROBUSTNESS.md.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "fault/fail_point.h"
#include "pmem/pmem_env.h"

namespace cachekv {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 3000;

EnvOptions SoakEnv(uint64_t pool_bytes) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = pool_bytes;
  o.latency.scale = 0;
  return o;
}

CacheKVOptions SoakDb() {
  CacheKVOptions o;
  o.pool_bytes = 2ull << 20;
  o.sub_memtable_bytes = 128ull << 10;
  o.min_sub_memtable_bytes = 64ull << 10;
  o.num_cores = kThreads;
  o.num_flush_threads = 2;
  o.sync_write_threshold = 16;
  o.imm_zone_flush_threshold = 128ull << 10;
  // A generous retry budget: the soak wants the store to keep absorbing
  // transient faults, not to degrade.
  o.max_bg_retries = 1000;
  o.bg_backoff_base_ms = 1;
  o.bg_backoff_max_ms = 2;
  o.write_stall_timeout_ms = 10000;
  o.lsm.l0_compaction_trigger = 2;
  o.lsm.base_level_bytes = 512ull << 10;
  o.lsm.target_file_size = 128ull << 10;
  o.lsm.background_compaction = false;
  return o;
}

TEST(FaultSoakTest, AcknowledgedWritesSurviveProbabilisticFaultStorm) {
  auto* reg = fault::FailPointRegistry::Global();
  reg->DisableAll();
  reg->SetSeed(20260806);

  CacheKVOptions opts = SoakDb();
  auto env = std::make_unique<PmemEnv>(SoakEnv(opts.pool_bytes));
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(env.get(), opts, false, &db).ok());

  // Probabilistic error and delay points only — no torn/bitrot actions,
  // which damage data by design and are covered by the crash sweep.
  ASSERT_TRUE(reg->EnableFromSpecList(
                     "flush.copy=p:0.05,error:io;"
                     "flush.copy.publish=p:0.05,error:busy;"
                     "flush.zone_to_l0=p:0.1,error:io;"
                     "zone.persist=p:0.05,error:io;"
                     "zone.drop=p:0.05,error:busy;"
                     "index.sync=p:0.05,error:io;"
                     "lsm.write_l0=p:0.1,error:io;"
                     "lsm.compact=p:0.1,error:io;"
                     "pmem.alloc=p:0.02,error:oom")
                  .ok());

  // Per-thread disjoint key spaces; each thread records only the writes
  // the store acknowledged.
  std::vector<std::map<std::string, std::string>> acked(kThreads);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        char key[32];
        snprintf(key, sizeof(key), "t%d-key%06d", t, i % 1000);
        std::string value = "t" + std::to_string(t) + "-v" +
                            std::to_string(i) + std::string(120, 's');
        if (i % 13 == 12) {
          if (db->Delete(key).ok()) {
            acked[t].erase(key);
          }
        } else if (db->Put(key, value).ok()) {
          acked[t][key] = value;
        }
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }

  // The store must have absorbed the storm without degrading: the retry
  // budget is effectively unlimited and every injected error transient.
  EXPECT_FALSE(db->IsReadOnly()) << db->BackgroundError().ToString();
  EXPECT_GE(db->CounterValue("bg.retries"), 1u)
      << "the schedule never exercised a retry";

  // Crash with the points still armed, then recover cleanly.
  db.reset();
  reg->DisableAll();
  env->SimulateCrash();
  ASSERT_TRUE(DB::Open(env.get(), opts, true, &db).ok());

  size_t verified = 0;
  for (int t = 0; t < kThreads; t++) {
    for (const auto& [key, value] : acked[t]) {
      std::string got;
      Status s = db->Get(key, &got);
      ASSERT_TRUE(s.ok()) << "lost acknowledged key " << key << ": "
                          << s.ToString();
      ASSERT_EQ(value, got) << "wrong value for " << key;
      verified++;
    }
  }
  ASSERT_GE(verified, static_cast<size_t>(kThreads) * 100);
}

}  // namespace
}  // namespace cachekv
