// Parameterized property sweeps across configuration space: the
// simulated cache must stay coherent for any geometry, SSTables must
// round-trip for any block size, and the sub-MemTable pool must preserve
// its capacity invariant under any elasticity schedule.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "cache/cache_sim.h"
#include "core/sub_memtable_pool.h"
#include "lsm/sstable.h"
#include "pmem/pmem_device.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

LatencyCosts NoLatency() {
  LatencyCosts c;
  c.scale = 0;
  return c;
}

// ---------------------------------------------------------------------
// Cache geometry sweep: (capacity_kb, ways) — random stores/loads must
// behave like flat memory regardless of geometry.
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometryTest, CoherentUnderRandomTraffic) {
  const auto [capacity_kb, ways] = GetParam();
  LatencyModel latency(NoLatency());
  PmemConfig pc;
  pc.capacity = 8ull << 20;
  PmemDevice device(pc, &latency);
  CacheConfig cc;
  cc.capacity = static_cast<uint64_t>(capacity_kb) << 10;
  cc.ways = ways;
  CacheSim cache(cc, &device, &latency);

  // Reference model: byte map.
  std::map<uint64_t, char> model;
  Random rng(capacity_kb * 131 + ways);
  for (int op = 0; op < 20000; op++) {
    uint64_t addr = rng.Uniform(pc.capacity - 256);
    if (rng.OneIn(3)) {
      char buf[64];
      size_t len = 1 + rng.Uniform(64);
      for (size_t i = 0; i < len; i++) {
        buf[i] = static_cast<char>(rng.Next());
        model[addr + i] = buf[i];
      }
      if (rng.OneIn(5)) {
        cache.NtStore(addr, buf, len);
      } else {
        cache.Store(addr, buf, len);
      }
    } else {
      size_t len = 1 + rng.Uniform(64);
      std::string out(len, '\0');
      cache.Load(addr, out.data(), len);
      for (size_t i = 0; i < len; i++) {
        auto it = model.find(addr + i);
        char expect = (it == model.end()) ? 0 : it->second;
        ASSERT_EQ(expect, out[i])
            << "addr " << addr + i << " geometry " << capacity_kb << "KB/"
            << ways << "w";
      }
    }
    if (rng.OneIn(997)) {
      cache.Clwb(addr, 64);
    }
    if (rng.OneIn(1499)) {
      cache.Clflush(addr, 64);
    }
  }
  // Post-crash (eADR) the media must equal the model.
  cache.Crash();
  for (const auto& [addr, byte] : model) {
    char out;
    device.Read(addr, &out, 1);
    ASSERT_EQ(byte, out) << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(16, 1), std::make_tuple(16, 4),
                      std::make_tuple(64, 2), std::make_tuple(256, 8),
                      std::make_tuple(1024, 12),
                      std::make_tuple(4096, 16)));

// ---------------------------------------------------------------------
// SSTable block-size sweep.
class SSTableBlockSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SSTableBlockSizeTest, RoundTripAnyBlockSize) {
  const int block_size = GetParam();
  EnvOptions eo;
  eo.pmem_capacity = 64ull << 20;
  eo.latency.scale = 0;
  PmemEnv env(eo);

  SSTableOptions opts;
  opts.block_size = block_size;
  SSTableBuilder builder(opts);
  std::map<std::string, std::string> model;
  Random rng(block_size);
  for (int i = 0; i < 1500; i++) {
    char buf[20];
    snprintf(buf, sizeof(buf), "key%08d", i * 3);
    model[buf] = "value-" + std::to_string(rng.Next64() % 100000);
  }
  for (const auto& [k, v] : model) {
    std::string ikey;
    AppendInternalKey(&ikey, Slice(k), 50, kTypeValue);
    builder.Add(Slice(ikey), Slice(v));
  }
  ASSERT_TRUE(builder.Finish().ok());
  uint64_t region;
  uint64_t region_size = AlignUp(builder.contents().size(), kXPLineSize);
  ASSERT_TRUE(env.allocator()->Allocate(region_size, &region).ok());
  env.NtStore(region, builder.contents().data(),
              builder.contents().size());
  env.Sfence();
  std::unique_ptr<SSTableReader> reader;
  ASSERT_TRUE(SSTableReader::Open(&env, region,
                                  builder.contents().size(), &reader)
                  .ok());
  // Point lookups.
  for (const auto& [k, v] : model) {
    std::string ikey;
    AppendInternalKey(&ikey, Slice(k), 100, kValueTypeForSeek);
    ParsedInternalKey parsed;
    std::string key_storage, value;
    ASSERT_TRUE(
        reader->InternalGet(Slice(ikey), &parsed, &key_storage, &value)
            .ok())
        << k << " block_size=" << block_size;
    EXPECT_EQ(v, value);
  }
  // Full scan.
  std::unique_ptr<Iterator> iter(reader->NewIterator());
  size_t count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    count++;
  }
  EXPECT_EQ(model.size(), count);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, SSTableBlockSizeTest,
                         ::testing::Values(128, 512, 4096, 65536));

// ---------------------------------------------------------------------
// Pool elasticity sweep: under any (pool, initial, min) combination and
// any acquire/release schedule, the sum of slot sizes equals the pool
// capacity and all slots stay usable.
class PoolElasticityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PoolElasticityTest, CapacityConserved) {
  const auto [pool_mb, sub_kb, min_kb] = GetParam();
  EnvOptions eo;
  eo.pmem_capacity = 128ull << 20;
  eo.cat_locked_bytes = static_cast<uint64_t>(pool_mb) << 20;
  eo.latency.scale = 0;
  PmemEnv env(eo);
  CacheKVOptions opts;
  opts.pool_bytes = static_cast<uint64_t>(pool_mb) << 20;
  opts.sub_memtable_bytes = static_cast<uint64_t>(sub_kb) << 10;
  opts.min_sub_memtable_bytes = static_cast<uint64_t>(min_kb) << 10;
  opts.elasticity_miss_threshold = 4;
  SubMemTablePool pool(&env, opts);
  pool.Format();

  Random rng(pool_mb * 100 + sub_kb);
  std::vector<SubMemTable> held;
  for (int op = 0; op < 3000; op++) {
    if (rng.OneIn(2) || held.empty()) {
      SubMemTable t(&env, 0, SubMemTable::kDataOffset + kCacheLineSize);
      Status s = pool.Acquire(&t);
      if (s.ok()) {
        // The slot must be appendable.
        ASSERT_TRUE(
            t.Append(op + 1, kTypeValue, Slice("k"), Slice("v")).ok());
        held.push_back(t);
      } else {
        ASSERT_TRUE(s.IsBusy()) << s.ToString();
      }
    } else {
      size_t idx = rng.Uniform(held.size());
      ASSERT_TRUE(held[idx].Seal());
      pool.Release(held[idx]);
      held.erase(held.begin() + idx);
    }
  }
  for (auto& t : held) {
    t.Seal();
    pool.Release(t);
  }
  // Capacity invariant: walking the persistent headers covers the pool
  // exactly (RecoverScan validates contiguity internally).
  env.SimulateCrash();
  SubMemTablePool recovered(&env, opts);
  ASSERT_TRUE(
      recovered.RecoverScan([](const SubMemTable&) {
        return Status::OK();
      }).ok());
  EXPECT_EQ(recovered.NumSlots(), recovered.NumFreeSlots());
}

INSTANTIATE_TEST_SUITE_P(
    Pools, PoolElasticityTest,
    ::testing::Values(std::make_tuple(2, 512, 128),
                      std::make_tuple(4, 1024, 128),
                      std::make_tuple(4, 2048, 256),
                      std::make_tuple(12, 2048, 256),
                      std::make_tuple(8, 512, 512)));

}  // namespace
}  // namespace cachekv
