#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "index/pmem_bptree.h"
#include "index/pmem_skiplist.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.pmem_capacity = 128ull << 20;
  o.llc_capacity = 8ull << 20;
  o.latency.scale = 0;
  return o;
}

class PmemSkipListTest : public ::testing::Test {
 protected:
  PmemSkipListTest() : env_(TestEnv()) {
    EXPECT_TRUE(env_.allocator()->Allocate(16 << 20, &region_).ok());
    list_ = std::make_unique<PmemSkipList>(&env_, region_, 16 << 20,
                                           FlushMode::kFlushEveryWrite);
  }

  PmemEnv env_;
  uint64_t region_ = 0;
  std::unique_ptr<PmemSkipList> list_;
};

TEST_F(PmemSkipListTest, InsertAndGet) {
  ASSERT_TRUE(list_->Insert(1, kTypeValue, Slice("apple"), Slice("red"))
                  .ok());
  ASSERT_TRUE(
      list_->Insert(2, kTypeValue, Slice("banana"), Slice("yellow")).ok());
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kFound,
            list_->Get(Slice("apple"), 10, &value));
  EXPECT_EQ("red", value);
  EXPECT_EQ(PmemSkipList::GetResult::kNotFound,
            list_->Get(Slice("cherry"), 10, &value));
}

TEST_F(PmemSkipListTest, FreshestVersionAndSnapshots) {
  ASSERT_TRUE(list_->Insert(1, kTypeValue, Slice("k"), Slice("v1")).ok());
  ASSERT_TRUE(list_->Insert(7, kTypeValue, Slice("k"), Slice("v7")).ok());
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kFound,
            list_->Get(Slice("k"), 100, &value));
  EXPECT_EQ("v7", value);
  EXPECT_EQ(PmemSkipList::GetResult::kFound,
            list_->Get(Slice("k"), 3, &value));
  EXPECT_EQ("v1", value);
}

TEST_F(PmemSkipListTest, Tombstones) {
  ASSERT_TRUE(list_->Insert(1, kTypeValue, Slice("k"), Slice("v")).ok());
  ASSERT_TRUE(list_->Insert(2, kTypeDeletion, Slice("k"), Slice()).ok());
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kDeleted,
            list_->Get(Slice("k"), 10, &value));
}

TEST_F(PmemSkipListTest, ModelCheckAndIteration) {
  Random rng(42);
  std::map<std::string, std::string> model;
  SequenceNumber seq = 0;
  for (int i = 0; i < 3000; i++) {
    std::string k = "key" + std::to_string(rng.Uniform(800));
    std::string v = "val" + std::to_string(i);
    ASSERT_TRUE(list_->Insert(++seq, kTypeValue, Slice(k), Slice(v)).ok());
    model[k] = v;
  }
  EXPECT_EQ(3000u, list_->NumEntries());
  for (const auto& [k, v] : model) {
    std::string value;
    ASSERT_EQ(PmemSkipList::GetResult::kFound,
              list_->Get(Slice(k), seq, &value))
        << k;
    EXPECT_EQ(v, value);
  }
  // Iteration yields internal keys in order, freshest version first per
  // user key.
  std::unique_ptr<Iterator> iter(list_->NewIterator());
  std::map<std::string, std::string> first_seen;
  int count = 0;
  std::string prev;
  InternalKeyComparator icmp;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (count > 0) {
      EXPECT_LT(icmp.Compare(Slice(prev), iter->key()), 0);
    }
    prev = iter->key().ToString();
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    std::string uk = parsed.user_key.ToString();
    if (!first_seen.count(uk)) {
      first_seen[uk] = iter->value().ToString();
    }
    count++;
  }
  EXPECT_EQ(3000, count);
  EXPECT_EQ(model, first_seen);
}

TEST_F(PmemSkipListTest, OutOfSpace) {
  uint64_t small_region;
  ASSERT_TRUE(env_.allocator()->Allocate(4096, &small_region).ok());
  PmemSkipList small(&env_, small_region, 4096, FlushMode::kNone);
  std::string big(1024, 'x');
  Status s = Status::OK();
  int inserted = 0;
  for (int i = 0; i < 10 && s.ok(); i++) {
    s = small.Insert(i + 1, kTypeValue, Slice("k" + std::to_string(i)),
                     Slice(big));
    if (s.ok()) inserted++;
  }
  EXPECT_TRUE(s.IsOutOfSpace());
  EXPECT_GE(inserted, 1);
  // Previously inserted data still readable.
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kFound,
            small.Get(Slice("k0"), 100, &value));
}

TEST_F(PmemSkipListTest, ResetEmptiesList) {
  ASSERT_TRUE(list_->Insert(1, kTypeValue, Slice("k"), Slice("v")).ok());
  list_->Reset();
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kNotFound,
            list_->Get(Slice("k"), 100, &value));
  EXPECT_EQ(0u, list_->NumEntries());
}

TEST_F(PmemSkipListTest, DataSurvivesEadrCrash) {
  ASSERT_TRUE(
      list_->Insert(1, kTypeValue, Slice("durable"), Slice("yes")).ok());
  // Under eADR, even without flush instructions the data reaches media on
  // power failure. The DRAM-side structure (this object) holds only
  // offsets, so re-reading through a fresh wrapper works.
  env_.SimulateCrash();
  ASSERT_TRUE(env_.allocator()->Reserve(region_, 16 << 20).ok());
  // The wrapper keeps its cursor/head in DRAM; for the baselines the
  // memtable is rebuilt from scratch after recovery, so here we simply
  // verify the raw bytes survived.
  std::string value;
  EXPECT_EQ(PmemSkipList::GetResult::kFound,
            list_->Get(Slice("durable"), 100, &value));
  EXPECT_EQ("yes", value);
}

class PmemBPlusTreeTest : public ::testing::Test {
 protected:
  PmemBPlusTreeTest() : env_(TestEnv()) {
    EXPECT_TRUE(env_.allocator()->Allocate(32 << 20, &region_).ok());
    tree_ = std::make_unique<PmemBPlusTree>(&env_, region_, 32 << 20,
                                            FlushMode::kFlushEveryWrite);
  }

  PmemEnv env_;
  uint64_t region_ = 0;
  std::unique_ptr<PmemBPlusTree> tree_;
};

TEST_F(PmemBPlusTreeTest, InsertGet) {
  ASSERT_TRUE(tree_->Insert(Slice("alpha"), 100).ok());
  ASSERT_TRUE(tree_->Insert(Slice("beta"), 200).ok());
  uint64_t locator;
  ASSERT_TRUE(tree_->Get(Slice("alpha"), &locator).ok());
  EXPECT_EQ(100u, locator);
  ASSERT_TRUE(tree_->Get(Slice("beta"), &locator).ok());
  EXPECT_EQ(200u, locator);
  EXPECT_TRUE(tree_->Get(Slice("gamma"), &locator).IsNotFound());
}

TEST_F(PmemBPlusTreeTest, UpdateInPlace) {
  ASSERT_TRUE(tree_->Insert(Slice("k"), 1).ok());
  ASSERT_TRUE(tree_->Insert(Slice("k"), 2).ok());
  uint64_t locator;
  ASSERT_TRUE(tree_->Get(Slice("k"), &locator).ok());
  EXPECT_EQ(2u, locator);
  EXPECT_EQ(1u, tree_->NumEntries());
}

TEST_F(PmemBPlusTreeTest, KeyTooLongRejected) {
  std::string long_key(40, 'x');
  EXPECT_TRUE(tree_->Insert(Slice(long_key), 1).IsNotSupported());
  uint64_t locator;
  EXPECT_TRUE(tree_->Get(Slice(long_key), &locator).IsNotSupported());
}

TEST_F(PmemBPlusTreeTest, SplitsAndModelCheck) {
  Random rng(9);
  std::map<std::string, uint64_t> model;
  for (int i = 0; i < 20000; i++) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08llu",
             static_cast<unsigned long long>(rng.Uniform(8000)));
    uint64_t loc = rng.Next64();
    ASSERT_TRUE(tree_->Insert(Slice(buf), loc).ok());
    model[buf] = loc;
  }
  EXPECT_EQ(model.size(), tree_->NumEntries());
  EXPECT_GT(tree_->Height(), 1);
  for (const auto& [k, v] : model) {
    uint64_t locator;
    ASSERT_TRUE(tree_->Get(Slice(k), &locator).ok()) << k;
    EXPECT_EQ(v, locator);
  }
  // Scan yields sorted order and exactly the model.
  std::map<std::string, uint64_t> scanned;
  std::string prev;
  tree_->Scan([&](const Slice& k, uint64_t v) {
    std::string ks = k.ToString();
    EXPECT_LT(prev, ks);
    prev = ks;
    scanned[ks] = v;
  });
  EXPECT_EQ(model, scanned);
}

TEST_F(PmemBPlusTreeTest, DeleteRemovesKeys) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        tree_->Insert(Slice("key" + std::to_string(i)), i).ok());
  }
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree_->Delete(Slice("key" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 2000; i++) {
    uint64_t locator;
    Status s = tree_->Get(Slice("key" + std::to_string(i)), &locator);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(static_cast<uint64_t>(i), locator);
    }
  }
  EXPECT_TRUE(tree_->Delete(Slice("never")).IsNotFound());
}

// Property sweep: different scales keep tree invariants.
class BPlusTreeScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeScaleTest, SequentialAndReverseInserts) {
  PmemEnv env(TestEnv());
  uint64_t region;
  ASSERT_TRUE(env.allocator()->Allocate(32 << 20, &region).ok());
  const int n = GetParam();
  for (bool reverse : {false, true}) {
    PmemBPlusTree tree(&env, region, 32 << 20, FlushMode::kNone);
    for (int i = 0; i < n; i++) {
      int x = reverse ? n - 1 - i : i;
      char buf[24];
      snprintf(buf, sizeof(buf), "k%08d", x);
      ASSERT_TRUE(tree.Insert(Slice(buf), x).ok());
    }
    EXPECT_EQ(static_cast<uint64_t>(n), tree.NumEntries());
    int count = 0;
    std::string prev;
    tree.Scan([&](const Slice& k, uint64_t v) {
      std::string ks = k.ToString();
      EXPECT_LT(prev, ks);
      prev = ks;
      EXPECT_EQ(ks, "k" + std::string(8 - std::to_string(v).size(), '0') +
                        std::to_string(v));
      count++;
    });
    EXPECT_EQ(n, count);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeScaleTest,
                         ::testing::Values(1, 10, 100, 1000, 10000));

}  // namespace
}  // namespace cachekv
