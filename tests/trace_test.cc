// Tests for the lock-free event tracer (src/obs/trace.h): ring
// wraparound with drop accounting, concurrent emission (run under TSan
// to check the seqlock-guarded slots), and Chrome trace-event export
// that round-trips through the JSON layer.

#include "obs/trace.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"

namespace cachekv {
namespace obs {
namespace {

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer(64);
  tracer.Instant("never");
  {
    TraceScope scope(&tracer, "never");
    scope.AddArg("bytes", 1);
  }
  TraceScope null_scope(nullptr, "never");
  EXPECT_FALSE(null_scope.active());
  EXPECT_EQ(0u, tracer.RetainedEvents());
  EXPECT_EQ(0u, tracer.DroppedEvents());
  std::string out;
  tracer.Export(&out);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(out, &doc).ok());
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.items().empty());
}

TEST(TraceTest, RecordsCompleteAndInstantEvents) {
  Tracer tracer(64);
  tracer.set_enabled(true);
  tracer.SetThreadName("main");
  tracer.Instant("seal", "bytes", 123);
  {
    TraceScope scope(&tracer, "flush.copy");
    ASSERT_TRUE(scope.active());
    scope.AddArg("bytes", 4096);
    scope.AddArg("keys", 17);
    scope.AddArg("overflow", 1);  // third arg: dropped silently
  }
  EXPECT_EQ(2u, tracer.RetainedEvents());
  EXPECT_EQ(0u, tracer.DroppedEvents());

  std::string out;
  tracer.Export(&out);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(out, &doc).ok());
  ASSERT_TRUE(doc.is_array());

  const JsonValue* instant = nullptr;
  const JsonValue* complete = nullptr;
  const JsonValue* thread_meta = nullptr;
  for (const JsonValue& ev : doc.items()) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* name = ev.Get("name");
    ASSERT_NE(nullptr, name);
    if (name->str() == "seal") instant = &ev;
    if (name->str() == "flush.copy") complete = &ev;
    if (name->str() == "thread_name") thread_meta = &ev;
  }
  ASSERT_NE(nullptr, instant);
  EXPECT_EQ("i", instant->Get("ph")->str());
  EXPECT_DOUBLE_EQ(123.0,
                   instant->Get("args")->Get("bytes")->number());
  ASSERT_NE(nullptr, complete);
  EXPECT_EQ("X", complete->Get("ph")->str());
  ASSERT_NE(nullptr, complete->Get("dur"));
  EXPECT_GE(complete->Get("dur")->number(), 0.0);
  EXPECT_DOUBLE_EQ(4096.0,
                   complete->Get("args")->Get("bytes")->number());
  EXPECT_DOUBLE_EQ(17.0, complete->Get("args")->Get("keys")->number());
  EXPECT_EQ(nullptr, complete->Get("args")->Get("overflow"));
  ASSERT_NE(nullptr, thread_meta);
  EXPECT_EQ("M", thread_meta->Get("ph")->str());
  EXPECT_EQ("main", thread_meta->Get("args")->Get("name")->str());
}

TEST(TraceTest, RingWrapsKeepingNewestAndCountsDrops) {
  constexpr size_t kCapacity = 32;
  constexpr uint64_t kEvents = 100;
  Tracer tracer(kCapacity);
  tracer.set_enabled(true);
  for (uint64_t i = 0; i < kEvents; i++) {
    // Distinguishable timestamps: event i covers [i, i+1) ns.
    tracer.Complete("op", /*ts_ns=*/i * 1000, /*dur_ns=*/1000);
  }
  EXPECT_EQ(kCapacity, tracer.RetainedEvents());
  EXPECT_EQ(kEvents - kCapacity, tracer.DroppedEvents());

  std::string out;
  tracer.Export(&out);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(out, &doc).ok());
  std::vector<double> ts;
  double reported_drops = 0;
  for (const JsonValue& ev : doc.items()) {
    if (ev.Get("name")->str() == "op") {
      ts.push_back(ev.Get("ts")->number());
    } else if (ev.Get("name")->str() == "trace.dropped") {
      reported_drops = ev.Get("args")->Get("dropped")->number();
    }
  }
  // Exactly the newest kCapacity events survive, in append order.
  ASSERT_EQ(kCapacity, ts.size());
  for (size_t i = 0; i < ts.size(); i++) {
    EXPECT_DOUBLE_EQ(static_cast<double>(kEvents - kCapacity + i), ts[i]);
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(kEvents - kCapacity),
                   reported_drops);
}

TEST(TraceTest, ConcurrentEmittersGetPrivateRings) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  Tracer tracer(kPerThread);  // exactly fits: no drops expected
  tracer.set_enabled(true);
  std::atomic<bool> exporter_stop{false};
  // A concurrent exporter exercises the seqlock path under TSan.
  std::thread exporter([&] {
    while (!exporter_stop.load(std::memory_order_acquire)) {
      std::string out;
      tracer.Export(&out);
      JsonValue doc;
      ASSERT_TRUE(JsonValue::Parse(out, &doc).ok());
    }
  });
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; t++) {
    emitters.emplace_back([&tracer, t] {
      tracer.SetThreadName(t % 2 == 0 ? "even" : "odd");
      for (int i = 0; i < kPerThread; i++) {
        if (i % 2 == 0) {
          tracer.Instant("tick");
        } else {
          TraceScope scope(&tracer, "work");
          scope.AddArg("i", static_cast<uint64_t>(i));
        }
      }
    });
  }
  for (auto& t : emitters) t.join();
  exporter_stop.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kPerThread,
            tracer.RetainedEvents());
  EXPECT_EQ(0u, tracer.DroppedEvents());

  // The quiesced export holds every event, under one tid per thread.
  std::string out;
  tracer.Export(&out);
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(out, &doc).ok());
  size_t events = 0;
  std::set<double> tids;
  for (const JsonValue& ev : doc.items()) {
    const std::string& name = ev.Get("name")->str();
    if (name == "tick" || name == "work") {
      events++;
      tids.insert(ev.Get("tid")->number());
    }
  }
  EXPECT_EQ(static_cast<size_t>(kThreads) * kPerThread, events);
  EXPECT_EQ(static_cast<size_t>(kThreads), tids.size());
}

TEST(TraceTest, ExportJsonAssignsPidAndProcessName) {
  Tracer a(16), b(16);
  a.set_enabled(true);
  b.set_enabled(true);
  a.Instant("from-a");
  b.Instant("from-b");
  JsonValue events = JsonValue::Array();
  a.ExportJson(&events, /*pid=*/1, "run-a");
  b.ExportJson(&events, /*pid=*/2, "run-b");
  bool saw_a = false, saw_b = false, saw_meta_a = false;
  for (const JsonValue& ev : events.items()) {
    const std::string& name = ev.Get("name")->str();
    if (name == "from-a") {
      saw_a = true;
      EXPECT_DOUBLE_EQ(1.0, ev.Get("pid")->number());
    } else if (name == "from-b") {
      saw_b = true;
      EXPECT_DOUBLE_EQ(2.0, ev.Get("pid")->number());
    } else if (name == "process_name" &&
               ev.Get("args")->Get("name")->str() == "run-a") {
      saw_meta_a = true;
      EXPECT_DOUBLE_EQ(1.0, ev.Get("pid")->number());
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_meta_a);
}

}  // namespace
}  // namespace obs
}  // namespace cachekv
