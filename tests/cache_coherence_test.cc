// Hot-key cache coherence under fault injection: the headline property
// of docs/ISSUE 6 — a GET must NEVER return a value older than an
// already-acknowledged overwrite of the same key, no matter how the
// cache's fill/invalidate windows are stretched by armed fail points.
//
// Protocol: every key is owned by exactly one writer thread, which
// writes monotonically increasing sequence numbers and publishes
// acked[key] = seq only AFTER the server acknowledged the PUT. Readers
// snapshot acked[key] BEFORE issuing the GET; whatever comes back must
// decode to a sequence >= that snapshot. Because the server invalidates
// the cache after the DB commit and before the ack, and stale fill
// tokens are rejected (src/cache/hot_key_cache.h), the invariant holds
// even with cache.poison and cache.invalidate delays widening every
// race window. Run single-shard and 4-shard.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "fault/fail_point.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "pmem/pmem_env.h"

namespace cachekv {
namespace {

EnvOptions TestEnv(uint64_t pool_bytes) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = pool_bytes;
  o.latency.scale = 0;
  return o;
}

CacheKVOptions TestDb() {
  CacheKVOptions o;
  o.pool_bytes = 2ull << 20;
  o.sub_memtable_bytes = 128ull << 10;
  o.min_sub_memtable_bytes = 64ull << 10;
  o.num_cores = 2;
  o.bg_backoff_base_ms = 1;
  o.bg_backoff_max_ms = 4;
  o.write_stall_timeout_ms = 2000;
  o.lsm.background_compaction = false;
  return o;
}

constexpr int kKeys = 16;       // tiny hot set: maximal overwrite contention
constexpr int kWriters = 2;     // each owns kKeys / kWriters keys
constexpr int kReaders = 4;
constexpr int kReadsPerReader = 3000;  // 12k verified rounds per fixture

std::string KeyName(int k) { return "coh-key-" + std::to_string(k); }

// Arms the chaos that stretches the miss->fill and commit->ack windows:
//  * cache.poison delays half the fills, so invalidations land between
//    Lookup and Insert (exercising fill-token rejection);
//  * cache.invalidate delays half the invalidations, stretching the
//    commit->ack window on the write path.
void ArmChaos() {
  auto* reg = fault::FailPointRegistry::Global();
  ASSERT_TRUE(reg->Enable("cache.poison", "p:0.5,delay:100").ok());
  ASSERT_TRUE(reg->Enable("cache.invalidate", "p:0.5,delay:100").ok());
}

// Drives writers + readers against a started server through the given
// client type (net::Client or net::ShardedClient — same surface).
template <typename ClientT>
void RunCoherenceLoad(uint16_t port) {
  // acked[k]: highest sequence number the owner writer saw acknowledged.
  // next value is picked by the single owner, so commit order == ack
  // order per key and the invariant below is exact, not heuristic.
  std::vector<std::atomic<uint64_t>> acked(kKeys);
  for (auto& a : acked) a.store(0);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> stale_reads{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      ClientT client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        seq++;
        for (int k = w; k < kKeys; k += kWriters) {
          const std::string value = std::to_string(seq);
          if (!client.Put(KeyName(k), value).ok()) {
            failures.fetch_add(1);
            return;
          }
          // Published only after the ack came back: from here on, no
          // reader may ever see a sequence below `seq` for this key.
          acked[static_cast<size_t>(k)].store(seq,
                                              std::memory_order_release);
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      ClientT client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(r + 1);
      for (int i = 0; i < kReadsPerReader; i++) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int k = static_cast<int>((rng >> 33) % kKeys);
        // Snapshot BEFORE the GET: the write carrying this sequence was
        // already acknowledged, so the response must not predate it.
        const uint64_t floor_seq =
            acked[static_cast<size_t>(k)].load(std::memory_order_acquire);
        std::string value;
        Status s = client.Get(KeyName(k), &value);
        if (floor_seq == 0) continue;  // key may not exist yet
        if (!s.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const uint64_t got = strtoull(value.c_str(), nullptr, 10);
        if (got < floor_seq) {
          stale_reads.fetch_add(1);
          ADD_FAILURE() << "stale read on " << KeyName(k) << ": got seq "
                        << got << " after seq " << floor_seq
                        << " was acknowledged";
        }
      }
    });
  }

  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0u, stale_reads.load());
}

class CacheCoherenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    env_ = std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes));
    ASSERT_TRUE(DB::Open(env_.get(), opts_, false, &db_).ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (db_) db_->WaitIdle();
    fault::FailPointRegistry::Global()->DisableAll();
  }

  CacheKVOptions opts_;
  std::unique_ptr<PmemEnv> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(CacheCoherenceTest, NoStaleAckedOverwriteSingleShard) {
  net::ServerOptions srv;
  srv.port = 0;
  srv.hot_key_cache_bytes = 1u << 20;
  srv.hot_key_cache_admit = 1;  // fill on first miss: maximal race surface
  server_ = std::make_unique<net::Server>(db_.get(), srv);
  ASSERT_TRUE(server_->Start().ok());

  ArmChaos();
  RunCoherenceLoad<net::Client>(server_->port());

  // The run exercised the cache, not just the DB: the hot set must have
  // produced hits and the overwrites must have invalidated entries.
  EXPECT_GT(db_->CounterValue("cache.hits"), 0u);
  EXPECT_GT(db_->CounterValue("cache.invalidations"), 0u);
}

TEST_F(CacheCoherenceTest, PoisonedFillsNeverServeWhileDropped) {
  // error-armed cache.poison drops every fill: the cache contributes
  // nothing, but correctness (served straight from the DB) still holds.
  net::ServerOptions srv;
  srv.port = 0;
  srv.hot_key_cache_bytes = 1u << 20;
  srv.hot_key_cache_admit = 1;
  server_ = std::make_unique<net::Server>(db_.get(), srv);
  ASSERT_TRUE(server_->Start().ok());

  auto* reg = fault::FailPointRegistry::Global();
  ASSERT_TRUE(reg->Enable("cache.poison", "always,error:io").ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 200; i++) {
    const std::string key = KeyName(i % kKeys);
    ASSERT_TRUE(client.Put(key, std::to_string(i)).ok());
    std::string got;
    ASSERT_TRUE(client.Get(key, &got).ok());
    EXPECT_EQ(std::to_string(i), got);
  }
  EXPECT_EQ(0u, db_->CounterValue("cache.hits"));
  EXPECT_GT(db_->CounterValue("cache.rejected_fills"), 0u);
}

class ShardedCacheCoherenceTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 4;

  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    net::ShardMap map;
    map.num_shards = kShards;
    ASSERT_TRUE(net::ShardRouter::Build(map, &router_).ok());
    for (int i = 0; i < kShards; i++) {
      envs_.push_back(
          std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes)));
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(envs_.back().get(), opts_, false, &db).ok());
      dbs_.push_back(std::move(db));
    }
  }

  void TearDown() override {
    if (server_) server_->Stop();
    for (auto& db : dbs_) {
      if (db) db->WaitIdle();
    }
    fault::FailPointRegistry::Global()->DisableAll();
  }

  CacheKVOptions opts_;
  net::ShardRouter router_;
  std::vector<std::unique_ptr<PmemEnv>> envs_;
  std::vector<std::unique_ptr<DB>> dbs_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(ShardedCacheCoherenceTest, NoStaleAckedOverwriteAcrossShards) {
  net::ServerOptions srv;
  srv.port = 0;
  srv.hot_key_cache_bytes = 1u << 20;
  srv.hot_key_cache_admit = 1;
  std::vector<DB*> ptrs;
  for (auto& db : dbs_) ptrs.push_back(db.get());
  server_ = std::make_unique<net::Server>(ptrs, router_, srv);
  ASSERT_TRUE(server_->Start().ok());

  ArmChaos();
  // ShardedClient routes each key to its owning shard client-side, so
  // this also proves the per-shard caches never cross keys.
  RunCoherenceLoad<net::ShardedClient>(server_->port());

  uint64_t hits = 0, invalidations = 0;
  for (auto& db : dbs_) {
    hits += db->CounterValue("cache.hits");
    invalidations += db->CounterValue("cache.invalidations");
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(invalidations, 0u);
}

TEST_F(ShardedCacheCoherenceTest, MultiPutInvalidatesEveryTouchedShard) {
  net::ServerOptions srv;
  srv.port = 0;
  srv.hot_key_cache_bytes = 1u << 20;
  srv.hot_key_cache_admit = 1;
  std::vector<DB*> ptrs;
  for (auto& db : dbs_) ptrs.push_back(db.get());
  server_ = std::make_unique<net::Server>(ptrs, router_, srv);
  ASSERT_TRUE(server_->Start().ok());

  net::Client client;  // unsharded: the server splits the batch itself
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Warm the caches on keys spread across all shards...
  std::vector<std::string> keys;
  for (int i = 0; i < 64; i++) keys.push_back("mp-key-" + std::to_string(i));
  for (const auto& key : keys) {
    ASSERT_TRUE(client.Put(key, "old").ok());
  }
  std::string got;
  for (const auto& key : keys) {
    ASSERT_TRUE(client.Get(key, &got).ok());   // miss + fill
    ASSERT_TRUE(client.Get(key, &got).ok());   // hit
  }
  // ...then overwrite every one of them in a single MULTIPUT. Once the
  // batch is acknowledged, no cached "old" may survive anywhere.
  std::vector<KVStore::BatchOp> batch;
  for (const auto& key : keys) batch.push_back({false, key, "new"});
  ASSERT_TRUE(client.MultiPut(batch).ok());
  for (const auto& key : keys) {
    ASSERT_TRUE(client.Get(key, &got).ok());
    EXPECT_EQ("new", got) << key;
  }
}

}  // namespace
}  // namespace cachekv
