#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/db.h"
#include "core/flushed_zone.h"
#include "core/sub_memtable.h"
#include "lsm/lsm_engine.h"
#include "lsm/memtable.h"
#include "lsm/wal.h"
#include "pmem/meta_layout.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv(uint64_t cat = 0) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = cat;
  o.latency.scale = 0;
  return o;
}

LsmOptions SmallLsm() {
  LsmOptions o;
  o.l0_compaction_trigger = 3;
  o.base_level_bytes = 1 << 20;
  o.target_file_size = 256 << 10;
  o.background_compaction = false;
  return o;
}

// Overwrites `len` bytes at `addr` with junk, through the nt path so the
// damage is durable.
void Clobber(PmemEnv* env, uint64_t addr, size_t len) {
  std::string junk(len, '\x5a');
  env->NtStore(addr, junk.data(), junk.size());
  env->Sfence();
}

TEST(FailureInjectionTest, ManifestSingleSlotCorruptionFallsBack) {
  PmemEnv env(TestEnv());
  {
    LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
    ASSERT_TRUE(engine.Open(false).ok());
    MemTable mem;
    SequenceNumber seq = 0;
    for (int batch = 0; batch < 3; batch++) {
      MemTable m;
      for (int i = 0; i < 50; i++) {
        m.Add(++seq, kTypeValue, Slice("key" + std::to_string(i)),
              Slice("b" + std::to_string(batch)));
      }
      std::unique_ptr<Iterator> iter(m.NewIterator());
      ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());
    }
  }
  // Corrupt the slot holding the NEWEST manifest epoch. Epochs increment
  // per install; the latest lives at slot (epoch % 2). Clobber both
  // headers' crc bytes in turn and verify open still succeeds using the
  // surviving slot (losing at most the last install).
  env.SimulateCrash();
  Clobber(&env, MetaLayout::ManifestBase(&env) + 4, 4);  // slot 0 crc
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  Status s = engine.Open(true);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The engine recovered *something* consistent: at most one batch lost.
  std::string value;
  bool deleted;
  Status g = engine.Get(Slice("key0"), kMaxSequenceNumber, &value,
                        &deleted);
  EXPECT_TRUE(g.ok()) << g.ToString();
}

TEST(FailureInjectionTest, ManifestBothSlotsCorruptStartsEmpty) {
  PmemEnv env(TestEnv());
  {
    LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
    ASSERT_TRUE(engine.Open(false).ok());
    MemTable m;
    m.Add(1, kTypeValue, Slice("k"), Slice("v"));
    std::unique_ptr<Iterator> iter(m.NewIterator());
    ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());
  }
  env.SimulateCrash();
  Clobber(&env, MetaLayout::ManifestBase(&env), 64);
  Clobber(&env,
          MetaLayout::ManifestBase(&env) + MetaLayout::kManifestSlotSize,
          64);
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  Status s = engine.Open(true);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::string value;
  bool deleted;
  EXPECT_TRUE(engine.Get(Slice("k"), kMaxSequenceNumber, &value, &deleted)
                  .IsNotFound())
      << "with no valid manifest the engine must come up empty, not crash";
}

TEST(FailureInjectionTest, TornWalTailStopsReplayCleanly) {
  PmemEnv env(TestEnv());
  uint64_t region;
  ASSERT_TRUE(env.allocator()->Allocate(1 << 20, &region).ok());
  WalWriter writer(&env, region, 1 << 20, true);
  writer.Reset();
  uint64_t offsets[3];
  for (int i = 0; i < 3; i++) {
    offsets[i] = writer.BytesUsed();
    ASSERT_TRUE(
        writer.AddRecord(Slice("record-" + std::to_string(i))).ok());
  }
  // Tear the third record's payload.
  Clobber(&env, region + offsets[2] + 10, 2);
  WalReader reader(&env, region, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("record-0", rec);
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("record-1", rec);
  EXPECT_FALSE(reader.ReadRecord(&rec))
      << "replay must stop at the torn record";
}

TEST(FailureInjectionTest, CorruptSSTableBytesNeverCrash) {
  PmemEnv env(TestEnv());
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  ASSERT_TRUE(engine.Open(false).ok());
  MemTable m;
  SequenceNumber seq = 0;
  for (int i = 0; i < 2000; i++) {
    m.Add(++seq, kTypeValue, Slice("key" + std::to_string(i)),
          Slice("value" + std::to_string(i)));
  }
  std::unique_ptr<Iterator> iter(m.NewIterator());
  ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());

  // Flip a few bytes inside the first table's data area (not the
  // footer: the reader caches index/filter at open). Every Get must
  // return a Status — never crash — and the per-block checksums must
  // flag the damaged block as Corruption instead of serving bad data.
  VersionRef v = engine.CurrentVersion();
  ASSERT_FALSE(v->levels[0].empty());
  const TableRef& t = v->levels[0][0];
  Random rng(13);
  for (int flips = 0; flips < 3; flips++) {
    uint64_t off = rng.Uniform(t->meta.file_size > 1024
                                   ? t->meta.file_size / 2
                                   : 1);
    Clobber(&env, t->meta.region_offset + off, 1);
  }
  int ok_count = 0, corrupt = 0, not_found = 0;
  for (int i = 0; i < 2000; i++) {
    std::string value;
    bool deleted;
    Status s = engine.Get(Slice("key" + std::to_string(i)),
                          kMaxSequenceNumber, &value, &deleted);
    if (s.ok()) {
      ok_count++;
      EXPECT_EQ("value" + std::to_string(i), value)
          << "a checksummed read must never return wrong bytes";
    } else if (s.IsCorruption()) {
      corrupt++;
    } else {
      not_found++;
    }
  }
  EXPECT_EQ(2000, ok_count + corrupt + not_found);
  EXPECT_GT(corrupt, 0) << "the flipped block must be detected";
  SUCCEED() << ok_count << " ok, " << corrupt << " corrupt, "
            << not_found << " not found";
}

TEST(FailureInjectionTest, ZoneRegistryCorruptionRecoversOtherSlot) {
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts;
  opts.pool_bytes = 4ull << 20;
  opts.sub_memtable_bytes = 512ull << 10;
  opts.min_sub_memtable_bytes = 128ull << 10;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, false, &db).ok());
    std::string value(300, 'z');
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), value).ok());
    }
    ASSERT_TRUE(db->WaitIdle().ok());
  }
  env.SimulateCrash();
  // Corrupt one registry slot; recovery must still come up (using the
  // other slot or, at worst, replaying the epoch before it).
  Clobber(&env, MetaLayout::ZoneRegistryBase(&env) + 4, 4);
  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, opts, true, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::string got;
  Status g = db->Get("key1", &got);
  EXPECT_TRUE(g.ok() || g.IsNotFound()) << g.ToString();
}

TEST(FailureInjectionTest, RepeatedCrashesDuringLoad) {
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts;
  opts.pool_bytes = 4ull << 20;
  opts.sub_memtable_bytes = 512ull << 10;
  opts.min_sub_memtable_bytes = 128ull << 10;
  opts.imm_zone_flush_threshold = 1ull << 20;

  int written = 0;
  for (int round = 0; round < 5; round++) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, round > 0, &db).ok()) << round;
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(written),
                          "v" + std::to_string(written))
                      .ok());
      written++;
    }
    db.reset();
    env.SimulateCrash();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(&env, opts, true, &db).ok());
  Random rng(3);
  for (int probe = 0; probe < 500; probe++) {
    int i = rng.Uniform(written);
    std::string got;
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ("v" + std::to_string(i), got);
  }
}

// --- Crash-point sweep -----------------------------------------------------
//
// The two sweeps below parameterize Clobber over a grid of offsets and
// lengths in (a) the staged-zone table data and (b) the sub-MemTable pool
// headers. The contract under test: after a crash plus arbitrary damage at
// a grid point, reopening the store either restores every committed key or
// fails with a Corruption status — it must never open successfully while
// silently dropping or mangling committed data.

CacheKVOptions SweepOptions() {
  CacheKVOptions opts;
  opts.pool_bytes = 4ull << 20;
  opts.sub_memtable_bytes = 512ull << 10;
  opts.min_sub_memtable_bytes = 128ull << 10;
  // Keep flushed tables staged in the zone so the sweep has zone data to
  // damage (no zone->L0 migration).
  opts.imm_zone_flush_threshold = 256ull << 20;
  return opts;
}

// Reopens with recovery and checks the all-or-clean-error contract.
void ExpectRestoreOrCorruption(
    PmemEnv* env, const CacheKVOptions& opts,
    const std::map<std::string, std::string>& committed) {
  std::unique_ptr<DB> db;
  Status s = DB::Open(env, opts, true, &db);
  if (!s.ok()) {
    EXPECT_TRUE(s.IsCorruption())
        << "damage must surface as Corruption, got: " << s.ToString();
    return;
  }
  for (const auto& [key, value] : committed) {
    std::string got;
    Status g = db->Get(key, &got);
    ASSERT_TRUE(g.ok())
        << "open succeeded but committed key '" << key
        << "' was silently dropped: " << g.ToString();
    ASSERT_EQ(value, got) << "wrong bytes for committed key '" << key
                          << "'";
  }
}

// Param: (position permille within the table's data, clobber length).
class ZoneDataClobberSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZoneDataClobberSweep, RestoresOrReportsCorruption) {
  const auto [pos_pct, len] = GetParam();
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts = SweepOptions();
  std::map<std::string, std::string> committed;
  std::vector<FlushedTable> tables;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, false, &db).ok());
    for (int i = 0; i < 8000; i++) {
      std::string key = "key" + std::to_string(i);
      std::string value =
          "val" + std::to_string(i) + std::string(280, 'a' + (i % 26));
      ASSERT_TRUE(db->Put(key, value).ok()) << i;
      committed[key] = value;
    }
    ASSERT_TRUE(db->WaitIdle().ok());
    tables = db->zone()->SnapshotTables();
  }
  ASSERT_FALSE(tables.empty())
      << "the workload must stage at least one table in the zone";
  env.SimulateCrash();

  const FlushedTable& t = tables[tables.size() / 2];
  ASSERT_GT(t.data_tail, static_cast<uint64_t>(len));
  const uint64_t pos = (t.data_tail - len) * pos_pct / 100;
  Clobber(&env, t.region_offset + SubMemTable::kDataOffset + pos, len);

  ExpectRestoreOrCorruption(&env, opts, committed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZoneDataClobberSweep,
    ::testing::Combine(::testing::Values(0, 50, 95),
                       ::testing::Values(1, 64, 300)));

TEST(FailureInjectionTest, ZoneClobberPastDataTailStillRestores) {
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts = SweepOptions();
  std::map<std::string, std::string> committed;
  std::vector<FlushedTable> tables;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, false, &db).ok());
    for (int i = 0; i < 8000; i++) {
      std::string key = "key" + std::to_string(i);
      std::string value = "val" + std::to_string(i) + std::string(280, 'p');
      ASSERT_TRUE(db->Put(key, value).ok()) << i;
      committed[key] = value;
    }
    ASSERT_TRUE(db->WaitIdle().ok());
    tables = db->zone()->SnapshotTables();
  }
  ASSERT_FALSE(tables.empty());
  env.SimulateCrash();

  // Damage bytes in a staged region but past the committed data tail:
  // the CRC does not cover them, so recovery must come up with every key.
  bool clobbered = false;
  for (const auto& t : tables) {
    const uint64_t used = SubMemTable::kDataOffset + t.data_tail;
    if (t.region_size >= used + 8) {
      Clobber(&env, t.region_offset + used, 8);
      clobbered = true;
      break;
    }
  }
  ASSERT_TRUE(clobbered) << "no staged region had slack past its tail";

  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, opts, true, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (const auto& [key, value] : committed) {
    std::string got;
    ASSERT_TRUE(db->Get(key, &got).ok()) << key;
    ASSERT_EQ(value, got) << key;
  }
}

// Param: (pool slot index, byte offset within the header, clobber length).
// Offset 0 holds the packed {counter|state|tail} word (low 3 bytes are the
// tail, bytes 5..7 the counter's high bits), offset 16 the slot-size word
// that the recovery walk uses to parse the pool layout.
class PoolHeaderClobberSweep
    : public ::testing::TestWithParam<std::tuple<int, std::pair<int, int>>> {
};

TEST_P(PoolHeaderClobberSweep, RestoresOrReportsCorruption) {
  const auto [slot_index, point] = GetParam();
  const auto [hdr_off, len] = point;
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts = SweepOptions();
  std::map<std::string, std::string> committed;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, false, &db).ok());
    // Few enough writes that they stay in the active sub-MemTable: the
    // clobbered headers guard data that only exists in the pool.
    for (int i = 0; i < 50; i++) {
      std::string key = "hk" + std::to_string(i);
      std::string value = "hv" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok()) << i;
      committed[key] = value;
    }
  }
  env.SimulateCrash();

  // Walk the slot directory the same way recovery does.
  std::vector<uint64_t> slot_offsets;
  uint64_t off = 0;
  while (off < opts.pool_bytes) {
    const uint64_t size = SubMemTable::ReadSlotSize(&env, off);
    ASSERT_GE(size, opts.min_sub_memtable_bytes);
    ASSERT_LE(size, opts.pool_bytes - off);
    slot_offsets.push_back(off);
    off += size;
  }
  ASSERT_LT(static_cast<size_t>(slot_index), slot_offsets.size());
  Clobber(&env, slot_offsets[slot_index] + hdr_off, len);

  ExpectRestoreOrCorruption(&env, opts, committed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoolHeaderClobberSweep,
    ::testing::Combine(
        ::testing::Values(0, 1),
        ::testing::Values(std::make_pair(0, 8),    // whole packed word
                          std::make_pair(0, 3),    // tail bytes only
                          std::make_pair(5, 3),    // counter high bytes
                          std::make_pair(16, 8))   // slot-size word
        ));

}  // namespace
}  // namespace cachekv
