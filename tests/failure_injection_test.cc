#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/db.h"
#include "lsm/lsm_engine.h"
#include "lsm/memtable.h"
#include "lsm/wal.h"
#include "pmem/meta_layout.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv(uint64_t cat = 0) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = cat;
  o.latency.scale = 0;
  return o;
}

LsmOptions SmallLsm() {
  LsmOptions o;
  o.l0_compaction_trigger = 3;
  o.base_level_bytes = 1 << 20;
  o.target_file_size = 256 << 10;
  o.background_compaction = false;
  return o;
}

// Overwrites `len` bytes at `addr` with junk, through the nt path so the
// damage is durable.
void Clobber(PmemEnv* env, uint64_t addr, size_t len) {
  std::string junk(len, '\x5a');
  env->NtStore(addr, junk.data(), junk.size());
  env->Sfence();
}

TEST(FailureInjectionTest, ManifestSingleSlotCorruptionFallsBack) {
  PmemEnv env(TestEnv());
  {
    LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
    ASSERT_TRUE(engine.Open(false).ok());
    MemTable mem;
    SequenceNumber seq = 0;
    for (int batch = 0; batch < 3; batch++) {
      MemTable m;
      for (int i = 0; i < 50; i++) {
        m.Add(++seq, kTypeValue, Slice("key" + std::to_string(i)),
              Slice("b" + std::to_string(batch)));
      }
      std::unique_ptr<Iterator> iter(m.NewIterator());
      ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());
    }
  }
  // Corrupt the slot holding the NEWEST manifest epoch. Epochs increment
  // per install; the latest lives at slot (epoch % 2). Clobber both
  // headers' crc bytes in turn and verify open still succeeds using the
  // surviving slot (losing at most the last install).
  env.SimulateCrash();
  Clobber(&env, MetaLayout::ManifestBase(&env) + 4, 4);  // slot 0 crc
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  Status s = engine.Open(true);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The engine recovered *something* consistent: at most one batch lost.
  std::string value;
  bool deleted;
  Status g = engine.Get(Slice("key0"), kMaxSequenceNumber, &value,
                        &deleted);
  EXPECT_TRUE(g.ok()) << g.ToString();
}

TEST(FailureInjectionTest, ManifestBothSlotsCorruptStartsEmpty) {
  PmemEnv env(TestEnv());
  {
    LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
    ASSERT_TRUE(engine.Open(false).ok());
    MemTable m;
    m.Add(1, kTypeValue, Slice("k"), Slice("v"));
    std::unique_ptr<Iterator> iter(m.NewIterator());
    ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());
  }
  env.SimulateCrash();
  Clobber(&env, MetaLayout::ManifestBase(&env), 64);
  Clobber(&env,
          MetaLayout::ManifestBase(&env) + MetaLayout::kManifestSlotSize,
          64);
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  Status s = engine.Open(true);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::string value;
  bool deleted;
  EXPECT_TRUE(engine.Get(Slice("k"), kMaxSequenceNumber, &value, &deleted)
                  .IsNotFound())
      << "with no valid manifest the engine must come up empty, not crash";
}

TEST(FailureInjectionTest, TornWalTailStopsReplayCleanly) {
  PmemEnv env(TestEnv());
  uint64_t region;
  ASSERT_TRUE(env.allocator()->Allocate(1 << 20, &region).ok());
  WalWriter writer(&env, region, 1 << 20, true);
  writer.Reset();
  uint64_t offsets[3];
  for (int i = 0; i < 3; i++) {
    offsets[i] = writer.BytesUsed();
    ASSERT_TRUE(
        writer.AddRecord(Slice("record-" + std::to_string(i))).ok());
  }
  // Tear the third record's payload.
  Clobber(&env, region + offsets[2] + 10, 2);
  WalReader reader(&env, region, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("record-0", rec);
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("record-1", rec);
  EXPECT_FALSE(reader.ReadRecord(&rec))
      << "replay must stop at the torn record";
}

TEST(FailureInjectionTest, CorruptSSTableBytesNeverCrash) {
  PmemEnv env(TestEnv());
  LsmEngine engine(&env, SmallLsm(), MetaLayout::ManifestBase(&env));
  ASSERT_TRUE(engine.Open(false).ok());
  MemTable m;
  SequenceNumber seq = 0;
  for (int i = 0; i < 2000; i++) {
    m.Add(++seq, kTypeValue, Slice("key" + std::to_string(i)),
          Slice("value" + std::to_string(i)));
  }
  std::unique_ptr<Iterator> iter(m.NewIterator());
  ASSERT_TRUE(engine.WriteL0Tables(iter.get()).ok());

  // Flip a few bytes inside the first table's data area (not the
  // footer: the reader caches index/filter at open). Every Get must
  // return a Status — never crash — and the per-block checksums must
  // flag the damaged block as Corruption instead of serving bad data.
  VersionRef v = engine.CurrentVersion();
  ASSERT_FALSE(v->levels[0].empty());
  const TableRef& t = v->levels[0][0];
  Random rng(13);
  for (int flips = 0; flips < 3; flips++) {
    uint64_t off = rng.Uniform(t->meta.file_size > 1024
                                   ? t->meta.file_size / 2
                                   : 1);
    Clobber(&env, t->meta.region_offset + off, 1);
  }
  int ok_count = 0, corrupt = 0, not_found = 0;
  for (int i = 0; i < 2000; i++) {
    std::string value;
    bool deleted;
    Status s = engine.Get(Slice("key" + std::to_string(i)),
                          kMaxSequenceNumber, &value, &deleted);
    if (s.ok()) {
      ok_count++;
      EXPECT_EQ("value" + std::to_string(i), value)
          << "a checksummed read must never return wrong bytes";
    } else if (s.IsCorruption()) {
      corrupt++;
    } else {
      not_found++;
    }
  }
  EXPECT_EQ(2000, ok_count + corrupt + not_found);
  EXPECT_GT(corrupt, 0) << "the flipped block must be detected";
  SUCCEED() << ok_count << " ok, " << corrupt << " corrupt, "
            << not_found << " not found";
}

TEST(FailureInjectionTest, ZoneRegistryCorruptionRecoversOtherSlot) {
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts;
  opts.pool_bytes = 4ull << 20;
  opts.sub_memtable_bytes = 512ull << 10;
  opts.min_sub_memtable_bytes = 128ull << 10;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, false, &db).ok());
    std::string value(300, 'z');
    for (int i = 0; i < 10000; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), value).ok());
    }
    ASSERT_TRUE(db->WaitIdle().ok());
  }
  env.SimulateCrash();
  // Corrupt one registry slot; recovery must still come up (using the
  // other slot or, at worst, replaying the epoch before it).
  Clobber(&env, MetaLayout::ZoneRegistryBase(&env) + 4, 4);
  std::unique_ptr<DB> db;
  Status s = DB::Open(&env, opts, true, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::string got;
  Status g = db->Get("key1", &got);
  EXPECT_TRUE(g.ok() || g.IsNotFound()) << g.ToString();
}

TEST(FailureInjectionTest, RepeatedCrashesDuringLoad) {
  PmemEnv env(TestEnv(4ull << 20));
  CacheKVOptions opts;
  opts.pool_bytes = 4ull << 20;
  opts.sub_memtable_bytes = 512ull << 10;
  opts.min_sub_memtable_bytes = 128ull << 10;
  opts.imm_zone_flush_threshold = 1ull << 20;

  int written = 0;
  for (int round = 0; round < 5; round++) {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(&env, opts, round > 0, &db).ok()) << round;
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(written),
                          "v" + std::to_string(written))
                      .ok());
      written++;
    }
    db.reset();
    env.SimulateCrash();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(&env, opts, true, &db).ok());
  Random rng(3);
  for (int probe = 0; probe < 500; probe++) {
    int i = rng.Uniform(written);
    std::string got;
    ASSERT_TRUE(db->Get("key" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ("v" + std::to_string(i), got);
  }
}

}  // namespace
}  // namespace cachekv
