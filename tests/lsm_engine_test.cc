#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "lsm/lsm_engine.h"
#include "lsm/memtable.h"
#include "pmem/meta_layout.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 8ull << 20;
  o.latency.scale = 0;
  return o;
}

LsmOptions SmallLsm() {
  LsmOptions o;
  o.l0_compaction_trigger = 3;
  o.base_level_bytes = 256 << 10;
  o.level_size_multiplier = 4;
  o.target_file_size = 64 << 10;
  o.background_compaction = false;  // deterministic for tests
  return o;
}

class LsmEngineTest : public ::testing::Test {
 protected:
  LsmEngineTest()
      : env_(TestEnv()),
        engine_(std::make_unique<LsmEngine>(&env_, SmallLsm(),
                                            MetaLayout::ManifestBase(
                                                &env_))) {
    EXPECT_TRUE(engine_->Open(false).ok());
  }

  // Flushes a batch of entries through a temporary memtable.
  void FlushBatch(const std::map<std::string, std::string>& entries,
                  SequenceNumber* seq, ValueType type = kTypeValue) {
    MemTable mem;
    for (const auto& [k, v] : entries) {
      mem.Add(++*seq, type, Slice(k), Slice(v));
    }
    std::unique_ptr<Iterator> iter(mem.NewIterator());
    ASSERT_TRUE(engine_->WriteL0Tables(iter.get()).ok());
  }

  std::string GetOrDie(const std::string& key, SequenceNumber snapshot) {
    std::string value;
    bool deleted = false;
    Status s = engine_->Get(Slice(key), snapshot, &value, &deleted);
    EXPECT_TRUE(s.ok()) << key << ": " << s.ToString();
    return value;
  }

  PmemEnv env_;
  std::unique_ptr<LsmEngine> engine_;
};

TEST_F(LsmEngineTest, EmptyEngine) {
  std::string value;
  bool deleted;
  EXPECT_TRUE(engine_->Get(Slice("k"), 100, &value, &deleted).IsNotFound());
  EXPECT_EQ(0, engine_->NumFiles(0));
}

TEST_F(LsmEngineTest, SingleFlushAndGet) {
  SequenceNumber seq = 0;
  FlushBatch({{"a", "1"}, {"b", "2"}, {"c", "3"}}, &seq);
  EXPECT_EQ(1, engine_->NumFiles(0));
  EXPECT_EQ("1", GetOrDie("a", seq));
  EXPECT_EQ("2", GetOrDie("b", seq));
  EXPECT_EQ("3", GetOrDie("c", seq));
}

TEST_F(LsmEngineTest, NewerFlushShadowsOlder) {
  SequenceNumber seq = 0;
  FlushBatch({{"k", "old"}}, &seq);
  FlushBatch({{"k", "new"}}, &seq);
  EXPECT_EQ("new", GetOrDie("k", seq));
  // The old version remains visible at the old snapshot.
  EXPECT_EQ("old", GetOrDie("k", 1));
}

TEST_F(LsmEngineTest, TombstoneMasksDeeperLevels) {
  SequenceNumber seq = 0;
  FlushBatch({{"k", "v"}}, &seq);
  FlushBatch({{"k", ""}}, &seq, kTypeDeletion);
  std::string value;
  bool deleted = false;
  Status s = engine_->Get(Slice("k"), seq, &value, &deleted);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_TRUE(deleted);
}

TEST_F(LsmEngineTest, CompactionTriggeredByL0Count) {
  SequenceNumber seq = 0;
  std::map<std::string, std::string> expected;
  for (int batch = 0; batch < 8; batch++) {
    std::map<std::string, std::string> entries;
    for (int i = 0; i < 200; i++) {
      char buf[16];
      snprintf(buf, sizeof(buf), "key%05d", (batch * 131 + i * 7) % 1000);
      entries[buf] = "b" + std::to_string(batch);
      expected[buf] = entries[buf];
    }
    FlushBatch(entries, &seq);
  }
  // With trigger 3 and inline compactions, L0 must have been drained.
  EXPECT_LT(engine_->NumFiles(0), 3);
  EXPECT_GT(engine_->NumFiles(1) + engine_->NumFiles(2), 0);
  for (const auto& [k, v] : expected) {
    EXPECT_EQ(v, GetOrDie(k, seq)) << k;
  }
}

TEST_F(LsmEngineTest, CompactionDropsShadowedVersionsAndTombstones) {
  SequenceNumber seq = 0;
  // Write then delete everything, repeatedly, to generate garbage.
  for (int round = 0; round < 4; round++) {
    std::map<std::string, std::string> entries;
    for (int i = 0; i < 300; i++) {
      entries["key" + std::to_string(i)] = "r" + std::to_string(round);
    }
    FlushBatch(entries, &seq);
  }
  std::map<std::string, std::string> dels;
  for (int i = 0; i < 300; i++) {
    dels["key" + std::to_string(i)] = "";
  }
  FlushBatch(dels, &seq, kTypeDeletion);
  // Force compactions until quiet.
  for (int i = 0; i < 6; i++) {
    std::map<std::string, std::string> filler;
    filler["zfill" + std::to_string(i)] = std::string(1000, 'f');
    FlushBatch(filler, &seq);
  }
  for (int i = 0; i < 300; i++) {
    std::string value;
    bool deleted;
    EXPECT_TRUE(engine_
                    ->Get(Slice("key" + std::to_string(i)), seq, &value,
                          &deleted)
                    .IsNotFound());
  }
}

TEST_F(LsmEngineTest, IteratorSeesFreshestFirst) {
  SequenceNumber seq = 0;
  FlushBatch({{"a", "old-a"}, {"b", "old-b"}}, &seq);
  FlushBatch({{"a", "new-a"}}, &seq);
  std::unique_ptr<Iterator> iter(engine_->NewIterator());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  // First entry for user key "a" must be the freshest.
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
  EXPECT_EQ("a", parsed.user_key.ToString());
  EXPECT_EQ("new-a", iter->value().ToString());
}

TEST_F(LsmEngineTest, RecoveryFromManifest) {
  SequenceNumber seq = 0;
  std::map<std::string, std::string> expected;
  for (int batch = 0; batch < 6; batch++) {
    std::map<std::string, std::string> entries;
    for (int i = 0; i < 150; i++) {
      std::string k = "key" + std::to_string((batch * 37 + i) % 500);
      entries[k] = "v" + std::to_string(batch * 1000 + i);
      expected[k] = entries[k];
    }
    FlushBatch(entries, &seq);
  }
  const SequenceNumber final_seq = seq;

  // Simulate power failure + process restart, then recover: the engine
  // reads the manifest, reserves its regions on the fresh allocator, and
  // reopens every table.
  engine_.reset();
  env_.SimulateCrash();
  engine_ = std::make_unique<LsmEngine>(&env_, SmallLsm(),
                                        MetaLayout::ManifestBase(&env_));
  ASSERT_TRUE(engine_->Open(true).ok());
  for (const auto& [k, v] : expected) {
    std::string value;
    bool deleted;
    ASSERT_TRUE(engine_->Get(Slice(k), final_seq, &value, &deleted).ok())
        << k;
    EXPECT_EQ(v, value);
  }
  EXPECT_EQ(final_seq, engine_->LastSequence());
}

TEST_F(LsmEngineTest, FreshOpenAfterClearIgnoresOldManifest) {
  SequenceNumber seq = 0;
  FlushBatch({{"a", "1"}}, &seq);
  engine_.reset();
  env_.SimulateCrash();
  engine_ = std::make_unique<LsmEngine>(&env_, SmallLsm(),
                                        MetaLayout::ManifestBase(&env_));
  // Open without recovery clears the manifest: old data is gone.
  ASSERT_TRUE(engine_->Open(false).ok());
  std::string value;
  bool deleted;
  EXPECT_TRUE(engine_->Get(Slice("a"), 100, &value, &deleted).IsNotFound());
}

TEST_F(LsmEngineTest, BackgroundCompactionConverges) {
  // Same workload as the inline test but with the background thread.
  LsmOptions opts = SmallLsm();
  opts.background_compaction = true;
  EnvOptions eo = TestEnv();
  PmemEnv env2(eo);
  auto engine = std::make_unique<LsmEngine>(
      &env2, opts, MetaLayout::ManifestBase(&env2));
  ASSERT_TRUE(engine->Open(false).ok());
  SequenceNumber seq = 0;
  std::map<std::string, std::string> expected;
  for (int batch = 0; batch < 10; batch++) {
    MemTable mem;
    for (int i = 0; i < 300; i++) {
      std::string k = "key" + std::to_string((batch * 61 + i) % 1500);
      std::string v = "v" + std::to_string(batch * 1000 + i);
      mem.Add(++seq, kTypeValue, Slice(k), Slice(v));
      expected[k] = v;
    }
    std::unique_ptr<Iterator> iter(mem.NewIterator());
    ASSERT_TRUE(engine->WriteL0Tables(iter.get()).ok());
  }
  ASSERT_TRUE(engine->WaitForCompactions().ok());
  EXPECT_LT(engine->NumFiles(0), 3);
  for (const auto& [k, v] : expected) {
    std::string value;
    bool deleted;
    ASSERT_TRUE(engine->Get(Slice(k), seq, &value, &deleted).ok()) << k;
    EXPECT_EQ(v, value);
  }
}

}  // namespace
}  // namespace cachekv
