#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/sstable.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.pmem_capacity = 128ull << 20;
  o.llc_capacity = 8ull << 20;
  o.latency.scale = 0;
  return o;
}

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType vt = kTypeValue) {
  std::string encoded;
  AppendInternalKey(&encoded, Slice(user_key), seq, vt);
  return encoded;
}

TEST(BloomTest, EmptyFilter) {
  BloomFilterPolicy bloom(10);
  std::string filter;
  bloom.CreateFilter({}, &filter);
  EXPECT_FALSE(bloom.KeyMayMatch(Slice("hello"), Slice(filter)));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy bloom(10);
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 5000; i++) {
    keys.push_back("key" + std::to_string(i));
  }
  for (const auto& k : keys) slices.emplace_back(k);
  std::string filter;
  bloom.CreateFilter(slices, &filter);
  for (const auto& k : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(Slice(k), Slice(filter))) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterPolicy bloom(10);
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back("present" + std::to_string(i));
  }
  for (const auto& k : keys) slices.emplace_back(k);
  std::string filter;
  bloom.CreateFilter(slices, &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (bloom.KeyMayMatch(Slice("absent" + std::to_string(i)),
                          Slice(filter))) {
      false_positives++;
    }
  }
  EXPECT_LT(false_positives, 300);  // ~1% expected at 10 bits/key
}

TEST(BlockTest, EmptyBlock) {
  BlockBuilder builder(16);
  Slice raw = builder.Finish();
  Block block(raw.ToString());
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, RoundTripAndSeek) {
  InternalKeyComparator cmp;
  std::map<std::string, std::string> model;
  BlockBuilder builder(4);  // small restart interval to exercise restarts
  for (int i = 0; i < 300; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    std::string k = IKey(buf, 100);
    std::string v = "value" + std::to_string(i);
    builder.Add(Slice(k), Slice(v));
    model[k] = v;
  }
  Block block(builder.Finish().ToString());
  std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));

  // Full scan matches the model.
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Point seeks.
  for (int i = 0; i < 300; i += 17) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    std::string k = IKey(buf, 100);
    iter->Seek(Slice(k));
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
  }

  // Seek past the end.
  std::string beyond = IKey("zzz", 100);
  iter->Seek(Slice(beyond));
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionPreservesKeys) {
  InternalKeyComparator cmp;
  BlockBuilder builder(16);
  std::vector<std::string> keys;
  // Keys sharing long prefixes stress the shared/non_shared split.
  for (int i = 0; i < 64; i++) {
    keys.push_back(
        IKey("commonprefix/commonsubdir/file" + std::to_string(1000 + i),
             5));
  }
  for (const auto& k : keys) {
    builder.Add(Slice(k), Slice("v"));
  }
  Block block(builder.Finish().ToString());
  std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));
  iter->SeekToFirst();
  for (const auto& k : keys) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, iter->key().ToString());
    iter->Next();
  }
}

TEST(BlockTest, MalformedBlockReportsCorruption) {
  Block block(std::string("ab"));  // shorter than the restart count
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&cmp));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
}

class SSTableTest : public ::testing::Test {
 protected:
  SSTableTest() : env_(TestEnv()) {}

  // Builds a table from the model and opens a reader on it.
  void BuildAndOpen(const std::map<std::string, std::string>& entries,
                    SequenceNumber seq = 100) {
    SSTableOptions opts;
    opts.block_size = 512;  // many small blocks
    SSTableBuilder builder(opts);
    for (const auto& [k, v] : entries) {
      builder.Add(Slice(IKey(k, seq)), Slice(v));
    }
    ASSERT_TRUE(builder.Finish().ok());
    uint64_t size = builder.contents().size();
    uint64_t region_size = AlignUp(size, kXPLineSize);
    ASSERT_TRUE(env_.allocator()->Allocate(region_size, &region_).ok());
    env_.NtStore(region_, builder.contents().data(), size);
    env_.Sfence();
    ASSERT_TRUE(SSTableReader::Open(&env_, region_, size, &reader_).ok());
  }

  PmemEnv env_;
  uint64_t region_ = 0;
  std::unique_ptr<SSTableReader> reader_;
};

TEST_F(SSTableTest, PointLookups) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    model[buf] = "value-" + std::to_string(i * 7);
  }
  BuildAndOpen(model);

  for (const auto& [k, v] : model) {
    ParsedInternalKey parsed;
    std::string key_storage, value;
    Status s = reader_->InternalGet(Slice(IKey(k, 200)), &parsed,
                                    &key_storage, &value);
    ASSERT_TRUE(s.ok()) << k << ": " << s.ToString();
    EXPECT_EQ(v, value);
    EXPECT_EQ(k, parsed.user_key.ToString());
    EXPECT_EQ(100u, parsed.sequence);
  }
}

TEST_F(SSTableTest, MissingKeysNotFound) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    model[buf] = "even";
  }
  BuildAndOpen(model);
  for (int i = 1; i < 1000; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    ParsedInternalKey parsed;
    std::string key_storage, value;
    EXPECT_TRUE(reader_
                    ->InternalGet(Slice(IKey(buf, 200)), &parsed,
                                  &key_storage, &value)
                    .IsNotFound())
        << buf;
  }
}

TEST_F(SSTableTest, SnapshotInvisibility) {
  // Entry written at seq 100 must be invisible to a snapshot at seq 50.
  std::map<std::string, std::string> model = {{"k", "v"}};
  BuildAndOpen(model, 100);
  ParsedInternalKey parsed;
  std::string key_storage, value;
  EXPECT_TRUE(reader_
                  ->InternalGet(Slice(IKey("k", 50)), &parsed,
                                &key_storage, &value)
                  .IsNotFound());
  EXPECT_TRUE(reader_
                  ->InternalGet(Slice(IKey("k", 100)), &parsed,
                                &key_storage, &value)
                  .ok());
}

TEST_F(SSTableTest, FullScan) {
  std::map<std::string, std::string> model;
  Random rng(77);
  for (int i = 0; i < 3000; i++) {
    model["k" + std::to_string(rng.Next64())] =
        "v" + std::to_string(i);
  }
  BuildAndOpen(model);
  std::unique_ptr<Iterator> iter(reader_->NewIterator());
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(k, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(v, iter->value().ToString());
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(SSTableTest, IteratorSeek) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i * 3);
    model[buf] = std::to_string(i);
  }
  BuildAndOpen(model);
  std::unique_ptr<Iterator> iter(reader_->NewIterator());
  // Seek to a key between entries: lands on the next present key.
  iter->Seek(Slice(IKey("key000004", 200)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000006", ExtractUserKey(iter->key()).ToString());
  // Seek beyond the last key.
  iter->Seek(Slice(IKey("zzzz", 200)));
  EXPECT_FALSE(iter->Valid());
}

TEST_F(SSTableTest, CorruptFooterRejected) {
  std::map<std::string, std::string> model = {{"a", "1"}};
  BuildAndOpen(model);
  // Clobber the magic at the end of the region.
  char junk[8] = {0};
  // Find table size: reader_ knows it.
  uint64_t size = reader_->size();
  env_.NtStore(region_ + size - 8, junk, 8);
  env_.Sfence();
  std::unique_ptr<SSTableReader> broken;
  EXPECT_TRUE(
      SSTableReader::Open(&env_, region_, size, &broken).IsCorruption());
}

TEST_F(SSTableTest, BlockChecksumCatchesBitFlips) {
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    model[buf] = "value" + std::to_string(i);
  }
  BuildAndOpen(model);
  // Flip one byte early in the table (inside some data block).
  char byte;
  env_.Load(region_ + 100, &byte, 1);
  byte ^= 0x40;
  env_.NtStore(region_ + 100, &byte, 1);
  env_.Sfence();
  int checksum_errors = 0;
  for (const auto& [k, v] : model) {
    ParsedInternalKey parsed;
    std::string key_storage, value;
    Status s = reader_->InternalGet(Slice(IKey(k, 200)), &parsed,
                                    &key_storage, &value);
    if (s.IsCorruption()) {
      checksum_errors++;
    } else if (s.ok()) {
      EXPECT_EQ(v, value) << "undetected corruption for " << k;
    }
  }
  EXPECT_GT(checksum_errors, 0)
      << "the flipped block must fail its checksum";
}

TEST_F(SSTableTest, TooSmallTableRejected) {
  std::unique_ptr<SSTableReader> broken;
  EXPECT_TRUE(SSTableReader::Open(&env_, 0, 10, &broken).IsCorruption());
}

TEST_F(SSTableTest, SmallestLargestTracked) {
  SSTableBuilder builder;
  builder.Add(Slice(IKey("aaa", 9)), Slice("1"));
  builder.Add(Slice(IKey("mmm", 8)), Slice("2"));
  builder.Add(Slice(IKey("zzz", 7)), Slice("3"));
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ("aaa", ExtractUserKey(Slice(builder.smallest_key())).ToString());
  EXPECT_EQ("zzz", ExtractUserKey(Slice(builder.largest_key())).ToString());
  EXPECT_EQ(3u, builder.NumEntries());
}

}  // namespace
}  // namespace cachekv
