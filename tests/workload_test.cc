#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "workload.h"

namespace cachekv {
namespace bench {
namespace {

TEST(KeyGenTest, FixedWidthAndUnique) {
  std::set<std::string> keys;
  for (uint64_t i = 0; i < 10000; i += 7) {
    std::string k = KeyFor(i, 16);
    EXPECT_EQ(16u, k.size());
    EXPECT_TRUE(keys.insert(k).second) << "duplicate key for " << i;
  }
  // Sequential indexes produce lexicographically sorted keys.
  EXPECT_LT(KeyFor(1, 16), KeyFor(2, 16));
  EXPECT_LT(KeyFor(99, 16), KeyFor(100, 16));
}

TEST(KeyGenTest, OtherWidths) {
  EXPECT_EQ(8u, KeyFor(123, 8).size());
  EXPECT_EQ(32u, KeyFor(123, 32).size());
}

TEST(ValueGenTest, DeterministicAndSized) {
  EXPECT_EQ(ValueFor(42, 64), ValueFor(42, 64));
  EXPECT_NE(ValueFor(42, 64), ValueFor(43, 64));
  EXPECT_EQ(16u, ValueFor(1, 16).size());
  EXPECT_EQ(256u, ValueFor(1, 256).size());
  EXPECT_EQ(0u, ValueFor(1, 0).size());
}

TEST(OpGeneratorTest, FillSeqCoversKeyspaceAcrossThreads) {
  const uint64_t n = 1000;
  WorkloadSpec spec = WorkloadSpec::FillSeq(n);
  std::set<uint64_t> seen;
  const int threads = 4;
  for (int t = 0; t < threads; t++) {
    OpGenerator gen(spec, t, threads, 42);
    for (uint64_t i = 0; i < n / threads; i++) {
      Op op = gen.Next();
      EXPECT_EQ(OpType::kPut, op.type);
      EXPECT_TRUE(seen.insert(op.key_index).second)
          << "duplicate " << op.key_index;
    }
  }
  EXPECT_EQ(n, seen.size());
}

TEST(OpGeneratorTest, ReadFractionRespected) {
  WorkloadSpec spec = WorkloadSpec::YcsbB(10000);  // 95% reads
  OpGenerator gen(spec, 0, 1, 7);
  int reads = 0;
  const int total = 20000;
  for (int i = 0; i < total; i++) {
    if (gen.Next().type == OpType::kGet) {
      reads++;
    }
  }
  EXPECT_NEAR(0.95, static_cast<double>(reads) / total, 0.02);
}

TEST(OpGeneratorTest, YcsbAIsHalfAndHalf) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(10000);
  OpGenerator gen(spec, 0, 1, 3);
  int reads = 0, writes = 0;
  for (int i = 0; i < 20000; i++) {
    Op op = gen.Next();
    if (op.type == OpType::kGet) {
      reads++;
    } else if (op.type == OpType::kPut) {
      writes++;
    }
    EXPECT_LT(op.key_index, 10000u);
  }
  EXPECT_NEAR(reads, writes, 0.1 * (reads + writes));
}

TEST(OpGeneratorTest, YcsbFHasRmw) {
  WorkloadSpec spec = WorkloadSpec::YcsbF(10000);
  OpGenerator gen(spec, 0, 1, 3);
  int rmw = 0;
  for (int i = 0; i < 20000; i++) {
    if (gen.Next().type == OpType::kReadModifyWrite) {
      rmw++;
    }
  }
  EXPECT_NEAR(0.5, rmw / 20000.0, 0.02);
}

TEST(OpGeneratorTest, YcsbDInsertsExtendKeyspace) {
  WorkloadSpec spec = WorkloadSpec::YcsbD(1000);
  OpGenerator gen(spec, 0, 1, 3);
  std::set<uint64_t> inserts;
  for (int i = 0; i < 5000; i++) {
    Op op = gen.Next();
    if (op.type == OpType::kPut) {
      EXPECT_GE(op.key_index, 1000u) << "inserts must extend the space";
      EXPECT_TRUE(inserts.insert(op.key_index).second);
    }
  }
  EXPECT_GT(inserts.size(), 50u);
}

TEST(OpGeneratorTest, ZipfianSkewsTowardsHotKeys) {
  WorkloadSpec spec = WorkloadSpec::YcsbC(100000);
  OpGenerator gen(spec, 0, 1, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) {
    counts[gen.Next().key_index]++;
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
  }
  // Zipf(0.99): the hottest key should take a few percent of accesses.
  EXPECT_GT(max_count, 500);
  // But the tail must still be broad.
  EXPECT_GT(counts.size(), 5000u);
}

TEST(OpGeneratorTest, DeterministicPerSeed) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(1000);
  OpGenerator a(spec, 0, 1, 99), b(spec, 0, 1, 99);
  for (int i = 0; i < 1000; i++) {
    Op oa = a.Next(), ob = b.Next();
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.key_index, ob.key_index);
  }
}

}  // namespace
}  // namespace bench
}  // namespace cachekv
