#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "workload.h"

namespace cachekv {
namespace bench {
namespace {

TEST(KeyGenTest, FixedWidthAndUnique) {
  std::set<std::string> keys;
  for (uint64_t i = 0; i < 10000; i += 7) {
    std::string k = KeyFor(i, 16);
    EXPECT_EQ(16u, k.size());
    EXPECT_TRUE(keys.insert(k).second) << "duplicate key for " << i;
  }
  // Sequential indexes produce lexicographically sorted keys.
  EXPECT_LT(KeyFor(1, 16), KeyFor(2, 16));
  EXPECT_LT(KeyFor(99, 16), KeyFor(100, 16));
}

TEST(KeyGenTest, OtherWidths) {
  EXPECT_EQ(8u, KeyFor(123, 8).size());
  EXPECT_EQ(32u, KeyFor(123, 32).size());
}

TEST(ValueGenTest, DeterministicAndSized) {
  EXPECT_EQ(ValueFor(42, 64), ValueFor(42, 64));
  EXPECT_NE(ValueFor(42, 64), ValueFor(43, 64));
  EXPECT_EQ(16u, ValueFor(1, 16).size());
  EXPECT_EQ(256u, ValueFor(1, 256).size());
  EXPECT_EQ(0u, ValueFor(1, 0).size());
}

TEST(OpGeneratorTest, FillSeqCoversKeyspaceAcrossThreads) {
  const uint64_t n = 1000;
  WorkloadSpec spec = WorkloadSpec::FillSeq(n);
  std::set<uint64_t> seen;
  const int threads = 4;
  for (int t = 0; t < threads; t++) {
    OpGenerator gen(spec, t, threads, 42);
    for (uint64_t i = 0; i < n / threads; i++) {
      Op op = gen.Next();
      EXPECT_EQ(OpType::kPut, op.type);
      EXPECT_TRUE(seen.insert(op.key_index).second)
          << "duplicate " << op.key_index;
    }
  }
  EXPECT_EQ(n, seen.size());
}

TEST(OpGeneratorTest, ReadFractionRespected) {
  WorkloadSpec spec = WorkloadSpec::YcsbB(10000);  // 95% reads
  OpGenerator gen(spec, 0, 1, 7);
  int reads = 0;
  const int total = 20000;
  for (int i = 0; i < total; i++) {
    if (gen.Next().type == OpType::kGet) {
      reads++;
    }
  }
  EXPECT_NEAR(0.95, static_cast<double>(reads) / total, 0.02);
}

TEST(OpGeneratorTest, YcsbAIsHalfAndHalf) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(10000);
  OpGenerator gen(spec, 0, 1, 3);
  int reads = 0, writes = 0;
  for (int i = 0; i < 20000; i++) {
    Op op = gen.Next();
    if (op.type == OpType::kGet) {
      reads++;
    } else if (op.type == OpType::kPut) {
      writes++;
    }
    EXPECT_LT(op.key_index, 10000u);
  }
  EXPECT_NEAR(reads, writes, 0.1 * (reads + writes));
}

TEST(OpGeneratorTest, YcsbFHasRmw) {
  WorkloadSpec spec = WorkloadSpec::YcsbF(10000);
  OpGenerator gen(spec, 0, 1, 3);
  int rmw = 0;
  for (int i = 0; i < 20000; i++) {
    if (gen.Next().type == OpType::kReadModifyWrite) {
      rmw++;
    }
  }
  EXPECT_NEAR(0.5, rmw / 20000.0, 0.02);
}

TEST(OpGeneratorTest, YcsbDInsertsExtendKeyspace) {
  WorkloadSpec spec = WorkloadSpec::YcsbD(1000);
  OpGenerator gen(spec, 0, 1, 3);
  std::set<uint64_t> inserts;
  for (int i = 0; i < 5000; i++) {
    Op op = gen.Next();
    if (op.type == OpType::kPut) {
      EXPECT_GE(op.key_index, 1000u) << "inserts must extend the space";
      EXPECT_TRUE(inserts.insert(op.key_index).second);
    }
  }
  EXPECT_GT(inserts.size(), 50u);
}

TEST(OpGeneratorTest, ZipfianSkewsTowardsHotKeys) {
  WorkloadSpec spec = WorkloadSpec::YcsbC(100000);
  OpGenerator gen(spec, 0, 1, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) {
    counts[gen.Next().key_index]++;
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
  }
  // Zipf(0.99): the hottest key should take a few percent of accesses.
  EXPECT_GT(max_count, 500);
  // But the tail must still be broad.
  EXPECT_GT(counts.size(), 5000u);
}

TEST(OpGeneratorTest, ZipfianTopKeyShareMatchesTheory) {
  // The probability of the hottest key under Zipf(theta) over n items is
  // (1/1^theta) / zeta(n, theta). The generator is scrambled (the hot
  // ranks are hashed across the keyspace), which permutes WHICH index is
  // hottest but not its share of accesses. Fixed seed: deterministic,
  // never flaky.
  const uint64_t n = 20000;
  const double theta = 0.99;
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n; i++) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const double want_share = 1.0 / zetan;  // ~8.8% at n=20000, theta=0.99

  WorkloadSpec spec = WorkloadSpec::YcsbC(n);  // 100% zipfian reads
  ASSERT_EQ(theta, spec.zipf_theta);
  OpGenerator gen(spec, 0, 1, 20240611);
  std::map<uint64_t, int> counts;
  const int samples = 200000;
  for (int i = 0; i < samples; i++) {
    counts[gen.Next().key_index]++;
  }
  int top = 0;
  for (const auto& [k, c] : counts) top = std::max(top, c);
  const double got_share = static_cast<double>(top) / samples;
  // 25% relative tolerance covers sampling noise and the (rare, but
  // seed-fixed) scramble collision folding two ranks onto one index.
  EXPECT_NEAR(want_share, got_share, want_share * 0.25)
      << "zipfian head far from theory: want " << want_share << " got "
      << got_share;
}

TEST(OpGeneratorTest, ZipfianThetaControlsSkew) {
  // Lower theta must flatten the head measurably.
  auto top_share = [](double theta) {
    WorkloadSpec spec = WorkloadSpec::YcsbC(20000);
    spec.zipf_theta = theta;
    OpGenerator gen(spec, 0, 1, 7);
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 100000; i++) counts[gen.Next().key_index]++;
    int top = 0;
    for (const auto& [k, c] : counts) top = std::max(top, c);
    return static_cast<double>(top) / 100000.0;
  };
  EXPECT_GT(top_share(0.99), 3.0 * top_share(0.5));
}

TEST(OpGeneratorTest, HotSpotHitsTheHotSetAtTheConfiguredRate) {
  const uint64_t n = 100000;
  WorkloadSpec spec = WorkloadSpec::HotSpot(n, 0.1, 0.9);
  const uint64_t hot_n = 10000;
  OpGenerator gen(spec, 0, 1, 99);
  int hot = 0;
  std::set<uint64_t> cold_seen;
  const int samples = 100000;
  for (int i = 0; i < samples; i++) {
    const uint64_t k = gen.Next().key_index;
    ASSERT_LT(k, n);
    if (k < hot_n) {
      hot++;
    } else {
      cold_seen.insert(k);
    }
  }
  // 90% of operations land on the first 10% of the keyspace...
  EXPECT_NEAR(0.9, static_cast<double>(hot) / samples, 0.01);
  // ...and the cold 10% still sweeps broadly across the tail.
  EXPECT_GT(cold_seen.size(), 5000u);
}

TEST(OpGeneratorTest, DeterministicPerSeed) {
  WorkloadSpec spec = WorkloadSpec::YcsbA(1000);
  OpGenerator a(spec, 0, 1, 99), b(spec, 0, 1, 99);
  for (int i = 0; i < 1000; i++) {
    Op oa = a.Next(), ob = b.Next();
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.key_index, ob.key_index);
  }
}

}  // namespace
}  // namespace bench
}  // namespace cachekv
