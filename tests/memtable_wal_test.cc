#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "lsm/memtable.h"
#include "lsm/wal.h"
#include "pmem/pmem_env.h"
#include "util/random.h"

namespace cachekv {
namespace {

EnvOptions TestEnv() {
  EnvOptions o;
  o.pmem_capacity = 64ull << 20;
  o.llc_capacity = 4ull << 20;
  o.latency.scale = 0;
  return o;
}

TEST(MemTableTest, AddAndGet) {
  MemTable mem;
  mem.Add(1, kTypeValue, Slice("apple"), Slice("red"));
  mem.Add(2, kTypeValue, Slice("banana"), Slice("yellow"));
  std::string value;
  EXPECT_EQ(MemTable::GetResult::kFound,
            mem.Get(Slice("apple"), 10, &value));
  EXPECT_EQ("red", value);
  EXPECT_EQ(MemTable::GetResult::kFound,
            mem.Get(Slice("banana"), 10, &value));
  EXPECT_EQ("yellow", value);
  EXPECT_EQ(MemTable::GetResult::kNotFound,
            mem.Get(Slice("cherry"), 10, &value));
}

TEST(MemTableTest, FreshestVersionWins) {
  MemTable mem;
  mem.Add(1, kTypeValue, Slice("k"), Slice("v1"));
  mem.Add(5, kTypeValue, Slice("k"), Slice("v5"));
  mem.Add(3, kTypeValue, Slice("k"), Slice("v3"));
  std::string value;
  EXPECT_EQ(MemTable::GetResult::kFound, mem.Get(Slice("k"), 100, &value));
  EXPECT_EQ("v5", value);
}

TEST(MemTableTest, SnapshotReads) {
  MemTable mem;
  mem.Add(1, kTypeValue, Slice("k"), Slice("v1"));
  mem.Add(5, kTypeValue, Slice("k"), Slice("v5"));
  std::string value;
  EXPECT_EQ(MemTable::GetResult::kFound, mem.Get(Slice("k"), 4, &value));
  EXPECT_EQ("v1", value);
  EXPECT_EQ(MemTable::GetResult::kFound, mem.Get(Slice("k"), 1, &value));
  EXPECT_EQ("v1", value);
  // Snapshot before the first write sees nothing... sequence 0 precedes
  // any assignment.
  EXPECT_EQ(MemTable::GetResult::kNotFound,
            mem.Get(Slice("k"), 0, &value));
}

TEST(MemTableTest, Tombstone) {
  MemTable mem;
  mem.Add(1, kTypeValue, Slice("k"), Slice("v"));
  mem.Add(2, kTypeDeletion, Slice("k"), Slice());
  std::string value;
  EXPECT_EQ(MemTable::GetResult::kDeleted,
            mem.Get(Slice("k"), 10, &value));
  // The old value remains visible to an old snapshot.
  EXPECT_EQ(MemTable::GetResult::kFound, mem.Get(Slice("k"), 1, &value));
  EXPECT_EQ("v", value);
}

TEST(MemTableTest, IteratorSortedAndComplete) {
  MemTable mem;
  Random rng(3);
  std::map<std::string, std::string> model;
  SequenceNumber seq = 0;
  for (int i = 0; i < 2000; i++) {
    std::string k = "key" + std::to_string(rng.Uniform(500));
    std::string v = "val" + std::to_string(i);
    mem.Add(++seq, kTypeValue, Slice(k), Slice(v));
    model[k] = v;  // freshest value per key
  }
  std::unique_ptr<Iterator> iter(mem.NewIterator());
  iter->SeekToFirst();
  std::string prev_user_key;
  std::map<std::string, std::string> seen_first;
  int count = 0;
  std::string prev_key;
  while (iter->Valid()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    // First occurrence of each user key is the freshest.
    std::string uk = parsed.user_key.ToString();
    if (!seen_first.count(uk)) {
      seen_first[uk] = iter->value().ToString();
    }
    count++;
    iter->Next();
  }
  EXPECT_EQ(2000, count);
  EXPECT_EQ(model, seen_first);
}

TEST(MemTableTest, EmptyValueAndKeyEdgeCases) {
  MemTable mem;
  mem.Add(1, kTypeValue, Slice("k"), Slice(""));
  std::string value = "sentinel";
  EXPECT_EQ(MemTable::GetResult::kFound, mem.Get(Slice("k"), 10, &value));
  EXPECT_EQ("", value);
  // Large value.
  std::string big(100000, 'x');
  mem.Add(2, kTypeValue, Slice("big"), Slice(big));
  EXPECT_EQ(MemTable::GetResult::kFound,
            mem.Get(Slice("big"), 10, &value));
  EXPECT_EQ(big, value);
}

TEST(MemTableTest, MemoryAccounting) {
  MemTable mem;
  size_t before = mem.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem.Add(i + 1, kTypeValue, Slice("key" + std::to_string(i)),
            Slice(std::string(100, 'v')));
  }
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(1000u, mem.NumEntries());
}

class WalTest : public ::testing::Test {
 protected:
  WalTest() : env_(TestEnv()) {
    EXPECT_TRUE(env_.allocator()->Allocate(1 << 20, &region_).ok());
  }

  PmemEnv env_;
  uint64_t region_ = 0;
};

TEST_F(WalTest, RoundTrip) {
  WalWriter writer(&env_, region_, 1 << 20, true);
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("first")).ok());
  ASSERT_TRUE(writer.AddRecord(Slice("second record")).ok());
  ASSERT_TRUE(writer.AddRecord(Slice("")).ok() ||
              true);  // empty record: see below

  WalReader reader(&env_, region_, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("first", rec);
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("second record", rec);
}

TEST_F(WalTest, ResetTruncates) {
  WalWriter writer(&env_, region_, 1 << 20, true);
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("old data")).ok());
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("new data")).ok());
  WalReader reader(&env_, region_, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("new data", rec);
  EXPECT_FALSE(reader.ReadRecord(&rec));
}

TEST_F(WalTest, FillsUntilOutOfSpace) {
  const uint64_t small = 4096;
  WalWriter writer(&env_, region_, small, true);
  writer.Reset();
  std::string payload(100, 'p');
  int written = 0;
  while (true) {
    Status s = writer.AddRecord(Slice(payload));
    if (!s.ok()) {
      EXPECT_TRUE(s.IsOutOfSpace());
      break;
    }
    written++;
  }
  EXPECT_GT(written, 30);  // 4096 / 108 ~ 37
  WalReader reader(&env_, region_, small);
  std::string rec;
  int read = 0;
  while (reader.ReadRecord(&rec)) {
    EXPECT_EQ(payload, rec);
    read++;
  }
  EXPECT_EQ(written, read);
}

TEST_F(WalTest, SurvivesEadrCrashWithoutFlushes) {
  WalWriter writer(&env_, region_, 1 << 20,
                   /*use_flush_instructions=*/false);
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("eadr makes stores durable")).ok());
  env_.SimulateCrash();
  WalReader reader(&env_, region_, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("eadr makes stores durable", rec);
}

TEST_F(WalTest, AdrCrashWithoutFlushesLosesTail) {
  // Build an ADR-domain environment.
  EnvOptions o = TestEnv();
  o.domain = PersistDomain::kAdr;
  PmemEnv adr_env(o);
  uint64_t region;
  ASSERT_TRUE(adr_env.allocator()->Allocate(1 << 20, &region).ok());
  WalWriter writer(&adr_env, region, 1 << 20,
                   /*use_flush_instructions=*/false);
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("unflushed under adr")).ok());
  adr_env.SimulateCrash();
  WalReader reader(&adr_env, region, 1 << 20);
  std::string rec;
  EXPECT_FALSE(reader.ReadRecord(&rec));
}

TEST_F(WalTest, AdrCrashWithFlushesKeepsRecords) {
  EnvOptions o = TestEnv();
  o.domain = PersistDomain::kAdr;
  PmemEnv adr_env(o);
  uint64_t region;
  ASSERT_TRUE(adr_env.allocator()->Allocate(1 << 20, &region).ok());
  WalWriter writer(&adr_env, region, 1 << 20,
                   /*use_flush_instructions=*/true);
  writer.Reset();
  ASSERT_TRUE(writer.AddRecord(Slice("flushed under adr")).ok());
  adr_env.SimulateCrash();
  WalReader reader(&adr_env, region, 1 << 20);
  std::string rec;
  ASSERT_TRUE(reader.ReadRecord(&rec));
  EXPECT_EQ("flushed under adr", rec);
}

}  // namespace
}  // namespace cachekv
