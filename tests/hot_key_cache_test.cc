#include "cache/hot_key_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fault/fail_point.h"
#include "obs/metrics.h"

namespace cachekv {
namespace cache {
namespace {

HotKeyCacheOptions SmallOptions() {
  HotKeyCacheOptions o;
  o.capacity_bytes = 64u << 10;
  o.admit_threshold = 1;  // admit on first miss unless a test overrides
  o.stripes = 4;
  return o;
}

class HotKeyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
  }
  void TearDown() override {
    fault::FailPointRegistry::Global()->DisableAll();
  }

  uint64_t Count(const char* name) {
    return registry_.GetCounter(name)->value();
  }

  obs::MetricsRegistry registry_;
};

TEST_F(HotKeyCacheTest, MissThenFillThenHit) {
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  EXPECT_FALSE(cache.Lookup("k1", &value, &token));
  EXPECT_TRUE(cache.Insert("k1", "v1", token));
  EXPECT_TRUE(cache.Lookup("k1", &value, nullptr));
  EXPECT_EQ("v1", value);
  EXPECT_EQ(1u, Count("cache.hits"));
  EXPECT_EQ(1u, Count("cache.misses"));
  EXPECT_EQ(1u, Count("cache.admissions"));
  EXPECT_EQ(1u, cache.entries());
}

TEST_F(HotKeyCacheTest, InvalidateErasesAndCounts) {
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("k1", &value, &token));
  ASSERT_TRUE(cache.Insert("k1", "v1", token));
  cache.Invalidate("k1");
  EXPECT_FALSE(cache.Lookup("k1", &value, &token));
  EXPECT_EQ(0u, cache.entries());
  EXPECT_EQ(1u, Count("cache.invalidations"));
}

TEST_F(HotKeyCacheTest, StaleTokenFillIsRejected) {
  // The coherence core: an invalidation between the Lookup miss and the
  // Insert must reject the fill — the value in hand may predate an
  // acked overwrite.
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("k1", &value, &token));
  cache.Invalidate("k1");  // concurrent overwrite commits + invalidates
  EXPECT_FALSE(cache.Insert("k1", "stale", token));
  EXPECT_FALSE(cache.Lookup("k1", &value, nullptr));
  EXPECT_EQ(1u, Count("cache.rejected_fills"));
  EXPECT_EQ(0u, Count("cache.admissions"));
}

TEST_F(HotKeyCacheTest, FreshTokenAfterInvalidationFillsAgain) {
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("k1", &value, &token));
  cache.Invalidate("k1");
  // A new Lookup captures the bumped epoch, so the next fill (of the
  // freshly-read value) is accepted.
  ASSERT_FALSE(cache.Lookup("k1", &value, &token));
  EXPECT_TRUE(cache.Insert("k1", "v2", token));
  EXPECT_TRUE(cache.Lookup("k1", &value, nullptr));
  EXPECT_EQ("v2", value);
}

TEST_F(HotKeyCacheTest, AdmissionFilterRequiresRepeatLookups) {
  HotKeyCacheOptions o = SmallOptions();
  o.admit_threshold = 2;
  HotKeyCache cache(o, &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  // First access: estimated frequency 1 < 2, fill filtered out.
  ASSERT_FALSE(cache.Lookup("one-hit", &value, &token));
  EXPECT_FALSE(cache.Insert("one-hit", "v", token));
  EXPECT_EQ(1u, Count("cache.filtered"));
  EXPECT_EQ(0u, cache.entries());
  // Second access of the same key clears the threshold.
  ASSERT_FALSE(cache.Lookup("one-hit", &value, &token));
  EXPECT_TRUE(cache.Insert("one-hit", "v", token));
  EXPECT_TRUE(cache.Lookup("one-hit", &value, nullptr));
}

TEST_F(HotKeyCacheTest, OversizedValuesAreNeverCached) {
  HotKeyCacheOptions o = SmallOptions();
  o.max_value_bytes = 16;
  HotKeyCache cache(o, &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("big", &value, &token));
  EXPECT_FALSE(cache.Insert("big", std::string(64, 'x'), token));
  EXPECT_EQ(0u, cache.entries());
}

TEST_F(HotKeyCacheTest, CapacityBoundEvictsLru) {
  HotKeyCacheOptions o;
  o.capacity_bytes = 4096;  // tiny: a handful of entries per stripe
  o.admit_threshold = 1;
  o.stripes = 1;
  HotKeyCache cache(o, &registry_);
  const std::string big_value(400, 'v');
  for (int i = 0; i < 64; i++) {
    std::string key = "key-" + std::to_string(i);
    std::string value;
    HotKeyCache::FillToken token;
    if (!cache.Lookup(key, &value, &token)) {
      cache.Insert(key, big_value, token);
    }
  }
  EXPECT_GT(Count("cache.evictions"), 0u);
  EXPECT_LE(cache.charge_bytes(), o.capacity_bytes + 512);
  EXPECT_GT(cache.entries(), 0u);
}

TEST_F(HotKeyCacheTest, LruKeepsHotEntryUnderEvictionPressure) {
  HotKeyCacheOptions o;
  o.capacity_bytes = 4096;
  o.admit_threshold = 1;
  o.stripes = 1;
  HotKeyCache cache(o, &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("hot", &value, &token));
  ASSERT_TRUE(cache.Insert("hot", "hot-value", token));
  for (int i = 0; i < 32; i++) {
    // Touch the hot key between cold fills so it stays at the LRU head.
    ASSERT_TRUE(cache.Lookup("hot", &value, nullptr)) << i;
    std::string key = "cold-" + std::to_string(i);
    if (!cache.Lookup(key, &value, &token)) {
      cache.Insert(key, std::string(300, 'c'), token);
    }
  }
  EXPECT_TRUE(cache.Lookup("hot", &value, nullptr));
  EXPECT_EQ("hot-value", value);
}

TEST_F(HotKeyCacheTest, ClearDropsEverythingAndGuardsInFlightFills) {
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken t1, t2;
  ASSERT_FALSE(cache.Lookup("a", &value, &t1));
  ASSERT_TRUE(cache.Insert("a", "va", t1));
  ASSERT_FALSE(cache.Lookup("b", &value, &t2));
  cache.Clear();
  EXPECT_EQ(0u, cache.entries());
  EXPECT_EQ(0u, cache.charge_bytes());
  // The pre-Clear token is stale for every key.
  EXPECT_FALSE(cache.Insert("b", "vb", t2));
}

TEST_F(HotKeyCacheTest, PoisonFailPointDropsFills) {
  HotKeyCache cache(SmallOptions(), &registry_);
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  ->Enable("cache.poison", "always,error:io")
                  .ok());
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("k", &value, &token));
  EXPECT_FALSE(cache.Insert("k", "v", token));
  EXPECT_EQ(0u, cache.entries());
  fault::FailPointRegistry::Global()->DisableAll();
  ASSERT_FALSE(cache.Lookup("k", &value, &token));
  EXPECT_TRUE(cache.Insert("k", "v", token));
}

TEST_F(HotKeyCacheTest, InvalidateFailPointErrorsAreIgnored) {
  HotKeyCache cache(SmallOptions(), &registry_);
  std::string value;
  HotKeyCache::FillToken token;
  ASSERT_FALSE(cache.Lookup("k", &value, &token));
  ASSERT_TRUE(cache.Insert("k", "v", token));
  // Even an error-armed cache.invalidate must not skip the erase: the
  // protocol depends on invalidation being unconditional.
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  ->Enable("cache.invalidate", "always,error:io")
                  .ok());
  cache.Invalidate("k");
  EXPECT_FALSE(cache.Lookup("k", &value, nullptr));
  EXPECT_EQ(0u, cache.entries());
}

TEST_F(HotKeyCacheTest, ConcurrentFillInvalidateSmoke) {
  HotKeyCacheOptions o = SmallOptions();
  o.capacity_bytes = 16u << 10;
  HotKeyCache cache(o, &registry_);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 4000; i++) {
        const std::string key = "k" + std::to_string((i * 7 + t) % 31);
        if (t == 0 && i % 3 == 0) {
          cache.Invalidate(key);
          continue;
        }
        std::string value;
        HotKeyCache::FillToken token;
        if (!cache.Lookup(key, &value, &token)) {
          cache.Insert(key, "v-" + key, token);
        } else {
          ASSERT_EQ("v-" + key, value);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace cache
}  // namespace cachekv
