// Telemetry-plane integration tests (docs/OBSERVABILITY.md): trace
// context propagating client -> wire -> server stage spans and back
// (the sampled-GET acceptance case: one merged timeline, client span +
// >= 4 server/DB stage spans sharing the trace id), the slow-request
// log capturing an artificially delayed request over the wire with the
// delayed stage identified, and METRICSPROM serving a well-formed
// Prometheus exposition with per-shard labels.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "fault/fail_point.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "obs/trace.h"
#include "pmem/pmem_env.h"
#include "util/json.h"

namespace cachekv {
namespace {

EnvOptions TestEnv(uint64_t pool_bytes) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = pool_bytes;
  o.latency.scale = 0;
  return o;
}

CacheKVOptions TestDb() {
  CacheKVOptions o;
  o.pool_bytes = 2ull << 20;
  o.sub_memtable_bytes = 128ull << 10;
  o.min_sub_memtable_bytes = 64ull << 10;
  o.num_cores = 2;
  o.bg_backoff_base_ms = 1;
  o.bg_backoff_max_ms = 4;
  o.write_stall_timeout_ms = 2000;
  o.lsm.background_compaction = false;
  return o;
}

/// Events in a parsed Chrome trace carrying args.trace == `trace_id`.
std::vector<std::string> SpanNamesForTrace(const JsonValue& events,
                                           uint64_t trace_id) {
  std::vector<std::string> names;
  if (!events.is_array()) return names;
  for (const JsonValue& ev : events.items()) {
    const JsonValue* args = ev.Get("args");
    if (args == nullptr || !args->is_object()) continue;
    const JsonValue* trace = args->Get("trace");
    if (trace == nullptr || !trace->is_number()) continue;
    if (static_cast<uint64_t>(trace->number()) != trace_id) continue;
    const JsonValue* name = ev.Get("name");
    if (name != nullptr && name->is_string()) {
      names.push_back(name->str());
    }
  }
  return names;
}

std::set<uint64_t> TraceIds(const JsonValue& events) {
  std::set<uint64_t> ids;
  if (!events.is_array()) return ids;
  for (const JsonValue& ev : events.items()) {
    const JsonValue* args = ev.Get("args");
    if (args == nullptr || !args->is_object()) continue;
    const JsonValue* trace = args->Get("trace");
    if (trace != nullptr && trace->is_number()) {
      ids.insert(static_cast<uint64_t>(trace->number()));
    }
  }
  return ids;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    opts_.trace_enabled = true;  // server stage spans need the tracer
    env_ = std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes));
    ASSERT_TRUE(DB::Open(env_.get(), opts_, false, &db_).ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (db_) db_->WaitIdle();
    fault::FailPointRegistry::Global()->DisableAll();
  }

  void StartServer(net::ServerOptions srv = net::ServerOptions()) {
    srv.port = 0;  // ephemeral
    server_ = std::make_unique<net::Server>(db_.get(), srv);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(0, server_->port());
  }

  CacheKVOptions opts_;
  std::unique_ptr<PmemEnv> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<net::Server> server_;
};

// Tentpole acceptance: a sampled GET yields one merged timeline — the
// client span plus >= 4 server/DB stage spans all share its trace id.
TEST_F(TelemetryTest, SampledGetProducesJoinedClientServerTimeline) {
  StartServer();
  obs::Tracer client_tracer;
  client_tracer.set_enabled(true);
  net::ClientOptions copts;
  copts.trace_sample_every = 1;  // sample every keyed request
  copts.trace_seed = 7;
  copts.tracer = &client_tracer;
  net::Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  ASSERT_TRUE(client.Put("traced-key", "traced-value").ok());
  std::string value;
  ASSERT_TRUE(client.Get("traced-key", &value).ok());
  EXPECT_EQ("traced-value", value);
  client.Close();
  server_->Stop();

  // Both sides export Chrome-trace JSON (what tools/trace_merge.py
  // merges); the join key is the "trace" arg.
  std::string client_json;
  client_tracer.Export(&client_json);
  std::string server_json;
  db_->DumpTrace(&server_json);
  JsonValue client_events, server_events;
  ASSERT_TRUE(JsonValue::Parse(client_json, &client_events).ok());
  ASSERT_TRUE(JsonValue::Parse(server_json, &server_events).ok());

  const std::set<uint64_t> client_ids = TraceIds(client_events);
  const std::set<uint64_t> server_ids = TraceIds(server_events);
  ASSERT_GE(client_ids.size(), 2u);  // the PUT and the GET
  // Every sampled request's id must appear on BOTH sides.
  for (uint64_t id : client_ids) {
    EXPECT_EQ(1u, server_ids.count(id)) << "trace id " << id
                                        << " missing server-side";
  }

  // Find the GET's id via its client span, then check the server
  // emitted >= 4 stage spans under the same id.
  uint64_t get_id = 0;
  for (uint64_t id : client_ids) {
    for (const std::string& name : SpanNamesForTrace(client_events, id)) {
      if (name == "client.get") get_id = id;
    }
  }
  ASSERT_NE(0u, get_id) << "no client.get span in the client trace";
  const std::vector<std::string> server_spans =
      SpanNamesForTrace(server_events, get_id);
  EXPECT_GE(server_spans.size(), 4u)
      << "server emitted only " << server_spans.size() << " stage spans";
  auto has = [&server_spans](const char* name) {
    for (const std::string& s : server_spans) {
      if (s == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("req.decode"));
  EXPECT_TRUE(has("req.route"));
  EXPECT_TRUE(has("req.db"));
  EXPECT_TRUE(has("req.encode"));
  EXPECT_TRUE(has("net.recv"));
  EXPECT_TRUE(has("net.send"));

  // The wire told the client how long the server took; the counters
  // saw the traced frames.
  EXPECT_GE(db_->CounterValue("net.traced_requests"), 2u);
}

// Traced pipelined requests: every sampled result carries its trace id,
// the client-observed latency, and the server-reported service time
// (client_ns >= server_ns is what makes queueing_us derivable).
TEST_F(TelemetryTest, PipelinedTracedResultsCarryBothClocks) {
  StartServer();
  obs::Tracer client_tracer;
  client_tracer.set_enabled(true);
  net::ClientOptions copts;
  copts.trace_sample_every = 2;  // every other request
  copts.trace_seed = 11;
  copts.tracer = &client_tracer;
  net::Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  for (int i = 0; i < 20; i++) {
    client.SubmitPut("pipe" + std::to_string(i), "v");
  }
  std::vector<net::Client::Result> results;
  ASSERT_TRUE(client.WaitAll(&results).ok());
  ASSERT_EQ(20u, results.size());
  int traced = 0;
  std::set<uint64_t> ids;
  for (const auto& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (!r.traced) continue;
    traced++;
    EXPECT_NE(0u, r.trace_id);
    ids.insert(r.trace_id);
    EXPECT_GT(r.client_ns, 0u);
    EXPECT_GT(r.server_ns, 0u);
    EXPECT_GE(r.client_ns, r.server_ns)
        << "client-observed latency cannot undercut server service time";
  }
  EXPECT_EQ(10, traced) << "sample_every=2 over 20 requests";
  EXPECT_EQ(10u, ids.size()) << "trace ids must be distinct";
}

// Satellite (d): the slow-request acceptance case. An artificially
// delayed request (armed net.decode delay) appears in SLOWLOG over the
// wire with a stage breakdown identifying the delayed stage.
TEST_F(TelemetryTest, DelayedRequestLandsInSlowLogWithGuiltyStage) {
  net::ServerOptions srv;
  srv.slow_request_us = 2'000;  // 2 ms threshold
  StartServer(srv);
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Fast requests stay out of the log.
  ASSERT_TRUE(client.Put("fast", "1").ok());
  std::string json;
  ASSERT_TRUE(client.SlowLog(0, &json).ok());
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok());
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.items().empty()) << json;

  // One 30 ms injected decode-path delay: the next request must land in
  // the slow log with req.decode dominating its stage breakdown.
  auto* reg = fault::FailPointRegistry::Global();
  ASSERT_TRUE(reg->Enable("net.decode", "once,delay:30000").ok());
  std::string value;
  ASSERT_TRUE(client.Get("fast", &value).ok());
  reg->DisableAll();

  ASSERT_TRUE(client.SlowLog(0, &json).ok());
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(1u, doc.items().size()) << json;
  const JsonValue& entry = doc.items()[0];
  ASSERT_NE(nullptr, entry.Get("op"));
  EXPECT_EQ("get", entry.Get("op")->str());
  ASSERT_NE(nullptr, entry.Get("key"));
  EXPECT_EQ("fast", entry.Get("key")->str());
  ASSERT_NE(nullptr, entry.Get("total_us"));
  EXPECT_GE(entry.Get("total_us")->number(), 25'000.0);
  const JsonValue* stages = entry.Get("stages");
  ASSERT_NE(nullptr, stages);
  const JsonValue* decode = stages->Get("req.decode");
  ASSERT_NE(nullptr, decode) << json;
  // The guilty stage: decode holds (almost) the whole delay; every
  // other stage is orders of magnitude smaller.
  EXPECT_GE(decode->number(), 25'000.0) << json;
  for (const auto& [name, us] : stages->members()) {
    if (name != "req.decode") {
      EXPECT_LT(us.number(), decode->number()) << name;
    }
  }

  EXPECT_GE(db_->CounterValue("net.slowlog.captured"), 1u);
  EXPECT_GE(db_->CounterValue("net.slowlog.queries"), 2u);
}

TEST_F(TelemetryTest, SlowLogDisabledAnswersEmptyArray) {
  net::ServerOptions srv;
  srv.slow_request_us = 0;  // capture disabled
  StartServer(srv);
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto* reg = fault::FailPointRegistry::Global();
  ASSERT_TRUE(reg->Enable("net.decode", "once,delay:15000").ok());
  ASSERT_TRUE(client.Ping().ok());
  reg->DisableAll();
  std::string json;
  ASSERT_TRUE(client.SlowLog(0, &json).ok());
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok());
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.items().empty());
}

TEST_F(TelemetryTest, SlowLogLimitCapsEntries) {
  net::ServerOptions srv;
  srv.slow_request_us = 1'000;
  StartServer(srv);
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto* reg = fault::FailPointRegistry::Global();
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(reg->Enable("net.decode", "once,delay:5000").ok());
    ASSERT_TRUE(client.Put("slow" + std::to_string(i), "v").ok());
  }
  reg->DisableAll();
  std::string json;
  ASSERT_TRUE(client.SlowLog(2, &json).ok());
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok());
  ASSERT_TRUE(doc.is_array());
  EXPECT_EQ(2u, doc.items().size());
  // Newest first: the latest slow key leads.
  ASSERT_NE(nullptr, doc.items()[0].Get("key"));
  EXPECT_EQ("slow4", doc.items()[0].Get("key")->str());
}

TEST_F(TelemetryTest, MetricsPromServesWellFormedExposition) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Put("prom-key", "v").ok());
  std::string value;
  ASSERT_TRUE(client.Get("prom-key", &value).ok());

  std::string text;
  ASSERT_TRUE(client.MetricsProm(&text).ok());
  EXPECT_NE(std::string::npos,
            text.find("# TYPE cachekv_net_requests counter"));
  EXPECT_NE(std::string::npos,
            text.find("cachekv_net_requests{shard=\"0\"}"));
  // Histograms render as summaries: quantile series + _sum + _count.
  EXPECT_NE(std::string::npos,
            text.find("# TYPE cachekv_net_op_get summary"));
  EXPECT_NE(std::string::npos,
            text.find("cachekv_net_op_get{shard=\"0\",quantile=\"0.5\"}"));
  EXPECT_NE(std::string::npos,
            text.find("cachekv_net_op_get_count{shard=\"0\"}"));
  // Exactly one TYPE line per family.
  EXPECT_EQ(text.find("# TYPE cachekv_net_requests "),
            text.rfind("# TYPE cachekv_net_requests "));
  // Every non-comment line carries a shard label.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(std::string::npos, line.find("shard=\"")) << line;
  }
}

// Sharded telemetry: METRICSPROM labels every shard, SLOWLOG sees
// requests routed to any shard.
class ShardedTelemetryTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 2;

  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    net::ShardMap map;
    map.num_shards = kShards;
    ASSERT_TRUE(net::ShardRouter::Build(map, &router_).ok());
    for (int i = 0; i < kShards; i++) {
      envs_.push_back(
          std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes)));
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(envs_.back().get(), opts_, false, &db).ok());
      dbs_.push_back(std::move(db));
    }
  }

  void TearDown() override {
    if (server_) server_->Stop();
    for (auto& db : dbs_) {
      if (db) db->WaitIdle();
    }
    fault::FailPointRegistry::Global()->DisableAll();
  }

  CacheKVOptions opts_;
  net::ShardRouter router_;
  std::vector<std::unique_ptr<PmemEnv>> envs_;
  std::vector<std::unique_ptr<DB>> dbs_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(ShardedTelemetryTest, PromExposesEveryShardLabel) {
  net::ServerOptions srv;
  srv.port = 0;
  std::vector<DB*> ptrs;
  for (auto& db : dbs_) ptrs.push_back(db.get());
  server_ = std::make_unique<net::Server>(ptrs, router_, srv);
  ASSERT_TRUE(server_->Start().ok());

  net::ShardedClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(client.Put("spread" + std::to_string(i), "v").ok());
  }
  std::string text;
  ASSERT_TRUE(client.MetricsProm(&text).ok());
  for (int s = 0; s < kShards; s++) {
    const std::string label =
        "shard=\"" + std::to_string(s) + "\"";
    EXPECT_NE(std::string::npos, text.find(label)) << label;
  }
  // Per-shard routing counters show up as one series per shard.
  EXPECT_NE(std::string::npos,
            text.find("cachekv_net_shard_requests{shard=\"1\"}"));
}

}  // namespace
}  // namespace cachekv
