// Client <-> server integration tests: an in-process Server on an
// ephemeral port, driven through the real TCP client library.
// Covers the op surface against shadow maps (concurrent clients),
// pipelined write batching, STATS serving the registry dump, armed
// net.* fail points surfacing as clean client errors while the server
// stays up, read-only degradation over the wire, and the acceptance
// case: killing the server mid-load and reopening the store loses no
// acknowledged write.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "fault/fail_point.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "pmem/pmem_env.h"
#include "util/json.h"

namespace cachekv {
namespace {

EnvOptions TestEnv(uint64_t pool_bytes) {
  EnvOptions o;
  o.pmem_capacity = 256ull << 20;
  o.llc_capacity = 16ull << 20;
  o.cat_locked_bytes = pool_bytes;
  o.latency.scale = 0;
  return o;
}

CacheKVOptions TestDb() {
  CacheKVOptions o;
  o.pool_bytes = 2ull << 20;
  o.sub_memtable_bytes = 128ull << 10;
  o.min_sub_memtable_bytes = 64ull << 10;
  o.num_cores = 2;
  o.bg_backoff_base_ms = 1;
  o.bg_backoff_max_ms = 4;
  o.write_stall_timeout_ms = 2000;
  o.lsm.background_compaction = false;
  return o;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    env_ = std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes));
    ASSERT_TRUE(DB::Open(env_.get(), opts_, false, &db_).ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (db_) db_->WaitIdle();
    fault::FailPointRegistry::Global()->DisableAll();
  }

  void StartServer(net::ServerOptions srv = net::ServerOptions()) {
    srv.port = 0;  // ephemeral
    server_ = std::make_unique<net::Server>(db_.get(), srv);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(0, server_->port());
  }

  void MakeClient(net::Client* client) {
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()).ok());
  }

  CacheKVOptions opts_;
  std::unique_ptr<PmemEnv> env_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(NetServerTest, BasicOpsRoundTrip) {
  StartServer();
  net::Client client;
  MakeClient(&client);

  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Put("alpha", "1").ok());
  ASSERT_TRUE(client.Put("beta", "2").ok());
  ASSERT_TRUE(client.Put("gamma", "3").ok());

  std::string value;
  ASSERT_TRUE(client.Get("beta", &value).ok());
  EXPECT_EQ("2", value);
  EXPECT_TRUE(client.Get("missing", &value).IsNotFound());

  ASSERT_TRUE(client.Delete("beta").ok());
  EXPECT_TRUE(client.Get("beta", &value).IsNotFound());

  // MultiPut commits atomically server-side via DB::ApplyBatch.
  ASSERT_TRUE(client
                  .MultiPut({{false, "delta", "4"},
                             {true, "gamma", ""},
                             {false, "epsilon", "5"}})
                  .ok());
  ASSERT_TRUE(client.Get("delta", &value).ok());
  EXPECT_EQ("4", value);
  EXPECT_TRUE(client.Get("gamma", &value).IsNotFound());

  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(client.Scan("", 10, &entries).ok());
  ASSERT_EQ(3u, entries.size());  // alpha, delta, epsilon — in order
  EXPECT_EQ("alpha", entries[0].first);
  EXPECT_EQ("delta", entries[1].first);
  EXPECT_EQ("epsilon", entries[2].first);

  ASSERT_TRUE(client.Scan("b", 1, &entries).ok());
  ASSERT_EQ(1u, entries.size());
  EXPECT_EQ("delta", entries[0].first);
}

TEST_F(NetServerTest, ScanLimitAboveServerMaximumRejected) {
  net::ServerOptions srv;
  srv.max_scan_limit = 4;
  StartServer(srv);
  net::Client client;
  MakeClient(&client);
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(client.Scan("", 4, &entries).ok());
  Status s = client.Scan("", 5, &entries);
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(std::string::npos, s.ToString().find("too_large"));
  // The rejection is per-request; the connection stays usable.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetServerTest, ConcurrentClientsAgainstShadowMaps) {
  StartServer();
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      net::Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      // Disjoint per-thread key prefixes; every thread maintains its own
      // shadow map and verifies against it at the end.
      std::map<std::string, std::string> shadow;
      const std::string prefix = "t" + std::to_string(t) + "-";
      for (int i = 0; i < kOps; i++) {
        const std::string key = prefix + std::to_string(i % 50);
        if (i % 7 == 3) {
          if (!client.Delete(key).ok()) failures.fetch_add(1);
          shadow.erase(key);
        } else {
          const std::string value =
              "v" + std::to_string(t) + "." + std::to_string(i);
          if (!client.Put(key, value).ok()) failures.fetch_add(1);
          shadow[key] = value;
        }
      }
      for (const auto& [key, want] : shadow) {
        std::string got;
        if (!client.Get(key, &got).ok() || got != want) {
          failures.fetch_add(1);
        }
      }
      // Every key this thread deleted last must stay gone.
      for (int i = 0; i < 50; i++) {
        const std::string key = prefix + std::to_string(i);
        if (shadow.count(key)) continue;
        std::string got;
        if (!client.Get(key, &got).IsNotFound()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0, failures.load());
}

TEST_F(NetServerTest, PipelinedWritesAreBatchedAndAcknowledged) {
  StartServer();
  net::Client client;
  MakeClient(&client);

  const uint64_t batched_before = db_->CounterValue("net.batched_writes");
  constexpr int kPipelined = 48;
  for (int i = 0; i < kPipelined; i++) {
    client.SubmitPut("pipe" + std::to_string(i),
                     "value" + std::to_string(i));
  }
  std::vector<net::Client::Result> results;
  ASSERT_TRUE(client.WaitAll(&results).ok());
  ASSERT_EQ(static_cast<size_t>(kPipelined), results.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(net::Op::kPut, r.op);
  }
  // Pipelined consecutive PUTs landed as at least one ApplyBatch commit
  // (the whole flight arrives before the server starts responding).
  EXPECT_GT(db_->CounterValue("net.batched_writes"), batched_before);
  EXPECT_GE(db_->CounterValue("net.batched_ops"), 2u);

  for (int i = 0; i < kPipelined; i++) {
    std::string got;
    ASSERT_TRUE(client.Get("pipe" + std::to_string(i), &got).ok());
    EXPECT_EQ("value" + std::to_string(i), got);
  }

  // Mixed pipelined flight: responses arrive in request order with
  // matching ids, reads interleaved with writes.
  const uint64_t id_put = client.SubmitPut("pipe0", "rewritten");
  const uint64_t id_get = client.SubmitGet("pipe0");
  const uint64_t id_del = client.SubmitDelete("pipe1");
  const uint64_t id_miss = client.SubmitGet("pipe1");
  results.clear();
  ASSERT_TRUE(client.WaitAll(&results).ok());
  ASSERT_EQ(4u, results.size());
  EXPECT_EQ(id_put, results[0].id);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(id_get, results[1].id);
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_EQ("rewritten", results[1].value);
  EXPECT_EQ(id_del, results[2].id);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(id_miss, results[3].id);
  EXPECT_TRUE(results[3].status.IsNotFound());
}

TEST_F(NetServerTest, StatsServesTheRegistryDump) {
  StartServer();
  net::Client client;
  MakeClient(&client);
  ASSERT_TRUE(client.Put("k", "v").ok());
  std::string json;
  ASSERT_TRUE(client.Stats(&json).ok());

  // STATS is DB::DumpMetrics verbatim: one parseable document holding
  // both the network-layer and the storage-engine instruments.
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok()) << json;
  EXPECT_NE(nullptr, doc.Get("net.requests"));
  EXPECT_NE(nullptr, doc.Get("net.connections"));
  EXPECT_NE(nullptr, doc.Get("db.puts"));
  std::string local;
  db_->DumpMetrics(&local);
  JsonValue local_doc;
  ASSERT_TRUE(JsonValue::Parse(local, &local_doc).ok());
  EXPECT_NE(nullptr, local_doc.Get("net.requests"));
}

TEST_F(NetServerTest, InjectedReadFaultClosesOneConnNotTheServer) {
  StartServer();
  auto* reg = fault::FailPointRegistry::Global();
  net::Client victim;
  MakeClient(&victim);
  ASSERT_TRUE(victim.Ping().ok());

  // Armed net.read: the next socket read on the victim's worker fails,
  // the server closes that connection, and the client surfaces a clean
  // transport error — no hang, no crash.
  ASSERT_TRUE(reg->Enable("net.read", "once,error:io").ok());
  Status s = victim.Put("doomed", "x");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(victim.connected());
  EXPECT_GE(reg->FireCount("net.read"), 1u);
  reg->DisableAll();

  // The server keeps serving fresh connections.
  net::Client survivor;
  MakeClient(&survivor);
  EXPECT_TRUE(survivor.Ping().ok());
  EXPECT_TRUE(survivor.Put("alive", "yes").ok());
}

TEST_F(NetServerTest, InjectedDecodeFaultIsAPerRequestError) {
  StartServer();
  auto* reg = fault::FailPointRegistry::Global();
  net::Client client;
  MakeClient(&client);
  ASSERT_TRUE(reg->Enable("net.decode", "once,error:io").ok());
  Status s = client.Ping();
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(std::string::npos, s.ToString().find("decode_error"));
  reg->DisableAll();
  // Per-request failure: the same connection keeps working.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetServerTest, ReadOnlyDegradationSurfacesOverTheWire) {
  StartServer();
  auto* reg = fault::FailPointRegistry::Global();
  // Exhaust the flush retry budget: every copy-flush attempt fails, the
  // background-error manager degrades the store to read-only.
  ASSERT_TRUE(reg->Enable("flush.copy", "always,error:io").ok());
  const std::string filler(512, 'f');
  for (int i = 0; i < 20000 && !db_->IsReadOnly(); i++) {
    (void)db_->Put("fill" + std::to_string(i), filler);
  }
  db_->WaitIdle();
  ASSERT_TRUE(db_->IsReadOnly());

  net::Client client;
  MakeClient(&client);
  Status s = client.Put("rejected", "x");
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(std::string::npos, s.ToString().find("read-only"));
  s = client.MultiPut({{false, "also-rejected", "x"}});
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  // Reads keep working while degraded.
  std::string got;
  EXPECT_TRUE(client.Get("fill0", &got).ok());
  EXPECT_TRUE(client.Ping().ok());
  reg->DisableAll();
}

TEST_F(NetServerTest, ServerKillMidLoadLosesNoAcknowledgedWrite) {
  StartServer();
  constexpr int kWriters = 3;
  std::vector<std::map<std::string, std::string>> acked(kWriters);
  std::vector<std::thread> writers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      net::Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      for (int i = 0; !stop.load(std::memory_order_relaxed); i++) {
        const std::string key =
            "crash-t" + std::to_string(t) + "-" + std::to_string(i);
        const std::string value =
            "durable-" + std::to_string(t) + "." + std::to_string(i);
        // Only responses that actually came back count as acknowledged;
        // the write cut off by the shutdown never enters the map.
        if (!client.Put(key, value).ok()) break;
        acked[static_cast<size_t>(t)][key] = value;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server_->Stop();  // hard cut: every in-flight connection drops
  stop.store(true);
  for (auto& th : writers) th.join();
  server_.reset();

  size_t total = 0;
  for (const auto& m : acked) total += m.size();
  ASSERT_GT(total, 100u) << "load phase too short to mean anything";

  // Crash the machine under the store and recover from PMem alone.
  db_->WaitIdle();
  db_.reset();
  env_->SimulateCrash();
  std::unique_ptr<DB> reopened;
  ASSERT_TRUE(DB::Open(env_.get(), opts_, true, &reopened).ok());
  for (const auto& m : acked) {
    for (const auto& [key, want] : m) {
      std::string got;
      Status s = reopened->Get(key, &got);
      ASSERT_TRUE(s.ok()) << "acknowledged write lost: " << key << ": "
                          << s.ToString();
      EXPECT_EQ(want, got) << key;
    }
  }
  db_ = std::move(reopened);
}

TEST_F(NetServerTest, BackpressureShedsWithBusyInsteadOfBuffering) {
  net::ServerOptions srv;
  srv.max_conn_write_buffer_bytes = 64ull << 10;
  StartServer(srv);
  net::Client client;
  MakeClient(&client);

  const std::string big(8192, 'b');
  ASSERT_TRUE(client.Put("big", big).ok());

  // Pipeline far more response bytes (~32 MB) than the kernel's socket
  // buffers plus the 64 KB cap can hold, then give the server time to
  // process the whole flight while this thread is NOT reading: the
  // outbound buffer hits the cap and the tail of the flight must be
  // shed with Busy rather than buffered without bound.
  constexpr int kGets = 4000;
  for (int i = 0; i < kGets; i++) {
    client.SubmitGet("big");
  }
  ASSERT_TRUE(client.Flush().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  std::vector<net::Client::Result> results;
  ASSERT_TRUE(client.WaitAll(&results).ok());
  ASSERT_EQ(static_cast<size_t>(kGets), results.size());

  int served = 0, shed = 0;
  for (const auto& r : results) {
    if (r.status.ok()) {
      served++;
      EXPECT_EQ(big, r.value);
    } else {
      ASSERT_TRUE(r.status.IsBusy()) << r.status.ToString();
      shed++;
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(shed, 0);
  EXPECT_GE(db_->CounterValue("net.backpressure_sheds"),
            static_cast<uint64_t>(shed));

  // Shedding is per-request: the connection survives and recovers.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());
  std::string got;
  ASSERT_TRUE(client.Get("big", &got).ok());
  EXPECT_EQ(big, got);
}

TEST_F(NetServerTest, StopIsIdempotentAndRestartable) {
  StartServer();
  net::Client client;
  MakeClient(&client);
  ASSERT_TRUE(client.Put("k", "v").ok());
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_FALSE(server_->running());

  // A fresh server over the same DB picks the data right up.
  server_ = std::make_unique<net::Server>(db_.get(), net::ServerOptions());
  ASSERT_TRUE(server_->Start().ok());
  net::Client again;
  MakeClient(&again);
  std::string got;
  ASSERT_TRUE(again.Get("k", &got).ok());
  EXPECT_EQ("v", got);
}

// Sharded-server integration: four independent stores behind one
// listening socket, a consistent-hash ring shared by server and
// clients, SHARDMAP bootstrap, shard-labelled STATS, and the
// acceptance case — killing the sharded server mid-load and crash-
// recovering every shard loses no acknowledged write.
class ShardedNetServerTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 4;

  void SetUp() override {
    fault::FailPointRegistry::Global()->DisableAll();
    opts_ = TestDb();
    net::ShardMap map;
    map.num_shards = kShards;
    ASSERT_TRUE(net::ShardRouter::Build(map, &router_).ok());
    for (int i = 0; i < kShards; i++) {
      envs_.push_back(
          std::make_unique<PmemEnv>(TestEnv(opts_.pool_bytes)));
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(envs_.back().get(), opts_, false, &db).ok());
      dbs_.push_back(std::move(db));
    }
  }

  void TearDown() override {
    if (server_) server_->Stop();
    for (auto& db : dbs_) {
      if (db) db->WaitIdle();
    }
    fault::FailPointRegistry::Global()->DisableAll();
  }

  void StartServer(net::ServerOptions srv = net::ServerOptions()) {
    srv.port = 0;  // ephemeral
    std::vector<DB*> ptrs;
    for (auto& db : dbs_) ptrs.push_back(db.get());
    server_ = std::make_unique<net::Server>(ptrs, router_, srv);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(0, server_->port());
  }

  CacheKVOptions opts_;
  net::ShardRouter router_;
  std::vector<std::unique_ptr<PmemEnv>> envs_;
  std::vector<std::unique_ptr<DB>> dbs_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(ShardedNetServerTest, OpsRouteAcrossAllShards) {
  StartServer();
  net::ShardedClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_EQ(static_cast<uint32_t>(kShards), client.num_shards());

  std::vector<std::string> keys;
  for (int i = 0; i < 200; i++) {
    const std::string key = "route" + std::to_string(i);
    ASSERT_TRUE(client.Put(key, "v" + std::to_string(i)).ok());
    keys.push_back(key);
  }
  // 200 keys over 4 shards: every store must have received writes.
  for (int s = 0; s < kShards; s++) {
    EXPECT_GT(dbs_[static_cast<size_t>(s)]->CounterValue("db.puts"), 0u)
        << "shard " << s << " never written";
    EXPECT_GT(dbs_[static_cast<size_t>(s)]->CounterValue(
                  "net.shard.requests"),
              0u);
  }
  for (int i = 0; i < 200; i++) {
    std::string got;
    ASSERT_TRUE(client.Get(keys[static_cast<size_t>(i)], &got).ok());
    EXPECT_EQ("v" + std::to_string(i), got);
  }
  // The routing is the fixture ring: each key lives in exactly the
  // shard the router names (verified store-side, bypassing the net).
  for (int i = 0; i < 200; i += 17) {
    const std::string& key = keys[static_cast<size_t>(i)];
    const uint32_t owner = router_.ShardOf(key);
    std::string got;
    EXPECT_TRUE(dbs_[owner]->Get(key, &got).ok()) << key;
  }

  // MULTIPUT splits across shards; SCAN merges back in global order.
  ASSERT_TRUE(client
                  .MultiPut({{false, "m-a", "1"},
                             {false, "m-b", "2"},
                             {false, "m-c", "3"},
                             {false, "m-d", "4"}})
                  .ok());
  // SCAN is `keys >= start` merged across all shards in global order;
  // the four m-* keys sort before the route* bulk.
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(client.Scan("m-", 4, &entries).ok());
  ASSERT_EQ(4u, entries.size());
  EXPECT_EQ("m-a", entries[0].first);
  EXPECT_EQ("m-b", entries[1].first);
  EXPECT_EQ("m-c", entries[2].first);
  EXPECT_EQ("m-d", entries[3].first);

  ASSERT_TRUE(client.Delete("m-b").ok());
  std::string got;
  EXPECT_TRUE(client.Get("m-b", &got).IsNotFound());

  // A plain (unsharded) client works against the same server: the
  // server routes on its side.
  net::Client plain;
  ASSERT_TRUE(plain.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(plain.Get("route7", &got).ok());
  EXPECT_EQ("v7", got);
  ASSERT_TRUE(plain.Put("plain-key", "plain-value").ok());
  ASSERT_TRUE(client.Get("plain-key", &got).ok());
  EXPECT_EQ("plain-value", got);
  entries.clear();
  ASSERT_TRUE(plain.Scan("m-", 3, &entries).ok());
  ASSERT_EQ(3u, entries.size());  // m-b deleted — globally ordered
  EXPECT_EQ("m-a", entries[0].first);
  EXPECT_EQ("m-c", entries[1].first);
  EXPECT_EQ("m-d", entries[2].first);
}

TEST_F(ShardedNetServerTest, ShardMapFetchMatchesServerRouting) {
  StartServer();
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  net::ShardRouter fetched;
  ASSERT_TRUE(client.FetchShardMap(&fetched).ok());
  EXPECT_EQ(static_cast<uint32_t>(kShards), fetched.num_shards());
  ASSERT_EQ(static_cast<size_t>(kShards),
            fetched.map().endpoints.size());
  const std::string want_endpoint =
      "127.0.0.1:" + std::to_string(server_->port());
  for (const std::string& ep : fetched.map().endpoints) {
    EXPECT_EQ(want_endpoint, ep);
  }
  // The fetched ring assigns every key exactly as the server does.
  for (int i = 0; i < 10'000; i++) {
    const std::string key = "agree" + std::to_string(i);
    ASSERT_EQ(router_.ShardOf(key), fetched.ShardOf(key)) << key;
  }
}

TEST_F(ShardedNetServerTest, StatsAreShardLabelled) {
  StartServer();
  net::ShardedClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(client.Put("stat" + std::to_string(i), "v").ok());
  }
  std::string json;
  ASSERT_TRUE(client.Stats(&json).ok());
  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(json, &doc).ok()) << json;
  const JsonValue* shards = doc.Get("shards");
  ASSERT_NE(nullptr, shards);
  EXPECT_EQ(kShards, static_cast<int>(shards->number()));
  for (int s = 0; s < kShards; s++) {
    const JsonValue* shard = doc.Get("shard." + std::to_string(s));
    ASSERT_NE(nullptr, shard) << "missing shard." << s;
    EXPECT_NE(nullptr, shard->Get("net.shard.requests"))
        << "shard." << s;
    EXPECT_NE(nullptr, shard->Get("db.puts")) << "shard." << s;
  }
  // Server-wide net.* instruments live in the primary shard's dump.
  EXPECT_NE(nullptr, doc.Get("shard.0")->Get("net.requests"));
}

TEST_F(ShardedNetServerTest, ConcurrentShardedClientsAgainstShadowMaps) {
  StartServer();
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      net::ShardedClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::map<std::string, std::string> shadow;
      const std::string prefix = "st" + std::to_string(t) + "-";
      for (int i = 0; i < kOps; i++) {
        const std::string key = prefix + std::to_string(i % 50);
        if (i % 7 == 3) {
          if (!client.Delete(key).ok()) failures.fetch_add(1);
          shadow.erase(key);
        } else {
          const std::string value =
              "v" + std::to_string(t) + "." + std::to_string(i);
          if (!client.Put(key, value).ok()) failures.fetch_add(1);
          shadow[key] = value;
        }
      }
      for (const auto& [key, want] : shadow) {
        std::string got;
        if (!client.Get(key, &got).ok() || got != want) {
          failures.fetch_add(1);
        }
      }
      for (int i = 0; i < 50; i++) {
        const std::string key = prefix + std::to_string(i);
        if (shadow.count(key)) continue;
        std::string got;
        if (!client.Get(key, &got).IsNotFound()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0, failures.load());
}

TEST_F(ShardedNetServerTest, KillMidLoadLosesNoAcknowledgedWrite) {
  StartServer();
  constexpr int kWriters = 3;
  std::vector<std::map<std::string, std::string>> acked(kWriters);
  std::vector<std::thread> writers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&, t] {
      net::ShardedClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      for (int i = 0; !stop.load(std::memory_order_relaxed); i++) {
        const std::string key =
            "scrash-t" + std::to_string(t) + "-" + std::to_string(i);
        const std::string value =
            "durable-" + std::to_string(t) + "." + std::to_string(i);
        // Only responses that actually came back count as acknowledged.
        if (!client.Put(key, value).ok()) break;
        acked[static_cast<size_t>(t)][key] = value;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server_->Stop();  // hard cut: every in-flight connection drops
  stop.store(true);
  for (auto& th : writers) th.join();
  server_.reset();

  size_t total = 0;
  for (const auto& m : acked) total += m.size();
  ASSERT_GT(total, 100u) << "load phase too short to mean anything";

  // Crash every shard's machine and recover each store from its own
  // PMem device alone.
  for (int s = 0; s < kShards; s++) {
    dbs_[static_cast<size_t>(s)]->WaitIdle();
    dbs_[static_cast<size_t>(s)].reset();
    envs_[static_cast<size_t>(s)]->SimulateCrash();
    std::unique_ptr<DB> reopened;
    ASSERT_TRUE(DB::Open(envs_[static_cast<size_t>(s)].get(), opts_,
                         true, &reopened)
                    .ok())
        << "shard " << s;
    dbs_[static_cast<size_t>(s)] = std::move(reopened);
  }

  // Every acknowledged write must be in exactly the shard the ring
  // routes it to.
  for (const auto& m : acked) {
    for (const auto& [key, want] : m) {
      const uint32_t owner = router_.ShardOf(key);
      std::string got;
      Status s = dbs_[owner]->Get(key, &got);
      ASSERT_TRUE(s.ok()) << "acknowledged write lost: " << key
                          << " (shard " << owner << "): "
                          << s.ToString();
      EXPECT_EQ(want, got) << key;
    }
  }
}

}  // namespace
}  // namespace cachekv
